//! De-Bruijn graph construction and haplotype assembly — the **dbg**
//! kernel.
//!
//! Variant callers like Platypus and GATK HaplotypeCaller re-assemble the
//! reads aligned to a small reference region into a De-Bruijn graph to
//! correct alignment artifacts: each distinct k-mer becomes a node
//! (tracked in a hash table), adjacent k-mers are linked with
//! read-support-weighted edges, and source-to-sink paths through
//! well-supported edges are the candidate *haplotypes* handed to the
//! pairHMM. If the graph is cyclic (repeats shorter than k), construction
//! restarts with a larger k.

use crate::kmer_table::{KmerTable, Probing};
use gb_core::region::RegionTask;
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{NullProbe, Probe};

/// Parameters for region re-assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbgParams {
    /// Initial k-mer size (Platypus default 15; GATK 10–25 sweep).
    pub k: usize,
    /// Largest k to escalate to before giving up.
    pub max_k: usize,
    /// k increment per escalation.
    pub k_step: usize,
    /// Minimum read support for a non-reference edge to survive pruning.
    pub min_edge_weight: u32,
    /// Cap on enumerated haplotypes per region.
    pub max_haplotypes: usize,
}

impl Default for DbgParams {
    fn default() -> DbgParams {
        DbgParams {
            k: 15,
            max_k: 31,
            k_step: 4,
            min_edge_weight: 2,
            max_haplotypes: 64,
        }
    }
}

/// Result of assembling one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbgResult {
    /// Candidate haplotypes (always includes the reference haplotype).
    pub haplotypes: Vec<DnaSeq>,
    /// The k that produced an acyclic graph.
    pub k_used: usize,
    /// Distinct k-mers (graph nodes) at the final k.
    pub nodes: usize,
    /// Hash-table lookups performed (the per-task work measure of paper
    /// Table III).
    pub hash_lookups: u64,
    /// How many k values produced cyclic graphs before success.
    pub cycles_hit: u32,
}

/// The graph under construction at one k.
struct Dbg {
    k: usize,
    /// k-mer -> node index.
    table: KmerTable,
    /// Node k-mers by index.
    kmers: Vec<u64>,
    /// `edges[node][base]` = read support for `node -> (node<<2|base)`.
    edges: Vec<[u32; 4]>,
    /// Whether the node/edge lies on the reference path.
    ref_edge: Vec<[bool; 4]>,
    lookups: u64,
}

impl Dbg {
    fn new(k: usize, capacity: usize) -> Dbg {
        Dbg {
            k,
            table: KmerTable::with_capacity(capacity, Probing::Linear),
            kmers: Vec::new(),
            edges: Vec::new(),
            ref_edge: Vec::new(),
            lookups: 0,
        }
    }

    fn node_of<P: Probe>(&mut self, kmer: u64, probe: &mut P) -> usize {
        self.lookups += 1;
        match self.table.get_probed(kmer, probe) {
            Some(idx) => idx as usize,
            None => {
                let idx = self.kmers.len() as u32;
                self.table.set(kmer, idx);
                self.kmers.push(kmer);
                self.edges.push([0; 4]);
                self.ref_edge.push([false; 4]);
                idx as usize
            }
        }
    }

    /// Threads `seq` through the graph, incrementing edge support.
    // PANIC-FREE: edge indices come from `node_of` (which sized the edge
    // arrays) and `i + k - 1 < codes.len()` by the kmers iterator bound.
    fn add_seq<P: Probe>(&mut self, seq: &DnaSeq, weight: u32, is_ref: bool, probe: &mut P) {
        if seq.len() < self.k + 1 {
            return;
        }
        let codes = seq.as_codes();
        let mut prev: Option<usize> = None;
        for (i, kmer) in seq.kmers(self.k) {
            let node = self.node_of(kmer, probe);
            if let Some(p) = prev {
                let base = codes[i + self.k - 1] as usize;
                self.edges[p][base] += weight;
                if is_ref {
                    self.ref_edge[p][base] = true;
                }
            }
            prev = Some(node);
        }
    }

    /// An edge survives pruning if well-supported or on the reference.
    // PANIC-FREE: `node` is a graph index and `base < 4` at every caller.
    fn keep(&self, node: usize, base: usize, min_w: u32) -> bool {
        self.ref_edge[node][base] || self.edges[node][base] >= min_w
    }

    // PANIC-FREE: `node < kmers.len()` at every caller; the shifts are
    // bounded because `k <= 31`.
    fn successor(&self, node: usize, base: usize) -> Option<usize> {
        let mask = if self.k == 31 {
            (1u64 << 62) - 1
        } else {
            (1u64 << (2 * self.k)) - 1
        };
        let next = ((self.kmers[node] << 2) | base as u64) & mask;
        self.table.get(next).map(|i| i as usize)
    }

    /// DFS cycle detection over kept edges.
    // PANIC-FREE: DFS over graph indices `< n`; the explicit stack is
    // non-empty inside the `while let` loop by construction.
    fn has_cycle(&self, min_w: u32) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.kmers.len();
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS with an explicit edge stack.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut next_base)) = stack.last_mut() {
                if *next_base == 4 {
                    color[node] = Color::Black;
                    stack.pop();
                    continue;
                }
                let base = *next_base;
                *next_base += 1;
                if !self.keep(node, base, min_w) {
                    continue;
                }
                if let Some(succ) = self.successor(node, base) {
                    match color[succ] {
                        Color::Gray => return true,
                        Color::White => {
                            color[succ] = Color::Gray;
                            stack.push((succ, 0));
                        }
                        Color::Black => {}
                    }
                }
            }
        }
        false
    }

    /// Enumerates source-to-sink haplotypes (bounded DFS).
    // PANIC-FREE: stack is checked non-empty by the loop condition; node
    // ids come from `successor`, which only returns resident indices.
    fn haplotypes(
        &self,
        source: usize,
        sink: usize,
        min_w: u32,
        max_count: usize,
        max_len: usize,
    ) -> Vec<DnaSeq> {
        let mut out = Vec::new();
        // Path = starting k-mer + appended bases.
        let start_codes = gb_core::seq::unpack_kmer(self.kmers[source], self.k);
        let mut bases: Vec<u8> = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(source, 0)];
        while !stack.is_empty() {
            let depth = stack.len();
            let &mut (node, ref mut next_base) = stack.last_mut().expect("checked non-empty");
            if node == sink && depth > 1 {
                let mut codes = start_codes.clone();
                codes.extend_from_slice(&bases);
                out.push(DnaSeq::from_codes_unchecked(codes));
                if out.len() >= max_count {
                    break;
                }
                stack.pop();
                bases.pop();
                continue;
            }
            if *next_base == 4 || bases.len() >= max_len {
                stack.pop();
                bases.pop();
                continue;
            }
            let base = *next_base;
            *next_base += 1;
            if !self.keep(node, base, min_w) {
                continue;
            }
            if let Some(succ) = self.successor(node, base) {
                stack.push((succ, 0));
                bases.push(base as u8);
            }
        }
        out
    }
}

/// Assembles one region task into candidate haplotypes.
///
/// # Examples
///
/// ```
/// use gb_assembly::dbg::{assemble_region, DbgParams};
/// use gb_core::{region::{Region, RegionTask}, seq::DnaSeq};
/// let ref_seq: DnaSeq = "ACGGTTACAGGATCCAGTACGTTGCAACGGT".parse()?;
/// let task = RegionTask {
///     region: Region::new(0, 0, ref_seq.len()),
///     ref_seq: ref_seq.clone(),
///     reads: vec![],
/// };
/// let r = assemble_region(&task, &DbgParams::default());
/// assert_eq!(r.haplotypes[0], ref_seq); // no reads: reference only
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn assemble_region(task: &RegionTask, params: &DbgParams) -> DbgResult {
    assemble_region_probed(task, params, &mut NullProbe)
}

/// [`assemble_region`] with instrumentation.
// PANIC-FREE: arithmetic on read/ref lengths cannot overflow `usize` for
// in-memory sequences; `k` is clamped to `3..=max_k`.
pub fn assemble_region_probed<P: Probe>(
    task: &RegionTask,
    params: &DbgParams,
    probe: &mut P,
) -> DbgResult {
    let mut cycles_hit = 0u32;
    let mut total_lookups = 0u64;
    let mut k = params.k.max(3);
    loop {
        let capacity = task.ref_seq.len() + task.read_bases() / 4 + 64;
        let mut g = Dbg::new(k, capacity);
        g.add_seq(&task.ref_seq, 1, true, probe);
        for rec in &task.reads {
            g.add_seq(&rec.read.seq, 1, false, probe);
        }
        total_lookups += g.lookups;
        let cyclic = g.has_cycle(params.min_edge_weight);
        if cyclic && k + params.k_step <= params.max_k {
            cycles_hit += 1;
            k += params.k_step;
            continue;
        }
        // Source/sink: first and last reference k-mer.
        let haplotypes = if task.ref_seq.len() >= k && !cyclic {
            let mut kmers = task.ref_seq.kmers(k);
            let first = kmers.next().map(|(_, km)| km);
            let last = task.ref_seq.kmers(k).last().map(|(_, km)| km);
            match (first, last) {
                (Some(f), Some(l)) => {
                    let source = g.table.get(f).expect("ref kmer present") as usize;
                    let sink = g.table.get(l).expect("ref kmer present") as usize;
                    let max_len = task.ref_seq.len() * 2 + 64;
                    let mut haps = g.haplotypes(
                        source,
                        sink,
                        params.min_edge_weight,
                        params.max_haplotypes,
                        max_len,
                    );
                    // Reference haplotype first, then alternates.
                    haps.sort_by_key(|h| (*h != task.ref_seq, h.len()));
                    if haps.first() != Some(&task.ref_seq) {
                        haps.insert(0, task.ref_seq.clone());
                    }
                    haps
                }
                _ => vec![task.ref_seq.clone()],
            }
        } else {
            // Cyclic even at max k, or region shorter than k: fall back to
            // the reference alone (what the callers do).
            vec![task.ref_seq.clone()]
        };
        return DbgResult {
            haplotypes,
            k_used: k,
            nodes: g.kmers.len(),
            hash_lookups: total_lookups,
            cycles_hit,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_core::cigar::{Cigar, CigarOp};
    use gb_core::quality::Phred;
    use gb_core::record::{AlignmentRecord, ReadRecord, Strand};
    use gb_core::region::Region;

    fn mkread(seq: DnaSeq, pos: usize) -> AlignmentRecord {
        let mut cigar = Cigar::new();
        cigar.push(seq.len() as u32, CigarOp::Match);
        let rec = ReadRecord::with_uniform_quality("r", seq, Phred::new(30));
        AlignmentRecord::new(rec, 0, pos, cigar, 60, Strand::Forward).unwrap()
    }

    fn region(ref_seq: &DnaSeq, reads: Vec<AlignmentRecord>) -> RegionTask {
        RegionTask {
            region: Region::new(0, 0, ref_seq.len()),
            ref_seq: ref_seq.clone(),
            reads,
        }
    }

    fn random_ref(len: usize, seed: u64) -> DnaSeq {
        let mut x = seed;
        DnaSeq::from_codes_unchecked(
            (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 4) as u8
                })
                .collect(),
        )
    }

    #[test]
    fn reference_only_yields_reference_haplotype() {
        let r = random_ref(120, 3);
        let res = assemble_region(&region(&r, vec![]), &DbgParams::default());
        assert_eq!(res.haplotypes, vec![r]);
        assert_eq!(res.cycles_hit, 0);
    }

    #[test]
    fn supported_snv_creates_second_haplotype() {
        let r = random_ref(120, 5);
        // Reads carrying an SNV at position 60 with strong support.
        let mut alt = r.clone().into_codes();
        alt[60] = (alt[60] + 1) % 4;
        let alt = DnaSeq::from_codes_unchecked(alt);
        let reads: Vec<AlignmentRecord> = (0..6)
            .map(|i| mkread(alt.slice(30 + i, 95 + i), 30 + i))
            .collect();
        let res = assemble_region(&region(&r, reads), &DbgParams::default());
        assert!(
            res.haplotypes.len() >= 2,
            "haplotypes: {}",
            res.haplotypes.len()
        );
        assert_eq!(res.haplotypes[0], r);
        // One haplotype must contain the alt base in context.
        let alt_context = alt.slice(45, 76);
        let found = res
            .haplotypes
            .iter()
            .any(|h| h.to_string().contains(&alt_context.to_string()));
        assert!(found, "no haplotype carries the SNV");
    }

    #[test]
    fn unsupported_errors_are_pruned() {
        let r = random_ref(120, 7);
        // One read with a lone error: below min_edge_weight.
        let mut alt = r.clone().into_codes();
        alt[50] = (alt[50] + 2) % 4;
        let alt = DnaSeq::from_codes_unchecked(alt);
        let reads = vec![mkread(alt.slice(20, 90), 20)];
        let res = assemble_region(&region(&r, reads), &DbgParams::default());
        assert_eq!(res.haplotypes, vec![r]);
    }

    #[test]
    fn deletion_haplotype_is_shorter() {
        let r = random_ref(140, 9);
        let mut del = r.clone().into_codes();
        del.drain(60..66);
        let del = DnaSeq::from_codes_unchecked(del);
        let reads: Vec<AlignmentRecord> = (0..5)
            .map(|i| mkread(del.slice(20 + i, 110 + i), 20 + i))
            .collect();
        let res = assemble_region(&region(&r, reads), &DbgParams::default());
        assert!(
            res.haplotypes.iter().any(|h| h.len() == r.len() - 6),
            "{:?}",
            res.haplotypes.iter().map(DnaSeq::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tandem_repeat_forces_k_escalation() {
        // A repeat of period 8 puts cycles in any k < 8 graph... but our
        // min k is 15, so use period 20 > 15.
        let unit = random_ref(20, 11);
        let mut codes = Vec::new();
        for _ in 0..4 {
            codes.extend_from_slice(unit.as_codes());
        }
        codes.extend_from_slice(random_ref(40, 13).as_codes());
        let r = DnaSeq::from_codes_unchecked(codes);
        let res = assemble_region(
            &region(&r, vec![]),
            &DbgParams {
                k: 15,
                ..DbgParams::default()
            },
        );
        assert!(
            res.cycles_hit >= 1,
            "expected escalation, cycles_hit = {}",
            res.cycles_hit
        );
        assert!(res.k_used > 15);
        assert_eq!(res.haplotypes[0], r);
    }

    #[test]
    fn lookups_scale_with_read_bases() {
        let r = random_ref(200, 15);
        let few = region(&r, (0..2).map(|i| mkread(r.slice(i, 150 + i), i)).collect());
        let many = region(
            &r,
            (0..20).map(|i| mkread(r.slice(i, 150 + i), i)).collect(),
        );
        let p = DbgParams::default();
        let a = assemble_region(&few, &p);
        let b = assemble_region(&many, &p);
        assert!(b.hash_lookups > a.hash_lookups * 3);
    }

    #[test]
    fn short_region_falls_back_to_reference() {
        let r = random_ref(10, 17);
        let res = assemble_region(&region(&r, vec![]), &DbgParams::default());
        assert_eq!(res.haplotypes, vec![r]);
    }
}
