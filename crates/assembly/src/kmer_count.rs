//! K-mer counting — the **kmer-cnt** kernel.
//!
//! Flye's first assembly stage counts canonical k-mers across all reads to
//! find the solid k-mers used for repeat graph construction. The kernel is
//! a tight loop of hash-table updates over a table far larger than the
//! LLC, with no spatial locality (a 1–2 byte counter per 64-byte line)
//! and, naively, no temporal overlap — the paper measures it as the most
//! memory-bound kernel of the suite (484 BPKI, 86.6% memory-bound
//! pipeline slots) and suggests software prefetching since upcoming keys
//! are known in advance; [`count_kmers_prefetched`] implements that
//! ablation.

use crate::kmer_table::{KmerTable, Probing};
use gb_core::seq::{canonical_kmer, DnaSeq};
use gb_uarch::probe::{NullProbe, Probe};

/// Parameters for a counting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmerCountParams {
    /// K-mer length (Flye uses 15–17; must be `<= 31`).
    pub k: usize,
    /// Probing discipline of the table.
    pub probing: Probing,
    /// Count canonical k-mers (min of forward and reverse complement).
    pub canonical: bool,
}

impl Default for KmerCountParams {
    fn default() -> KmerCountParams {
        KmerCountParams {
            k: 17,
            probing: Probing::Linear,
            canonical: true,
        }
    }
}

/// Summary of a counting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KmerCountStats {
    /// Total k-mer insertions performed.
    pub kmers_processed: u64,
    /// Distinct k-mers in the table afterwards.
    pub distinct: usize,
    /// Table heap footprint in bytes.
    pub table_bytes: usize,
}

/// Counts all k-mers of `reads` into a fresh table.
///
/// # Examples
///
/// ```
/// use gb_assembly::kmer_count::{count_kmers, KmerCountParams};
/// use gb_core::seq::DnaSeq;
/// let reads: Vec<DnaSeq> = vec!["ACGTACGTAC".parse()?];
/// let p = KmerCountParams { k: 4, ..Default::default() };
/// let (table, stats) = count_kmers(&reads, &p);
/// assert_eq!(stats.kmers_processed, 7);
/// assert!(table.len() <= 7);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
///
/// # Panics
///
/// Panics if `params.k` is 0 or greater than 31.
pub fn count_kmers(reads: &[DnaSeq], params: &KmerCountParams) -> (KmerTable, KmerCountStats) {
    count_kmers_probed(reads, params, &mut NullProbe)
}

/// [`count_kmers`] with instrumentation.
// PANIC-FREE: the `k` range assert is the documented API contract;
// everything else is iterator-driven.
pub fn count_kmers_probed<P: Probe>(
    reads: &[DnaSeq],
    params: &KmerCountParams,
    probe: &mut P,
) -> (KmerTable, KmerCountStats) {
    assert!(params.k > 0 && params.k <= 31, "k must be in 1..=31");
    let total: usize = reads
        .iter()
        .map(|r| r.len().saturating_sub(params.k - 1))
        .sum();
    let mut table = KmerTable::with_capacity(total / 2 + 16, params.probing);
    let mut stats = KmerCountStats::default();
    for read in reads {
        for (_, kmer) in read.kmers(params.k) {
            let key = if params.canonical {
                canonical_kmer(kmer, params.k)
            } else {
                kmer
            };
            probe.int_ops(if params.canonical {
                2 + params.k as u64
            } else {
                2
            });
            table.insert_or_add_probed(key, 1, probe);
            stats.kmers_processed += 1;
            probe.branch(true);
        }
    }
    stats.distinct = table.len();
    stats.table_bytes = table.heap_bytes();
    (table, stats)
}

/// [`count_kmers`] with a software-prefetch window: each k-mer's home
/// slot is touched `window` iterations ahead of its update, hiding the
/// DRAM latency of the update itself (the paper's §IV-F suggestion).
///
/// On the simulated hierarchy this converts demand misses into hits; on
/// real hardware the early touch serves the same role as a prefetch
/// instruction.
pub fn count_kmers_prefetched<P: Probe>(
    reads: &[DnaSeq],
    params: &KmerCountParams,
    window: usize,
    probe: &mut P,
) -> (KmerTable, KmerCountStats) {
    assert!(params.k > 0 && params.k <= 31, "k must be in 1..=31");
    assert!(window > 0, "prefetch window must be positive");
    let total: usize = reads
        .iter()
        .map(|r| r.len().saturating_sub(params.k - 1))
        .sum();
    let mut table = KmerTable::with_capacity(total / 2 + 16, params.probing);
    let mut stats = KmerCountStats::default();
    let mut pending: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    for read in reads {
        for (_, kmer) in read.kmers(params.k) {
            let key = if params.canonical {
                canonical_kmer(kmer, params.k)
            } else {
                kmer
            };
            probe.int_ops(if params.canonical {
                2 + params.k as u64
            } else {
                2
            });
            // Prefetch: touch the home slot of the key `window` ahead.
            probe.load(table.home_slot_addr(key), 8);
            pending.push_back(key);
            if pending.len() > window {
                let due = pending.pop_front().expect("non-empty");
                table.insert_or_add_probed(due, 1, probe);
                stats.kmers_processed += 1;
            }
        }
    }
    for due in pending {
        table.insert_or_add_probed(due, 1, probe);
        stats.kmers_processed += 1;
    }
    stats.distinct = table.len();
    stats.table_bytes = table.heap_bytes();
    (table, stats)
}

/// Histogram of counts (`histogram[c]` = number of distinct k-mers seen
/// exactly `c` times, capped at `max_count`), Flye's solid-k-mer
/// selection input.
pub fn count_histogram(table: &KmerTable, max_count: usize) -> Vec<u64> {
    let mut hist = vec![0u64; max_count + 1];
    for (_, v) in table.iter() {
        hist[(v as usize).min(max_count)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn reads(seed: u64, n: usize, len: usize) -> Vec<DnaSeq> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                DnaSeq::from_codes_unchecked(
                    (0..len)
                        .map(|_| {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            ((x >> 33) % 4) as u8
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn naive_counts(rs: &[DnaSeq], k: usize, canonical: bool) -> BTreeMap<u64, u32> {
        let mut m = BTreeMap::new();
        for r in rs {
            for (_, km) in r.kmers(k) {
                let key = if canonical { canonical_kmer(km, k) } else { km };
                *m.entry(key).or_insert(0) += 1;
            }
        }
        m
    }

    #[test]
    fn counts_match_reference() {
        let rs = reads(3, 20, 200);
        for canonical in [false, true] {
            let p = KmerCountParams {
                k: 9,
                canonical,
                ..Default::default()
            };
            let (table, stats) = count_kmers(&rs, &p);
            let want = naive_counts(&rs, 9, canonical);
            assert_eq!(stats.distinct, want.len());
            let got: BTreeMap<u64, u32> = table.iter().collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn canonical_collapses_strands() {
        let fwd: DnaSeq = "ACGGTTACAGGATCC".parse().unwrap();
        let rev = fwd.reverse_complement();
        let p = KmerCountParams {
            k: 7,
            canonical: true,
            ..Default::default()
        };
        let (t1, _) = count_kmers(std::slice::from_ref(&fwd), &p);
        let (t2, _) = count_kmers(&[rev], &p);
        let a: BTreeMap<u64, u32> = t1.iter().collect();
        let b: BTreeMap<u64, u32> = t2.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn prefetched_counts_identical() {
        let rs = reads(5, 10, 300);
        let p = KmerCountParams {
            k: 13,
            ..Default::default()
        };
        let (plain, s1) = count_kmers(&rs, &p);
        let (pf, s2) = count_kmers_prefetched(&rs, &p, 16, &mut NullProbe);
        assert_eq!(s1.kmers_processed, s2.kmers_processed);
        let a: BTreeMap<u64, u32> = plain.iter().collect();
        let b: BTreeMap<u64, u32> = pf.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn prefetch_reduces_simulated_misses() {
        use gb_uarch::cache::CacheProbe;
        let rs = reads(7, 60, 400);
        let p = KmerCountParams {
            k: 17,
            ..Default::default()
        };
        let mut plain_probe = CacheProbe::skylake_like();
        let _ = count_kmers_probed(&rs, &p, &mut plain_probe);
        let mut pf_probe = CacheProbe::skylake_like();
        let _ = count_kmers_prefetched(&rs, &p, 32, &mut pf_probe);
        let plain_stats = plain_probe.cache_stats();
        let pf_stats = pf_probe.cache_stats();
        // Demand updates now hit in cache; misses moved to the prefetch
        // touches but the total cannot grow much, and the *update* path
        // (stores) sees better locality. At minimum, not worse overall.
        assert!(
            pf_stats.llc_misses <= plain_stats.llc_misses + plain_stats.llc_misses / 10,
            "prefetch made misses worse: {} vs {}",
            pf_stats.llc_misses,
            plain_stats.llc_misses
        );
    }

    #[test]
    fn histogram_sums_to_distinct() {
        let rs = reads(9, 10, 100);
        let p = KmerCountParams {
            k: 5,
            ..Default::default()
        };
        let (table, stats) = count_kmers(&rs, &p);
        let hist = count_histogram(&table, 10);
        assert_eq!(hist[0], 0);
        let sum: u64 = hist.iter().sum();
        assert_eq!(sum as usize, stats.distinct);
    }

    #[test]
    fn short_reads_contribute_nothing() {
        let p = KmerCountParams {
            k: 17,
            ..Default::default()
        };
        let (_, stats) = count_kmers(&reads(1, 5, 10), &p);
        assert_eq!(stats.kmers_processed, 0);
    }

    #[test]
    #[should_panic(expected = "1..=31")]
    fn oversized_k_panics() {
        let _ = count_kmers(
            &[],
            &KmerCountParams {
                k: 32,
                ..Default::default()
            },
        );
    }
}
