//! Open-addressing k-mer hash table.
//!
//! This is the data structure behind both assembly kernels: **kmer-cnt**
//! uses it as a counter (Flye's k-mer table) and **dbg** as a
//! k-mer-to-node map (Platypus' graph membership table). The paper
//! identifies its access pattern — one 1–2 byte counter update per
//! 64-byte cache line fetched from a multi-gigabyte table — as the
//! suite's worst memory offender (484 BPKI, 86.6% memory-bound), and
//! suggests robin-hood hashing as a mitigation; both probing disciplines
//! are implemented so the ablation bench can compare them.
//!
//! Keys must be strictly below [`EMPTY_KEY`]; packed k-mers with
//! `k <= 31` always are.

use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Sentinel marking an empty slot.
pub const EMPTY_KEY: u64 = u64::MAX;

/// Probing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Probing {
    /// Plain linear probing (what the extracted tools use).
    #[default]
    Linear,
    /// Robin-hood: displace richer entries to bound probe-sequence
    /// variance (the paper's suggested optimization).
    RobinHood,
}

/// An open-addressing hash table from packed k-mers to `u32` values.
///
/// # Examples
///
/// ```
/// use gb_assembly::kmer_table::{KmerTable, Probing};
/// let mut t = KmerTable::with_capacity(100, Probing::Linear);
/// t.insert_or_add(0xAC61, 1);
/// t.insert_or_add(0xAC61, 2);
/// assert_eq!(t.get(0xAC61), Some(3));
/// assert_eq!(t.get(0xBEEF), None);
/// ```
#[derive(Debug, Clone)]
pub struct KmerTable {
    keys: Vec<u64>,
    values: Vec<u32>,
    len: usize,
    probing: Probing,
}

impl KmerTable {
    /// Creates a table sized for at least `capacity` entries at a 0.7
    /// load factor.
    pub fn with_capacity(capacity: usize, probing: Probing) -> KmerTable {
        let slots = (capacity.max(8) * 10 / 7).next_power_of_two();
        KmerTable {
            keys: vec![EMPTY_KEY; slots],
            values: vec![0; slots],
            len: 0,
            probing,
        }
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots (table capacity).
    pub fn num_slots(&self) -> usize {
        self.keys.len()
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.keys.len() as f64
    }

    /// Heap footprint in bytes (the kernel's working set).
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * 8 + self.values.len() * 4
    }

    #[inline]
    fn hash(&self, key: u64) -> usize {
        // splitmix64 finalizer: good avalanche for packed k-mers.
        let mut x = key;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        (x ^ (x >> 31)) as usize & (self.keys.len() - 1)
    }

    #[inline]
    fn displacement(&self, key: u64, slot: usize) -> usize {
        let home = self.hash(key);
        slot.wrapping_sub(home) & (self.keys.len() - 1)
    }

    /// The slot a lookup of `key` would first touch — exposed so callers
    /// can model software prefetching (see the kmer-cnt ablation).
    #[inline]
    pub fn home_slot_addr(&self, key: u64) -> u64 {
        addr_of(&self.keys[self.hash(key)])
    }

    /// Adds `delta` to `key`'s value (inserting it at 0 first), returning
    /// the new value. Resizes at 0.7 load.
    ///
    /// # Panics
    ///
    /// Panics if `key == EMPTY_KEY`.
    pub fn insert_or_add(&mut self, key: u64, delta: u32) -> u32 {
        self.insert_or_add_probed(key, delta, &mut NullProbe)
    }

    /// [`KmerTable::insert_or_add`] with instrumentation: one load per
    /// probed slot (8-byte key), one store for the 4-byte value update —
    /// exactly the traffic pattern the paper characterizes.
    // PANIC-FREE: the sentinel assert is the documented API contract; slot
    // arithmetic is masked to the power-of-two table size.
    pub fn insert_or_add_probed<P: Probe>(&mut self, key: u64, delta: u32, probe: &mut P) -> u32 {
        assert_ne!(key, EMPTY_KEY, "key collides with the empty sentinel");
        if (self.len + 1) as f64 > 0.7 * self.keys.len() as f64 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.hash(key);
        let mut cur_key = key;
        let mut cur_val = 0u32; // value carried while displacing (robin hood)
        let mut result: Option<u32> = None;
        loop {
            probe.load(addr_of(&self.keys[slot]), 8);
            probe.int_ops(3);
            let k = self.keys[slot];
            if k == EMPTY_KEY {
                self.keys[slot] = cur_key;
                let v = if cur_key == key {
                    cur_val + delta
                } else {
                    cur_val
                };
                self.values[slot] = v;
                probe.store(addr_of(&self.values[slot]), 4);
                probe.store(addr_of(&self.keys[slot]), 8);
                self.len += 1;
                return result.unwrap_or(v);
            }
            if k == cur_key {
                debug_assert_eq!(cur_key, key, "displaced key can never match a resident key");
                self.values[slot] += delta;
                probe.store(addr_of(&self.values[slot]), 4);
                return self.values[slot];
            }
            if self.probing == Probing::RobinHood {
                let resident_disp = self.displacement(k, slot);
                let probing_disp = self.displacement(cur_key, slot);
                probe.int_ops(4);
                if probing_disp > resident_disp {
                    // Rob the rich: swap the carried entry in.
                    let v = if cur_key == key {
                        result = Some(cur_val + delta);
                        cur_val + delta
                    } else {
                        cur_val
                    };
                    std::mem::swap(&mut self.keys[slot], &mut cur_key);
                    let old_v = self.values[slot];
                    self.values[slot] = v;
                    cur_val = old_v;
                    probe.store(addr_of(&self.values[slot]), 12);
                }
            }
            slot = (slot + 1) & mask;
            probe.branch(true);
        }
    }

    /// Looks up `key`'s value.
    pub fn get(&self, key: u64) -> Option<u32> {
        self.get_probed(key, &mut NullProbe)
    }

    /// [`KmerTable::get`] with instrumentation.
    // PANIC-FREE: slot arithmetic is masked to the power-of-two table size
    // and the probe loop is bounded by `keys.len()`.
    pub fn get_probed<P: Probe>(&self, key: u64, probe: &mut P) -> Option<u32> {
        let mask = self.keys.len() - 1;
        let mut slot = self.hash(key);
        let mut dist = 0usize;
        loop {
            probe.load(addr_of(&self.keys[slot]), 8);
            probe.int_ops(2);
            let k = self.keys[slot];
            if k == key {
                probe.load(addr_of(&self.values[slot]), 4);
                return Some(self.values[slot]);
            }
            if k == EMPTY_KEY {
                return None;
            }
            if self.probing == Probing::RobinHood && self.displacement(k, slot) < dist {
                // A resident poorer than our probe distance means the key
                // cannot be further along.
                return None;
            }
            slot = (slot + 1) & mask;
            dist += 1;
            probe.branch(true);
            if dist > self.keys.len() {
                return None; // table saturated (cannot happen below 0.7 load)
            }
        }
    }

    /// Sets `key` to `value` exactly (used by the dbg node map).
    // PANIC-FREE: `insert_or_add` guarantees the key is resident, so the
    // masked probe loop terminates at it.
    pub fn set(&mut self, key: u64, value: u32) {
        // Remove-then-add semantics are unnecessary: insert_or_add with
        // delta 0 locates/creates the slot, then we overwrite.
        self.insert_or_add(key, 0);
        let mask = self.keys.len() - 1;
        let mut slot = self.hash(key);
        loop {
            if self.keys[slot] == key {
                self.values[slot] = value;
                return;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Iterates over `(key, value)` pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.values)
            .filter(|(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v))
    }

    /// Maximum probe distance across all residents (robin hood keeps this
    /// small; the ablation bench reports it).
    pub fn max_displacement(&self) -> usize {
        (0..self.keys.len())
            .filter(|&s| self.keys[s] != EMPTY_KEY)
            .map(|s| self.displacement(self.keys[s], s))
            .max()
            .unwrap_or(0)
    }

    fn grow(&mut self) {
        let entries: Vec<(u64, u32)> = self.iter().collect();
        let new_slots = self.keys.len() * 2;
        self.keys = vec![EMPTY_KEY; new_slots];
        self.values = vec![0; new_slots];
        self.len = 0;
        for (k, v) in entries {
            self.insert_or_add(k, 0);
            self.set(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(probing: Probing, n: u64) -> KmerTable {
        let mut t = KmerTable::with_capacity(16, probing);
        for i in 0..n {
            t.insert_or_add(i * 3 + 1, (i % 7) as u32 + 1);
        }
        t
    }

    #[test]
    fn counts_accumulate() {
        for probing in [Probing::Linear, Probing::RobinHood] {
            let mut t = KmerTable::with_capacity(10, probing);
            assert_eq!(t.insert_or_add(42, 1), 1);
            assert_eq!(t.insert_or_add(42, 5), 6);
            assert_eq!(t.get(42), Some(6));
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn grows_past_initial_capacity() {
        for probing in [Probing::Linear, Probing::RobinHood] {
            let t = filled(probing, 5000);
            assert_eq!(t.len(), 5000);
            assert!(t.load_factor() <= 0.7);
            for i in 0..5000u64 {
                assert_eq!(t.get(i * 3 + 1), Some((i % 7) as u32 + 1), "key {i}");
            }
            assert_eq!(t.get(2), None);
        }
    }

    #[test]
    fn matches_btreemap_reference() {
        use std::collections::BTreeMap;
        let mut x = 7u64;
        for probing in [Probing::Linear, Probing::RobinHood] {
            let mut t = KmerTable::with_capacity(8, probing);
            let mut m: BTreeMap<u64, u32> = BTreeMap::new();
            for _ in 0..20_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = (x >> 40) % 3000; // heavy collisions
                let delta = (x % 5) as u32 + 1;
                t.insert_or_add(key, delta);
                *m.entry(key).or_insert(0) += delta;
            }
            assert_eq!(t.len(), m.len());
            for (&k, &v) in &m {
                assert_eq!(t.get(k), Some(v), "{probing:?} key {k}");
            }
            let collected: BTreeMap<u64, u32> = t.iter().collect();
            assert_eq!(collected, m);
        }
    }

    #[test]
    fn robin_hood_bounds_displacement() {
        let lin = filled(Probing::Linear, 40_000);
        let rh = filled(Probing::RobinHood, 40_000);
        assert!(
            rh.max_displacement() <= lin.max_displacement(),
            "robin hood {} vs linear {}",
            rh.max_displacement(),
            lin.max_displacement()
        );
    }

    #[test]
    fn set_overwrites() {
        let mut t = KmerTable::with_capacity(10, Probing::Linear);
        t.insert_or_add(9, 4);
        t.set(9, 100);
        assert_eq!(t.get(9), Some(100));
        t.set(11, 7); // set on a fresh key inserts it
        assert_eq!(t.get(11), Some(7));
    }

    #[test]
    fn probe_sees_one_load_per_slot() {
        use gb_uarch::mix::MixProbe;
        let mut t = KmerTable::with_capacity(100, Probing::Linear);
        let mut probe = MixProbe::new();
        t.insert_or_add_probed(1234, 1, &mut probe);
        assert!(probe.mix().loads >= 1);
        assert!(probe.mix().stores >= 1);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn empty_key_rejected() {
        let mut t = KmerTable::with_capacity(8, Probing::Linear);
        t.insert_or_add(EMPTY_KEY, 1);
    }
}
