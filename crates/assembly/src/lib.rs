//! # gb-assembly
//!
//! The assembly kernels of GenomicsBench-rs:
//!
//! - [`kmer_table`] — the open-addressing hash table substrate (linear and
//!   robin-hood probing),
//! - [`dbg`] — Platypus/GATK-style De-Bruijn graph re-assembly of
//!   variant-calling regions (the **dbg** kernel),
//! - [`kmer_count`] — Flye-style canonical k-mer counting (the
//!   **kmer-cnt** kernel), with the software-prefetch ablation the paper
//!   suggests,
//! - [`unitigs`] — reference-free unitig assembly over the k-mer graph
//!   (the de-novo counterpart of the dbg kernel).
//!
//! # Examples
//!
//! ```
//! use gb_assembly::kmer_count::{count_kmers, KmerCountParams};
//! use gb_core::seq::DnaSeq;
//! let read: DnaSeq = "ACGGTTACAGGATCCAGTT".parse()?;
//! let (table, stats) = count_kmers(&[read], &KmerCountParams { k: 11, ..Default::default() });
//! assert_eq!(stats.kmers_processed, 9);
//! assert!(table.len() > 0);
//! # Ok::<(), gb_core::error::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbg;
pub mod kmer_count;
pub mod kmer_table;
pub mod unitigs;

pub use dbg::{assemble_region, DbgParams, DbgResult};
pub use kmer_count::{count_kmers, KmerCountParams, KmerCountStats};
pub use kmer_table::{KmerTable, Probing};
