//! Unitig construction: de-novo contig assembly from a k-mer De-Bruijn
//! graph.
//!
//! The dbg kernel re-assembles small regions against a reference; this
//! module provides the reference-free counterpart used by whole-genome
//! assemblers like Flye: build the De-Bruijn graph of all solid read
//! k-mers and emit *unitigs* — maximal non-branching paths — as contigs.

use crate::kmer_count::{count_kmers, KmerCountParams};
use crate::kmer_table::KmerTable;
use gb_core::seq::{canonical_kmer, revcomp_kmer, unpack_kmer, DnaSeq};

/// Parameters for unitig assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitigParams {
    /// K-mer size (`<= 31`).
    pub k: usize,
    /// Minimum count for a k-mer to be *solid* (error filtering).
    pub min_count: u32,
    /// Drop unitigs shorter than this many bases.
    pub min_len: usize,
}

impl Default for UnitigParams {
    fn default() -> UnitigParams {
        UnitigParams {
            k: 21,
            min_count: 2,
            min_len: 63,
        }
    }
}

/// Result of an assembly run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assembly {
    /// The unitigs, longest first.
    pub contigs: Vec<DnaSeq>,
    /// Solid k-mers in the graph.
    pub solid_kmers: usize,
}

impl Assembly {
    /// Total assembled bases.
    pub fn total_len(&self) -> usize {
        self.contigs.iter().map(DnaSeq::len).sum()
    }

    /// N50: the contig length at which half the assembled bases are in
    /// contigs at least that long (0 for an empty assembly).
    pub fn n50(&self) -> usize {
        let total = self.total_len();
        let mut acc = 0;
        for c in &self.contigs {
            acc += c.len();
            if acc * 2 >= total {
                return c.len();
            }
        }
        0
    }
}

/// Assembles `reads` into unitigs.
///
/// # Examples
///
/// ```
/// use gb_assembly::unitigs::{assemble_unitigs, UnitigParams};
/// use gb_core::seq::DnaSeq;
/// // Two overlapping error-free reads reassemble their union.
/// let a: DnaSeq = "ACGGTTACAGGATCCAGTTACGTACCGGTTAGGACCAGTTACGGATTACAGGAT".parse()?;
/// let reads = vec![a.slice(0, 40), a.slice(10, 55), a.slice(0, 40)];
/// let p = UnitigParams { k: 15, min_count: 1, min_len: 20 };
/// let asm = assemble_unitigs(&reads, &p);
/// let joined = &asm.contigs[0];
/// assert!(joined.len() >= 50);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
///
/// # Panics
///
/// Panics if `params.k` is 0 or greater than 31.
pub fn assemble_unitigs(reads: &[DnaSeq], params: &UnitigParams) -> Assembly {
    assert!(params.k > 0 && params.k <= 31, "k must be in 1..=31");
    let k = params.k;
    let (table, _) = count_kmers(
        reads,
        &KmerCountParams {
            k,
            canonical: true,
            ..Default::default()
        },
    );

    let solid = |km: u64| -> bool {
        table
            .get(canonical_kmer(km, k))
            .is_some_and(|c| c >= params.min_count)
    };
    let mask = if k == 31 {
        (1u64 << 62) - 1
    } else {
        (1u64 << (2 * k)) - 1
    };
    let succ = |km: u64, b: u64| ((km << 2) | b) & mask;
    let pred = |km: u64, b: u64| (km >> 2) | (b << (2 * (k - 1)));
    let out_degree = |km: u64| (0..4).filter(|&b| solid(succ(km, b))).count();
    let in_degree = |km: u64| (0..4).filter(|&b| solid(pred(km, b))).count();

    // Track visited canonical k-mers.
    let mut visited = KmerTable::with_capacity(table.len(), crate::kmer_table::Probing::Linear);
    let mut contigs: Vec<DnaSeq> = Vec::new();
    let solid_kmers = table.iter().filter(|&(_, c)| c >= params.min_count).count();

    let handle = |start: u64, visited: &mut KmerTable, contigs: &mut Vec<DnaSeq>| {
        if !solid(start) || visited.get(canonical_kmer(start, k)).is_some() {
            return;
        }
        // Walk backward while the path is non-branching.
        let mut cur = start;
        let mut steps = 0usize;
        loop {
            if in_degree(cur) != 1 {
                break;
            }
            let b = (0..4).find(|&b| solid(pred(cur, b))).expect("in-degree 1");
            let p = pred(cur, b);
            if out_degree(p) != 1 || visited.get(canonical_kmer(p, k)).is_some() || p == cur {
                break;
            }
            cur = p;
            steps += 1;
            if steps > table.len() {
                break; // cycle guard
            }
        }
        // Walk forward from the path start, emitting bases.
        let mut codes = unpack_kmer(cur, k);
        visited.insert_or_add(canonical_kmer(cur, k), 1);
        let mut node = cur;
        loop {
            if out_degree(node) != 1 {
                break;
            }
            let b = (0..4)
                .find(|&b| solid(succ(node, b)))
                .expect("out-degree 1");
            let nxt = succ(node, b);
            if in_degree(nxt) != 1 || visited.get(canonical_kmer(nxt, k)).is_some() {
                break;
            }
            visited.insert_or_add(canonical_kmer(nxt, k), 1);
            codes.push(b as u8);
            node = nxt;
        }
        if codes.len() >= params.min_len {
            contigs.push(DnaSeq::from_codes_unchecked(codes));
        }
    };

    // Seed walks from every solid k-mer (both orientations).
    for (canon, count) in table.iter().collect::<Vec<_>>() {
        if count < params.min_count {
            continue;
        }
        handle(canon, &mut visited, &mut contigs);
        handle(revcomp_kmer(canon, k), &mut visited, &mut contigs);
    }
    contigs.sort_by_key(|c| std::cmp::Reverse(c.len()));
    Assembly {
        contigs,
        solid_kmers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_seq(n: usize, seed: u64) -> DnaSeq {
        let mut x = seed;
        DnaSeq::from_codes_unchecked(
            (0..n)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 4) as u8
                })
                .collect(),
        )
    }

    fn shred(genome: &DnaSeq, read_len: usize, step: usize) -> Vec<DnaSeq> {
        let mut reads = Vec::new();
        let mut s = 0;
        while s + read_len <= genome.len() {
            reads.push(genome.slice(s, s + read_len));
            // Second copy so every k-mer is solid at min_count 2.
            reads.push(genome.slice(s, s + read_len));
            s += step;
        }
        // Tail read so the genome end is always covered.
        if genome.len() >= read_len {
            let tail = genome.slice(genome.len() - read_len, genome.len());
            reads.push(tail.clone());
            reads.push(tail);
        }
        reads
    }

    #[test]
    fn error_free_reads_reassemble_the_genome() {
        let genome = random_seq(3000, 42);
        let reads = shred(&genome, 200, 50);
        let asm = assemble_unitigs(&reads, &UnitigParams::default());
        // A random (repeat-free at k=21) genome reassembles into one
        // contig containing the full genome (up to strand).
        assert_eq!(asm.contigs.len(), 1, "contigs: {:?}", asm.contigs.len());
        let c = &asm.contigs[0];
        let ok = c == &genome || c.reverse_complement() == genome;
        assert!(ok, "contig length {} vs genome {}", c.len(), genome.len());
        assert_eq!(asm.n50(), genome.len());
    }

    #[test]
    fn sequencing_errors_are_filtered_by_solidity() {
        let genome = random_seq(2000, 7);
        let mut reads = shred(&genome, 150, 40);
        // Add singleton error reads: their k-mers stay below min_count.
        for i in 0..20 {
            let mut codes = genome.slice(i * 37, i * 37 + 100).into_codes();
            codes[50] = (codes[50] + 1) % 4;
            reads.push(DnaSeq::from_codes_unchecked(codes));
        }
        let asm = assemble_unitigs(&reads, &UnitigParams::default());
        assert_eq!(asm.contigs.len(), 1);
        let c = &asm.contigs[0];
        assert!(c == &genome || c.reverse_complement() == genome);
    }

    #[test]
    fn repeat_breaks_the_assembly() {
        // genome = A . R . B . R . C with repeat R longer than k: the
        // graph branches at R's ends, yielding multiple unitigs.
        let a = random_seq(400, 1);
        let r = random_seq(60, 2);
        let b = random_seq(400, 3);
        let c = random_seq(400, 4);
        let mut codes = Vec::new();
        for part in [&a, &r, &b, &r, &c] {
            codes.extend_from_slice(part.as_codes());
        }
        let genome = DnaSeq::from_codes_unchecked(codes);
        let reads = shred(&genome, 150, 30);
        let asm = assemble_unitigs(&reads, &UnitigParams::default());
        assert!(
            asm.contigs.len() >= 3,
            "repeat should fragment: {}",
            asm.contigs.len()
        );
        assert!(asm.n50() < genome.len());
        // But total assembled sequence still covers most of the genome.
        assert!(asm.total_len() > genome.len() / 2);
    }

    #[test]
    fn coverage_gap_splits_contigs() {
        let genome = random_seq(2000, 9);
        let mut reads = shred(&genome.slice(0, 900), 150, 40);
        reads.extend(shred(&genome.slice(1100, 2000), 150, 40));
        let asm = assemble_unitigs(&reads, &UnitigParams::default());
        assert_eq!(asm.contigs.len(), 2);
    }

    #[test]
    fn empty_input_is_empty_assembly() {
        let asm = assemble_unitigs(&[], &UnitigParams::default());
        assert!(asm.contigs.is_empty());
        assert_eq!(asm.n50(), 0);
        assert_eq!(asm.solid_kmers, 0);
    }
}
