//! Property-based tests for the assembly substrates.

use gb_assembly::kmer_count::{count_kmers, count_kmers_prefetched, KmerCountParams};
use gb_assembly::kmer_table::{KmerTable, Probing};
use gb_core::seq::DnaSeq;
use gb_uarch::probe::NullProbe;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn table_matches_btreemap(
        ops in proptest::collection::vec((0u64..500, 1u32..5), 1..800),
        rh in proptest::bool::ANY,
    ) {
        let probing = if rh { Probing::RobinHood } else { Probing::Linear };
        let mut t = KmerTable::with_capacity(4, probing);
        let mut m: BTreeMap<u64, u32> = BTreeMap::new();
        for (k, d) in ops {
            let got = t.insert_or_add(k, d);
            let e = m.entry(k).or_insert(0);
            *e += d;
            prop_assert_eq!(got, *e);
        }
        prop_assert_eq!(t.len(), m.len());
        let collected: BTreeMap<u64, u32> = t.iter().collect();
        prop_assert_eq!(collected, m);
    }

    #[test]
    fn robin_hood_invariant_holds(keys in proptest::collection::vec(0u64..100_000, 1..500)) {
        // After robin-hood insertion, scanning from any occupied slot,
        // displacement can only grow along a probe cluster.
        let mut t = KmerTable::with_capacity(8, Probing::RobinHood);
        for k in &keys {
            t.insert_or_add(*k, 1);
        }
        // Every key must still be findable.
        for k in &keys {
            prop_assert!(t.get(*k).is_some());
        }
        prop_assert!(t.load_factor() <= 0.7 + 1e-9);
    }

    #[test]
    fn counting_both_probings_agree(reads_codes in proptest::collection::vec(
        proptest::collection::vec(0u8..4, 20..120), 1..8), k in 3usize..9)
    {
        let reads: Vec<DnaSeq> =
            reads_codes.into_iter().map(DnaSeq::from_codes_unchecked).collect();
        let lin = count_kmers(&reads, &KmerCountParams { k, probing: Probing::Linear, canonical: true });
        let rh = count_kmers(&reads, &KmerCountParams { k, probing: Probing::RobinHood, canonical: true });
        let a: BTreeMap<u64, u32> = lin.0.iter().collect();
        let b: BTreeMap<u64, u32> = rh.0.iter().collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(lin.1.kmers_processed, rh.1.kmers_processed);
    }

    #[test]
    fn prefetched_counting_is_equivalent(reads_codes in proptest::collection::vec(
        proptest::collection::vec(0u8..4, 20..120), 1..6), window in 1usize..40)
    {
        let reads: Vec<DnaSeq> =
            reads_codes.into_iter().map(DnaSeq::from_codes_unchecked).collect();
        let p = KmerCountParams { k: 7, ..Default::default() };
        let plain = count_kmers(&reads, &p);
        let pf = count_kmers_prefetched(&reads, &p, window, &mut NullProbe);
        let a: BTreeMap<u64, u32> = plain.0.iter().collect();
        let b: BTreeMap<u64, u32> = pf.0.iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn total_counts_equal_kmers_processed(reads_codes in proptest::collection::vec(
        proptest::collection::vec(0u8..4, 10..100), 1..6))
    {
        let reads: Vec<DnaSeq> =
            reads_codes.into_iter().map(DnaSeq::from_codes_unchecked).collect();
        let p = KmerCountParams { k: 5, ..Default::default() };
        let (table, stats) = count_kmers(&reads, &p);
        let total: u64 = table.iter().map(|(_, v)| u64::from(v)).sum();
        prop_assert_eq!(total, stats.kmers_processed);
    }
}

mod dbg_props {
    use super::*;
    use gb_assembly::dbg::{assemble_region, DbgParams};
    use gb_core::region::{Region, RegionTask};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn reference_haplotype_always_first(ref_codes in proptest::collection::vec(0u8..4, 40..200)) {
            let ref_seq = DnaSeq::from_codes_unchecked(ref_codes);
            let task = RegionTask {
                region: Region::new(0, 0, ref_seq.len()),
                ref_seq: ref_seq.clone(),
                reads: vec![],
            };
            let r = assemble_region(&task, &DbgParams::default());
            prop_assert_eq!(&r.haplotypes[0], &ref_seq);
            // Haplotypes never exceed the configured cap plus reference.
            prop_assert!(r.haplotypes.len() <= DbgParams::default().max_haplotypes + 1);
        }
    }
}
