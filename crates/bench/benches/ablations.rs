//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - `ablation_fmi_occ`: checkpointed-Occ FM-index search vs a naive
//!   text scan (why the index exists at all),
//! - `ablation_fmi_stride`: Occ checkpoint stride sweep (space/time),
//! - `ablation_kmercnt_hash`: linear probing vs robin-hood,
//! - `ablation_kmercnt_prefetch`: software-prefetch window (paper §IV-F),
//! - `ablation_bsw_sorting`: length-sorted vs unsorted SIMD batches,
//! - `ablation_bsw_band`: banded vs full Smith-Waterman,
//! - `ablation_abea_band`: adaptive band vs full event-alignment matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_assembly::kmer_count::{count_kmers, count_kmers_prefetched, KmerCountParams};
use gb_assembly::kmer_table::Probing;
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ReadSimConfig};
use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
use gb_dp::abea::{align_events, align_events_full, AbeaParams};
use gb_dp::bsw::{banded_sw, SwParams};
use gb_fmi::FmIndex;
use gb_uarch::probe::NullProbe;

fn genome(len: usize) -> Genome {
    Genome::generate(
        &GenomeConfig {
            length: len,
            ..Default::default()
        },
        99,
    )
}

fn ablation_fmi_occ(c: &mut Criterion) {
    let g = genome(200_000);
    let text = g.concat();
    let idx = FmIndex::build(&text);
    let reads: Vec<DnaSeq> = simulate_reads(&g, &ReadSimConfig::short(50), 7)
        .into_iter()
        .map(|r| r.record.seq.slice(0, 25))
        .collect();
    let mut group = c.benchmark_group("ablation_fmi_occ");
    group.sample_size(10);
    group.bench_function("fm_index_search", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for r in &reads {
                hits += u64::from(idx.search(r).len());
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("naive_text_scan", |b| {
        b.iter(|| {
            let t = text.as_codes();
            let mut hits = 0u64;
            for r in &reads {
                let p = r.as_codes();
                hits += (0..=t.len() - p.len())
                    .filter(|&i| &t[i..i + p.len()] == p)
                    .count() as u64;
            }
            std::hint::black_box(hits)
        })
    });
    group.finish();
}

fn ablation_fmi_stride(c: &mut Criterion) {
    use gb_fmi::index::FmConfig;
    let g = genome(500_000);
    let text = g.concat();
    let reads: Vec<DnaSeq> = simulate_reads(&g, &ReadSimConfig::short(100), 29)
        .into_iter()
        .map(|r| r.record.seq.slice(0, 30))
        .collect();
    let mut group = c.benchmark_group("ablation_fmi_stride");
    group.sample_size(10);
    for occ_stride in [32usize, 64, 128, 256] {
        let idx = gb_fmi::FmIndex::build_with(
            &text,
            &FmConfig {
                occ_stride,
                sa_stride: 32,
            },
        );
        eprintln!("occ_stride {occ_stride}: index {} bytes", idx.heap_bytes());
        group.bench_function(format!("occ_stride_{occ_stride}"), |b| {
            b.iter(|| {
                let mut hits = 0u64;
                for r in &reads {
                    hits += u64::from(idx.search(r).len());
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

fn ablation_kmercnt(c: &mut Criterion) {
    let g = genome(100_000);
    let reads: Vec<DnaSeq> = simulate_reads(&g, &ReadSimConfig::long(120), 11)
        .into_iter()
        .map(|r| r.record.seq)
        .collect();
    let mut group = c.benchmark_group("ablation_kmercnt");
    group.sample_size(10);
    for (label, probing) in [
        ("linear", Probing::Linear),
        ("robin_hood", Probing::RobinHood),
    ] {
        let params = KmerCountParams {
            probing,
            ..Default::default()
        };
        group.bench_function(format!("hash_{label}"), |b| {
            b.iter(|| std::hint::black_box(count_kmers(&reads, &params).1.distinct))
        });
    }
    for window in [8usize, 32] {
        let params = KmerCountParams::default();
        group.bench_function(format!("prefetch_w{window}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    count_kmers_prefetched(&reads, &params, window, &mut NullProbe)
                        .1
                        .distinct,
                )
            })
        });
    }
    group.finish();
}

fn ablation_bsw(c: &mut Criterion) {
    let g = genome(50_000);
    let contig = g.contig(0);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..60)
        .map(|i| {
            let start = (i * 700) % (contig.len() - 500);
            let t = contig.slice(start, start + 300);
            (t.clone(), t)
        })
        .collect();
    let mut group = c.benchmark_group("ablation_bsw");
    group.sample_size(10);
    for (label, band) in [("banded_100", Some(100usize)), ("full_matrix", None)] {
        let params = SwParams {
            band,
            zdrop: None,
            ..SwParams::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for (q, t) in &pairs {
                    acc += i64::from(banded_sw(q, t, &params).score);
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

fn ablation_abea(c: &mut Criterion) {
    let g = genome(20_000);
    let seq = g.contig(0).slice(0, 600);
    let model = PoreModel::r9_like();
    let sig = simulate_signal(&seq, &model, &SignalSimConfig::default(), 13);
    let mut group = c.benchmark_group("ablation_abea");
    group.sample_size(10);
    group.bench_function("adaptive_band", |b| {
        b.iter(|| {
            std::hint::black_box(
                align_events(&sig.events, &seq, &model, &AbeaParams::default()).map(|r| r.cells),
            )
        })
    });
    group.bench_function("full_matrix", |b| {
        b.iter(|| {
            std::hint::black_box(
                align_events_full(&sig.events, &seq, &model, &AbeaParams::default())
                    .map(|r| r.cells),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_fmi_occ,
    ablation_fmi_stride,
    ablation_kmercnt,
    ablation_bsw,
    ablation_abea
);
criterion_main!(benches);
