//! DP-engine shootout: scalar vs SIMD execution for the DP-motif
//! kernels — `bsw`, `phmm`, `spoa` and `abea`.
//!
//! Times the three bsw execution modes (per-pair scalar i32, i16 SoA
//! SIMD unsorted, i16 SoA SIMD length-sorted), the two phmm engines
//! (row-wise f32/f64, anti-diagonal wavefront f32), the two spoa engines
//! (inline-predecessor scalar i32, i16 row-sweep) and the two abea
//! engines (cell-at-a-time scalar, contiguous-band f32) on identical
//! small-tier-shaped batches. The engines are bit-identical (see
//! `crates/dp/tests/dp_engines_diff.rs` and
//! `crates/poa/tests/poa_engines_diff.rs`), so any wall-clock difference
//! is pure execution efficiency.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_core::quality::Phred;
use gb_core::record::ReadRecord;
use gb_core::seq::DnaSeq;
use gb_datagen::signal::{simulate_signal, Event, PoreModel, SignalSimConfig};
use gb_dp::abea::{align_events_engine, AbeaParams};
use gb_dp::bsw::{banded_sw, SwParams, SwTask};
use gb_dp::bsw_simd::run_simd;
use gb_dp::phmm::{forward_likelihood, HmmParams};
use gb_dp::phmm_wavefront::wavefront_likelihood;
use gb_dp::DpEngine;
use gb_poa::align::PoaParams;
use gb_poa::consensus::window_consensus_engine;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}

/// Small-tier-shaped bsw batch: 85% noisy copies, lengths 60..=400.
fn bsw_tasks(n: usize, seed: u64) -> Vec<SwTask> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let qlen = 60 + (rng.next() % 341) as usize;
            let q: Vec<u8> = (0..qlen).map(|_| ((rng.next() >> 33) % 4) as u8).collect();
            let t: Vec<u8> = if rng.next() % 100 < 85 {
                q.iter()
                    .map(|&c| if rng.next() % 100 < 3 { (c + 1) % 4 } else { c })
                    .collect()
            } else {
                let tlen = 60 + (rng.next() % 341) as usize;
                (0..tlen).map(|_| ((rng.next() >> 33) % 4) as u8).collect()
            };
            SwTask {
                query: DnaSeq::from_codes_unchecked(q),
                target: DnaSeq::from_codes_unchecked(t),
            }
        })
        .collect()
}

/// Read/haplotype pairs shaped like the phmm kernel's region tasks.
fn phmm_pairs(n: usize, seed: u64) -> Vec<(ReadRecord, DnaSeq)> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            let hlen = 200 + (rng.next() % 200) as usize;
            let h: Vec<u8> = (0..hlen).map(|_| ((rng.next() >> 33) % 4) as u8).collect();
            let hap = DnaSeq::from_codes_unchecked(h);
            let rlen = 80 + (rng.next() % 70) as usize;
            let start = (rng.next() as usize) % (hlen - rlen);
            let read_codes: Vec<u8> = hap.as_codes()[start..start + rlen]
                .iter()
                .map(|&c| if rng.next() % 100 < 2 { (c + 1) % 4 } else { c })
                .collect();
            let read = ReadRecord::with_uniform_quality(
                format!("r{i}"),
                DnaSeq::from_codes_unchecked(read_codes),
                Phred::new(30),
            );
            (read, hap)
        })
        .collect()
}

/// Racon-window-shaped spoa inputs: a backbone plus noisy copies.
fn spoa_windows(n: usize, depth: usize, seed: u64) -> Vec<Vec<DnaSeq>> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let len = 150 + (rng.next() % 100) as usize;
            let backbone: Vec<u8> = (0..len).map(|_| ((rng.next() >> 33) % 4) as u8).collect();
            let mut reads = vec![DnaSeq::from_codes_unchecked(backbone.clone())];
            for _ in 0..depth {
                let read: Vec<u8> = backbone
                    .iter()
                    .map(|&c| if rng.next() % 100 < 6 { (c + 1) % 4 } else { c })
                    .collect();
                reads.push(DnaSeq::from_codes_unchecked(read));
            }
            reads
        })
        .collect()
}

/// Event streams + references shaped like the abea kernel's reads.
fn abea_reads(n: usize, seed: u64) -> Vec<(Vec<Event>, DnaSeq)> {
    let mut rng = Lcg(seed);
    let model = PoreModel::r9_like();
    let cfg = SignalSimConfig::default();
    (0..n)
        .map(|_| {
            let len = 300 + (rng.next() % 300) as usize;
            let r: Vec<u8> = (0..len).map(|_| ((rng.next() >> 33) % 4) as u8).collect();
            let reference = DnaSeq::from_codes_unchecked(r);
            let events = simulate_signal(&reference, &model, &cfg, rng.next()).events;
            (events, reference)
        })
        .collect()
}

fn bench_dp_engines(c: &mut Criterion) {
    let sw_params = SwParams::default();
    let tasks = bsw_tasks(256, 0xB5D);
    let pairs = phmm_pairs(48, 0xF17);

    let mut group = c.benchmark_group("dp_engines_bsw");
    group.sample_size(10);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in &tasks {
                let r = banded_sw(&t.query, &t.target, &sw_params);
                acc = acc.wrapping_add(r.score as u64).wrapping_add(r.cells);
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("simd_unsorted", |b| {
        b.iter(|| {
            let (rs, _) = run_simd(&tasks, &sw_params, false);
            std::hint::black_box(rs.len())
        })
    });
    group.bench_function("simd_sorted", |b| {
        b.iter(|| {
            let (rs, _) = run_simd(&tasks, &sw_params, true);
            std::hint::black_box(rs.len())
        })
    });
    group.finish();

    let hmm_params = HmmParams::default();
    let mut group = c.benchmark_group("dp_engines_phmm");
    group.sample_size(10);
    group.bench_function("rowwise", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (read, hap) in &pairs {
                acc += forward_likelihood(read, hap, &hmm_params).log10_likelihood;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("wavefront", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (read, hap) in &pairs {
                acc += wavefront_likelihood(read, hap, &hmm_params).log10_likelihood;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();

    let poa_params = PoaParams::default();
    let windows = spoa_windows(12, 10, 0x50A);
    let mut group = c.benchmark_group("dp_engines_spoa");
    group.sample_size(10);
    for (name, engine) in [("scalar", DpEngine::Scalar), ("simd", DpEngine::Simd)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for w in &windows {
                    let (cons, stats, _) = window_consensus_engine(w, &poa_params, engine);
                    acc = acc
                        .wrapping_add(stats.cells)
                        .wrapping_add(cons.len() as u64);
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();

    let abea_params = AbeaParams::default();
    let abea_model = PoreModel::r9_like();
    let reads = abea_reads(24, 0xABEA);
    let mut group = c.benchmark_group("dp_engines_abea");
    group.sample_size(10);
    for (name, engine) in [("scalar", DpEngine::Scalar), ("simd", DpEngine::Simd)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (events, reference) in &reads {
                    if let Some(r) =
                        align_events_engine(events, reference, &abea_model, &abea_params, engine)
                    {
                        acc = acc.wrapping_add(r.cells).wrapping_add(r.moves_right);
                    }
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_engines);
criterion_main!(benches);
