//! DP-engine shootout: scalar vs SIMD execution for `bsw` and `phmm`.
//!
//! Times the three bsw execution modes (per-pair scalar i32, i16 SoA
//! SIMD unsorted, i16 SoA SIMD length-sorted) and the two phmm engines
//! (row-wise f32/f64, anti-diagonal wavefront f32) on identical
//! small-tier-shaped batches, and prints cells/s throughput once at
//! start-up. The engines are bit-identical (see
//! `crates/dp/tests/dp_engines_diff.rs`), so any wall-clock difference is
//! pure execution efficiency.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_core::quality::Phred;
use gb_core::record::ReadRecord;
use gb_core::seq::DnaSeq;
use gb_dp::bsw::{banded_sw, SwParams, SwTask};
use gb_dp::bsw_simd::run_simd;
use gb_dp::phmm::{forward_likelihood, HmmParams};
use gb_dp::phmm_wavefront::wavefront_likelihood;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}

/// Small-tier-shaped bsw batch: 85% noisy copies, lengths 60..=400.
fn bsw_tasks(n: usize, seed: u64) -> Vec<SwTask> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let qlen = 60 + (rng.next() % 341) as usize;
            let q: Vec<u8> = (0..qlen).map(|_| ((rng.next() >> 33) % 4) as u8).collect();
            let t: Vec<u8> = if rng.next() % 100 < 85 {
                q.iter()
                    .map(|&c| if rng.next() % 100 < 3 { (c + 1) % 4 } else { c })
                    .collect()
            } else {
                let tlen = 60 + (rng.next() % 341) as usize;
                (0..tlen).map(|_| ((rng.next() >> 33) % 4) as u8).collect()
            };
            SwTask {
                query: DnaSeq::from_codes_unchecked(q),
                target: DnaSeq::from_codes_unchecked(t),
            }
        })
        .collect()
}

/// Read/haplotype pairs shaped like the phmm kernel's region tasks.
fn phmm_pairs(n: usize, seed: u64) -> Vec<(ReadRecord, DnaSeq)> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            let hlen = 200 + (rng.next() % 200) as usize;
            let h: Vec<u8> = (0..hlen).map(|_| ((rng.next() >> 33) % 4) as u8).collect();
            let hap = DnaSeq::from_codes_unchecked(h);
            let rlen = 80 + (rng.next() % 70) as usize;
            let start = (rng.next() as usize) % (hlen - rlen);
            let read_codes: Vec<u8> = hap.as_codes()[start..start + rlen]
                .iter()
                .map(|&c| if rng.next() % 100 < 2 { (c + 1) % 4 } else { c })
                .collect();
            let read = ReadRecord::with_uniform_quality(
                format!("r{i}"),
                DnaSeq::from_codes_unchecked(read_codes),
                Phred::new(30),
            );
            (read, hap)
        })
        .collect()
}

fn bench_dp_engines(c: &mut Criterion) {
    let sw_params = SwParams::default();
    let tasks = bsw_tasks(256, 0xB5D);
    let pairs = phmm_pairs(48, 0xF17);

    let mut group = c.benchmark_group("dp_engines_bsw");
    group.sample_size(10);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in &tasks {
                let r = banded_sw(&t.query, &t.target, &sw_params);
                acc = acc.wrapping_add(r.score as u64).wrapping_add(r.cells);
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("simd_unsorted", |b| {
        b.iter(|| {
            let (rs, _) = run_simd(&tasks, &sw_params, false);
            std::hint::black_box(rs.len())
        })
    });
    group.bench_function("simd_sorted", |b| {
        b.iter(|| {
            let (rs, _) = run_simd(&tasks, &sw_params, true);
            std::hint::black_box(rs.len())
        })
    });
    group.finish();

    let hmm_params = HmmParams::default();
    let mut group = c.benchmark_group("dp_engines_phmm");
    group.sample_size(10);
    group.bench_function("rowwise", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (read, hap) in &pairs {
                acc += forward_likelihood(read, hap, &hmm_params).log10_likelihood;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("wavefront", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (read, hap) in &pairs {
                acc += wavefront_likelihood(read, hap, &hmm_params).log10_likelihood;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dp_engines);
criterion_main!(benches);
