//! Fig. 3 harness: scalar vs inter-sequence-batched bsw execution.
//!
//! The paper reports the AVX2 16-lane inter-sequence bsw performing 2.2x
//! more cell updates than scalar; this bench times scalar execution vs
//! the lockstep batch model (sorted and unsorted) and prints the measured
//! over-compute factors once at start-up.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::bsw_batch_reports;

fn bench_fig3(c: &mut Criterion) {
    for (label, report) in bsw_batch_reports(DatasetSize::Tiny) {
        eprintln!(
            "fig3 {label}: scalar={} vector={} overcompute={:.2}x",
            report.scalar_cells,
            report.vector_cells,
            report.overcompute()
        );
    }
    let mut group = c.benchmark_group("fig3_bsw_batch");
    group.sample_size(10);
    group.bench_function("batch_16_unsorted", |b| {
        b.iter(|| {
            let r = bsw_batch_reports(DatasetSize::Tiny);
            std::hint::black_box(r[0].1.vector_cells)
        })
    });
    group.bench_function("batch_16_sorted", |b| {
        b.iter(|| {
            let r = bsw_batch_reports(DatasetSize::Tiny);
            std::hint::black_box(r[1].1.vector_cells)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
