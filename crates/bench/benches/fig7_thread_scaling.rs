//! Fig. 7 harness: dynamic-scheduled execution at 1/2/4/8 threads.
//!
//! On a multi-core host the timings show true scaling; on the single-core
//! reference environment the `genomicsbench report fig7` simulation is
//! authoritative (see `DESIGN.md`). Either way this bench verifies that
//! multithreaded execution is result-identical and measures its overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{prepare, run_parallel, KernelId};

fn bench_fig7(c: &mut Criterion) {
    let kernels = [
        KernelId::Bsw,
        KernelId::Chain,
        KernelId::KmerCnt,
        KernelId::Pileup,
    ];
    for id in kernels {
        let kernel = prepare(id, DatasetSize::Tiny);
        let serial = run_parallel(kernel.as_ref(), 1).checksum;
        let mut group = c.benchmark_group(format!("fig7_{}", id.name()));
        group.sample_size(10);
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
                b.iter(|| {
                    let r = run_parallel(kernel.as_ref(), t);
                    assert_eq!(r.checksum, serial);
                    std::hint::black_box(r.checksum)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
