//! Timed execution of every suite kernel (the raw numbers behind the
//! paper's characterization figures). One Criterion group per kernel,
//! tiny dataset so the full sweep stays fast; use the `genomicsbench`
//! CLI for small/large tiers.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{prepare, run_serial, KernelId};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_tiny");
    group.sample_size(10);
    for id in KernelId::ALL {
        let kernel = prepare(id, DatasetSize::Tiny);
        group.bench_function(id.name(), |b| {
            b.iter(|| std::hint::black_box(run_serial(kernel.as_ref()).checksum))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
