//! Manifest persistence and regression-gate costs: serializing a
//! full-suite `RunManifest`, the atomic write+load round trip, and a
//! `compare` over two 12-kernel manifests. These run on every CI
//! invocation that gates a PR, so they must stay far below the noise
//! floor of the kernels they guard (micro- not milliseconds).

use criterion::{criterion_group, criterion_main, Criterion};
use gb_obs::compare::{compare, CompareConfig};
use gb_obs::manifest::{KernelRecord, RunManifest};
use gb_obs::HistogramSummary;
use gb_suite::kernels::KernelId;

/// A fully-populated manifest shaped like a real 12-kernel suite run.
fn full_manifest(scale: u64) -> RunManifest {
    let mut m = RunManifest::new("run", "tiny", 2);
    for (i, id) in KernelId::ALL.iter().enumerate() {
        let wall_ns = (i as u64 + 1) * 7_000_000 * scale / 100;
        m.add_kernel(
            id.name(),
            KernelRecord {
                wall_ns,
                tasks: 100 + i as u64,
                checksum: 0xABCD ^ i as u64,
                work_unit: id.work_unit().to_string(),
                work_total: 1_000_000 * (i as u64 + 1),
                throughput_per_s: 1e9 * (i as f64 + 1.0) / wall_ns.max(1) as f64,
                latency: Some(HistogramSummary {
                    count: 100,
                    mean: wall_ns as f64 / 100.0,
                    p50: wall_ns / 120,
                    p90: wall_ns / 80,
                    p99: wall_ns / 60,
                    max: wall_ns / 50,
                }),
                utilization: Some(0.9),
                memory: None,
                stages: None,
                prepare_wall_ns: None,
                cache_hit: None,
            },
        );
    }
    m
}

fn bench_manifest_gate(c: &mut Criterion) {
    let base = full_manifest(100);
    let cand = full_manifest(105); // uniform 5% drift, inside tolerance

    let mut group = c.benchmark_group("manifest_gate");
    group.bench_function("to_json_string", |b| {
        b.iter(|| std::hint::black_box(base.to_json_string().len()))
    });
    group.bench_function("save_load_round_trip", |b| {
        let path =
            std::env::temp_dir().join(format!("gb_bench_manifest_{}.json", std::process::id()));
        b.iter(|| {
            base.save(&path).unwrap();
            std::hint::black_box(RunManifest::load(&path).unwrap().kernels.len())
        });
        let _ = std::fs::remove_file(&path);
    });
    group.bench_function("compare_12_kernels", |b| {
        let cfg = CompareConfig::default();
        b.iter(|| std::hint::black_box(compare(&base, &cand, &cfg).deltas.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_manifest_gate);
criterion_main!(benches);
