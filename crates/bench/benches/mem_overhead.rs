//! Cost of thread-local allocation tracking. Built without
//! `mem-profile` this measures the baseline (no allocator hook, spans
//! compile to zeros); with `--features mem-profile` the tracking
//! allocator is registered and the same workloads pay the real
//! per-allocation cost — a thread-local read plus three relaxed atomic
//! updates on the owning core's cache line. Comparing the two runs
//! bounds the feature's overhead; the old global-counter design also
//! paid cross-core cache-line contention under threads, which the slot
//! registry removes.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_obs::{mem, NullRecorder};
use gb_suite::pool::run_dynamic_instrumented;

#[cfg(feature = "mem-profile")]
#[global_allocator]
static ALLOC: mem::TrackingAllocator = mem::TrackingAllocator;

/// An allocation-bound task: the work is dominated by the Vec round
/// trip, so tracking overhead shows directly.
fn alloc_task(i: usize) -> u64 {
    let buf = std::hint::black_box(vec![i as u8; 16 << 10]);
    buf[buf.len() / 2] as u64
}

fn bench_mem_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!(
        "mem_overhead_{}",
        if mem::enabled() {
            "tracked"
        } else {
            "baseline"
        }
    ));
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("pool_alloc_tasks_{threads}t"), |b| {
            b.iter(|| {
                let (sum, _, stats) =
                    run_dynamic_instrumented(256, threads, alloc_task, &NullRecorder, "mem");
                std::hint::black_box((sum, stats.memory));
            })
        });
    }
    group.bench_function("task_span_enter_exit", |b| {
        b.iter(|| {
            let span = mem::TaskSpan::enter();
            std::hint::black_box(span.exit())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mem_overhead);
criterion_main!(benches);
