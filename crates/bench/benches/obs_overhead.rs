//! Instrumentation overhead: the same kernels through the plain pool,
//! the instrumented pool with the zero-cost `NullRecorder`, and the
//! buffering `TraceRecorder`. The first two must be indistinguishable —
//! the `Recorder` trait's inlined no-op defaults and the `enabled()`
//! gate are what the suite's always-on instrumentation hinges on.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_obs::{NullRecorder, TraceRecorder};
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{prepare, run_parallel, run_parallel_instrumented, KernelId};

/// Interning guard: stage-name interning lives entirely inside
/// `TraceRecorder`, so the disabled path must stay structurally free of
/// it. These assertions run before the timing groups and fail `cargo
/// bench` loudly if the zero-cost discipline breaks.
fn assert_interning_stays_out_of_the_null_path() {
    use gb_obs::Recorder;
    // NullRecorder is a ZST with a const-false gate: nothing to intern,
    // nothing to lock.
    assert_eq!(std::mem::size_of::<NullRecorder>(), 0);
    assert!(!NullRecorder.enabled());

    // TraceRecorder interns: thousands of spans carrying a handful of
    // distinct labels allocate a handful of strings, not thousands.
    let recorder = TraceRecorder::new();
    for i in 0..10_000u64 {
        recorder.span("task_a", "task", 0, i, 1);
        recorder.span("task_b", "task", 1, i, 1);
    }
    assert_eq!(
        recorder.interned_labels(),
        3,
        "expected exactly task_a, task_b, task"
    );
    assert_eq!(recorder.trace().len(), 20_000);

    // Timing: with interning in place the NullRecorder run must stay
    // within noise of the plain pool. The bound is deliberately loose
    // (1.5x + 2ms slack) — the fine-grained signal is the criterion
    // groups below; this assert only catches gross regressions, e.g. a
    // lock or allocation leaking onto the disabled path.
    let kernel = prepare(KernelId::Chain, DatasetSize::Tiny);
    let median = |f: &mut dyn FnMut()| -> u128 {
        let mut samples: Vec<u128> = (0..9)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    };
    let plain = median(&mut || {
        std::hint::black_box(run_parallel(kernel.as_ref(), 1).checksum);
    });
    let null = median(&mut || {
        std::hint::black_box(run_parallel_instrumented(kernel.as_ref(), 1, &NullRecorder).checksum);
    });
    assert!(
        null as f64 <= plain as f64 * 1.5 + 2e6,
        "NullRecorder run regressed vs plain pool: {null}ns vs {plain}ns"
    );
}

fn bench_obs_overhead(c: &mut Criterion) {
    assert_interning_stays_out_of_the_null_path();
    // chain and fmi have the smallest tasks in the suite, so per-task
    // instrumentation overhead is most visible on them.
    for id in [KernelId::Chain, KernelId::Fmi] {
        let kernel = prepare(id, DatasetSize::Tiny);
        let mut group = c.benchmark_group(format!("obs_overhead_{}", id.name()));
        group.sample_size(10);
        group.bench_function("plain", |b| {
            b.iter(|| std::hint::black_box(run_parallel(kernel.as_ref(), 1).checksum))
        });
        group.bench_function("null_recorder", |b| {
            b.iter(|| {
                std::hint::black_box(
                    run_parallel_instrumented(kernel.as_ref(), 1, &NullRecorder).checksum,
                )
            })
        });
        group.bench_function("trace_recorder", |b| {
            b.iter(|| {
                let recorder = TraceRecorder::new();
                std::hint::black_box(
                    run_parallel_instrumented(kernel.as_ref(), 1, &recorder).checksum,
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
