//! Instrumentation overhead: the same kernels through the plain pool,
//! the instrumented pool with the zero-cost `NullRecorder`, and the
//! buffering `TraceRecorder`. The first two must be indistinguishable —
//! the `Recorder` trait's inlined no-op defaults and the `enabled()`
//! gate are what the suite's always-on instrumentation hinges on.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_obs::{
    differential_svg, flamegraph_svg, NullRecorder, RenderConfig, StageTree, TraceRecorder,
    TreeDiff,
};
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{prepare, run_parallel, run_parallel_instrumented, KernelId};

/// Interning guard: stage-name interning lives entirely inside
/// `TraceRecorder`, so the disabled path must stay structurally free of
/// it. These assertions run before the timing groups and fail `cargo
/// bench` loudly if the zero-cost discipline breaks.
fn assert_interning_stays_out_of_the_null_path() {
    use gb_obs::Recorder;
    // NullRecorder is a ZST with a const-false gate: nothing to intern,
    // nothing to lock.
    assert_eq!(std::mem::size_of::<NullRecorder>(), 0);
    assert!(!NullRecorder.enabled());

    // TraceRecorder interns: thousands of spans carrying a handful of
    // distinct labels allocate a handful of strings, not thousands.
    let recorder = TraceRecorder::new();
    for i in 0..10_000u64 {
        recorder.span("task_a", "task", 0, i, 1);
        recorder.span("task_b", "task", 1, i, 1);
    }
    assert_eq!(
        recorder.interned_labels(),
        3,
        "expected exactly task_a, task_b, task"
    );
    assert_eq!(recorder.trace().len(), 20_000);

    // Timing: with interning in place the NullRecorder run must stay
    // within noise of the plain pool. The bound is deliberately loose
    // (1.5x + 2ms slack) — the fine-grained signal is the criterion
    // groups below; this assert only catches gross regressions, e.g. a
    // lock or allocation leaking onto the disabled path.
    let kernel = prepare(KernelId::Chain, DatasetSize::Tiny);
    let median = |f: &mut dyn FnMut()| -> u128 {
        let mut samples: Vec<u128> = (0..9)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    };
    let plain = median(&mut || {
        std::hint::black_box(run_parallel(kernel.as_ref(), 1).checksum);
    });
    let null = median(&mut || {
        std::hint::black_box(run_parallel_instrumented(kernel.as_ref(), 1, &NullRecorder).checksum);
    });
    assert!(
        null as f64 <= plain as f64 * 1.5 + 2e6,
        "NullRecorder run regressed vs plain pool: {null}ns vs {plain}ns"
    );
}

/// A synthetic two-level stage tree with exactly `frames` frames: one
/// root, ~frames/2 children, one grandchild under every other child.
fn synthetic_tree(frames: usize) -> StageTree {
    let mut entries = vec![("k".to_string(), frames as u64 * 1_000)];
    let mut left = frames - 1;
    let mut i = 0;
    while left > 0 {
        entries.push((format!("k;s{i:04}"), 1_500));
        left -= 1;
        if left > 0 && i % 2 == 0 {
            entries.push((format!("k;s{i:04};inner"), 500));
            left -= 1;
        }
        i += 1;
    }
    StageTree::from_path_totals("ns", entries)
}

/// A +10% copy of `tree`, so diffing against it produces real deltas.
fn perturb(tree: &StageTree) -> StageTree {
    StageTree::from_path_totals(
        "ns",
        tree.path_totals()
            .into_iter()
            .map(|(p, v)| (p, v * 11 / 10)),
    )
}

/// Scaling guard for the differential-profiling pipeline: rendering and
/// diffing must stay linear-ish in the frame count. A 4x bigger tree
/// may cost at most ~12x (slack for allocator noise and the per-frame
/// constant) — a quadratic emitter (e.g. re-walking the tree per frame)
/// blows past that immediately. Runs before the timing groups so
/// `cargo bench` fails loudly.
fn assert_render_and_diff_cost_scale_with_frame_count() {
    let small = synthetic_tree(300);
    let big = synthetic_tree(1_200);
    // Perturbed copies so the diffs have non-zero deltas to color.
    let small_cand = perturb(&small);
    let big_cand = perturb(&big);
    let cfg = RenderConfig::wall("scaling");

    // Sanity: the synthetic trees have the frame counts they claim, and
    // the renderer emits exactly one group per frame.
    assert_eq!(small.rows().len(), 300);
    assert_eq!(big.rows().len(), 1_200);
    assert_eq!(
        flamegraph_svg(&big, &cfg).matches("<g class=\"f\"").count(),
        1_200
    );

    let median = |f: &mut dyn FnMut()| -> u128 {
        let mut samples: Vec<u128> = (0..9)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    };

    let render_small = median(&mut || {
        std::hint::black_box(flamegraph_svg(&small, &cfg).len());
    });
    let render_big = median(&mut || {
        std::hint::black_box(flamegraph_svg(&big, &cfg).len());
    });
    assert!(
        render_big as f64 <= render_small as f64 * 12.0 + 2e6,
        "flamegraph_svg scales superlinearly: 300 frames {render_small}ns, \
         1200 frames {render_big}ns"
    );

    let diff_small = median(&mut || {
        let d = TreeDiff::between(&small, &small_cand);
        std::hint::black_box(differential_svg(&d, &cfg).len());
    });
    let diff_big = median(&mut || {
        let d = TreeDiff::between(&big, &big_cand);
        std::hint::black_box(differential_svg(&d, &cfg).len());
    });
    assert!(
        diff_big as f64 <= diff_small as f64 * 12.0 + 2e6,
        "diff+differential_svg scales superlinearly: 300 frames {diff_small}ns, \
         1200 frames {diff_big}ns"
    );
}

fn bench_obs_overhead(c: &mut Criterion) {
    assert_interning_stays_out_of_the_null_path();
    assert_render_and_diff_cost_scale_with_frame_count();
    {
        // The render/diff path itself: one representative mid-size tree.
        let base = synthetic_tree(400);
        let cand = perturb(&base);
        let cfg = RenderConfig::wall("bench");
        let mut group = c.benchmark_group("obs_render");
        group.sample_size(20);
        group.bench_function("flamegraph_svg_400", |b| {
            b.iter(|| std::hint::black_box(flamegraph_svg(&base, &cfg).len()))
        });
        group.bench_function("diff_and_differential_svg_400", |b| {
            b.iter(|| {
                let d = TreeDiff::between(&base, &cand);
                std::hint::black_box(differential_svg(&d, &cfg).len())
            })
        });
        group.finish();
    }
    // chain and fmi have the smallest tasks in the suite, so per-task
    // instrumentation overhead is most visible on them.
    for id in [KernelId::Chain, KernelId::Fmi] {
        let kernel = prepare(id, DatasetSize::Tiny);
        let mut group = c.benchmark_group(format!("obs_overhead_{}", id.name()));
        group.sample_size(10);
        group.bench_function("plain", |b| {
            b.iter(|| std::hint::black_box(run_parallel(kernel.as_ref(), 1).checksum))
        });
        group.bench_function("null_recorder", |b| {
            b.iter(|| {
                std::hint::black_box(
                    run_parallel_instrumented(kernel.as_ref(), 1, &NullRecorder).checksum,
                )
            })
        });
        group.bench_function("trace_recorder", |b| {
            b.iter(|| {
                let recorder = TraceRecorder::new();
                std::hint::black_box(
                    run_parallel_instrumented(kernel.as_ref(), 1, &recorder).checksum,
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
