//! Instrumentation overhead: the same kernels through the plain pool,
//! the instrumented pool with the zero-cost `NullRecorder`, and the
//! buffering `TraceRecorder`. The first two must be indistinguishable —
//! the `Recorder` trait's inlined no-op defaults and the `enabled()`
//! gate are what the suite's always-on instrumentation hinges on.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_obs::{NullRecorder, TraceRecorder};
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{prepare, run_parallel, run_parallel_instrumented, KernelId};

fn bench_obs_overhead(c: &mut Criterion) {
    // chain and fmi have the smallest tasks in the suite, so per-task
    // instrumentation overhead is most visible on them.
    for id in [KernelId::Chain, KernelId::Fmi] {
        let kernel = prepare(id, DatasetSize::Tiny);
        let mut group = c.benchmark_group(format!("obs_overhead_{}", id.name()));
        group.sample_size(10);
        group.bench_function("plain", |b| {
            b.iter(|| std::hint::black_box(run_parallel(kernel.as_ref(), 1).checksum))
        });
        group.bench_function("null_recorder", |b| {
            b.iter(|| {
                std::hint::black_box(
                    run_parallel_instrumented(kernel.as_ref(), 1, &NullRecorder).checksum,
                )
            })
        });
        group.bench_function("trace_recorder", |b| {
            b.iter(|| {
                let recorder = TraceRecorder::new();
                std::hint::black_box(
                    run_parallel_instrumented(kernel.as_ref(), 1, &recorder).checksum,
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
