//! Substrate cache costs: what a cold `build_substrate` costs per
//! kernel versus instantiating from a warm cache, plus the disk
//! round-trip (encode+save / load+decode) the persistent store adds.
//! The cache only earns its complexity if the warm path is orders of
//! magnitude under the cold one — this group pins that gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gb_dp::DpEngine;
use gb_substrate::SubstrateCache;
use gb_suite::kernels::{prepare_cached, substrate_key, KernelId};
use gb_suite::DatasetSize;
use std::path::PathBuf;

/// Representative spread: fmi's build dominates (suffix-array + BWT),
/// phmm assembles regions through the dbg kernel, grm is a dense matrix
/// fill, chain is the cheapest. Benching all 12 would take minutes of
/// CI for no extra signal.
const KERNELS: [KernelId; 4] = [
    KernelId::Fmi,
    KernelId::Phmm,
    KernelId::Grm,
    KernelId::Chain,
];

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gb_bench_substrate_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench_cold_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_cold");
    g.sample_size(10);
    for id in KERNELS {
        g.bench_with_input(BenchmarkId::from_parameter(id.name()), &id, |b, &id| {
            b.iter(|| {
                // A fresh disabled cache every iteration: no memo, no
                // disk — this is the pre-cache prepare cost.
                let cache = SubstrateCache::disabled();
                let (k, _) = prepare_cached(id, DatasetSize::Tiny, DpEngine::Simd, &cache);
                k.num_tasks()
            })
        });
    }
    g.finish();
}

fn bench_warm_memo(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_warm_memo");
    for id in KERNELS {
        let cache = SubstrateCache::in_process();
        // Prime the memo once outside the measured region.
        let _ = prepare_cached(id, DatasetSize::Tiny, DpEngine::Simd, &cache);
        g.bench_with_input(BenchmarkId::from_parameter(id.name()), &id, |b, &id| {
            b.iter(|| {
                let (k, stats) = prepare_cached(id, DatasetSize::Tiny, DpEngine::Simd, &cache);
                assert!(stats.cache_hit);
                k.num_tasks()
            })
        });
    }
    g.finish();
}

fn bench_warm_disk(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_warm_disk");
    g.sample_size(20);
    let dir = store_dir("disk");
    for id in KERNELS {
        // Write the entry once; each iteration opens a fresh cache so
        // the memo is cold and the load+decode path is what's measured.
        let primer = SubstrateCache::with_store(&dir).unwrap();
        let _ = prepare_cached(id, DatasetSize::Tiny, DpEngine::Simd, &primer);
        assert!(dir
            .join(format!(
                "{}.gbs",
                substrate_key(id, DatasetSize::Tiny).canonical()
            ))
            .is_file());
        g.bench_with_input(BenchmarkId::from_parameter(id.name()), &id, |b, &id| {
            b.iter(|| {
                let cache = SubstrateCache::with_store(&dir).unwrap();
                let (k, stats) = prepare_cached(id, DatasetSize::Tiny, DpEngine::Simd, &cache);
                assert!(stats.cache_hit);
                k.num_tasks()
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    substrate,
    bench_cold_build,
    bench_warm_memo,
    bench_warm_disk
);
criterion_main!(substrate);
