//! Tables IV & V harness: the SIMT models of abea and nn-base.
//!
//! Prints the nvprof-style metric tables once, then benchmarks the model
//! evaluation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{abea_gpu_report, nnbase_gpu_report};

fn bench_gpu_models(c: &mut Criterion) {
    let abea = abea_gpu_report(DatasetSize::Tiny);
    let nn = nnbase_gpu_report(DatasetSize::Tiny);
    eprintln!("table4/5 abea:    {abea:?}");
    eprintln!("table4/5 nn-base: {nn:?}");
    let mut group = c.benchmark_group("gpu_models");
    group.sample_size(10);
    group.bench_function("abea_simt", |b| {
        b.iter(|| std::hint::black_box(abea_gpu_report(DatasetSize::Tiny).instructions))
    });
    group.bench_function("nn_base_simt", |b| {
        b.iter(|| std::hint::black_box(nnbase_gpu_report(DatasetSize::Tiny).instructions))
    });
    group.finish();
}

criterion_group!(benches, bench_gpu_models);
criterion_main!(benches);
