//! GenomicsBench-rs Criterion bench crate: see the `benches/` targets.
#![forbid(unsafe_code)]
