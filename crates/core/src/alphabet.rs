//! The DNA alphabet and its 2-bit encoding.
//!
//! Throughout the suite, DNA bases are stored as 2-bit *codes* (`0..=3` for
//! `A, C, G, T`) rather than ASCII. All kernels (FM-index, Smith-Waterman,
//! chaining, …) operate on codes; conversion to and from ASCII happens only
//! at the I/O boundary, mirroring how BWA-MEM2 and minimap2 handle sequence
//! data internally.

/// A single DNA nucleotide.
///
/// The discriminants are the canonical 2-bit codes used across the suite
/// (`A=0, C=1, G=2, T=3`), which is also the lexicographic order required by
/// the FM-index.
///
/// # Examples
///
/// ```
/// use gb_core::alphabet::Base;
/// assert_eq!(Base::from_ascii(b'g'), Some(Base::G));
/// assert_eq!(Base::G.complement(), Base::C);
/// assert_eq!(Base::G.to_ascii(), b'G');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine (code 3).
    T = 3,
}

/// Number of symbols in the DNA alphabet.
pub const ALPHABET_SIZE: usize = 4;

/// All four bases in code order.
pub const BASES: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

impl Base {
    /// Decodes an ASCII byte (case-insensitive) into a base.
    ///
    /// Returns `None` for ambiguity codes (`N`, `R`, …) and any other byte.
    #[inline]
    pub fn from_ascii(b: u8) -> Option<Base> {
        match b {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Decodes a 2-bit code into a base.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => panic!("invalid 2-bit base code: {code}"),
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The uppercase ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// The Watson–Crick complement (`A<->T`, `C<->G`).
    #[inline]
    pub fn complement(self) -> Base {
        // With the 2-bit encoding the complement is `3 - code`.
        Base::from_code(3 - self.code())
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

/// Complements a 2-bit code without going through [`Base`].
///
/// # Examples
///
/// ```
/// use gb_core::alphabet::complement_code;
/// assert_eq!(complement_code(0), 3); // A -> T
/// ```
#[inline]
pub fn complement_code(code: u8) -> u8 {
    debug_assert!(code < 4);
    3 - code
}

/// Encodes an ASCII nucleotide into its 2-bit code, mapping ambiguity codes
/// (and anything else) to `None`.
#[inline]
pub fn encode_ascii(b: u8) -> Option<u8> {
    Base::from_ascii(b).map(Base::code)
}

/// Decodes a 2-bit code into its uppercase ASCII nucleotide.
///
/// # Panics
///
/// Panics if `code > 3`.
#[inline]
pub fn decode_code(code: u8) -> u8 {
    Base::from_code(code).to_ascii()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        for &b in &BASES {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn code_round_trip() {
        for c in 0..4u8 {
            assert_eq!(Base::from_code(c).code(), c);
        }
    }

    #[test]
    fn ambiguity_rejected() {
        for b in [b'N', b'n', b'R', b'-', b'X', 0u8] {
            assert_eq!(Base::from_ascii(b), None);
        }
    }

    #[test]
    fn complement_is_involution() {
        for &b in &BASES {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    #[should_panic(expected = "invalid 2-bit base code")]
    fn from_code_panics_on_invalid() {
        let _ = Base::from_code(4);
    }

    #[test]
    fn display_prints_letter() {
        assert_eq!(Base::T.to_string(), "T");
    }

    #[test]
    fn base_order_is_lexicographic() {
        assert!(Base::A < Base::C && Base::C < Base::G && Base::G < Base::T);
    }
}
