//! CIGAR strings describing read-to-reference alignments.
//!
//! The pileup kernel (Medaka-style pre-processing) spends its time walking
//! CIGAR operations of alignment records, so this module is a first-class
//! substrate of the suite.

use crate::error::Error;

/// One CIGAR operation kind, following the SAM specification subset the
/// suite needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Alignment match or mismatch (`M`): consumes both query and reference.
    Match,
    /// Insertion to the reference (`I`): consumes query only.
    Ins,
    /// Deletion from the reference (`D`): consumes reference only.
    Del,
    /// Soft clip (`S`): consumes query only, bases present in the record.
    SoftClip,
}

impl CigarOp {
    /// The SAM character for this operation.
    pub fn to_char(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
            CigarOp::SoftClip => 'S',
        }
    }

    /// Parses a SAM operation character.
    pub fn from_char(c: char) -> Option<CigarOp> {
        match c {
            'M' => Some(CigarOp::Match),
            'I' => Some(CigarOp::Ins),
            'D' => Some(CigarOp::Del),
            'S' => Some(CigarOp::SoftClip),
            _ => None,
        }
    }

    /// Whether the operation advances through the query (read) sequence.
    pub fn consumes_query(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Ins | CigarOp::SoftClip)
    }

    /// Whether the operation advances through the reference sequence.
    pub fn consumes_ref(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Del)
    }
}

/// A full CIGAR: a run-length-encoded list of operations.
///
/// # Examples
///
/// ```
/// use gb_core::cigar::{Cigar, CigarOp};
/// let c: Cigar = "3M1I2M2D4M".parse()?;
/// assert_eq!(c.query_len(), 10);
/// assert_eq!(c.ref_len(), 11);
/// assert_eq!(c.to_string(), "3M1I2M2D4M");
/// # Ok::<(), gb_core::error::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cigar {
    ops: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Creates an empty CIGAR.
    pub fn new() -> Cigar {
        Cigar { ops: Vec::new() }
    }

    /// Creates a CIGAR from `(length, op)` runs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCigar`] if any run has length zero.
    pub fn from_ops(ops: Vec<(u32, CigarOp)>) -> Result<Cigar, Error> {
        if ops.iter().any(|&(n, _)| n == 0) {
            return Err(Error::InvalidCigar {
                reason: "zero-length run".into(),
            });
        }
        Ok(Cigar { ops })
    }

    /// Appends a run, merging with the previous run when the op matches.
    pub fn push(&mut self, len: u32, op: CigarOp) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.ops.last_mut() {
            if last.1 == op {
                last.0 += len;
                return;
            }
        }
        self.ops.push((len, op));
    }

    /// The `(length, op)` runs.
    pub fn ops(&self) -> &[(u32, CigarOp)] {
        &self.ops
    }

    /// Whether there are no runs.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of query (read) bases the alignment consumes, including soft
    /// clips.
    pub fn query_len(&self) -> usize {
        self.ops
            .iter()
            .filter(|(_, op)| op.consumes_query())
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Number of reference bases the alignment spans.
    pub fn ref_len(&self) -> usize {
        self.ops
            .iter()
            .filter(|(_, op)| op.consumes_ref())
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Iterates over `(query_offset, ref_offset, op)` one base at a time.
    ///
    /// For deletions the query offset is the offset of the next query base;
    /// for insertions the reference offset is the offset of the next
    /// reference base. Soft clips advance the query offset but are not
    /// yielded, matching how pileup counting skips clipped bases.
    pub fn walk(&self) -> Walk<'_> {
        Walk {
            runs: &self.ops,
            run: 0,
            within: 0,
            q: 0,
            r: 0,
        }
    }
}

/// Per-base iterator over an alignment; see [`Cigar::walk`].
#[derive(Debug, Clone)]
pub struct Walk<'a> {
    runs: &'a [(u32, CigarOp)],
    run: usize,
    within: u32,
    q: usize,
    r: usize,
}

/// One step of a CIGAR walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Query offset of this step (see [`Cigar::walk`] for edge cases).
    pub query_off: usize,
    /// Reference offset of this step.
    pub ref_off: usize,
    /// The operation this base belongs to.
    pub op: CigarOp,
}

impl<'a> Iterator for Walk<'a> {
    type Item = WalkStep;

    fn next(&mut self) -> Option<WalkStep> {
        loop {
            let &(len, op) = self.runs.get(self.run)?;
            if self.within == len {
                self.run += 1;
                self.within = 0;
                continue;
            }
            self.within += 1;
            let step = WalkStep {
                query_off: self.q,
                ref_off: self.r,
                op,
            };
            if op.consumes_query() {
                self.q += 1;
            }
            if op.consumes_ref() {
                self.r += 1;
            }
            if op == CigarOp::SoftClip {
                continue; // advance but do not yield
            }
            return Some(step);
        }
    }
}

impl std::str::FromStr for Cigar {
    type Err = Error;

    fn from_str(s: &str) -> Result<Cigar, Error> {
        let mut ops = Vec::new();
        let mut num = 0u32;
        let mut have_num = false;
        for c in s.chars() {
            if let Some(d) = c.to_digit(10) {
                num = num
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(d))
                    .ok_or_else(|| Error::InvalidCigar {
                        reason: "run length overflow".into(),
                    })?;
                have_num = true;
            } else if let Some(op) = CigarOp::from_char(c) {
                if !have_num || num == 0 {
                    return Err(Error::InvalidCigar {
                        reason: format!("operation '{c}' without positive length"),
                    });
                }
                ops.push((num, op));
                num = 0;
                have_num = false;
            } else {
                return Err(Error::InvalidCigar {
                    reason: format!("unexpected character '{c}'"),
                });
            }
        }
        if have_num {
            return Err(Error::InvalidCigar {
                reason: "trailing length without operation".into(),
            });
        }
        Cigar::from_ops(ops)
    }
}

impl std::fmt::Display for Cigar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.ops.is_empty() {
            return write!(f, "*");
        }
        for &(n, op) in &self.ops {
            write!(f, "{n}{}", op.to_char())?;
        }
        Ok(())
    }
}

impl gb_substrate::Codec for CigarOp {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_u8(match self {
            CigarOp::Match => 0,
            CigarOp::Ins => 1,
            CigarOp::Del => 2,
            CigarOp::SoftClip => 3,
        });
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<CigarOp> {
        Some(match d.get_u8()? {
            0 => CigarOp::Match,
            1 => CigarOp::Ins,
            2 => CigarOp::Del,
            3 => CigarOp::SoftClip,
            _ => return None,
        })
    }
}

impl gb_substrate::Codec for Cigar {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.ops, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Cigar> {
        // Route through the validating constructor so a decoded CIGAR
        // upholds the same invariants as a built one.
        Cigar::from_ops(gb_substrate::Codec::decode(d)?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["5M", "3M1I2M2D4M", "2S8M1S"] {
            let c: Cigar = s.parse().unwrap();
            assert_eq!(c.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("M".parse::<Cigar>().is_err());
        assert!("0M".parse::<Cigar>().is_err());
        assert!("3".parse::<Cigar>().is_err());
        assert!("3X".parse::<Cigar>().is_err());
        assert!("99999999999M".parse::<Cigar>().is_err());
    }

    #[test]
    fn lengths() {
        let c: Cigar = "2S3M1I2M2D4M".parse().unwrap();
        assert_eq!(c.query_len(), 2 + 3 + 1 + 2 + 4);
        assert_eq!(c.ref_len(), 3 + 2 + 2 + 4);
    }

    #[test]
    fn push_merges_runs() {
        let mut c = Cigar::new();
        c.push(2, CigarOp::Match);
        c.push(3, CigarOp::Match);
        c.push(0, CigarOp::Del);
        c.push(1, CigarOp::Ins);
        assert_eq!(c.to_string(), "5M1I");
    }

    #[test]
    fn walk_tracks_offsets() {
        let c: Cigar = "1S2M1I1D1M".parse().unwrap();
        let steps: Vec<WalkStep> = c.walk().collect();
        // Soft clip consumes query offset 0 silently.
        assert_eq!(
            steps,
            vec![
                WalkStep {
                    query_off: 1,
                    ref_off: 0,
                    op: CigarOp::Match
                },
                WalkStep {
                    query_off: 2,
                    ref_off: 1,
                    op: CigarOp::Match
                },
                WalkStep {
                    query_off: 3,
                    ref_off: 2,
                    op: CigarOp::Ins
                },
                WalkStep {
                    query_off: 4,
                    ref_off: 2,
                    op: CigarOp::Del
                },
                WalkStep {
                    query_off: 4,
                    ref_off: 3,
                    op: CigarOp::Match
                },
            ]
        );
    }

    #[test]
    fn walk_counts_match_lengths() {
        let c: Cigar = "3M1I2M2D4M".parse().unwrap();
        let n_match = c.walk().filter(|s| s.op == CigarOp::Match).count();
        assert_eq!(n_match, 9);
    }

    #[test]
    fn empty_cigar_displays_star() {
        assert_eq!(Cigar::new().to_string(), "*");
    }
}
