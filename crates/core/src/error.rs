//! The suite-wide error type.

/// Errors produced by GenomicsBench-rs crates.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// let err = "ACQT".parse::<DnaSeq>().unwrap_err();
/// assert!(err.to_string().contains("invalid base"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A byte that is not a valid `ACGT` nucleotide or 2-bit code.
    InvalidBase {
        /// Offset of the offending byte within its sequence.
        pos: usize,
        /// The offending byte value.
        byte: u8,
    },
    /// A CIGAR string failed to parse.
    InvalidCigar {
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// A record (FASTA/FASTQ-like) failed to parse.
    InvalidRecord {
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// An argument was outside its documented domain.
    InvalidArgument {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Two inputs that must agree in shape (e.g. sequence and quality
    /// string) did not.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl Error {
    /// Convenience constructor for [`Error::InvalidArgument`].
    pub fn invalid_argument(reason: impl Into<String>) -> Error {
        Error::InvalidArgument {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidBase { pos, byte } => {
                write!(f, "invalid base {:?} at position {pos}", *byte as char)
            }
            Error::InvalidCigar { reason } => write!(f, "invalid CIGAR: {reason}"),
            Error::InvalidRecord { reason } => write!(f, "invalid record: {reason}"),
            Error::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            Error::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::InvalidBase { pos: 2, byte: b'N' };
        assert_eq!(e.to_string(), "invalid base 'N' at position 2");
        let e = Error::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<Error>();
    }
}
