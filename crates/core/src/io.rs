//! FASTA/FASTQ text I/O.
//!
//! The paper notes that "file I/O-related driver code was added for
//! reading inputs and writing results" when the kernels were extracted;
//! this module is that driver layer: plain-text FASTA and FASTQ
//! serialization for sequences and reads, usable with any
//! `std::io::Read`/`Write` (pass `&mut` references for buffered files).

use crate::error::Error;
use crate::quality::decode_quality_string;
use crate::record::ReadRecord;
use crate::seq::DnaSeq;
use std::io::{BufRead, Write};

/// Writes records as FASTA (60-column wrapped).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fasta<W: Write>(mut w: W, records: &[(String, DnaSeq)]) -> std::io::Result<()> {
    for (name, seq) in records {
        writeln!(w, ">{name}")?;
        let ascii = seq.to_ascii();
        for chunk in ascii.chunks(60) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Reads a FASTA stream into `(name, sequence)` records.
///
/// # Errors
///
/// Returns [`Error::InvalidRecord`] for structural problems and
/// [`Error::InvalidBase`] for non-ACGT sequence bytes; I/O errors are
/// converted to [`Error::InvalidRecord`].
pub fn read_fasta<R: BufRead>(r: R) -> Result<Vec<(String, DnaSeq)>, Error> {
    let mut out: Vec<(String, DnaSeq)> = Vec::new();
    let mut current: Option<(String, Vec<u8>)> = None;
    for line in r.lines() {
        let line = line.map_err(|e| Error::InvalidRecord {
            reason: e.to_string(),
        })?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            if let Some((n, bytes)) = current.take() {
                out.push((n, DnaSeq::from_ascii(&bytes)?));
            }
            current = Some((name.trim().to_string(), Vec::new()));
        } else {
            match &mut current {
                Some((_, bytes)) => bytes.extend_from_slice(line.as_bytes()),
                None => {
                    return Err(Error::InvalidRecord {
                        reason: "sequence data before any '>' header".into(),
                    })
                }
            }
        }
    }
    if let Some((n, bytes)) = current {
        out.push((n, DnaSeq::from_ascii(&bytes)?));
    }
    Ok(out)
}

/// Writes reads as FASTQ.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fastq<W: Write>(mut w: W, reads: &[ReadRecord]) -> std::io::Result<()> {
    for r in reads {
        w.write_all(r.to_fastq().as_bytes())?;
    }
    Ok(())
}

/// Reads a FASTQ stream.
///
/// # Errors
///
/// Returns [`Error::InvalidRecord`] for malformed blocks (missing lines,
/// bad headers, length mismatches) and propagates sequence errors.
pub fn read_fastq<R: BufRead>(r: R) -> Result<Vec<ReadRecord>, Error> {
    let mut lines = r.lines();
    let mut out = Vec::new();
    while let Some(header) = lines.next() {
        let header = header.map_err(|e| Error::InvalidRecord {
            reason: e.to_string(),
        })?;
        if header.trim().is_empty() {
            continue;
        }
        let name = header
            .strip_prefix('@')
            .ok_or_else(|| Error::InvalidRecord {
                reason: format!("bad header '{header}'"),
            })?
            .to_string();
        let mut take = || -> Result<String, Error> {
            lines
                .next()
                .ok_or_else(|| Error::InvalidRecord {
                    reason: "truncated FASTQ block".into(),
                })?
                .map_err(|e| Error::InvalidRecord {
                    reason: e.to_string(),
                })
        };
        let seq_line = take()?;
        let plus = take()?;
        if !plus.starts_with('+') {
            return Err(Error::InvalidRecord {
                reason: "missing '+' separator".into(),
            });
        }
        let qual_line = take()?;
        let seq: DnaSeq = seq_line.trim_end().parse()?;
        let quals = decode_quality_string(qual_line.trim_end().as_bytes());
        out.push(ReadRecord::new(name, seq, quals)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::Phred;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn fasta_round_trip_with_wrapping() {
        let long: DnaSeq = DnaSeq::from_codes_unchecked((0..150).map(|i| (i % 4) as u8).collect());
        let records = vec![
            ("chr1".to_string(), seq("ACGT")),
            ("chr2 extra".to_string(), long),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.lines().all(|l| l.len() <= 60));
        let back = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn fasta_rejects_headerless_data() {
        assert!(read_fasta("ACGT\n".as_bytes()).is_err());
    }

    #[test]
    fn fasta_rejects_bad_bases() {
        assert!(read_fasta(">x\nACGN\n".as_bytes()).is_err());
    }

    #[test]
    fn fastq_round_trip() {
        let reads = vec![
            ReadRecord::with_uniform_quality("r1", seq("ACGTAC"), Phred::new(33)),
            ReadRecord::with_uniform_quality("r2", seq("TTGG"), Phred::new(12)),
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &reads).unwrap();
        let back = read_fastq(buf.as_slice()).unwrap();
        assert_eq!(back, reads);
    }

    #[test]
    fn fastq_detects_truncation() {
        assert!(read_fastq("@r1\nACGT\n+\n".as_bytes()).is_err());
        assert!(read_fastq("@r1\nACGT\nIIII\n".as_bytes()).is_err());
        assert!(read_fastq("r1\nACGT\n+\nIIII\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_streams() {
        assert!(read_fasta("".as_bytes()).unwrap().is_empty());
        assert!(read_fastq("".as_bytes()).unwrap().is_empty());
    }
}
