//! # gb-core
//!
//! Shared genomics types for **GenomicsBench-rs**, a from-scratch Rust
//! reproduction of the GenomicsBench benchmark suite (ISPASS 2021).
//!
//! This crate defines the vocabulary every kernel speaks:
//!
//! - [`alphabet`]: the `ACGT` alphabet and its 2-bit codes,
//! - [`seq`]: byte-per-base sequences and packed k-mers,
//! - [`packed`]: 2-bit packed storage for large references,
//! - [`quality`]: Phred base qualities,
//! - [`cigar`] / [`record`]: alignments (the SAM/BAM analogue),
//! - [`io`]: FASTA/FASTQ text I/O,
//! - [`region`]: genome-region tasks (the unit of task parallelism),
//! - [`matrix`]: a small dense matrix for the GRM and NN kernels,
//! - [`error`]: the suite-wide error type.
//!
//! # Examples
//!
//! ```
//! use gb_core::seq::DnaSeq;
//! let read: DnaSeq = "ACGTACGT".parse()?;
//! let rc = read.reverse_complement();
//! assert_eq!(rc.len(), read.len());
//! # Ok::<(), gb_core::error::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod cigar;
pub mod error;
pub mod io;
pub mod matrix;
pub mod packed;
pub mod quality;
pub mod record;
pub mod region;
pub mod seq;

pub use alphabet::Base;
pub use error::Error;
pub use seq::DnaSeq;
