//! A minimal dense row-major matrix used by the GRM and neural-network
//! kernels.

/// A dense row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use gb_core::matrix::Matrix;
/// let mut m = Matrix::zeros(2, 3);
/// m[(1, 2)] = 5.0;
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    // PANIC-FREE: documented `# Panics` precondition; a shape/data mismatch
    // is a construction bug, not a data-dependent runtime path.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The row-major backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    // PANIC-FREE: documented `# Panics` precondition; kernel callers iterate
    // rows in `0..rows()`, so the guard never fires on suite inputs.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Naive `self * other` matrix product (reference implementation; the
    /// optimized blocked kernel lives in `gb-popgen`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl gb_substrate::Codec for Matrix {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.rows);
        e.put_usize(self.cols);
        for &v in &self.data {
            e.put_f32(v);
        }
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Matrix> {
        let rows = d.get_usize()?;
        let cols = d.get_usize()?;
        let len = rows.checked_mul(cols)?;
        if len.checked_mul(4)? > d.remaining() {
            return None;
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(d.get_f32()?);
        }
        Some(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_shape() {
        let mut m = Matrix::zeros(2, 3);
        m[(0, 1)] = 1.0;
        m[(1, 2)] = 2.0;
        assert_eq!(m.as_slice(), &[0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let eye = Matrix::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(m.matmul(&eye), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
