//! 2-bit packed DNA storage.
//!
//! The FM-index stores multi-gigabase references; a byte per base would
//! quadruple its footprint. [`PackedSeq`] packs four bases per byte exactly
//! like BWA-MEM2's `.pac` file.

use crate::seq::DnaSeq;

/// A DNA sequence packed four bases per byte (2 bits per base).
///
/// Base `i` occupies bits `2*(i % 4) .. 2*(i % 4) + 2` of byte `i / 4`,
/// little-endian within the byte.
///
/// # Examples
///
/// ```
/// use gb_core::{packed::PackedSeq, seq::DnaSeq};
/// let s: DnaSeq = "ACGTAC".parse()?;
/// let p = PackedSeq::from_seq(&s);
/// assert_eq!(p.len(), 6);
/// assert_eq!(p.get(2), 2); // G
/// assert_eq!(p.unpack(), s);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedSeq {
    bytes: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Creates an empty packed sequence.
    pub fn new() -> PackedSeq {
        PackedSeq {
            bytes: Vec::new(),
            len: 0,
        }
    }

    /// Packs a [`DnaSeq`].
    pub fn from_seq(seq: &DnaSeq) -> PackedSeq {
        Self::from_codes(seq.as_codes())
    }

    /// Packs a slice of 2-bit codes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any code is `> 3`.
    pub fn from_codes(codes: &[u8]) -> PackedSeq {
        let mut p = PackedSeq {
            bytes: vec![0u8; codes.len().div_ceil(4)],
            len: codes.len(),
        };
        for (i, &c) in codes.iter().enumerate() {
            debug_assert!(c < 4);
            p.bytes[i / 4] |= c << (2 * (i % 4));
        }
        p
    }

    /// The number of bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The heap footprint in bytes (what the paper's ~10 GB FM-index
    /// working-set figure is about).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The 2-bit code of base `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    // PANIC-FREE: documented `# Panics` precondition; kernel callers index
    // in `0..len()`, so the guard never fires on suite inputs.
    pub fn get(&self, i: usize) -> u8 {
        assert!(
            i < self.len,
            "index {i} out of bounds for length {}",
            self.len
        );
        (self.bytes[i / 4] >> (2 * (i % 4))) & 3
    }

    /// Appends one base code.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `code > 3`.
    pub fn push(&mut self, code: u8) {
        debug_assert!(code < 4);
        if self.len.is_multiple_of(4) {
            self.bytes.push(0);
        }
        let i = self.len;
        self.bytes[i / 4] |= code << (2 * (i % 4));
        self.len += 1;
    }

    /// Unpacks back into a byte-per-base [`DnaSeq`].
    pub fn unpack(&self) -> DnaSeq {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// The raw packed bytes (for address-level memory-access modelling).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl FromIterator<u8> for PackedSeq {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> PackedSeq {
        let mut p = PackedSeq::new();
        for c in iter {
            p.push(c);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for n in 0..20 {
            let codes: Vec<u8> = (0..n).map(|i| (i % 4) as u8).collect();
            let s = DnaSeq::from_codes(codes).unwrap();
            assert_eq!(PackedSeq::from_seq(&s).unpack(), s, "n={n}");
        }
    }

    #[test]
    fn push_matches_bulk() {
        let s: DnaSeq = "ACGTTGCAAC".parse().unwrap();
        let bulk = PackedSeq::from_seq(&s);
        let mut inc = PackedSeq::new();
        for &c in s.as_codes() {
            inc.push(c);
        }
        assert_eq!(inc, bulk);
    }

    #[test]
    fn byte_len_is_quarter() {
        let s = DnaSeq::from_codes(vec![0; 9]).unwrap();
        assert_eq!(PackedSeq::from_seq(&s).byte_len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        PackedSeq::new().get(0);
    }
}
