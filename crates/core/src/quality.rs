//! Phred base-quality scores.
//!
//! Basecallers attach a quality score to each base; the pairHMM kernel turns
//! these into floating-point emission priors, which is why quality handling
//! lives in the core crate.

/// A Phred-scaled base quality score.
///
/// Quality `q` encodes an error probability of `10^(-q/10)`: Q10 means a 10%
/// chance the base is wrong, Q30 means 0.1%.
///
/// # Examples
///
/// ```
/// use gb_core::quality::Phred;
/// let q = Phred::new(20);
/// assert!((q.error_prob() - 0.01).abs() < 1e-12);
/// assert_eq!(Phred::from_ascii(b'5'), Phred::new(20)); // '5' = 33 + 20
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Phred(u8);

/// The Sanger/Illumina ASCII offset for quality characters.
pub const PHRED_ASCII_OFFSET: u8 = 33;

/// Highest quality representable in the printable FASTQ range.
pub const MAX_PHRED: u8 = 93;

impl Phred {
    /// Creates a quality score, clamping to the printable range `0..=93`.
    pub fn new(q: u8) -> Phred {
        Phred(q.min(MAX_PHRED))
    }

    /// Decodes a FASTQ quality character (offset 33).
    ///
    /// Characters below `!` are treated as Q0.
    pub fn from_ascii(c: u8) -> Phred {
        Phred::new(c.saturating_sub(PHRED_ASCII_OFFSET))
    }

    /// The integer quality value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// The FASTQ quality character.
    pub fn to_ascii(self) -> u8 {
        self.0 + PHRED_ASCII_OFFSET
    }

    /// The probability that the base is an error: `10^(-q/10)`.
    pub fn error_prob(self) -> f64 {
        10f64.powf(-f64::from(self.0) / 10.0)
    }

    /// The probability that the base is correct.
    pub fn correct_prob(self) -> f64 {
        1.0 - self.error_prob()
    }

    /// Converts an error probability into the nearest quality score.
    ///
    /// Probabilities `<= 0` map to [`MAX_PHRED`]; probabilities `>= 1` map
    /// to Q0.
    pub fn from_error_prob(p: f64) -> Phred {
        if p <= 0.0 {
            return Phred(MAX_PHRED);
        }
        if p >= 1.0 {
            return Phred(0);
        }
        let q = (-10.0 * p.log10()).round();
        Phred::new(q.clamp(0.0, f64::from(MAX_PHRED)) as u8)
    }
}

impl std::fmt::Display for Phred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Decodes a FASTQ quality string into scores.
pub fn decode_quality_string(s: &[u8]) -> Vec<Phred> {
    s.iter().map(|&c| Phred::from_ascii(c)).collect()
}

/// Encodes quality scores into a FASTQ quality string.
pub fn encode_quality_string(qs: &[Phred]) -> Vec<u8> {
    qs.iter().map(|q| q.to_ascii()).collect()
}

impl gb_substrate::Codec for Phred {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_u8(self.0);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Phred> {
        let q = d.get_u8()?;
        (q <= MAX_PHRED).then_some(Phred(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        for q in 0..=MAX_PHRED {
            let p = Phred::new(q);
            assert_eq!(Phred::from_ascii(p.to_ascii()), p);
        }
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(Phred::new(200).value(), MAX_PHRED);
        assert_eq!(Phred::from_ascii(b' ').value(), 0);
    }

    #[test]
    fn error_prob_known_values() {
        assert!((Phred::new(10).error_prob() - 0.1).abs() < 1e-12);
        assert!((Phred::new(30).error_prob() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn from_error_prob_inverts() {
        for q in [0u8, 7, 20, 41, 93] {
            assert_eq!(
                Phred::from_error_prob(Phred::new(q).error_prob()).value(),
                q
            );
        }
        assert_eq!(Phred::from_error_prob(0.0).value(), MAX_PHRED);
        assert_eq!(Phred::from_error_prob(2.0).value(), 0);
    }

    #[test]
    fn quality_string_round_trip() {
        let s = b"!5I~";
        let qs = decode_quality_string(s);
        assert_eq!(encode_quality_string(&qs), s);
        assert_eq!(qs[0].value(), 0);
    }
}
