//! Read and alignment records.
//!
//! These are the suite's equivalents of FASTQ entries and SAM/BAM alignment
//! lines: the unit of work handed to fmi/bsw (reads) and to dbg/phmm/pileup
//! (aligned reads grouped by reference region).

use crate::cigar::Cigar;
use crate::error::Error;
use crate::quality::{decode_quality_string, encode_quality_string, Phred};
use crate::seq::DnaSeq;

/// A sequenced read: name, bases, and per-base qualities.
///
/// # Examples
///
/// ```
/// use gb_core::record::ReadRecord;
/// use gb_core::quality::Phred;
/// let r = ReadRecord::with_uniform_quality("r1", "ACGT".parse()?, Phred::new(30));
/// assert_eq!(r.len(), 4);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReadRecord {
    /// Read name / identifier.
    pub name: String,
    /// The basecalled sequence.
    pub seq: DnaSeq,
    /// Per-base quality scores; always the same length as `seq`.
    quals: Vec<Phred>,
}

impl ReadRecord {
    /// Creates a read, validating that qualities match the sequence length.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] when `quals.len() != seq.len()`.
    pub fn new(
        name: impl Into<String>,
        seq: DnaSeq,
        quals: Vec<Phred>,
    ) -> Result<ReadRecord, Error> {
        if quals.len() != seq.len() {
            return Err(Error::LengthMismatch {
                expected: seq.len(),
                actual: quals.len(),
            });
        }
        Ok(ReadRecord {
            name: name.into(),
            seq,
            quals,
        })
    }

    /// Creates a read with the same quality on every base.
    pub fn with_uniform_quality(name: impl Into<String>, seq: DnaSeq, q: Phred) -> ReadRecord {
        let quals = vec![q; seq.len()];
        ReadRecord {
            name: name.into(),
            seq,
            quals,
        }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the read has no bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The per-base quality scores.
    pub fn quals(&self) -> &[Phred] {
        &self.quals
    }

    /// Serializes as a 4-line FASTQ block.
    pub fn to_fastq(&self) -> String {
        format!(
            "@{}\n{}\n+\n{}\n",
            self.name,
            self.seq,
            String::from_utf8(encode_quality_string(&self.quals)).expect("phred ascii is utf8"),
        )
    }

    /// Parses one 4-line FASTQ block.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRecord`] for malformed blocks, or the
    /// underlying sequence/quality errors.
    pub fn from_fastq(block: &str) -> Result<ReadRecord, Error> {
        let mut lines = block.lines();
        let header = lines.next().ok_or_else(|| Error::InvalidRecord {
            reason: "missing header line".into(),
        })?;
        let name = header
            .strip_prefix('@')
            .ok_or_else(|| Error::InvalidRecord {
                reason: "header must start with '@'".into(),
            })?;
        let seq_line = lines.next().ok_or_else(|| Error::InvalidRecord {
            reason: "missing sequence".into(),
        })?;
        let plus = lines.next().ok_or_else(|| Error::InvalidRecord {
            reason: "missing '+' line".into(),
        })?;
        if !plus.starts_with('+') {
            return Err(Error::InvalidRecord {
                reason: "third line must start with '+'".into(),
            });
        }
        let qual_line = lines.next().ok_or_else(|| Error::InvalidRecord {
            reason: "missing qualities".into(),
        })?;
        let seq: DnaSeq = seq_line.parse()?;
        let quals = decode_quality_string(qual_line.as_bytes());
        ReadRecord::new(name, seq, quals)
    }
}

/// Strand of an alignment relative to the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strand {
    /// Read aligns to the reference as given.
    #[default]
    Forward,
    /// Read aligns as its reverse complement.
    Reverse,
}

impl Strand {
    /// `'+'` or `'-'`.
    pub fn to_char(self) -> char {
        match self {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        }
    }
}

/// A read aligned to a reference: the suite's SAM-record analogue.
///
/// The stored `read` sequence is already reverse-complemented for
/// reverse-strand alignments (as in BAM), so CIGAR walking never needs to
/// know the strand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentRecord {
    /// The aligned read (strand-corrected).
    pub read: ReadRecord,
    /// Index of the reference contig this read aligned to.
    pub ref_id: usize,
    /// 0-based leftmost reference position of the alignment.
    pub pos: usize,
    /// The alignment's CIGAR.
    pub cigar: Cigar,
    /// Mapping quality (Phred-scaled confidence in `pos`).
    pub mapq: u8,
    /// Original strand of the read.
    pub strand: Strand,
}

impl AlignmentRecord {
    /// Creates an alignment record, validating that the CIGAR consumes
    /// exactly the read's bases.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] when the CIGAR query length does
    /// not equal the read length.
    pub fn new(
        read: ReadRecord,
        ref_id: usize,
        pos: usize,
        cigar: Cigar,
        mapq: u8,
        strand: Strand,
    ) -> Result<AlignmentRecord, Error> {
        if cigar.query_len() != read.len() {
            return Err(Error::LengthMismatch {
                expected: read.len(),
                actual: cigar.query_len(),
            });
        }
        Ok(AlignmentRecord {
            read,
            ref_id,
            pos,
            cigar,
            mapq,
            strand,
        })
    }

    /// Exclusive reference end position of the alignment.
    pub fn end(&self) -> usize {
        self.pos + self.cigar.ref_len()
    }

    /// Whether this alignment overlaps reference interval `[start, end)`.
    pub fn overlaps(&self, start: usize, end: usize) -> bool {
        self.pos < end && self.end() > start
    }
}

impl gb_substrate::Codec for Strand {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_u8(match self {
            Strand::Forward => 0,
            Strand::Reverse => 1,
        });
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Strand> {
        Some(match d.get_u8()? {
            0 => Strand::Forward,
            1 => Strand::Reverse,
            _ => return None,
        })
    }
}

impl gb_substrate::Codec for ReadRecord {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.name, e);
        gb_substrate::Codec::encode(&self.seq, e);
        gb_substrate::Codec::encode(&self.quals, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<ReadRecord> {
        let name: String = gb_substrate::Codec::decode(d)?;
        let seq: DnaSeq = gb_substrate::Codec::decode(d)?;
        let quals: Vec<Phred> = gb_substrate::Codec::decode(d)?;
        // The validating constructor re-checks the seq/quals length
        // invariant a decoded record must uphold.
        ReadRecord::new(name, seq, quals).ok()
    }
}

impl gb_substrate::Codec for AlignmentRecord {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.read, e);
        e.put_usize(self.ref_id);
        e.put_usize(self.pos);
        gb_substrate::Codec::encode(&self.cigar, e);
        e.put_u8(self.mapq);
        gb_substrate::Codec::encode(&self.strand, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<AlignmentRecord> {
        Some(AlignmentRecord {
            read: gb_substrate::Codec::decode(d)?,
            ref_id: d.get_usize()?,
            pos: d.get_usize()?,
            cigar: gb_substrate::Codec::decode(d)?,
            mapq: d.get_u8()?,
            strand: gb_substrate::Codec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(seq: &str) -> ReadRecord {
        ReadRecord::with_uniform_quality("r", seq.parse().unwrap(), Phred::new(30))
    }

    #[test]
    fn fastq_round_trip() {
        let r = read("ACGTAC");
        let parsed = ReadRecord::from_fastq(&r.to_fastq()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn fastq_rejects_malformed() {
        assert!(ReadRecord::from_fastq("r1\nACGT\n+\nIIII\n").is_err());
        assert!(ReadRecord::from_fastq("@r1\nACGT\nIIII\n").is_err());
        assert!(ReadRecord::from_fastq("@r1\nACGT\n+\nIII\n").is_err());
    }

    #[test]
    fn alignment_validates_cigar_length() {
        let r = read("ACGTA");
        let cig: Cigar = "3M1D2M".parse().unwrap();
        assert!(AlignmentRecord::new(r.clone(), 0, 10, cig, 60, Strand::Forward).is_ok());
        let bad: Cigar = "3M".parse().unwrap();
        assert!(AlignmentRecord::new(r, 0, 10, bad, 60, Strand::Forward).is_err());
    }

    #[test]
    fn end_and_overlap() {
        let r = read("ACGTA");
        let cig: Cigar = "3M1D2M".parse().unwrap();
        let a = AlignmentRecord::new(r, 0, 10, cig, 60, Strand::Forward).unwrap();
        assert_eq!(a.end(), 16);
        assert!(a.overlaps(15, 20));
        assert!(a.overlaps(0, 11));
        assert!(!a.overlaps(16, 20));
        assert!(!a.overlaps(0, 10));
    }
}
