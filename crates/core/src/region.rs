//! Genome regions: the unit of task-level parallelism for the
//! variant-calling kernels (dbg, phmm, pileup, nn-variant).

use crate::record::AlignmentRecord;
use crate::seq::DnaSeq;

/// A half-open interval `[start, end)` on a reference contig.
///
/// # Examples
///
/// ```
/// use gb_core::region::Region;
/// let r = Region::new(0, 100, 250);
/// assert_eq!(r.len(), 150);
/// assert!(r.contains(100) && !r.contains(250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Region {
    /// Index of the reference contig.
    pub ref_id: usize,
    /// 0-based inclusive start.
    pub start: usize,
    /// 0-based exclusive end.
    pub end: usize,
}

impl Region {
    /// Creates a region; `end` is clamped to be at least `start`.
    pub fn new(ref_id: usize, start: usize, end: usize) -> Region {
        Region {
            ref_id,
            start,
            end: end.max(start),
        }
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the region spans zero bases.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether reference position `pos` lies inside the region.
    pub fn contains(&self, pos: usize) -> bool {
        pos >= self.start && pos < self.end
    }

    /// Whether this region overlaps `other` (same contig required).
    pub fn overlaps(&self, other: &Region) -> bool {
        self.ref_id == other.ref_id && self.start < other.end && other.start < self.end
    }

    /// Splits `[0, total_len)` into consecutive windows of `window` bases
    /// (the last window may be shorter), as the pileup kernel does with its
    /// 100-kb regions.
    pub fn tile(ref_id: usize, total_len: usize, window: usize) -> Vec<Region> {
        assert!(window > 0, "window must be positive");
        let mut out = Vec::with_capacity(total_len.div_ceil(window));
        let mut s = 0;
        while s < total_len {
            out.push(Region::new(ref_id, s, (s + window).min(total_len)));
            s += window;
        }
        out
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ref{}:{}-{}", self.ref_id, self.start, self.end)
    }
}

/// A region together with its reference sequence and the reads aligned to
/// it — the input task for re-assembly (dbg) and likelihood (phmm) kernels.
#[derive(Debug, Clone)]
pub struct RegionTask {
    /// The region of the reference this task covers.
    pub region: Region,
    /// Reference bases for `region` (length `region.len()`).
    pub ref_seq: DnaSeq,
    /// Alignments overlapping the region.
    pub reads: Vec<AlignmentRecord>,
}

impl RegionTask {
    /// Total read bases in the task — the paper's per-task "work" proxy for
    /// the Fig. 4 imbalance study.
    pub fn read_bases(&self) -> usize {
        self.reads.iter().map(|r| r.read.len()).sum()
    }
}

impl gb_substrate::Codec for Region {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.ref_id);
        e.put_usize(self.start);
        e.put_usize(self.end);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Region> {
        Some(Region {
            ref_id: d.get_usize()?,
            start: d.get_usize()?,
            end: d.get_usize()?,
        })
    }
}

impl gb_substrate::Codec for RegionTask {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.region, e);
        gb_substrate::Codec::encode(&self.ref_seq, e);
        gb_substrate::Codec::encode(&self.reads, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<RegionTask> {
        Some(RegionTask {
            region: gb_substrate::Codec::decode(d)?,
            ref_seq: gb_substrate::Codec::decode(d)?,
            reads: gb_substrate::Codec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_covers_exactly() {
        let tiles = Region::tile(0, 250, 100);
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles[0], Region::new(0, 0, 100));
        assert_eq!(tiles[2], Region::new(0, 200, 250));
        let total: usize = tiles.iter().map(Region::len).sum();
        assert_eq!(total, 250);
    }

    #[test]
    fn tile_empty_genome() {
        assert!(Region::tile(0, 0, 100).is_empty());
    }

    #[test]
    fn overlap_requires_same_contig() {
        let a = Region::new(0, 0, 10);
        let b = Region::new(1, 5, 15);
        let c = Region::new(0, 9, 15);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(!a.overlaps(&Region::new(0, 10, 20)));
    }

    #[test]
    fn end_clamped() {
        let r = Region::new(0, 10, 5);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Region::new(2, 5, 9).to_string(), "ref2:5-9");
    }
}
