//! Owned DNA sequences over the 2-bit code alphabet.

use crate::alphabet::{complement_code, decode_code, encode_ascii};
use crate::error::Error;

/// An owned DNA sequence stored as one 2-bit code (`0..=3`) per byte.
///
/// This is the working representation used by every kernel in the suite.
/// The byte-per-base layout (rather than packed 2-bit) matches what
/// BWA-MEM2 / minimap2 use for their inner loops; the packed form lives in
/// [`crate::packed::PackedSeq`] and is used where memory footprint matters
/// (FM-index text, k-mer tables).
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// let s: DnaSeq = "ACGT".parse()?;
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.reverse_complement().to_string(), "ACGT");
/// # Ok::<(), gb_core::error::Error>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DnaSeq {
    codes: Vec<u8>,
}

impl DnaSeq {
    /// Creates an empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq { codes: Vec::new() }
    }

    /// Creates a sequence from raw 2-bit codes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBase`] if any code is `> 3`.
    pub fn from_codes(codes: Vec<u8>) -> Result<DnaSeq, Error> {
        if let Some(pos) = codes.iter().position(|&c| c > 3) {
            return Err(Error::InvalidBase {
                pos,
                byte: codes[pos],
            });
        }
        Ok(DnaSeq { codes })
    }

    /// Creates a sequence from raw 2-bit codes without validating them.
    ///
    /// This is a safe function, but passing codes `> 3` violates the type's
    /// invariant and later operations may panic.
    pub fn from_codes_unchecked(codes: Vec<u8>) -> DnaSeq {
        debug_assert!(codes.iter().all(|&c| c < 4));
        DnaSeq { codes }
    }

    /// Parses an ASCII nucleotide string (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBase`] on the first non-`ACGT` byte.
    pub fn from_ascii(ascii: &[u8]) -> Result<DnaSeq, Error> {
        let mut codes = Vec::with_capacity(ascii.len());
        for (pos, &b) in ascii.iter().enumerate() {
            match encode_ascii(b) {
                Some(c) => codes.push(c),
                None => return Err(Error::InvalidBase { pos, byte: b }),
            }
        }
        Ok(DnaSeq { codes })
    }

    /// The number of bases.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the sequence contains no bases.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The 2-bit codes as a slice.
    pub fn as_codes(&self) -> &[u8] {
        &self.codes
    }

    /// Consumes the sequence and returns the underlying code vector.
    pub fn into_codes(self) -> Vec<u8> {
        self.codes
    }

    /// The code at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    // PANIC-FREE: documented `# Panics` bound-check via the slice index;
    // kernel callers index in `0..len()`.
    pub fn code_at(&self, i: usize) -> u8 {
        self.codes[i]
    }

    /// Appends a single code.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `code > 3`.
    pub fn push_code(&mut self, code: u8) {
        debug_assert!(code < 4);
        self.codes.push(code);
    }

    /// A sub-sequence covering `range` (clamped to the sequence length).
    pub fn slice(&self, start: usize, end: usize) -> DnaSeq {
        let end = end.min(self.codes.len());
        let start = start.min(end);
        DnaSeq {
            codes: self.codes[start..end].to_vec(),
        }
    }

    /// The reverse complement of this sequence.
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq {
            codes: self
                .codes
                .iter()
                .rev()
                .map(|&c| complement_code(c))
                .collect(),
        }
    }

    /// ASCII rendering of the sequence (uppercase).
    pub fn to_ascii(&self) -> Vec<u8> {
        self.codes.iter().map(|&c| decode_code(c)).collect()
    }

    /// Iterates over the packed `u64` value of each `k`-mer, 5'→3'.
    ///
    /// Yields `(offset, kmer)` pairs. Returns an empty iterator when
    /// `k == 0`, `k > 32`, or the sequence is shorter than `k`.
    pub fn kmers(&self, k: usize) -> Kmers<'_> {
        Kmers {
            codes: &self.codes,
            k,
            pos: 0,
            cur: 0,
        }
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = Error;

    fn from_str(s: &str) -> Result<DnaSeq, Error> {
        DnaSeq::from_ascii(s.as_bytes())
    }
}

impl std::fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &c in &self.codes {
            write!(f, "{}", decode_code(c) as char)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for DnaSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DnaSeq(\"{self}\")")
    }
}

impl FromIterator<u8> for DnaSeq {
    /// Collects 2-bit codes into a sequence.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any code is `> 3`.
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> DnaSeq {
        let codes: Vec<u8> = iter.into_iter().collect();
        DnaSeq::from_codes_unchecked(codes)
    }
}

impl Extend<u8> for DnaSeq {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for c in iter {
            self.push_code(c);
        }
    }
}

/// Iterator over packed `u64` k-mers of a sequence; see [`DnaSeq::kmers`].
#[derive(Debug, Clone)]
pub struct Kmers<'a> {
    codes: &'a [u8],
    k: usize,
    pos: usize,
    cur: u64,
}

impl<'a> Iterator for Kmers<'a> {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        if self.k == 0 || self.k > 32 || self.codes.len() < self.k {
            return None;
        }
        if self.pos == 0 {
            // Prime the rolling value with the first k-1 bases.
            for &c in &self.codes[..self.k - 1] {
                self.cur = (self.cur << 2) | u64::from(c);
            }
        }
        let i = self.pos;
        if i + self.k > self.codes.len() {
            return None;
        }
        let mask = if self.k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * self.k)) - 1
        };
        self.cur = ((self.cur << 2) | u64::from(self.codes[i + self.k - 1])) & mask;
        self.pos += 1;
        Some((i, self.cur))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.k == 0 || self.k > 32 || self.codes.len() < self.k {
            return (0, Some(0));
        }
        let n = self.codes.len() - self.k + 1 - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Kmers<'_> {}

/// Packs up to 32 codes into a `u64`, first base in the most significant
/// position (lexicographic order of k-mers equals numeric order).
///
/// # Panics
///
/// Panics if `codes.len() > 32`.
pub fn pack_kmer(codes: &[u8]) -> u64 {
    assert!(codes.len() <= 32, "k-mer longer than 32 bases");
    let mut v = 0u64;
    for &c in codes {
        debug_assert!(c < 4);
        v = (v << 2) | u64::from(c);
    }
    v
}

/// Unpacks a `u64` produced by [`pack_kmer`] back into `k` codes.
// PANIC-FREE: `k <= 32` is the packed-kmer representation invariant, fixed
// at kernel-config time (never data-dependent).
pub fn unpack_kmer(kmer: u64, k: usize) -> Vec<u8> {
    assert!(k <= 32);
    (0..k)
        .map(|i| ((kmer >> (2 * (k - 1 - i))) & 3) as u8)
        .collect()
}

/// The reverse complement of a packed `k`-mer.
// PANIC-FREE: `k` bound is the packed-kmer representation invariant, fixed
// at kernel-config time (never data-dependent).
pub fn revcomp_kmer(kmer: u64, k: usize) -> u64 {
    assert!(k <= 32 && k > 0);
    let mut out = 0u64;
    let mut v = kmer;
    for _ in 0..k {
        out = (out << 2) | (3 - (v & 3));
        v >>= 2;
    }
    out
}

/// The canonical form of a packed k-mer: the smaller of the k-mer and its
/// reverse complement. Used by k-mer counting so both strands collapse to
/// one key.
pub fn canonical_kmer(kmer: u64, k: usize) -> u64 {
    kmer.min(revcomp_kmer(kmer, k))
}

impl gb_substrate::Codec for DnaSeq {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_bytes(&self.codes);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<DnaSeq> {
        let codes = d.get_bytes()?;
        if codes.iter().any(|&c| c > 3) {
            return None;
        }
        Some(DnaSeq {
            codes: codes.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let s: DnaSeq = "acgtACGT".parse().unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn parse_rejects_ambiguity() {
        let err = "ACGN".parse::<DnaSeq>().unwrap_err();
        match err {
            Error::InvalidBase { pos, byte } => {
                assert_eq!(pos, 3);
                assert_eq!(byte, b'N');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reverse_complement_known() {
        let s: DnaSeq = "AACGT".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "ACGTT");
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s: DnaSeq = "ACGGTTAACCGG".parse().unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn slice_clamps() {
        let s: DnaSeq = "ACGT".parse().unwrap();
        assert_eq!(s.slice(1, 100).to_string(), "CGT");
        assert_eq!(s.slice(3, 2).to_string(), "");
    }

    #[test]
    fn kmers_roll_correctly() {
        let s: DnaSeq = "ACGTA".parse().unwrap();
        let got: Vec<(usize, u64)> = s.kmers(3).collect();
        let want: Vec<(usize, u64)> = vec![
            (0, pack_kmer(&[0, 1, 2])),
            (1, pack_kmer(&[1, 2, 3])),
            (2, pack_kmer(&[2, 3, 0])),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn kmers_degenerate_cases() {
        let s: DnaSeq = "ACG".parse().unwrap();
        assert_eq!(s.kmers(0).count(), 0);
        assert_eq!(s.kmers(4).count(), 0);
        assert_eq!(s.kmers(33).count(), 0);
        assert_eq!(s.kmers(3).count(), 1);
    }

    #[test]
    fn kmers_k32_masking() {
        let codes = vec![3u8; 40];
        let s = DnaSeq::from_codes(codes).unwrap();
        // All-T 32-mer is u64::MAX; rolling must not overflow into garbage.
        for (_, km) in s.kmers(32) {
            assert_eq!(km, u64::MAX);
        }
        assert_eq!(s.kmers(32).count(), 9);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let codes = vec![0u8, 1, 2, 3, 3, 2, 1, 0];
        assert_eq!(unpack_kmer(pack_kmer(&codes), codes.len()), codes);
    }

    #[test]
    fn revcomp_kmer_matches_seq_revcomp() {
        let s: DnaSeq = "ACGTTGCA".parse().unwrap();
        let packed = pack_kmer(s.as_codes());
        let rc = s.reverse_complement();
        assert_eq!(revcomp_kmer(packed, s.len()), pack_kmer(rc.as_codes()));
    }

    #[test]
    fn canonical_is_min_of_pair() {
        let s: DnaSeq = "AAAC".parse().unwrap();
        let km = pack_kmer(s.as_codes());
        assert_eq!(canonical_kmer(km, 4), km); // AAAC < GTTT
        let t: DnaSeq = "GTTT".parse().unwrap();
        assert_eq!(canonical_kmer(pack_kmer(t.as_codes()), 4), km);
    }

    #[test]
    fn from_codes_validates() {
        assert!(DnaSeq::from_codes(vec![0, 1, 4]).is_err());
        assert!(DnaSeq::from_codes(vec![0, 1, 3]).is_ok());
    }
}
