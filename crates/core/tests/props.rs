//! Property-based tests for gb-core invariants.

use gb_core::cigar::Cigar;
use gb_core::quality::Phred;
use gb_core::seq::{canonical_kmer, pack_kmer, revcomp_kmer, unpack_kmer, DnaSeq};
use proptest::prelude::*;

fn codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 0..max_len)
}

proptest! {
    #[test]
    fn seq_ascii_round_trip(c in codes(200)) {
        let s = DnaSeq::from_codes(c.clone()).unwrap();
        let back = DnaSeq::from_ascii(&s.to_ascii()).unwrap();
        prop_assert_eq!(back.as_codes(), &c[..]);
    }

    #[test]
    fn revcomp_is_involution(c in codes(200)) {
        let s = DnaSeq::from_codes(c).unwrap();
        prop_assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn revcomp_preserves_base_pairing(c in codes(100)) {
        let s = DnaSeq::from_codes(c).unwrap();
        let rc = s.reverse_complement();
        for i in 0..s.len() {
            prop_assert_eq!(s.code_at(i) + rc.code_at(s.len() - 1 - i), 3);
        }
    }

    #[test]
    fn kmer_pack_unpack_round_trip(c in codes(33).prop_filter("nonempty", |c| !c.is_empty())) {
        let k = c.len().min(32);
        let c = &c[..k];
        prop_assert_eq!(unpack_kmer(pack_kmer(c), k), c.to_vec());
    }

    #[test]
    fn rolling_kmers_match_packing(c in codes(120), k in 1usize..16) {
        let s = DnaSeq::from_codes(c).unwrap();
        for (pos, km) in s.kmers(k) {
            prop_assert_eq!(km, pack_kmer(&s.as_codes()[pos..pos + k]));
        }
    }

    #[test]
    fn canonical_kmer_is_strand_invariant(c in codes(32).prop_filter("nonempty", |c| !c.is_empty())) {
        let k = c.len();
        let km = pack_kmer(&c);
        prop_assert_eq!(canonical_kmer(km, k), canonical_kmer(revcomp_kmer(km, k), k));
    }

    #[test]
    fn phred_round_trip(q in 0u8..=93) {
        let p = Phred::new(q);
        prop_assert_eq!(Phred::from_ascii(p.to_ascii()), p);
        prop_assert!(p.error_prob() > 0.0 && p.error_prob() <= 1.0);
    }

    #[test]
    fn cigar_display_parse_round_trip(ops in proptest::collection::vec((1u32..50, 0usize..4), 1..20)) {
        use gb_core::cigar::CigarOp;
        let kinds = [CigarOp::Match, CigarOp::Ins, CigarOp::Del, CigarOp::SoftClip];
        let mut c = Cigar::new();
        for (n, k) in ops {
            c.push(n, kinds[k]);
        }
        let parsed: Cigar = c.to_string().parse().unwrap();
        prop_assert_eq!(parsed, c);
    }

    #[test]
    fn cigar_walk_consumes_exact_lengths(ops in proptest::collection::vec((1u32..20, 0usize..4), 1..15)) {
        use gb_core::cigar::CigarOp;
        let kinds = [CigarOp::Match, CigarOp::Ins, CigarOp::Del, CigarOp::SoftClip];
        let mut c = Cigar::new();
        for (n, k) in ops {
            c.push(n, kinds[k]);
        }
        let mut q_seen = 0usize;
        let mut r_seen = 0usize;
        for step in c.walk() {
            prop_assert!(step.query_off <= c.query_len());
            prop_assert!(step.ref_off <= c.ref_len());
            if step.op.consumes_query() {
                q_seen += 1;
            }
            if step.op.consumes_ref() {
                r_seen += 1;
            }
        }
        // Soft clips are skipped by the walk but consume query length.
        let clip: usize = c
            .ops()
            .iter()
            .filter(|(_, op)| *op == CigarOp::SoftClip)
            .map(|&(n, _)| n as usize)
            .sum();
        prop_assert_eq!(q_seen + clip, c.query_len());
        prop_assert_eq!(r_seen, c.ref_len());
    }

    #[test]
    fn packed_seq_round_trip(c in codes(300)) {
        let s = DnaSeq::from_codes(c).unwrap();
        let p = gb_core::packed::PackedSeq::from_seq(&s);
        prop_assert_eq!(p.unpack(), s);
    }
}
