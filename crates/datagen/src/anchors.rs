//! Anchor generation for the chaining kernel.
//!
//! Minimap2's chaining stage consumes *anchors*: seed matches
//! `(target_pos, query_pos, length)` shared between two sequences. This
//! module provides both a faithful generator (minimizer matching between
//! two simulated long reads, exactly how minimap2 finds anchors) and a
//! fast synthetic generator for large parameter sweeps.

use gb_core::seq::DnaSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One seed match between a target and a query sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Anchor {
    /// End position of the seed on the target read (minimap2's `x`).
    pub target_pos: u32,
    /// End position of the seed on the query read (minimap2's `y`).
    pub query_pos: u32,
    /// Seed length (minimap2's `w`).
    pub length: u32,
}

/// The anchors shared by one read pair — a single chaining task.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnchorSet {
    /// Anchors sorted by `(target_pos, query_pos)` as chaining requires.
    pub anchors: Vec<Anchor>,
}

impl AnchorSet {
    /// Wraps and sorts a raw anchor list.
    pub fn new(mut anchors: Vec<Anchor>) -> AnchorSet {
        anchors.sort_unstable();
        AnchorSet { anchors }
    }

    /// Number of anchors (the chain kernel's per-task work measure).
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Whether the task has no anchors.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

/// `(position, packed k-mer)` minimizers of `seq` with window `w`.
///
/// A minimizer is the smallest k-mer (by a hashed order, to avoid
/// poly-A domination) in each window of `w` consecutive k-mers.
///
/// # Panics
///
/// Panics if `k == 0 || k > 32` or `w == 0`.
pub fn minimizers(seq: &DnaSeq, k: usize, w: usize) -> Vec<(u32, u64)> {
    assert!(k > 0 && k <= 32, "k must be in 1..=32");
    assert!(w > 0, "window must be positive");
    let kmers: Vec<(usize, u64)> = seq.kmers(k).collect();
    if kmers.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<(u32, u64)> = Vec::new();
    let n = kmers.len();
    for win_start in 0..n.saturating_sub(w - 1) {
        let window = &kmers[win_start..win_start + w];
        let &(pos, km) = window
            .iter()
            .min_by_key(|&&(_, km)| hash64(km))
            .expect("window is non-empty");
        if out.last() != Some(&(pos as u32, km)) {
            out.push((pos as u32, km));
        }
    }
    if n < w {
        // Short sequence: one minimizer over the whole thing.
        let &(pos, km) = kmers
            .iter()
            .min_by_key(|&&(_, km)| hash64(km))
            .expect("non-empty");
        out.push((pos as u32, km));
    }
    out
}

fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x ^ (x >> 31)
}

/// Computes the anchors between `target` and `query` as matching
/// minimizers — the faithful minimap2-style front-end for chaining.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_datagen::anchors::anchors_between;
/// let t: DnaSeq = "ACGTACGGTTACGTAGGCATTACGGATCCAGT".parse()?;
/// let anchors = anchors_between(&t, &t, 8, 4);
/// assert!(!anchors.is_empty());
/// // Self-comparison puts every anchor on the main diagonal.
/// assert!(anchors.anchors.iter().any(|a| a.target_pos == a.query_pos));
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn anchors_between(target: &DnaSeq, query: &DnaSeq, k: usize, w: usize) -> AnchorSet {
    let tmins = minimizers(target, k, w);
    let qmins = minimizers(query, k, w);
    let mut qindex: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
    for &(pos, km) in &qmins {
        qindex.entry(km).or_default().push(pos);
    }
    let mut anchors = Vec::new();
    for &(tpos, km) in &tmins {
        if let Some(qs) = qindex.get(&km) {
            for &qpos in qs {
                anchors.push(Anchor {
                    target_pos: tpos + k as u32 - 1,
                    query_pos: qpos + k as u32 - 1,
                    length: k as u32,
                });
            }
        }
    }
    AnchorSet::new(anchors)
}

/// Parameters for [`synthetic_anchor_sets`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorSimConfig {
    /// Number of read-pair tasks.
    pub num_pairs: usize,
    /// Mean anchors per task.
    pub mean_anchors: usize,
    /// Seed length reported on each anchor.
    pub seed_len: u32,
    /// Fraction of spurious (off-diagonal) anchors.
    pub noise_fraction: f64,
}

impl Default for AnchorSimConfig {
    fn default() -> AnchorSimConfig {
        AnchorSimConfig {
            num_pairs: 100,
            mean_anchors: 500,
            seed_len: 15,
            noise_fraction: 0.15,
        }
    }
}

/// Generates synthetic chaining tasks: mostly co-linear anchors along a
/// random diagonal (a true overlap) plus off-diagonal noise, with
/// long-tailed per-task anchor counts (the Fig. 4 imbalance source).
pub fn synthetic_anchor_sets(config: &AnchorSimConfig, seed: u64) -> Vec<AnchorSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..config.num_pairs)
        .map(|_| {
            // Long-tailed task size: u^3 scaling gives a few big tasks.
            let u: f64 = rng.gen();
            let n = ((config.mean_anchors as f64) * (0.25 + 3.0 * u * u * u)) as usize;
            let n = n.max(2);
            let diag = rng.gen_range(-2000i64..2000);
            let mut anchors = Vec::with_capacity(n);
            let mut t = rng.gen_range(0..500u32);
            for _ in 0..n {
                t += rng.gen_range(5..60);
                let (tp, qp) = if rng.gen::<f64>() < config.noise_fraction {
                    (t, rng.gen_range(0..50_000u32))
                } else {
                    let jitter = rng.gen_range(-20i64..20);
                    let q = i64::from(t) - diag + jitter;
                    (t, q.clamp(0, 1 << 30) as u32)
                };
                anchors.push(Anchor {
                    target_pos: tp,
                    query_pos: qp,
                    length: config.seed_len,
                });
            }
            AnchorSet::new(anchors)
        })
        .collect()
}

impl gb_substrate::Codec for Anchor {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_u32(self.target_pos);
        e.put_u32(self.query_pos);
        e.put_u32(self.length);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Anchor> {
        Some(Anchor {
            target_pos: d.get_u32()?,
            query_pos: d.get_u32()?,
            length: d.get_u32()?,
        })
    }
}

impl gb_substrate::Codec for AnchorSet {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.anchors, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<AnchorSet> {
        // `new` re-sorts, restoring the sortedness invariant chaining
        // relies on (a no-op for entries this crate encoded).
        Some(AnchorSet::new(gb_substrate::Codec::decode(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{Genome, GenomeConfig};

    #[test]
    fn minimizers_are_subset_of_kmers() {
        let g = Genome::generate(
            &GenomeConfig {
                length: 2000,
                ..Default::default()
            },
            1,
        );
        let s = g.contig(0);
        let kmers: std::collections::HashMap<usize, u64> = s.kmers(15).collect();
        for (pos, km) in minimizers(s, 15, 10) {
            assert_eq!(kmers.get(&(pos as usize)), Some(&km));
        }
    }

    #[test]
    fn minimizer_density_near_two_over_w_plus_one() {
        let g = Genome::generate(
            &GenomeConfig {
                length: 50_000,
                repeat_fraction: 0.0,
                ..Default::default()
            },
            2,
        );
        let s = g.contig(0);
        let w = 10;
        let m = minimizers(s, 15, w).len() as f64;
        let expected = 2.0 / (w as f64 + 1.0) * s.len() as f64;
        assert!(
            (m - expected).abs() / expected < 0.25,
            "density {m} vs expected {expected}"
        );
    }

    #[test]
    fn overlapping_reads_share_diagonal_anchors() {
        let g = Genome::generate(
            &GenomeConfig {
                length: 5000,
                ..Default::default()
            },
            3,
        );
        let a = g.contig(0).slice(0, 3000);
        let b = g.contig(0).slice(1000, 4000);
        let anchors = anchors_between(&a, &b, 15, 8);
        assert!(!anchors.is_empty());
        // True overlap diagonal: target - query = 1000.
        let on_diag = anchors
            .anchors
            .iter()
            .filter(|x| i64::from(x.target_pos) - i64::from(x.query_pos) == 1000)
            .count();
        assert!(
            on_diag * 2 > anchors.len(),
            "only {on_diag}/{} anchors on the true diagonal",
            anchors.len()
        );
    }

    #[test]
    fn synthetic_sets_are_sorted_and_long_tailed() {
        let sets = synthetic_anchor_sets(&AnchorSimConfig::default(), 9);
        assert_eq!(sets.len(), 100);
        for s in &sets {
            assert!(s.anchors.windows(2).all(|w| w[0] <= w[1]));
        }
        let sizes: Vec<usize> = sets.iter().map(AnchorSet::len).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(max / mean > 2.0, "no long tail: max {max}, mean {mean}");
    }

    #[test]
    fn empty_and_short_sequences() {
        let s: DnaSeq = "ACG".parse().unwrap();
        assert!(minimizers(&s, 8, 5).is_empty());
        let t: DnaSeq = "ACGTACGTAA".parse().unwrap();
        // Fewer k-mers than the window: still yields one minimizer.
        assert_eq!(minimizers(&t, 8, 10).len(), 1);
    }
}
