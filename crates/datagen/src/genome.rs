//! Synthetic reference genomes.
//!
//! Stands in for GRCh38 / chromosome subsets / the *S. aureus* and
//! *C. elegans* references used by the paper's datasets. The generator
//! mixes uniform background sequence with tandem and interspersed repeats
//! so that index structures (FM-index, k-mer tables, minimizers) see
//! realistic multiplicity rather than pure random text.

use gb_core::seq::DnaSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`Genome::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenomeConfig {
    /// Total bases across all contigs.
    pub length: usize,
    /// Number of contigs the genome is split into.
    pub contigs: usize,
    /// Fraction of bases covered by repeat copies (0 disables repeats).
    pub repeat_fraction: f64,
    /// Length of each repeat unit.
    pub repeat_unit_len: usize,
    /// GC content in `[0, 1]` (0.41 is human-like).
    pub gc_content: f64,
}

impl Default for GenomeConfig {
    fn default() -> GenomeConfig {
        GenomeConfig {
            length: 100_000,
            contigs: 1,
            repeat_fraction: 0.15,
            repeat_unit_len: 300,
            gc_content: 0.41,
        }
    }
}

/// A multi-contig reference genome.
///
/// # Examples
///
/// ```
/// use gb_datagen::genome::{Genome, GenomeConfig};
/// let g = Genome::generate(&GenomeConfig { length: 10_000, ..Default::default() }, 42);
/// assert_eq!(g.total_len(), 10_000);
/// let again = Genome::generate(&GenomeConfig { length: 10_000, ..Default::default() }, 42);
/// assert_eq!(g.contig(0), again.contig(0)); // seeded => reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Genome {
    contigs: Vec<DnaSeq>,
}

impl Genome {
    /// Generates a genome deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config.contigs == 0` or `config.length == 0`.
    pub fn generate(config: &GenomeConfig, seed: u64) -> Genome {
        assert!(
            config.contigs > 0 && config.length > 0,
            "genome must be non-empty"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let per = config.length / config.contigs;
        let mut contigs = Vec::with_capacity(config.contigs);
        for ci in 0..config.contigs {
            let len = if ci + 1 == config.contigs {
                config.length - per * ci
            } else {
                per
            };
            contigs.push(generate_contig(len, config, &mut rng));
        }
        Genome { contigs }
    }

    /// Wraps explicit contigs (for tests and examples).
    pub fn from_contigs(contigs: Vec<DnaSeq>) -> Genome {
        Genome { contigs }
    }

    /// Number of contigs.
    pub fn num_contigs(&self) -> usize {
        self.contigs.len()
    }

    /// The sequence of contig `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn contig(&self, i: usize) -> &DnaSeq {
        &self.contigs[i]
    }

    /// All contigs.
    pub fn contigs(&self) -> &[DnaSeq] {
        &self.contigs
    }

    /// Total bases across contigs.
    pub fn total_len(&self) -> usize {
        self.contigs.iter().map(DnaSeq::len).sum()
    }

    /// Concatenation of all contigs (what the FM-index indexes).
    pub fn concat(&self) -> DnaSeq {
        let mut codes = Vec::with_capacity(self.total_len());
        for c in &self.contigs {
            codes.extend_from_slice(c.as_codes());
        }
        DnaSeq::from_codes_unchecked(codes)
    }
}

/// Draws one base code with the configured GC bias.
pub(crate) fn random_base(rng: &mut StdRng, gc: f64) -> u8 {
    let r: f64 = rng.gen();
    if r < gc {
        // C or G
        if rng.gen::<bool>() {
            1
        } else {
            2
        }
    } else if rng.gen::<bool>() {
        0
    } else {
        3
    }
}

fn generate_contig(len: usize, config: &GenomeConfig, rng: &mut StdRng) -> DnaSeq {
    let mut codes: Vec<u8> = (0..len)
        .map(|_| random_base(rng, config.gc_content))
        .collect();
    // Overlay repeat copies: pick a library of units and paste mutated
    // copies at random positions until the target repeat fraction is met.
    if config.repeat_fraction > 0.0 && len > config.repeat_unit_len * 2 {
        let unit_len = config.repeat_unit_len;
        let n_units = 4.max(len / 50_000);
        let units: Vec<Vec<u8>> = (0..n_units)
            .map(|_| {
                (0..unit_len)
                    .map(|_| random_base(rng, config.gc_content))
                    .collect()
            })
            .collect();
        let target = (len as f64 * config.repeat_fraction) as usize;
        let mut covered = 0;
        while covered < target {
            let unit = &units[rng.gen_range(0..units.len())];
            let pos = rng.gen_range(0..len - unit_len);
            for (i, &b) in unit.iter().enumerate() {
                // 2% divergence between repeat copies.
                codes[pos + i] = if rng.gen::<f64>() < 0.02 {
                    random_base(rng, 0.5)
                } else {
                    b
                };
            }
            covered += unit_len;
        }
    }
    DnaSeq::from_codes_unchecked(codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenomeConfig {
            length: 5000,
            ..Default::default()
        };
        assert_eq!(Genome::generate(&cfg, 7), Genome::generate(&cfg, 7));
        assert_ne!(Genome::generate(&cfg, 7), Genome::generate(&cfg, 8));
    }

    #[test]
    fn lengths_add_up_across_contigs() {
        let cfg = GenomeConfig {
            length: 10_001,
            contigs: 3,
            ..Default::default()
        };
        let g = Genome::generate(&cfg, 1);
        assert_eq!(g.num_contigs(), 3);
        assert_eq!(g.total_len(), 10_001);
        assert_eq!(g.concat().len(), 10_001);
    }

    #[test]
    fn gc_content_is_respected() {
        let cfg = GenomeConfig {
            length: 200_000,
            repeat_fraction: 0.0,
            gc_content: 0.6,
            ..Default::default()
        };
        let g = Genome::generate(&cfg, 3);
        let gc = g
            .contig(0)
            .as_codes()
            .iter()
            .filter(|&&c| c == 1 || c == 2)
            .count() as f64
            / g.total_len() as f64;
        assert!((gc - 0.6).abs() < 0.01, "gc = {gc}");
    }

    #[test]
    fn repeats_create_duplicate_kmers() {
        let cfg = GenomeConfig {
            length: 50_000,
            repeat_fraction: 0.4,
            ..Default::default()
        };
        let g = Genome::generate(&cfg, 5);
        let mut counts = std::collections::HashMap::new();
        for (_, km) in g.contig(0).kmers(31) {
            *counts.entry(km).or_insert(0u32) += 1;
        }
        let dups = counts.values().filter(|&&c| c > 1).count();
        assert!(dups > 50, "expected repeated 31-mers, got {dups}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_length_panics() {
        let _ = Genome::generate(
            &GenomeConfig {
                length: 0,
                ..Default::default()
            },
            0,
        );
    }
}
