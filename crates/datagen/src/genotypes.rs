//! Synthetic population genotype matrices for the GRM kernel.
//!
//! Replaces the 1000 Genomes Phase 3 SNV data (2504 individuals,
//! 194K/1.07M markers). Only the matrix *shape* and allele-frequency
//! spectrum matter for the kernel's dense-compute behaviour; both are
//! reproduced here: `p_s` follows a low-frequency-skewed spectrum and each
//! genotype is a binomial(2, p_s) draw.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A genotype matrix: `individuals x markers` entries in `{0, 1, 2}`
/// (copies of the non-reference allele), plus per-marker allele
/// frequencies.
///
/// # Examples
///
/// ```
/// use gb_datagen::genotypes::GenotypeMatrix;
/// let g = GenotypeMatrix::generate(100, 500, 42);
/// assert_eq!(g.num_individuals(), 100);
/// assert_eq!(g.num_markers(), 500);
/// assert!(g.genotype(0, 0) <= 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GenotypeMatrix {
    individuals: usize,
    markers: usize,
    /// Row-major `individuals x markers`, values 0/1/2.
    data: Vec<u8>,
    /// Per-marker population allele frequency `p_s`.
    freqs: Vec<f32>,
}

impl GenotypeMatrix {
    /// Generates a matrix deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn generate(individuals: usize, markers: usize, seed: u64) -> GenotypeMatrix {
        assert!(
            individuals > 0 && markers > 0,
            "dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Allele-frequency spectrum skewed toward rare variants:
        // p = 0.01 + 0.49 * u^2 keeps p in [0.01, 0.5] with density
        // concentrated at low frequency, like real site-frequency spectra.
        let freqs: Vec<f32> = (0..markers)
            .map(|_| {
                let u: f64 = rng.gen();
                (0.01 + 0.49 * u * u) as f32
            })
            .collect();
        let mut data = vec![0u8; individuals * markers];
        for i in 0..individuals {
            for (s, &p) in freqs.iter().enumerate() {
                let a = u8::from(rng.gen::<f32>() < p);
                let b = u8::from(rng.gen::<f32>() < p);
                data[i * markers + s] = a + b;
            }
        }
        GenotypeMatrix {
            individuals,
            markers,
            data,
            freqs,
        }
    }

    /// Number of individuals (GRM dimension `N`).
    pub fn num_individuals(&self) -> usize {
        self.individuals
    }

    /// Number of SNV markers (`S`).
    pub fn num_markers(&self) -> usize {
        self.markers
    }

    /// Genotype of individual `i` at marker `s` (0, 1 or 2).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn genotype(&self, i: usize, s: usize) -> u8 {
        assert!(i < self.individuals && s < self.markers);
        self.data[i * self.markers + s]
    }

    /// All genotypes of individual `i`.
    // PANIC-FREE: documented precondition assert; the grm kernel iterates
    // `i in 0..individuals`.
    pub fn row(&self, i: usize) -> &[u8] {
        assert!(i < self.individuals);
        &self.data[i * self.markers..(i + 1) * self.markers]
    }

    /// Population allele frequencies per marker.
    pub fn freqs(&self) -> &[f32] {
        &self.freqs
    }

    /// Empirical allele frequency of marker `s` in this sample.
    pub fn empirical_freq(&self, s: usize) -> f64 {
        let sum: u64 = (0..self.individuals)
            .map(|i| u64::from(self.genotype(i, s)))
            .sum();
        sum as f64 / (2.0 * self.individuals as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            GenotypeMatrix::generate(10, 20, 1),
            GenotypeMatrix::generate(10, 20, 1)
        );
    }

    #[test]
    fn genotypes_in_range() {
        let g = GenotypeMatrix::generate(50, 100, 2);
        for i in 0..50 {
            for s in 0..100 {
                assert!(g.genotype(i, s) <= 2);
            }
        }
    }

    #[test]
    fn empirical_matches_population_freq() {
        let g = GenotypeMatrix::generate(2000, 20, 3);
        for s in 0..20 {
            let p = f64::from(g.freqs()[s]);
            let e = g.empirical_freq(s);
            assert!((e - p).abs() < 0.05, "marker {s}: pop {p} vs empirical {e}");
        }
    }

    #[test]
    fn spectrum_is_low_frequency_skewed() {
        let g = GenotypeMatrix::generate(2, 5000, 4);
        let rare = g.freqs().iter().filter(|&&p| p < 0.15).count();
        let common = g.freqs().iter().filter(|&&p| p > 0.35).count();
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = GenotypeMatrix::generate(0, 10, 0);
    }
}
