//! # gb-datagen
//!
//! Synthetic dataset generators for GenomicsBench-rs.
//!
//! The original suite ships real datasets (human short reads, Platinum
//! Genomes alignments, PacBio *C. elegans* reads, ONT FAST5 signals,
//! 1000 Genomes genotypes). None of those are available here, so each is
//! replaced by a seeded, deterministic simulator that preserves the
//! *workload shape* the kernels care about — sizes, error structure,
//! coverage, task imbalance and index multiplicity. The substitutions are
//! itemized in the repository's `DESIGN.md`.
//!
//! Modules:
//!
//! - [`genome`] — reference genomes with repeat structure,
//! - [`reads`] — Illumina-like and ONT-like read simulation with ground
//!   truth,
//! - [`variants`] — diploid sample construction (SNV/indel truth sets),
//! - [`regions`] — bucketing alignments into region tasks (dbg/phmm
//!   inputs),
//! - [`anchors`] — minimizer matching and synthetic chaining tasks,
//! - [`signal`] — nanopore pore model and raw-signal/event simulation,
//! - [`genotypes`] — population genotype matrices for the GRM kernel.
//!
//! # Examples
//!
//! ```
//! use gb_datagen::genome::{Genome, GenomeConfig};
//! use gb_datagen::reads::{simulate_reads, ReadSimConfig};
//!
//! let genome = Genome::generate(&GenomeConfig { length: 50_000, ..Default::default() }, 42);
//! let reads = simulate_reads(&genome, &ReadSimConfig::short(1000), 43);
//! assert_eq!(reads.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchors;
pub mod genome;
pub mod genotypes;
pub mod reads;
pub mod regions;
pub mod signal;
pub mod variants;
