//! Read simulators: Illumina-like short reads and ONT-like long reads.
//!
//! These replace the paper's SRR7733443 human short reads, PacBio
//! *C. elegans* reads and ONT NA12878/*S. aureus* reads. The simulators
//! are aligned-by-construction: each read remembers its true origin, which
//! lets downstream stages build alignment records without running a full
//! mapper, and lets tests verify mapper output.

use crate::genome::Genome;
use gb_core::cigar::{Cigar, CigarOp};
use gb_core::quality::Phred;
use gb_core::record::{AlignmentRecord, ReadRecord, Strand};
use gb_core::seq::DnaSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error profile of a simulated sequencing technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProfile {
    /// Per-base substitution probability.
    pub sub_rate: f64,
    /// Per-base insertion probability.
    pub ins_rate: f64,
    /// Per-base deletion probability.
    pub del_rate: f64,
}

impl ErrorProfile {
    /// Illumina-like: substitution-dominated, ~0.3% total error.
    pub fn illumina() -> ErrorProfile {
        ErrorProfile {
            sub_rate: 0.002,
            ins_rate: 0.0002,
            del_rate: 0.0002,
        }
    }

    /// ONT-like: 5–15% error with indels prominent; this picks ~9%.
    pub fn nanopore() -> ErrorProfile {
        ErrorProfile {
            sub_rate: 0.03,
            ins_rate: 0.03,
            del_rate: 0.03,
        }
    }

    /// No errors (for exact-match tests).
    pub fn perfect() -> ErrorProfile {
        ErrorProfile {
            sub_rate: 0.0,
            ins_rate: 0.0,
            del_rate: 0.0,
        }
    }

    /// Total per-base error probability.
    pub fn total(&self) -> f64 {
        self.sub_rate + self.ins_rate + self.del_rate
    }
}

/// Configuration of a read simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimConfig {
    /// Number of reads to draw.
    pub num_reads: usize,
    /// Mean read length (exact for short reads; mean of a geometric-ish
    /// mixture for long reads when `length_jitter > 0`).
    pub read_len: usize,
    /// Relative length spread in `[0, 1)`: lengths are drawn uniformly
    /// from `read_len * (1 ± jitter)`.
    pub length_jitter: f64,
    /// Error profile applied to each base.
    pub errors: ErrorProfile,
    /// Probability that a read comes from the reverse strand.
    pub revcomp_prob: f64,
}

impl ReadSimConfig {
    /// 151-bp Illumina-like reads (the paper's fmi/bsw datasets).
    pub fn short(num_reads: usize) -> ReadSimConfig {
        ReadSimConfig {
            num_reads,
            read_len: 151,
            length_jitter: 0.0,
            errors: ErrorProfile::illumina(),
            revcomp_prob: 0.5,
        }
    }

    /// Long noisy ONT-like reads (the paper's chain/spoa/abea datasets),
    /// scaled-down default of 3 kb mean length.
    pub fn long(num_reads: usize) -> ReadSimConfig {
        ReadSimConfig {
            num_reads,
            read_len: 3000,
            length_jitter: 0.6,
            errors: ErrorProfile::nanopore(),
            revcomp_prob: 0.5,
        }
    }
}

/// A simulated read with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedRead {
    /// The read as a sequencer would emit it.
    pub record: ReadRecord,
    /// Contig of origin.
    pub ref_id: usize,
    /// True 0-based start on the contig.
    pub true_pos: usize,
    /// True strand.
    pub strand: Strand,
    /// CIGAR describing the read against the reference (forward
    /// orientation, before any reverse-complementing).
    pub true_cigar: Cigar,
}

impl SimulatedRead {
    /// Converts the ground truth into an [`AlignmentRecord`] (a perfect
    /// mapper's output), with the stored read strand-corrected as in BAM.
    pub fn to_alignment(&self) -> AlignmentRecord {
        let mut read = self.record.clone();
        if self.strand == Strand::Reverse {
            let quals: Vec<Phred> = read.quals().iter().rev().copied().collect();
            read = ReadRecord::new(read.name.clone(), read.seq.reverse_complement(), quals)
                .expect("lengths preserved by reversal");
        }
        AlignmentRecord::new(
            read,
            self.ref_id,
            self.true_pos,
            self.true_cigar.clone(),
            60,
            self.strand,
        )
        .expect("simulator CIGAR matches read length")
    }
}

/// Draws `config.num_reads` reads from `genome`, deterministically from
/// `seed`.
///
/// # Examples
///
/// ```
/// use gb_datagen::genome::{Genome, GenomeConfig};
/// use gb_datagen::reads::{simulate_reads, ReadSimConfig};
/// let g = Genome::generate(&GenomeConfig { length: 20_000, ..Default::default() }, 1);
/// let reads = simulate_reads(&g, &ReadSimConfig::short(100), 2);
/// assert_eq!(reads.len(), 100);
/// // Indel errors can shift lengths by a base or two around the target.
/// assert!(reads.iter().all(|r| (145..=157).contains(&r.record.len())));
/// ```
pub fn simulate_reads(genome: &Genome, config: &ReadSimConfig, seed: u64) -> Vec<SimulatedRead> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(config.num_reads);
    for i in 0..config.num_reads {
        out.push(simulate_one(genome, config, i, &mut rng));
    }
    out
}

fn simulate_one(
    genome: &Genome,
    config: &ReadSimConfig,
    idx: usize,
    rng: &mut StdRng,
) -> SimulatedRead {
    let jitter = config.length_jitter.clamp(0.0, 0.99);
    let min_len = ((config.read_len as f64) * (1.0 - jitter)).max(20.0) as usize;
    let max_len = ((config.read_len as f64) * (1.0 + jitter)) as usize;
    let target_len = if max_len > min_len {
        rng.gen_range(min_len..=max_len)
    } else {
        min_len
    };

    // Pick a contig long enough, weighted by length.
    let total: usize = genome.contigs().iter().map(|c| c.len()).sum();
    let mut pick = rng.gen_range(0..total);
    let mut ref_id = 0;
    for (ci, c) in genome.contigs().iter().enumerate() {
        if pick < c.len() {
            ref_id = ci;
            break;
        }
        pick -= c.len();
    }
    let contig = genome.contig(ref_id);
    let span = target_len.min(contig.len());
    let start = if contig.len() > span {
        rng.gen_range(0..=contig.len() - span)
    } else {
        0
    };

    // Walk the reference span applying errors; build read + CIGAR.
    let mut codes = Vec::with_capacity(span + 8);
    let mut cigar = Cigar::new();
    let mut rpos = start;
    let end = start + span;
    while rpos < end {
        let e: f64 = rng.gen();
        if e < config.errors.del_rate {
            cigar.push(1, CigarOp::Del);
            rpos += 1;
        } else if e < config.errors.del_rate + config.errors.ins_rate {
            codes.push(rng.gen_range(0..4u8));
            cigar.push(1, CigarOp::Ins);
        } else {
            let base = contig.code_at(rpos);
            let b = if e < config.errors.del_rate + config.errors.ins_rate + config.errors.sub_rate
            {
                // Substitution to a different base.
                (base + rng.gen_range(1..4u8)) % 4
            } else {
                base
            };
            codes.push(b);
            cigar.push(1, CigarOp::Match);
            rpos += 1;
        }
    }
    if codes.is_empty() {
        // Degenerate all-deleted read; emit one matched base.
        codes.push(contig.code_at(start));
        cigar = Cigar::new();
        cigar.push(1, CigarOp::Match);
    }

    // Qualities: high in the middle, decaying toward the 3' end like real
    // Illumina profiles; long reads get a flat noisy quality.
    let n = codes.len();
    let quals: Vec<Phred> = (0..n)
        .map(|p| {
            let base_q = if config.errors.total() < 0.01 {
                37.0
            } else {
                12.0
            };
            let decay = if config.errors.total() < 0.01 {
                12.0 * (p as f64 / n as f64)
            } else {
                0.0
            };
            let noise: f64 = rng.gen_range(-2.0..2.0);
            Phred::new((base_q - decay + noise).clamp(2.0, 41.0) as u8)
        })
        .collect();

    let strand = if rng.gen::<f64>() < config.revcomp_prob {
        Strand::Reverse
    } else {
        Strand::Forward
    };
    let fwd_seq = DnaSeq::from_codes_unchecked(codes);
    let (seq, quals) = match strand {
        Strand::Forward => (fwd_seq, quals),
        Strand::Reverse => (
            fwd_seq.reverse_complement(),
            quals.into_iter().rev().collect(),
        ),
    };
    let record = ReadRecord::new(format!("read{idx}"), seq, quals).expect("same lengths");
    SimulatedRead {
        record,
        ref_id,
        true_pos: start,
        strand,
        true_cigar: cigar,
    }
}

/// A simulated paired-end fragment: two reads from opposite ends of one
/// insert, inner-facing (Illumina FR orientation).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedPair {
    /// Forward-strand mate (5' end of the insert).
    pub r1: SimulatedRead,
    /// Reverse-strand mate (3' end of the insert).
    pub r2: SimulatedRead,
    /// True insert (outer fragment) length.
    pub insert_len: usize,
}

/// Draws paired-end fragments: each pair shares an insert of
/// `insert_mean ± insert_sd` (uniform window), with `config.read_len`
/// mates at either end.
///
/// # Panics
///
/// Panics if the genome's first contig is shorter than the maximum
/// insert.
pub fn simulate_pairs(
    genome: &Genome,
    config: &ReadSimConfig,
    insert_mean: usize,
    insert_sd: usize,
    seed: u64,
) -> Vec<SimulatedPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let contig = genome.contig(0);
    let max_insert = insert_mean + 2 * insert_sd;
    assert!(
        contig.len() > max_insert,
        "contig shorter than the maximum insert"
    );
    let mut out = Vec::with_capacity(config.num_reads / 2);
    for i in 0..config.num_reads / 2 {
        let lo = insert_mean
            .saturating_sub(2 * insert_sd)
            .max(config.read_len);
        let insert_len = rng.gen_range(lo..=max_insert);
        let start = rng.gen_range(0..contig.len() - insert_len);
        // Each mate is simulated over exactly its end of the insert, so
        // the simulator's forced start-0 pins it there.
        let one = |src_start: usize, revcomp: bool, which: &str, rng: &mut StdRng| {
            let src = contig.slice(src_start, src_start + config.read_len);
            let sub_genome = Genome::from_contigs(vec![src]);
            let cfg = ReadSimConfig {
                num_reads: 1,
                length_jitter: 0.0,
                revcomp_prob: if revcomp { 1.0 } else { 0.0 },
                ..*config
            };
            let mut r = simulate_reads(&sub_genome, &cfg, rng.gen()).remove(0);
            r.true_pos += src_start; // back to genome coordinates
            r.record.name = format!("pair{i}/{which}");
            r
        };
        let r1 = one(start, false, "1", &mut rng);
        let r2 = one(start + insert_len - config.read_len, true, "2", &mut rng);
        out.push(SimulatedPair { r1, r2, insert_len });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeConfig;

    fn genome() -> Genome {
        Genome::generate(
            &GenomeConfig {
                length: 30_000,
                ..Default::default()
            },
            11,
        )
    }

    #[test]
    fn deterministic() {
        let g = genome();
        let a = simulate_reads(&g, &ReadSimConfig::short(20), 5);
        let b = simulate_reads(&g, &ReadSimConfig::short(20), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_reads_match_reference() {
        let g = genome();
        let cfg = ReadSimConfig {
            errors: ErrorProfile::perfect(),
            revcomp_prob: 0.0,
            ..ReadSimConfig::short(50)
        };
        for r in simulate_reads(&g, &cfg, 9) {
            let refpart = g
                .contig(r.ref_id)
                .slice(r.true_pos, r.true_pos + r.record.len());
            assert_eq!(r.record.seq, refpart);
        }
    }

    #[test]
    fn reverse_reads_match_after_revcomp() {
        let g = genome();
        let cfg = ReadSimConfig {
            errors: ErrorProfile::perfect(),
            revcomp_prob: 1.0,
            ..ReadSimConfig::short(20)
        };
        for r in simulate_reads(&g, &cfg, 13) {
            assert_eq!(r.strand, Strand::Reverse);
            let refpart = g
                .contig(r.ref_id)
                .slice(r.true_pos, r.true_pos + r.record.len());
            assert_eq!(r.record.seq.reverse_complement(), refpart);
        }
    }

    #[test]
    fn error_rate_in_expected_range() {
        let g = genome();
        let cfg = ReadSimConfig {
            revcomp_prob: 0.0,
            ..ReadSimConfig::long(40)
        };
        let reads = simulate_reads(&g, &cfg, 21);
        let mut errs = 0usize;
        let mut bases = 0usize;
        for r in &reads {
            for (len, op) in r.true_cigar.ops() {
                bases += *len as usize;
                if *op != CigarOp::Match {
                    errs += *len as usize;
                }
            }
            // Matches can still be substitutions; compare directly.
            let mut q = 0;
            let mut p = r.true_pos;
            for (len, op) in r.true_cigar.ops() {
                for _ in 0..*len {
                    match op {
                        CigarOp::Match => {
                            if r.record.seq.code_at(q) != g.contig(r.ref_id).code_at(p) {
                                errs += 1;
                            }
                            q += 1;
                            p += 1;
                        }
                        CigarOp::Ins | CigarOp::SoftClip => q += 1,
                        CigarOp::Del => p += 1,
                    }
                }
            }
        }
        let rate = errs as f64 / bases as f64;
        assert!(rate > 0.04 && rate < 0.16, "long-read error rate {rate}");
    }

    #[test]
    fn cigar_consumes_read_exactly() {
        let g = genome();
        for r in simulate_reads(&g, &ReadSimConfig::long(30), 3) {
            assert_eq!(r.true_cigar.query_len(), r.record.len());
            let align = r.to_alignment();
            assert!(align.end() <= g.contig(r.ref_id).len() + 1);
        }
    }

    #[test]
    fn paired_ends_bracket_their_insert() {
        let g = genome();
        let cfg = ReadSimConfig {
            errors: ErrorProfile::perfect(),
            ..ReadSimConfig::short(40) // 20 pairs
        };
        let pairs = simulate_pairs(&g, &cfg, 400, 50, 31);
        assert_eq!(pairs.len(), 20);
        for p in &pairs {
            assert!(
                (300..=500).contains(&p.insert_len),
                "insert {}",
                p.insert_len
            );
            assert_eq!(p.r1.strand, Strand::Forward);
            assert_eq!(p.r2.strand, Strand::Reverse);
            // Outer distance equals the insert.
            let outer = p.r2.true_pos + p.r2.true_cigar.ref_len() - p.r1.true_pos;
            assert_eq!(outer, p.insert_len);
            // Error-free mates match the reference at their positions.
            let c = g.contig(p.r1.ref_id);
            assert_eq!(p.r1.record.seq, c.slice(p.r1.true_pos, p.r1.true_pos + 151));
            assert_eq!(
                p.r2.record.seq.reverse_complement(),
                c.slice(p.r2.true_pos, p.r2.true_pos + 151)
            );
        }
    }

    #[test]
    fn pairs_are_deterministic() {
        let g = genome();
        let cfg = ReadSimConfig::short(10);
        assert_eq!(
            simulate_pairs(&g, &cfg, 300, 30, 7),
            simulate_pairs(&g, &cfg, 300, 30, 7)
        );
    }

    #[test]
    fn alignment_record_is_strand_corrected() {
        let g = genome();
        let cfg = ReadSimConfig {
            errors: ErrorProfile::perfect(),
            revcomp_prob: 1.0,
            ..ReadSimConfig::short(10)
        };
        for r in simulate_reads(&g, &cfg, 17) {
            let a = r.to_alignment();
            let refpart = g.contig(a.ref_id).slice(a.pos, a.end());
            assert_eq!(a.read.seq, refpart);
        }
    }
}
