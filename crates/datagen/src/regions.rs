//! Building region tasks: the (reference window, aligned reads) work units
//! consumed by the dbg, phmm and pileup kernels.

use crate::genome::Genome;
use crate::reads::{simulate_reads, ReadSimConfig, SimulatedRead};
use crate::variants::{inject_variants, DiploidSample, VariantConfig};
use gb_core::record::AlignmentRecord;
use gb_core::region::{Region, RegionTask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`build_region_tasks`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSimConfig {
    /// Window length per task (the paper's dbg/phmm regions are
    /// ~100–1000 bases; pileup uses 100 kb).
    pub region_len: usize,
    /// Mean sequencing coverage (the paper's datasets are 30–50x).
    pub coverage: f64,
    /// Read simulation parameters.
    pub reads: ReadSimConfig,
    /// Variants injected into the sample before sequencing.
    pub variants: VariantConfig,
    /// Fraction of reads concentrated into random hotspot regions,
    /// reproducing the per-task work imbalance of the paper's Fig. 4
    /// (phmm regions vary by up to 1000x).
    pub hotspot_fraction: f64,
}

impl Default for RegionSimConfig {
    fn default() -> RegionSimConfig {
        RegionSimConfig {
            region_len: 500,
            coverage: 30.0,
            reads: ReadSimConfig::short(0), // num_reads derived from coverage
            variants: VariantConfig::default(),
            hotspot_fraction: 0.1,
        }
    }
}

/// A generated variant-calling workload: the reference, the diploid truth
/// and the per-region tasks.
#[derive(Debug, Clone)]
pub struct RegionWorkload {
    /// The reference genome the tasks are defined on.
    pub genome: Genome,
    /// The sample the reads came from (haplotypes + truth set).
    pub sample: DiploidSample,
    /// One task per reference window, in genome order.
    pub tasks: Vec<RegionTask>,
}

/// Simulates a diploid sample over `genome` and buckets the resulting
/// alignments into fixed-width region tasks.
///
/// Reads are drawn from the two sample haplotypes but *placed* at their
/// reference coordinates (alignment-by-construction with all-match
/// CIGARs); the base-level differences the CIGAR does not describe are
/// exactly the alignment artifacts the dbg kernel re-assembles to find.
///
/// # Examples
///
/// ```
/// use gb_datagen::genome::{Genome, GenomeConfig};
/// use gb_datagen::regions::{build_region_tasks, RegionSimConfig};
/// let g = Genome::generate(&GenomeConfig { length: 20_000, ..Default::default() }, 1);
/// let w = build_region_tasks(&g, &RegionSimConfig::default(), 2);
/// assert_eq!(w.tasks.len(), 40);
/// assert!(w.tasks.iter().any(|t| !t.reads.is_empty()));
/// ```
pub fn build_region_tasks(genome: &Genome, config: &RegionSimConfig, seed: u64) -> RegionWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let reference = genome.contig(0);
    let sample = inject_variants(reference, &config.variants, rng.gen());

    // Sequence both haplotypes at half coverage each.
    let total_bases = (reference.len() as f64 * config.coverage) as usize;
    let read_len = config.reads.read_len.max(1);
    let num_reads = (total_bases / read_len).max(1);
    let mut alignments: Vec<AlignmentRecord> = Vec::with_capacity(num_reads);
    for (hi, hap) in sample.haplotypes().iter().enumerate() {
        let hap_genome = Genome::from_contigs(vec![(*hap).clone()]);
        let cfg = ReadSimConfig {
            num_reads: num_reads / 2,
            ..config.reads
        };
        let mut sims = simulate_reads(&hap_genome, &cfg, rng.gen());
        // Hotspot skew: re-home a fraction of reads to a few hot windows.
        let n_hot = 3usize;
        let hots: Vec<usize> = (0..n_hot)
            .map(|_| rng.gen_range(0..hap.len().saturating_sub(read_len).max(1)))
            .collect();
        for s in sims.iter_mut() {
            if rng.gen::<f64>() < config.hotspot_fraction {
                let h = hots[rng.gen_range(0..n_hot)];
                let jitter = rng.gen_range(0..200usize);
                s.true_pos = (h + jitter).min(hap.len().saturating_sub(s.record.len()));
            }
        }
        for s in &sims {
            alignments.push(haplotype_read_to_alignment(s, hi, reference.len()));
        }
    }

    // Bucket alignments into windows.
    let regions = Region::tile(0, reference.len(), config.region_len);
    let mut tasks: Vec<RegionTask> = regions
        .iter()
        .map(|&region| RegionTask {
            region,
            ref_seq: reference.slice(region.start, region.end),
            reads: Vec::new(),
        })
        .collect();
    for a in alignments {
        let idx = a.pos / config.region_len;
        if let Some(t) = tasks.get_mut(idx) {
            t.reads.push(a);
        }
    }
    RegionWorkload {
        genome: genome.clone(),
        sample,
        tasks,
    }
}

/// Places a haplotype-simulated read at its (approximate) reference
/// coordinate with an all-match CIGAR, like a mapper that smooths over
/// small indels.
fn haplotype_read_to_alignment(
    sim: &SimulatedRead,
    hap_index: usize,
    ref_len: usize,
) -> AlignmentRecord {
    let mut a = sim.to_alignment();
    // Haplotype coordinates drift from reference coordinates by the net
    // indel length upstream; for the small indel rates used here the
    // drift is bounded by a few tens of bases, which the region bucketing
    // tolerates. Clamp within the reference.
    a.pos = a.pos.min(ref_len.saturating_sub(1));
    let mut cigar = gb_core::cigar::Cigar::new();
    cigar.push(a.read.len() as u32, gb_core::cigar::CigarOp::Match);
    a.cigar = cigar;
    a.read.name = format!("{}_h{}", a.read.name, hap_index);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeConfig;

    fn workload() -> RegionWorkload {
        let g = Genome::generate(
            &GenomeConfig {
                length: 30_000,
                ..Default::default()
            },
            5,
        );
        build_region_tasks(&g, &RegionSimConfig::default(), 6)
    }

    #[test]
    fn coverage_is_roughly_right() {
        let w = workload();
        let total_read_bases: usize = w.tasks.iter().map(RegionTask::read_bases).sum();
        let cov = total_read_bases as f64 / 30_000.0;
        assert!(cov > 15.0 && cov < 45.0, "coverage {cov}");
    }

    #[test]
    fn reads_land_in_their_region() {
        let w = workload();
        for t in &w.tasks {
            for r in &t.reads {
                assert!(r.pos >= t.region.start && r.pos < t.region.end);
            }
        }
    }

    #[test]
    fn hotspots_create_imbalance() {
        let g = Genome::generate(
            &GenomeConfig {
                length: 50_000,
                ..Default::default()
            },
            7,
        );
        let cfg = RegionSimConfig {
            hotspot_fraction: 0.4,
            ..Default::default()
        };
        let w = build_region_tasks(&g, &cfg, 8);
        let sizes: Vec<usize> = w.tasks.iter().map(|t| t.reads.len()).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            max / mean > 3.0,
            "imbalance too small: max {max}, mean {mean}"
        );
    }

    #[test]
    fn deterministic() {
        let g = Genome::generate(
            &GenomeConfig {
                length: 10_000,
                ..Default::default()
            },
            1,
        );
        let a = build_region_tasks(&g, &RegionSimConfig::default(), 3);
        let b = build_region_tasks(&g, &RegionSimConfig::default(), 3);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.reads.len(), y.reads.len());
        }
    }
}
