//! Nanopore raw-signal simulation.
//!
//! Replaces the paper's FAST5 datasets (Nanopore WGS Consortium NA12878).
//! A nanopore measures ionic current while DNA translocates; the current
//! level depends on the k-mer occupying the pore (k = 6 here, as in the
//! R9.4 pore model used by Nanopolish). The simulator:
//!
//! 1. assigns each 6-mer a deterministic synthetic model level
//!    (mean pA, stdv) via a hash of the k-mer — stable across runs and
//!    processes, like a real pore-model table;
//! 2. emits 5–12 raw samples per k-mer (dwell time), adding Gaussian noise;
//! 3. *over-segments*: with some probability a k-mer is split into two
//!    events, reproducing the up-to-2x event inflation the paper notes as
//!    the reason abea needs adaptive banding.

use gb_core::seq::DnaSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Length of the k-mers the pore model is defined over.
pub const PORE_K: usize = 6;

/// Model parameters for one k-mer: expected current level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmerModel {
    /// Mean current in pA.
    pub level_mean: f32,
    /// Standard deviation of the current in pA.
    pub level_stdv: f32,
}

/// The synthetic pore model: a table of 4^6 = 4096 k-mer levels.
///
/// # Examples
///
/// ```
/// use gb_datagen::signal::PoreModel;
/// let m = PoreModel::r9_like();
/// let level = m.get(0).level_mean;
/// assert!(level >= 60.0 && level <= 130.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoreModel {
    levels: Vec<KmerModel>,
}

impl PoreModel {
    /// Builds the deterministic R9.4-like model (levels spread over
    /// 60–130 pA, stdv 1–3 pA).
    pub fn r9_like() -> PoreModel {
        let n = 1usize << (2 * PORE_K);
        let levels = (0..n as u64)
            .map(|km| {
                // splitmix64 of the k-mer index: deterministic pseudo-random
                // level assignment, like a real model table.
                let h = splitmix64(km);
                let mean = 60.0 + (h % 70_000) as f32 / 1000.0;
                let stdv = 1.0 + ((h >> 17) % 2_000) as f32 / 1000.0;
                KmerModel {
                    level_mean: mean,
                    level_stdv: stdv,
                }
            })
            .collect();
        PoreModel { levels }
    }

    /// Model entry for the packed 6-mer `kmer`.
    ///
    /// # Panics
    ///
    /// Panics if `kmer >= 4096`.
    #[inline]
    // PANIC-FREE: documented `# Panics` precondition; packed 6-mers are
    // `< 4096` by construction of `pack_kmer`.
    pub fn get(&self, kmer: u64) -> KmerModel {
        self.levels[kmer as usize]
    }

    /// Number of k-mers in the model (4096).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Always false; the model table is fixed-size.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// One segmented event: a run of raw samples summarized by its mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Mean current of the event in pA.
    pub mean: f32,
    /// Standard deviation of the samples in the event.
    pub stdv: f32,
    /// Number of raw samples in the event.
    pub length: u32,
}

/// A simulated nanopore read: the underlying base sequence, its raw signal
/// and the segmented events.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalRead {
    /// The true base sequence that generated the signal.
    pub seq: DnaSeq,
    /// Raw current samples.
    pub raw: Vec<f32>,
    /// Segmented events (over-segmented relative to k-mers).
    pub events: Vec<Event>,
}

/// Configuration of the signal simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalSimConfig {
    /// Probability a k-mer is split into two events (over-segmentation).
    pub split_prob: f64,
    /// Probability a k-mer produces no event (skip / too-fast
    /// translocation).
    pub skip_prob: f64,
    /// Minimum raw samples per event.
    pub min_dwell: u32,
    /// Maximum raw samples per event.
    pub max_dwell: u32,
}

impl Default for SignalSimConfig {
    fn default() -> SignalSimConfig {
        SignalSimConfig {
            split_prob: 0.35,
            skip_prob: 0.03,
            min_dwell: 4,
            max_dwell: 12,
        }
    }
}

/// Simulates the signal for `seq` under `model`, deterministically from
/// `seed`.
///
/// Sequences shorter than [`PORE_K`] produce an empty signal.
///
/// # Examples
///
/// ```
/// use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
/// use gb_core::seq::DnaSeq;
/// let seq: DnaSeq = "ACGTACGTACGTACGT".parse()?;
/// let model = PoreModel::r9_like();
/// let sig = simulate_signal(&seq, &model, &SignalSimConfig::default(), 1);
/// assert!(sig.events.len() >= 10);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn simulate_signal(
    seq: &DnaSeq,
    model: &PoreModel,
    config: &SignalSimConfig,
    seed: u64,
) -> SignalRead {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut raw = Vec::new();
    let mut events = Vec::new();
    for (_, kmer) in seq.kmers(PORE_K) {
        if rng.gen::<f64>() < config.skip_prob {
            continue;
        }
        let n_events = if rng.gen::<f64>() < config.split_prob {
            2
        } else {
            1
        };
        for _ in 0..n_events {
            let km = model.get(kmer);
            let dwell = rng.gen_range(config.min_dwell..=config.max_dwell);
            let mut sum = 0.0f32;
            let mut sumsq = 0.0f32;
            let start = raw.len();
            for _ in 0..dwell {
                let sample = km.level_mean + gaussian(&mut rng) * km.level_stdv;
                raw.push(sample);
                sum += sample;
                sumsq += sample * sample;
            }
            let n = (raw.len() - start) as f32;
            let mean = sum / n;
            let var = (sumsq / n - mean * mean).max(0.0);
            events.push(Event {
                mean,
                stdv: var.sqrt(),
                length: dwell,
            });
        }
    }
    SignalRead {
        seq: seq.clone(),
        raw,
        events,
    }
}

/// Box–Muller standard normal draw.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

impl gb_substrate::Codec for KmerModel {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_f32(self.level_mean);
        e.put_f32(self.level_stdv);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<KmerModel> {
        Some(KmerModel {
            level_mean: d.get_f32()?,
            level_stdv: d.get_f32()?,
        })
    }
}

impl gb_substrate::Codec for PoreModel {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.levels, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<PoreModel> {
        let levels: Vec<KmerModel> = gb_substrate::Codec::decode(d)?;
        // `get` indexes by packed 6-mer; a table of any other size would
        // panic at query time.
        (levels.len() == 1 << (2 * PORE_K)).then_some(PoreModel { levels })
    }
}

impl gb_substrate::Codec for Event {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_f32(self.mean);
        e.put_f32(self.stdv);
        e.put_u32(self.length);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Event> {
        Some(Event {
            mean: d.get_f32()?,
            stdv: d.get_f32()?,
            length: d.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> DnaSeq {
        DnaSeq::from_codes_unchecked((0..n).map(|i| ((i * 7 + i / 3) % 4) as u8).collect())
    }

    #[test]
    fn model_is_deterministic_and_bounded() {
        let a = PoreModel::r9_like();
        let b = PoreModel::r9_like();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4096);
        for km in 0..4096u64 {
            let m = a.get(km);
            assert!(m.level_mean >= 60.0 && m.level_mean < 130.0);
            assert!(m.level_stdv >= 1.0 && m.level_stdv < 3.0);
        }
    }

    #[test]
    fn distinct_kmers_get_distinct_levels_mostly() {
        let m = PoreModel::r9_like();
        let mut distinct = std::collections::HashSet::new();
        for km in 0..4096u64 {
            distinct.insert((m.get(km).level_mean * 1000.0) as i64);
        }
        assert!(
            distinct.len() > 3500,
            "levels too collided: {}",
            distinct.len()
        );
    }

    #[test]
    fn oversegmentation_inflates_events() {
        let s = seq(500);
        let model = PoreModel::r9_like();
        let sig = simulate_signal(&s, &model, &SignalSimConfig::default(), 3);
        let kmers = s.len() - PORE_K + 1;
        // ~1.32x inflation expected (1 + 0.35 - 0.03).
        assert!(sig.events.len() as f64 > kmers as f64 * 1.1);
        assert!(sig.events.len() as f64 <= kmers as f64 * 2.0);
    }

    #[test]
    fn event_means_track_model_levels() {
        let s = seq(300);
        let model = PoreModel::r9_like();
        let cfg = SignalSimConfig {
            split_prob: 0.0,
            skip_prob: 0.0,
            ..Default::default()
        };
        let sig = simulate_signal(&s, &model, &cfg, 7);
        let kmers: Vec<u64> = s.kmers(PORE_K).map(|(_, k)| k).collect();
        assert_eq!(sig.events.len(), kmers.len());
        for (ev, km) in sig.events.iter().zip(&kmers) {
            let m = model.get(*km);
            assert!(
                (ev.mean - m.level_mean).abs() < 4.0 * m.level_stdv,
                "event mean {} too far from model {}",
                ev.mean,
                m.level_mean
            );
        }
    }

    #[test]
    fn short_seq_is_empty() {
        let s = seq(4);
        let sig = simulate_signal(&s, &PoreModel::r9_like(), &SignalSimConfig::default(), 1);
        assert!(sig.events.is_empty() && sig.raw.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let s = seq(100);
        let m = PoreModel::r9_like();
        let a = simulate_signal(&s, &m, &SignalSimConfig::default(), 5);
        let b = simulate_signal(&s, &m, &SignalSimConfig::default(), 5);
        assert_eq!(a, b);
    }
}
