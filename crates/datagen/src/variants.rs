//! Variant injection: turning a reference into a diploid sample.
//!
//! The variant-calling kernels (dbg, phmm, nn-variant) need reads that
//! *differ* from the reference in known places. This module injects SNVs
//! and short indels into a reference to create sample haplotypes, keeping
//! the truth set so tests and the nn-variant labeller can check calls.

use gb_core::seq::DnaSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of an injected variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VariantKind {
    /// Single-nucleotide substitution to `alt` (a 2-bit code).
    Snv {
        /// The alternate base code.
        alt: u8,
    },
    /// Insertion of the given codes after the position.
    Insertion {
        /// Inserted base codes.
        seq: Vec<u8>,
    },
    /// Deletion of `len` reference bases starting at the position.
    Deletion {
        /// Number of deleted bases.
        len: usize,
    },
}

/// Zygosity of an injected variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zygosity {
    /// Present on both haplotypes.
    Homozygous,
    /// Present on one haplotype only.
    Heterozygous,
}

/// One variant of the truth set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// 0-based reference position.
    pub pos: usize,
    /// What changed.
    pub kind: VariantKind,
    /// On how many haplotypes.
    pub zygosity: Zygosity,
}

/// Configuration for [`inject_variants`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantConfig {
    /// Expected SNVs per base (human-like: ~0.001).
    pub snv_rate: f64,
    /// Expected short insertions per base.
    pub ins_rate: f64,
    /// Expected short deletions per base.
    pub del_rate: f64,
    /// Maximum indel length.
    pub max_indel: usize,
    /// Fraction of variants that are heterozygous.
    pub het_fraction: f64,
}

impl Default for VariantConfig {
    fn default() -> VariantConfig {
        VariantConfig {
            snv_rate: 0.001,
            ins_rate: 0.0001,
            del_rate: 0.0001,
            max_indel: 10,
            het_fraction: 0.6,
        }
    }
}

/// A diploid sample: two haplotype sequences plus the variant truth set.
#[derive(Debug, Clone, PartialEq)]
pub struct DiploidSample {
    /// First haplotype (carries all variants).
    pub hap1: DnaSeq,
    /// Second haplotype (carries only homozygous variants).
    pub hap2: DnaSeq,
    /// The injected truth set, sorted by position.
    pub truth: Vec<Variant>,
}

impl DiploidSample {
    /// Both haplotypes as a slice-friendly array.
    pub fn haplotypes(&self) -> [&DnaSeq; 2] {
        [&self.hap1, &self.hap2]
    }
}

/// Injects variants into `reference`, returning the diploid sample.
///
/// # Examples
///
/// ```
/// use gb_datagen::{genome::{Genome, GenomeConfig}, variants::{inject_variants, VariantConfig}};
/// let g = Genome::generate(&GenomeConfig { length: 10_000, ..Default::default() }, 1);
/// let sample = inject_variants(g.contig(0), &VariantConfig::default(), 7);
/// assert!(!sample.truth.is_empty());
/// ```
pub fn inject_variants(reference: &DnaSeq, config: &VariantConfig, seed: u64) -> DiploidSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut truth = Vec::new();
    let mut pos = 0usize;
    let n = reference.len();
    while pos < n {
        let r: f64 = rng.gen();
        let zyg = if rng.gen::<f64>() < config.het_fraction {
            Zygosity::Heterozygous
        } else {
            Zygosity::Homozygous
        };
        if r < config.snv_rate {
            let refc = reference.code_at(pos);
            let alt = (refc + rng.gen_range(1..4u8)) % 4;
            truth.push(Variant {
                pos,
                kind: VariantKind::Snv { alt },
                zygosity: zyg,
            });
            pos += 1;
        } else if r < config.snv_rate + config.ins_rate {
            let len = rng.gen_range(1..=config.max_indel);
            let seq: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4u8)).collect();
            truth.push(Variant {
                pos,
                kind: VariantKind::Insertion { seq },
                zygosity: zyg,
            });
            pos += 1;
        } else if r < config.snv_rate + config.ins_rate + config.del_rate {
            let len = rng.gen_range(1..=config.max_indel).min(n - pos);
            if len > 0 {
                truth.push(Variant {
                    pos,
                    kind: VariantKind::Deletion { len },
                    zygosity: zyg,
                });
            }
            // Skip past the deleted span so variants never overlap.
            pos += len.max(1);
        } else {
            pos += 1;
        }
    }
    let hap1 = apply_variants(reference, &truth, |_| true);
    let hap2 = apply_variants(reference, &truth, |v| v.zygosity == Zygosity::Homozygous);
    DiploidSample { hap1, hap2, truth }
}

/// Applies the subset of `variants` selected by `select` to `reference`.
pub fn apply_variants(
    reference: &DnaSeq,
    variants: &[Variant],
    select: impl Fn(&Variant) -> bool,
) -> DnaSeq {
    let mut out = Vec::with_capacity(reference.len());
    let mut pos = 0usize;
    for v in variants {
        debug_assert!(v.pos >= pos, "variants must be sorted and non-overlapping");
        while pos < v.pos {
            out.push(reference.code_at(pos));
            pos += 1;
        }
        if !select(v) {
            continue;
        }
        match &v.kind {
            VariantKind::Snv { alt } => {
                out.push(*alt);
                pos += 1;
            }
            VariantKind::Insertion { seq } => {
                out.push(reference.code_at(pos));
                pos += 1;
                out.extend_from_slice(seq);
            }
            VariantKind::Deletion { len } => {
                pos += len;
            }
        }
    }
    while pos < reference.len() {
        out.push(reference.code_at(pos));
        pos += 1;
    }
    DnaSeq::from_codes_unchecked(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{Genome, GenomeConfig};

    fn reference() -> DnaSeq {
        Genome::generate(
            &GenomeConfig {
                length: 50_000,
                ..Default::default()
            },
            5,
        )
        .contig(0)
        .clone()
    }

    #[test]
    fn no_variants_is_identity() {
        let r = reference();
        let s = inject_variants(
            &r,
            &VariantConfig {
                snv_rate: 0.0,
                ins_rate: 0.0,
                del_rate: 0.0,
                ..Default::default()
            },
            1,
        );
        assert_eq!(s.hap1, r);
        assert_eq!(s.hap2, r);
        assert!(s.truth.is_empty());
    }

    #[test]
    fn snv_count_near_rate() {
        let r = reference();
        let s = inject_variants(&r, &VariantConfig::default(), 2);
        let snvs = s
            .truth
            .iter()
            .filter(|v| matches!(v.kind, VariantKind::Snv { .. }))
            .count();
        let expected = r.len() as f64 * 0.001;
        assert!(
            (snvs as f64) > expected * 0.5 && (snvs as f64) < expected * 2.0,
            "snvs {snvs}"
        );
    }

    #[test]
    fn het_variants_only_on_hap1() {
        let r = reference();
        let s = inject_variants(&r, &VariantConfig::default(), 3);
        let het_snv = s.truth.iter().find(|v| {
            v.zygosity == Zygosity::Heterozygous && matches!(v.kind, VariantKind::Snv { .. })
        });
        if let Some(v) = het_snv {
            // hap2 must keep the reference base at the corresponding
            // position; indels before pos shift coordinates, so map it.
            let offset: i64 = s
                .truth
                .iter()
                .take_while(|u| u.pos < v.pos)
                .filter(|u| u.zygosity == Zygosity::Homozygous)
                .map(|u| match &u.kind {
                    VariantKind::Insertion { seq } => seq.len() as i64,
                    VariantKind::Deletion { len } => -(*len as i64),
                    VariantKind::Snv { .. } => 0,
                })
                .sum();
            let h2pos = (v.pos as i64 + offset) as usize;
            assert_eq!(s.hap2.code_at(h2pos), r.code_at(v.pos));
        }
    }

    #[test]
    fn hom_snvs_on_both_haplotypes() {
        let r = reference();
        let cfg = VariantConfig {
            het_fraction: 0.0,
            ins_rate: 0.0,
            del_rate: 0.0,
            ..Default::default()
        };
        let s = inject_variants(&r, &cfg, 4);
        assert_eq!(s.hap1, s.hap2);
        assert_eq!(s.hap1.len(), r.len());
        for v in &s.truth {
            if let VariantKind::Snv { alt } = v.kind {
                assert_eq!(s.hap1.code_at(v.pos), alt);
                assert_ne!(alt, r.code_at(v.pos));
            }
        }
    }

    #[test]
    fn indels_change_length_consistently() {
        let r = reference();
        let cfg = VariantConfig {
            snv_rate: 0.0,
            ins_rate: 0.001,
            del_rate: 0.001,
            het_fraction: 0.0,
            ..Default::default()
        };
        let s = inject_variants(&r, &cfg, 6);
        let delta: i64 = s
            .truth
            .iter()
            .map(|v| match &v.kind {
                VariantKind::Insertion { seq } => seq.len() as i64,
                VariantKind::Deletion { len } => -(*len as i64),
                VariantKind::Snv { .. } => 0,
            })
            .sum();
        assert_eq!(s.hap1.len() as i64, r.len() as i64 + delta);
    }

    #[test]
    fn truth_is_sorted_non_overlapping() {
        let s = inject_variants(&reference(), &VariantConfig::default(), 8);
        for w in s.truth.windows(2) {
            let end0 = match &w[0].kind {
                VariantKind::Deletion { len } => w[0].pos + len,
                _ => w[0].pos + 1,
            };
            assert!(w[1].pos >= end0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
    }
}
