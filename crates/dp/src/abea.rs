//! Adaptive Banded Event Alignment — the **abea** kernel.
//!
//! The most time-consuming stage of Nanopolish/f5c methylation calling:
//! aligning a nanopore read's segmented *events* to the k-mers of a
//! reference sequence. Because the pore over-samples k-mers (up to 2x
//! events per k-mer) the optimal path wanders far off the main diagonal,
//! so a *static* band fails; the Suzuki–Kasahara adaptive band instead
//! shifts a fixed-width band right or down each anti-diagonal based on
//! which band edge currently scores better. Scoring is 32-bit
//! floating-point log-likelihood under the pore model's per-k-mer
//! Gaussian — the reason this kernel is the FP-heavy GPU candidate of the
//! suite (paper Tables IV–V).

use crate::DpEngine;
use gb_core::seq::DnaSeq;
use gb_datagen::signal::{Event, PoreModel, PORE_K};
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Parameters of the event-alignment HMM and band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbeaParams {
    /// Band width in cells (f5c default 100).
    pub bandwidth: usize,
    /// Probability of skipping a reference k-mer without an event.
    pub p_skip: f64,
    /// Probability that the next event stays on the same k-mer
    /// (over-segmentation); `None` derives it from the event/k-mer ratio
    /// as Nanopolish does.
    pub p_stay: Option<f64>,
}

impl Default for AbeaParams {
    fn default() -> AbeaParams {
        AbeaParams {
            bandwidth: 100,
            p_skip: 1e-10,
            p_stay: None,
        }
    }
}

/// One aligned (event, k-mer) pair of the traceback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventAlignment {
    /// Event index in the read's event stream.
    pub event_idx: usize,
    /// K-mer index on the reference.
    pub kmer_idx: usize,
}

/// Result of one adaptive banded event alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AbeaResult {
    /// Log-likelihood score of the best path to the terminal cell.
    pub score: f32,
    /// Event-to-k-mer alignment, in increasing event order.
    pub alignment: Vec<EventAlignment>,
    /// Band cells computed.
    pub cells: u64,
    /// How many band placements moved right (vs down) — diagnostics for
    /// the adaptivity.
    pub moves_right: u64,
}

const NEG_INF: f32 = f32::NEG_INFINITY;

/// Move codes stored in the traceback.
const FROM_D: u8 = 1;
const FROM_U: u8 = 2;
const FROM_L: u8 = 3;

/// Aligns `events` to the k-mers of `reference` under `model`.
///
/// Returns `None` when the inputs are too small to align (fewer than one
/// event or one k-mer).
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
/// use gb_dp::abea::{align_events, AbeaParams};
/// let seq: DnaSeq = "ACGTTGCAACGGATCCAGTTACGTACCGGTTA".parse()?;
/// let model = PoreModel::r9_like();
/// let sig = simulate_signal(&seq, &model, &SignalSimConfig::default(), 7);
/// let r = align_events(&sig.events, &seq, &model, &AbeaParams::default()).unwrap();
/// assert!(!r.alignment.is_empty());
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn align_events(
    events: &[Event],
    reference: &DnaSeq,
    model: &PoreModel,
    params: &AbeaParams,
) -> Option<AbeaResult> {
    align_events_probed(events, reference, model, params, &mut NullProbe)
}

/// [`align_events`] with instrumentation.
// PANIC-FREE: band offsets are clamped against `n_events`/`n_kmers` when
// each band is placed, so all cell and trace reads stay in range.
pub fn align_events_probed<P: Probe>(
    events: &[Event],
    reference: &DnaSeq,
    model: &PoreModel,
    params: &AbeaParams,
    probe: &mut P,
) -> Option<AbeaResult> {
    let kmers: Vec<u64> = reference.kmers(PORE_K).map(|(_, k)| k).collect();
    let n_events = events.len();
    let n_kmers = kmers.len();
    if n_events == 0 || n_kmers == 0 || params.bandwidth < 2 {
        return None;
    }
    let w = params.bandwidth;
    let half = w / 2;
    let (lp_step, lp_stay, lp_skip) = transition_logs(n_events, n_kmers, params);

    // Band storage: score + move per cell, lower-left anchor per band.
    let n_bands = n_events + n_kmers + 2;
    let mut bands = vec![NEG_INF; n_bands * w];
    let mut trace = vec![0u8; n_bands * w];
    // (event_idx, kmer_idx) of offset 0; cell o = (ll_e - o, ll_k + o).
    let mut ll: Vec<(i64, i64)> = Vec::with_capacity(n_bands);

    // Band 0 holds the virtual start cell (-1, -1) at the band middle.
    ll.push((-1 + half as i64, -1 - half as i64));
    bands[half] = 0.0;

    let offset_of = |band: usize, e: i64, k: i64, ll: &[(i64, i64)]| -> Option<usize> {
        let (le, lk) = ll[band];
        let o = k - lk;
        if o >= 0 && (o as usize) < w && le - o == e {
            Some(o as usize)
        } else {
            None
        }
    };
    let get = |band: usize, e: i64, k: i64, bands: &[f32], ll: &[(i64, i64)]| -> f32 {
        match offset_of(band, e, k, ll) {
            Some(o) => bands[band * w + o],
            None => NEG_INF,
        }
    };

    let mut cells = 0u64;
    let mut moves_right = 0u64;
    for b in 1..n_bands {
        // Adaptive placement: compare the previous band's edge scores.
        let prev = b - 1;
        let lo_edge = bands[prev * w];
        let hi_edge = bands[prev * w + w - 1];
        probe.load(addr_of(&bands[prev * w]), 4);
        probe.load(addr_of(&bands[prev * w + w - 1]), 4);
        let right = if lo_edge == NEG_INF && hi_edge == NEG_INF {
            b % 2 == 1
        } else {
            // Offset 0 is the *bottom-left* (highest event, lowest k-mer);
            // if its score lags the top-right edge, the optimum is drifting
            // toward higher k-mers: move right.
            lo_edge < hi_edge
        };
        probe.branch(right);
        let (ple, plk) = ll[prev];
        ll.push(if right {
            (ple, plk + 1)
        } else {
            (ple + 1, plk)
        });
        if right {
            moves_right += 1;
        }

        let (le, lk) = ll[b];
        for o in 0..w {
            let e = le - o as i64;
            let k = lk + o as i64;
            if e < 0 || k < 0 || e >= n_events as i64 || k >= n_kmers as i64 {
                continue;
            }
            cells += 1;
            let diag = get(b - 2, e - 1, k - 1, &bands, &ll);
            let up = get(b - 1, e - 1, k, &bands, &ll);
            let left = get(b - 1, e, k - 1, &bands, &ll);
            probe.load(addr_of(&bands[(b - 2) * w]), 4);
            probe.load(addr_of(&bands[(b - 1) * w]), 4);
            // Virtual start feeds the first real cell diagonally.
            let diag = if e == 0 && k == 0 {
                diag.max(get(b - 2, -1, -1, &bands, &ll))
            } else {
                diag
            };
            let lp_emit = emission_logprob(&events[e as usize], kmers[k as usize], model, probe);
            let s_d = diag + lp_step + lp_emit;
            let s_u = up + lp_stay + lp_emit;
            let s_l = left + lp_skip;
            probe.fp_ops(5);
            let (best, mv) = if s_d >= s_u && s_d >= s_l {
                (s_d, FROM_D)
            } else if s_u >= s_l {
                (s_u, FROM_U)
            } else {
                (s_l, FROM_L)
            };
            probe.branch(mv == FROM_D);
            bands[b * w + o] = best;
            trace[b * w + o] = mv;
            probe.store(addr_of(&bands[b * w + o]), 5);
        }
    }

    // Locate the terminal cell (last event, last k-mer).
    let (te, tk) = (n_events as i64 - 1, n_kmers as i64 - 1);
    let (term_band, term_off) = (0..n_bands)
        .rev()
        .find_map(|b| offset_of(b, te, tk, &ll).map(|o| (b, o)))?;
    let score = bands[term_band * w + term_off];
    if score == NEG_INF {
        return None; // band drifted away from the terminal cell
    }

    // Traceback.
    let mut alignment = Vec::new();
    let (mut b, mut e, mut k) = (term_band, te, tk);
    while e >= 0 && k >= 0 {
        let o = offset_of(b, e, k, &ll)?;
        let mv = trace[b * w + o];
        match mv {
            FROM_D => {
                alignment.push(EventAlignment {
                    event_idx: e as usize,
                    kmer_idx: k as usize,
                });
                e -= 1;
                k -= 1;
                b = b.checked_sub(2)?;
            }
            FROM_U => {
                alignment.push(EventAlignment {
                    event_idx: e as usize,
                    kmer_idx: k as usize,
                });
                e -= 1;
                b -= 1;
            }
            FROM_L => {
                k -= 1;
                b -= 1;
            }
            _ => break, // reached the start cell
        }
        if e < 0 || k < 0 {
            break;
        }
    }
    alignment.reverse();
    Some(AbeaResult {
        score,
        alignment,
        cells,
        moves_right,
    })
}

/// Full-matrix reference implementation with identical scoring (testing
/// and the static-vs-adaptive band ablation).
pub fn align_events_full(
    events: &[Event],
    reference: &DnaSeq,
    model: &PoreModel,
    params: &AbeaParams,
) -> Option<AbeaResult> {
    let kmers: Vec<u64> = reference.kmers(PORE_K).map(|(_, k)| k).collect();
    let (ne, nk) = (events.len(), kmers.len());
    if ne == 0 || nk == 0 {
        return None;
    }
    let (lp_step, lp_stay, lp_skip) = transition_logs(ne, nk, params);
    let mut v = vec![NEG_INF; ne * nk];
    let mut tr = vec![0u8; ne * nk];
    let mut probe = NullProbe;
    for e in 0..ne {
        for k in 0..nk {
            let lp_emit = emission_logprob(&events[e], kmers[k], model, &mut probe);
            let diag = if e == 0 && k == 0 {
                0.0
            } else if e > 0 && k > 0 {
                v[(e - 1) * nk + (k - 1)]
            } else {
                NEG_INF
            };
            let up = if e > 0 { v[(e - 1) * nk + k] } else { NEG_INF };
            let left = if k > 0 { v[e * nk + (k - 1)] } else { NEG_INF };
            let s_d = diag + lp_step + lp_emit;
            let s_u = up + lp_stay + lp_emit;
            let s_l = left + lp_skip;
            let (best, mv) = if s_d >= s_u && s_d >= s_l {
                (s_d, FROM_D)
            } else if s_u >= s_l {
                (s_u, FROM_U)
            } else {
                (s_l, FROM_L)
            };
            v[e * nk + k] = best;
            tr[e * nk + k] = mv;
        }
    }
    let score = v[ne * nk - 1];
    let mut alignment = Vec::new();
    let (mut e, mut k) = (ne as i64 - 1, nk as i64 - 1);
    while e >= 0 && k >= 0 {
        match tr[e as usize * nk + k as usize] {
            FROM_D => {
                alignment.push(EventAlignment {
                    event_idx: e as usize,
                    kmer_idx: k as usize,
                });
                e -= 1;
                k -= 1;
            }
            FROM_U => {
                alignment.push(EventAlignment {
                    event_idx: e as usize,
                    kmer_idx: k as usize,
                });
                e -= 1;
            }
            FROM_L => k -= 1,
            _ => break,
        }
    }
    alignment.reverse();
    Some(AbeaResult {
        score,
        alignment,
        cells: (ne * nk) as u64,
        moves_right: 0,
    })
}

/// Dispatches to the scalar or SIMD engine per [`DpEngine`].
pub fn align_events_engine(
    events: &[Event],
    reference: &DnaSeq,
    model: &PoreModel,
    params: &AbeaParams,
    engine: DpEngine,
) -> Option<AbeaResult> {
    align_events_engine_probed(events, reference, model, params, engine, &mut NullProbe)
}

/// [`align_events_engine`] with instrumentation.
pub fn align_events_engine_probed<P: Probe>(
    events: &[Event],
    reference: &DnaSeq,
    model: &PoreModel,
    params: &AbeaParams,
    engine: DpEngine,
    probe: &mut P,
) -> Option<AbeaResult> {
    match engine {
        DpEngine::Scalar => align_events_probed(events, reference, model, params, probe),
        DpEngine::Simd => align_events_simd_probed(events, reference, model, params, probe),
    }
}

/// The contiguous-band f32 SIMD engine: bit-identical to
/// [`align_events`], with the per-band cell loop rewritten as a
/// branchless unit-stride sweep LLVM autovectorizes.
///
/// What changes relative to the scalar engine — and why results stay
/// bit-identical:
///
/// - **Padded band rows.** Each band row is stored at width `w + 2` with
///   permanent `NEG_INF` sentinels at both ends, so the three neighbor
///   reads (`up`, `left`, `diag`) become pure shifted slice loads: an
///   out-of-band neighbor reads a sentinel, which is exactly the
///   `NEG_INF` the scalar `get` returns for it.
/// - **Anchor-delta neighbor addressing.** For a cell at offset `o` the
///   scalar resolves neighbors by `(event, kmer)` search; here they are
///   fixed shifts derived from the band anchors: `up` at `o + du`,
///   `left` at `o + du - 1` in band `b-1` (`du = lk - plk`, 1 for a
///   right move else 0) and `diag` at `o + dd - 1` in band `b-2`
///   (`dd = lk - dlk`, 0..=2). The anti-diagonal consistency check the
///   scalar's `get` performs holds by construction for these shifts.
///   The virtual start cell (-1,-1) needs no special case: cell (0,0)
///   only occurs on band 2, whose diag shift lands exactly on the
///   band-0 seed slot.
/// - **Hoisted emission parameters.** Per-k-mer `level_mean`,
///   `level_stdv` and `level_stdv.ln()` are precomputed once (`ln` is
///   deterministic, so hoisting it out of the cell loop is exact), and
///   event means are stored reversed so both operands of the emission
///   stream with unit stride.
/// - **Identical expression trees.** Every per-cell float expression —
///   emission, the three move scores, the `>=` selection cascade — is
///   evaluated in the scalar engine's exact order, so each intermediate
///   rounds identically.
///
/// Band placement reads the same two edge cells as the scalar engine, so
/// the adaptive band walks the same path; scores, alignments, cell
/// counts and `moves_right` are all bit-identical (enforced by the
/// differential proptests in `tests/dp_engines_diff.rs`).
pub fn align_events_simd(
    events: &[Event],
    reference: &DnaSeq,
    model: &PoreModel,
    params: &AbeaParams,
) -> Option<AbeaResult> {
    align_events_simd_probed(events, reference, model, params, &mut NullProbe)
}

/// [`align_events_simd`] with instrumentation (one SIMD op and one
/// lockstep branch per band, matching the vector engines' convention).
// PANIC-FREE: same band-placement clamps as the scalar engine; lane
// indices are bounded by `LANES` fixed at compile time.
pub fn align_events_simd_probed<P: Probe>(
    events: &[Event],
    reference: &DnaSeq,
    model: &PoreModel,
    params: &AbeaParams,
    probe: &mut P,
) -> Option<AbeaResult> {
    let kmers: Vec<u64> = reference.kmers(PORE_K).map(|(_, k)| k).collect();
    let n_events = events.len();
    let n_kmers = kmers.len();
    if n_events == 0 || n_kmers == 0 || params.bandwidth < 2 {
        return None;
    }
    let w = params.bandwidth;
    let wp = w + 2; // padded row: NEG_INF sentinels at 0 and w + 1
    let half = w / 2;
    let (lp_step, lp_stay, lp_skip) = transition_logs(n_events, n_kmers, params);
    const LN_SQRT_2PI: f32 = 0.918_938_5;

    // Hoisted emission parameters: unit-stride f32 streams.
    let k_mean: Vec<f32> = kmers.iter().map(|&k| model.get(k).level_mean).collect();
    let k_stdv: Vec<f32> = kmers.iter().map(|&k| model.get(k).level_stdv).collect();
    let k_ln_stdv: Vec<f32> = k_stdv.iter().map(|s| s.ln()).collect();
    // Event means reversed: cell offset o has event `le - o`, so the
    // reversed stream `ev_rev[n_events - 1 - le + o]` ascends with o.
    let ev_rev: Vec<f32> = events.iter().rev().map(|e| e.mean).collect();

    let n_bands = n_events + n_kmers + 2;
    let mut bands = vec![NEG_INF; n_bands * wp];
    let mut trace = vec![0u8; n_bands * wp];
    let mut ll: Vec<(i64, i64)> = Vec::with_capacity(n_bands);

    // Band 0 holds the virtual start cell (-1, -1) at the band middle.
    ll.push((-1 + half as i64, -1 - half as i64));
    bands[half + 1] = 0.0;

    let offset_of = |band: usize, e: i64, k: i64, ll: &[(i64, i64)]| -> Option<usize> {
        let (le, lk) = ll[band];
        let o = k - lk;
        if o >= 0 && (o as usize) < w && le - o == e {
            Some(o as usize)
        } else {
            None
        }
    };

    let mut cells = 0u64;
    let mut moves_right = 0u64;
    for b in 1..n_bands {
        // Adaptive placement: same two edge reads as the scalar engine.
        let prev = b - 1;
        let lo_edge = bands[prev * wp + 1];
        let hi_edge = bands[prev * wp + w];
        let right = if lo_edge == NEG_INF && hi_edge == NEG_INF {
            b % 2 == 1
        } else {
            lo_edge < hi_edge
        };
        let (ple, plk) = ll[prev];
        ll.push(if right {
            (ple, plk + 1)
        } else {
            (ple + 1, plk)
        });
        if right {
            moves_right += 1;
        }

        let (le, lk) = ll[b];
        // Valid offsets: e = le - o in [0, n_events), k = lk + o in
        // [0, n_kmers), o in [0, w).
        let o_lo = (le - (n_events as i64 - 1)).max(-lk).max(0);
        let o_hi = (w as i64 - 1).min(le).min(n_kmers as i64 - 1 - lk);
        if o_lo > o_hi {
            continue;
        }
        let (o_lo, len) = (o_lo as usize, (o_hi - o_lo + 1) as usize);
        cells += len as u64;

        // Neighbor shifts from the anchor deltas (see fn docs).
        let du = (lk - plk) as usize;
        let dlk = if b >= 2 { ll[b - 2].1 } else { lk };
        let dd = (lk - dlk) as usize;

        let (done, cur) = bands.split_at_mut(b * wp);
        let prev_row = &done[prev * wp..prev * wp + wp];
        let diag_row = &done[b.saturating_sub(2) * wp..b.saturating_sub(2) * wp + wp];
        let up_s = &prev_row[o_lo + du + 1..o_lo + du + 1 + len];
        let left_s = &prev_row[o_lo + du..o_lo + du + len];
        let diag_s = &diag_row[o_lo + dd..o_lo + dd + len];
        let k0 = (lk + o_lo as i64) as usize;
        let km = &k_mean[k0..k0 + len];
        let ks = &k_stdv[k0..k0 + len];
        let kl = &k_ln_stdv[k0..k0 + len];
        let r0 = (n_events as i64 - 1 - le + o_lo as i64) as usize;
        let ev = &ev_rev[r0..r0 + len];
        let out = &mut cur[o_lo + 1..o_lo + 1 + len];
        let tr_out = &mut trace[b * wp + o_lo + 1..b * wp + o_lo + 1 + len];

        // The branchless vector core: identical expression tree and
        // comparison cascade to the scalar cell, evaluated per lane.
        for i in 0..len {
            let z = (ev[i] - km[i]) / ks[i];
            let lp_emit = -kl[i] - LN_SQRT_2PI - 0.5 * z * z;
            let s_d = diag_s[i] + lp_step + lp_emit;
            let s_u = up_s[i] + lp_stay + lp_emit;
            let s_l = left_s[i] + lp_skip;
            let (best, mv) = if s_d >= s_u && s_d >= s_l {
                (s_d, FROM_D)
            } else if s_u >= s_l {
                (s_u, FROM_U)
            } else {
                (s_l, FROM_L)
            };
            out[i] = best;
            tr_out[i] = mv;
        }
        probe.simd_ops(1);
        probe.branch(right);
    }

    // Locate the terminal cell (last event, last k-mer).
    let (te, tk) = (n_events as i64 - 1, n_kmers as i64 - 1);
    let (term_band, term_off) = (0..n_bands)
        .rev()
        .find_map(|b| offset_of(b, te, tk, &ll).map(|o| (b, o)))?;
    let score = bands[term_band * wp + term_off + 1];
    if score == NEG_INF {
        return None; // band drifted away from the terminal cell
    }

    // Traceback, identical to the scalar engine (padded indexing).
    let mut alignment = Vec::new();
    let (mut b, mut e, mut k) = (term_band, te, tk);
    while e >= 0 && k >= 0 {
        let o = offset_of(b, e, k, &ll)?;
        let mv = trace[b * wp + o + 1];
        match mv {
            FROM_D => {
                alignment.push(EventAlignment {
                    event_idx: e as usize,
                    kmer_idx: k as usize,
                });
                e -= 1;
                k -= 1;
                b = b.checked_sub(2)?;
            }
            FROM_U => {
                alignment.push(EventAlignment {
                    event_idx: e as usize,
                    kmer_idx: k as usize,
                });
                e -= 1;
                b -= 1;
            }
            FROM_L => {
                k -= 1;
                b -= 1;
            }
            _ => break, // reached the start cell
        }
        if e < 0 || k < 0 {
            break;
        }
    }
    alignment.reverse();
    Some(AbeaResult {
        score,
        alignment,
        cells,
        moves_right,
    })
}

fn transition_logs(n_events: usize, n_kmers: usize, params: &AbeaParams) -> (f32, f32, f32) {
    // Degenerate-input guard: with an empty event or k-mer set the ratio
    // below is 0/0 (NaN) or x/0 (inf), and NaN survives `clamp` to poison
    // every cell. Both aligners already refuse empty inputs, but keep
    // this closed under all inputs: fall back to the p_stay a 1:1
    // event/k-mer ratio gives, so the returned log-probs stay finite.
    let events_per_kmer = if n_events == 0 || n_kmers == 0 {
        1.0
    } else {
        n_events as f64 / n_kmers as f64
    };
    let p_stay = params
        .p_stay
        .unwrap_or(1.0 - 1.0 / (events_per_kmer + 1.0))
        .clamp(1e-6, 0.999);
    let p_skip = params.p_skip.clamp(1e-12, 0.5);
    let p_step = (1.0 - p_stay - p_skip).max(1e-6);
    (p_step.ln() as f32, p_stay.ln() as f32, p_skip.ln() as f32)
}

/// `ln N(event.mean | model[kmer])` — the FP-heavy inner computation.
#[inline]
fn emission_logprob<P: Probe>(event: &Event, kmer: u64, model: &PoreModel, probe: &mut P) -> f32 {
    let m = model.get(kmer);
    probe.load(addr_of(&m), 8);
    let z = (event.mean - m.level_mean) / m.level_stdv;
    const LN_SQRT_2PI: f32 = 0.918_938_5;
    probe.fp_ops(7);
    -m.level_stdv.ln() - LN_SQRT_2PI - 0.5 * z * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_datagen::signal::{simulate_signal, SignalSimConfig};

    fn refseq(n: usize) -> DnaSeq {
        DnaSeq::from_codes_unchecked(
            (0..n)
                .map(|i| ((i * 7 + i / 5 + i % 3) % 4) as u8)
                .collect(),
        )
    }

    fn clean_signal(seq: &DnaSeq, seed: u64) -> Vec<Event> {
        let cfg = SignalSimConfig {
            split_prob: 0.0,
            skip_prob: 0.0,
            ..Default::default()
        };
        simulate_signal(seq, &PoreModel::r9_like(), &cfg, seed).events
    }

    #[test]
    fn clean_signal_aligns_diagonally() {
        let seq = refseq(80);
        let events = clean_signal(&seq, 1);
        let model = PoreModel::r9_like();
        let r = align_events(&events, &seq, &model, &AbeaParams::default()).unwrap();
        let n_kmers = seq.len() - PORE_K + 1;
        assert_eq!(r.alignment.len(), events.len());
        // One event per k-mer: alignment should be (i, i).
        let diagonal = r
            .alignment
            .iter()
            .filter(|a| a.event_idx == a.kmer_idx)
            .count();
        assert!(
            diagonal * 10 >= r.alignment.len() * 9,
            "only {diagonal} diagonal pairs"
        );
        assert_eq!(r.alignment.last().unwrap().kmer_idx, n_kmers - 1);
    }

    #[test]
    fn banded_matches_full_dp_when_band_covers() {
        let seq = refseq(40);
        let cfg = SignalSimConfig::default();
        let events = simulate_signal(&seq, &PoreModel::r9_like(), &cfg, 3).events;
        let model = PoreModel::r9_like();
        let p = AbeaParams {
            bandwidth: 200,
            ..Default::default()
        };
        let banded = align_events(&events, &seq, &model, &p).unwrap();
        let full = align_events_full(&events, &seq, &model, &p).unwrap();
        assert!(
            (banded.score - full.score).abs() < 1e-3 * full.score.abs().max(1.0),
            "banded {} vs full {}",
            banded.score,
            full.score
        );
    }

    #[test]
    fn oversegmented_signal_still_reaches_terminal() {
        let seq = refseq(150);
        let cfg = SignalSimConfig {
            split_prob: 0.5,
            skip_prob: 0.05,
            ..Default::default()
        };
        let events = simulate_signal(&seq, &PoreModel::r9_like(), &cfg, 5).events;
        let model = PoreModel::r9_like();
        let r = align_events(&events, &seq, &model, &AbeaParams::default()).unwrap();
        assert!(r.score.is_finite());
        // Every k-mer that was not skipped should appear.
        let n_kmers = seq.len() - PORE_K + 1;
        let covered: std::collections::HashSet<usize> =
            r.alignment.iter().map(|a| a.kmer_idx).collect();
        assert!(covered.len() as f64 > 0.85 * n_kmers as f64);
        // Split k-mers get multiple events: alignment longer than k-mers.
        assert!(r.alignment.len() > n_kmers);
    }

    #[test]
    fn alignment_is_monotonic() {
        let seq = refseq(120);
        let events =
            simulate_signal(&seq, &PoreModel::r9_like(), &SignalSimConfig::default(), 9).events;
        let model = PoreModel::r9_like();
        let r = align_events(&events, &seq, &model, &AbeaParams::default()).unwrap();
        for w in r.alignment.windows(2) {
            assert!(w[1].event_idx >= w[0].event_idx);
            assert!(w[1].kmer_idx >= w[0].kmer_idx);
            assert!(w[1].event_idx > w[0].event_idx || w[1].kmer_idx > w[0].kmer_idx);
        }
    }

    #[test]
    fn band_cells_far_below_full_matrix() {
        let seq = refseq(1200);
        let events =
            simulate_signal(&seq, &PoreModel::r9_like(), &SignalSimConfig::default(), 11).events;
        let model = PoreModel::r9_like();
        let r = align_events(&events, &seq, &model, &AbeaParams::default()).unwrap();
        let full_cells = (events.len() * (seq.len() - PORE_K + 1)) as u64;
        assert!(
            r.cells * 4 < full_cells,
            "banded {} vs full {full_cells}",
            r.cells
        );
    }

    #[test]
    fn adaptive_band_moves_both_ways() {
        let seq = refseq(200);
        let cfg = SignalSimConfig {
            split_prob: 0.6,
            skip_prob: 0.0,
            ..Default::default()
        };
        let events = simulate_signal(&seq, &PoreModel::r9_like(), &cfg, 13).events;
        let model = PoreModel::r9_like();
        let r = align_events(&events, &seq, &model, &AbeaParams::default()).unwrap();
        // With ~1.6 events per k-mer the band must move down more often
        // than right.
        let total = events.len() as u64 + (seq.len() - PORE_K + 1) as u64;
        assert!(
            r.moves_right < total * 2 / 3,
            "right {} of {total}",
            r.moves_right
        );
        assert!(r.moves_right > total / 5);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let seq = refseq(40);
        let model = PoreModel::r9_like();
        assert!(align_events(&[], &seq, &model, &AbeaParams::default()).is_none());
        let short: DnaSeq = "ACG".parse().unwrap();
        let ev = clean_signal(&seq, 1);
        assert!(align_events(&ev, &short, &model, &AbeaParams::default()).is_none());
    }

    #[test]
    fn degenerate_inputs_return_none_on_both_engines() {
        // Regression for the transition_logs 0/0 hazard: zero-length
        // event or k-mer sets must yield an explicit empty result (None)
        // on every engine, never NaN-poisoned cells.
        let seq = refseq(40);
        let short: DnaSeq = "ACG".parse().unwrap(); // shorter than PORE_K
        let empty = DnaSeq::new();
        let model = PoreModel::r9_like();
        let ev = clean_signal(&seq, 1);
        let p = AbeaParams::default();
        for engine in [DpEngine::Scalar, DpEngine::Simd] {
            assert!(align_events_engine(&[], &seq, &model, &p, engine).is_none());
            assert!(align_events_engine(&ev, &short, &model, &p, engine).is_none());
            assert!(align_events_engine(&ev, &empty, &model, &p, engine).is_none());
            assert!(align_events_engine(&[], &empty, &model, &p, engine).is_none());
        }
    }

    #[test]
    fn transition_logs_finite_for_empty_inputs() {
        let p = AbeaParams::default();
        for (ne, nk) in [(0, 0), (0, 10), (10, 0), (10, 10)] {
            let (step, stay, skip) = transition_logs(ne, nk, &p);
            assert!(step.is_finite(), "lp_step for ({ne},{nk})");
            assert!(stay.is_finite(), "lp_stay for ({ne},{nk})");
            assert!(skip.is_finite(), "lp_skip for ({ne},{nk})");
        }
    }

    fn assert_results_bit_identical(a: &AbeaResult, b: &AbeaResult) {
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.alignment, b.alignment);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.moves_right, b.moves_right);
    }

    #[test]
    fn simd_is_bit_identical_to_scalar() {
        let model = PoreModel::r9_like();
        for (n, seed, split, skip) in [
            (80usize, 1u64, 0.0f64, 0.0f64),
            (150, 5, 0.5, 0.05),
            (200, 13, 0.6, 0.0),
            (1200, 11, 0.3, 0.02),
        ] {
            let seq = refseq(n);
            let cfg = SignalSimConfig {
                split_prob: split,
                skip_prob: skip,
                ..Default::default()
            };
            let events = simulate_signal(&seq, &model, &cfg, seed).events;
            let p = AbeaParams::default();
            let scalar = align_events(&events, &seq, &model, &p).unwrap();
            let simd = align_events_simd(&events, &seq, &model, &p).unwrap();
            assert_results_bit_identical(&scalar, &simd);
        }
    }

    #[test]
    fn simd_matches_scalar_at_minimum_bandwidth() {
        // w = 2 exercises both padded-row sentinels on every band and the
        // band-placement ties that decide shift direction at the edges.
        let seq = refseq(60);
        let model = PoreModel::r9_like();
        let events = clean_signal(&seq, 3);
        for bw in [2usize, 3, 5, 10] {
            let p = AbeaParams {
                bandwidth: bw,
                ..Default::default()
            };
            let scalar = align_events(&events, &seq, &model, &p);
            let simd = align_events_simd(&events, &seq, &model, &p);
            match (scalar, simd) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_results_bit_identical(&a, &b),
                (a, b) => panic!("engines disagree at bw={bw}: {:?} vs {:?}", a, b),
            }
        }
    }
}
