//! Banded Smith-Waterman with affine gaps — the **bsw** kernel.
//!
//! This is the seed-extension computation of BWA-MEM(2) and the pairwise
//! scoring core of GATK: local alignment of a read segment against a
//! reference segment, restricted to a diagonal band, with early
//! termination (Z-drop) when the alignment quality collapses. The module
//! also provides the *inter-sequence batched* execution mode the paper
//! analyzes: many alignments run in SIMD lockstep, where lane imbalance
//! (length differences and early exits) causes redundant cell updates —
//! the 2.2x over-compute reported for the AVX2 implementation.

use gb_core::seq::DnaSeq;
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Scoring parameters for Smith-Waterman alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwParams {
    /// Score for a matching base pair (positive).
    pub match_score: i32,
    /// Penalty for a mismatching pair (positive; subtracted).
    pub mismatch: i32,
    /// Gap-open penalty `q` (positive).
    pub gap_open: i32,
    /// Gap-extend penalty `e` (positive).
    pub gap_extend: i32,
    /// Half-width of the diagonal band; `None` computes the full matrix.
    pub band: Option<usize>,
    /// Early-exit threshold: abort when the best score of a row drops
    /// more than this below the global best (`None` disables).
    pub zdrop: Option<i32>,
}

impl Default for SwParams {
    /// BWA-MEM defaults: match 1, mismatch 4, gap open 6, gap extend 1,
    /// band 100, zdrop 100.
    fn default() -> SwParams {
        SwParams {
            match_score: 1,
            mismatch: 4,
            gap_open: 6,
            gap_extend: 1,
            band: Some(100),
            zdrop: Some(100),
        }
    }
}

/// Result of one Smith-Waterman alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwResult {
    /// Best local alignment score.
    pub score: i32,
    /// Query position (exclusive) where the best score was reached.
    pub query_end: usize,
    /// Target position (exclusive) where the best score was reached.
    pub target_end: usize,
    /// Number of DP cells actually computed (the paper's per-task work
    /// measure).
    pub cells: u64,
    /// Whether the Z-drop early exit fired.
    pub zdropped: bool,
}

/// Aligns `query` against `target` with the given parameters.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_dp::bsw::{banded_sw, SwParams};
/// let q: DnaSeq = "ACGTACGT".parse()?;
/// let t: DnaSeq = "GGACGTACGTGG".parse()?;
/// let r = banded_sw(&q, &t, &SwParams::default());
/// assert_eq!(r.score, 8); // 8 matches x 1
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn banded_sw(query: &DnaSeq, target: &DnaSeq, params: &SwParams) -> SwResult {
    banded_sw_probed(query, target, params, &mut NullProbe)
}

/// [`banded_sw`] with instrumentation: every H/E/F cell update reports its
/// loads, stores and ALU work to `probe`.
// PANIC-FREE: DP-row indices are clamped to `1..=n` by the band limits
// (`lo >= 1`, `hi <= n`) and the rows are allocated with `n + 1` slots;
// `q[i - 1]`/`t[j - 1]` follow from `i <= m`, `j <= n`.
pub fn banded_sw_probed<P: Probe>(
    query: &DnaSeq,
    target: &DnaSeq,
    params: &SwParams,
    probe: &mut P,
) -> SwResult {
    let q = query.as_codes();
    let t = target.as_codes();
    let (m, n) = (q.len(), t.len());
    if m == 0 || n == 0 {
        return SwResult::default();
    }
    let band = params.band.unwrap_or(usize::MAX);

    // Row-wise DP over the query; `h[j]`/`e[j]` hold the previous row.
    // Cells outside the previous row's band `[prev_lo, prev_hi]` are
    // stale and must read as 0 (out-of-band H) / gap-impossible (E).
    let mut h = vec![0i32; n + 1];
    let mut e = vec![0i32; n + 1];
    let mut best = SwResult::default();
    let mut cells = 0u64;
    let (mut prev_lo, mut prev_hi) = (0usize, n); // row 0 is all zeros

    for i in 1..=m {
        // Band limits on this row (diagonal band around i == j scaled by
        // sequence-length ratio, as BWA-MEM does for unequal lengths).
        let center = i * n / m;
        let lo = center.saturating_sub(band).max(1);
        let hi = center.saturating_add(band).min(n);
        if lo > hi {
            break;
        }
        // Strict band check: j == prev_lo - 1 was *not* computed in the
        // previous row and may hold stale values from older rows.
        let in_prev = |j: usize| j >= prev_lo && j <= prev_hi;
        let mut h_diag = if in_prev(lo - 1) { h[lo - 1] } else { 0 };
        let mut f = 0i32;
        let mut row_best = 0i32;
        for j in lo..=hi {
            cells += 1;
            probe.load(addr_of(&h[j]), 4);
            probe.load(addr_of(&e[j]), 4);
            let valid = in_prev(j);
            let h_up = if valid { h[j] } else { 0 };
            let e_in = if valid { e[j] } else { 0 };
            let s = if q[i - 1] == t[j - 1] {
                params.match_score
            } else {
                -params.mismatch
            };
            let mut score = h_diag + s;
            score = score.max(e_in).max(f).max(0);
            h_diag = h_up;
            h[j] = score;
            probe.store(addr_of(&h[j]), 4);
            // Gap state updates for the next row / next column.
            e[j] = (score - params.gap_open).max(e_in) - params.gap_extend;
            f = (score - params.gap_open).max(f) - params.gap_extend;
            probe.store(addr_of(&e[j]), 4);
            probe.int_ops(10);
            probe.branch(score > row_best);
            if score > row_best {
                row_best = score;
            }
            if score > best.score {
                best.score = score;
                best.query_end = i;
                best.target_end = j;
            }
        }
        prev_lo = lo;
        prev_hi = hi;
        if let Some(z) = params.zdrop {
            probe.branch(row_best + z < best.score);
            if row_best + z < best.score {
                best.zdropped = true;
                break;
            }
        }
    }
    best.cells = cells;
    best
}

/// Full-matrix (unbanded, no early exit) reference implementation.
pub fn full_sw(query: &DnaSeq, target: &DnaSeq, params: &SwParams) -> SwResult {
    let p = SwParams {
        band: None,
        zdrop: None,
        ..*params
    };
    banded_sw(query, target, &p)
}

/// A single alignment task in a batch.
#[derive(Debug, Clone)]
pub struct SwTask {
    /// The query sequence.
    pub query: DnaSeq,
    /// The target sequence.
    pub target: DnaSeq,
}

// `BatchReport` moved to the shared engine layer when spoa/abea joined
// the lockstep framework; re-exported here so existing callers keep
// their import path.
pub use crate::lockstep::BatchReport;

/// Executes `tasks` in lockstep batches of `lanes` (the inter-sequence
/// vectorization model of BWA-MEM2): a batch retires only when its longest
/// task finishes, so every shorter lane burns idle cell slots.
///
/// `sort_by_len` enables the length-sorting mitigation the paper
/// describes (inputs sorted before lane assignment).
///
/// Delegates to the executed lockstep engine
/// ([`crate::bsw_batch::run_lockstep_width`]) so the Fig. 3 slot counts
/// come from one code path: per vector step every lane — active, masked
/// or idle — burns one slot, which reproduces the old analytic
/// `lanes x max-cells` bound exactly (each lane computes one cell per
/// step, so a group runs for `max-cells` steps).
pub fn run_batch(
    tasks: &[SwTask],
    params: &SwParams,
    lanes: usize,
    sort_by_len: bool,
) -> (Vec<SwResult>, BatchReport) {
    assert!(lanes > 0, "lanes must be positive");
    crate::bsw_batch::run_lockstep_width(tasks, params, lanes, sort_by_len)
}

impl gb_substrate::Codec for SwTask {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.query, e);
        gb_substrate::Codec::encode(&self.target, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<SwTask> {
        Some(SwTask {
            query: gb_substrate::Codec::decode(d)?,
            target: gb_substrate::Codec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn params() -> SwParams {
        SwParams {
            band: None,
            zdrop: None,
            ..SwParams::default()
        }
    }

    /// Textbook O(nm) affine-gap local alignment with explicit matrices.
    fn reference_sw(q: &[u8], t: &[u8], p: &SwParams) -> i32 {
        let (m, n) = (q.len(), t.len());
        let neg = i32::MIN / 4;
        let mut hm = vec![vec![0i32; n + 1]; m + 1];
        let mut em = vec![vec![neg; n + 1]; m + 1];
        let mut fm = vec![vec![neg; n + 1]; m + 1];
        let mut best = 0;
        for i in 1..=m {
            for j in 1..=n {
                em[i][j] = (em[i - 1][j].max(hm[i - 1][j] - p.gap_open)) - p.gap_extend;
                fm[i][j] = (fm[i][j - 1].max(hm[i][j - 1] - p.gap_open)) - p.gap_extend;
                let s = if q[i - 1] == t[j - 1] {
                    p.match_score
                } else {
                    -p.mismatch
                };
                hm[i][j] = (hm[i - 1][j - 1] + s).max(em[i][j]).max(fm[i][j]).max(0);
                best = best.max(hm[i][j]);
            }
        }
        best
    }

    #[test]
    fn perfect_match_scores_length() {
        let q = seq("ACGTACGTAC");
        let r = full_sw(&q, &q, &params());
        assert_eq!(r.score, 10);
        assert_eq!(r.query_end, 10);
        assert_eq!(r.cells, 100);
    }

    #[test]
    fn matches_reference_on_pseudorandom_pairs() {
        for pair_seed in 0..12u64 {
            let mut x = pair_seed.wrapping_mul(0x9E3779B97F4A7C15) + 1;
            let mut gen = |len: usize| -> Vec<u8> {
                (0..len)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ((x >> 33) % 4) as u8
                    })
                    .collect()
            };
            let q = gen(40 + (pair_seed as usize * 7) % 30);
            let t = gen(50 + (pair_seed as usize * 11) % 40);
            let got = full_sw(
                &DnaSeq::from_codes_unchecked(q.clone()),
                &DnaSeq::from_codes_unchecked(t.clone()),
                &params(),
            );
            assert_eq!(
                got.score,
                reference_sw(&q, &t, &params()),
                "seed {pair_seed}"
            );
        }
    }

    #[test]
    fn gap_alignment_uses_affine_costs() {
        // Query = a long non-repetitive target with a 3-base deletion:
        // bridging the gap (matches - open - 3*extend) beats either flank.
        let mut x = 5u64;
        let t_codes: Vec<u8> = (0..40)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 4) as u8
            })
            .collect();
        let t = DnaSeq::from_codes_unchecked(t_codes);
        let mut q_codes = t.as_codes().to_vec();
        q_codes.drain(18..21);
        let q = DnaSeq::from_codes_unchecked(q_codes);
        let r = full_sw(&q, &t, &params());
        assert_eq!(r.score, 37 - 6 - 3);
    }

    #[test]
    fn wide_band_equals_full_matrix() {
        let q = seq("ACGGTTACAGGATCCAGTACGTTGCA");
        let t = seq("ACGGTTACCGGATCAGTACGTTGCAA");
        let full = full_sw(&q, &t, &params());
        let banded = banded_sw(
            &q,
            &t,
            &SwParams {
                band: Some(1000),
                zdrop: None,
                ..params()
            },
        );
        assert_eq!(full.score, banded.score);
    }

    #[test]
    fn narrow_band_computes_fewer_cells() {
        let q = seq("ACGGTTACAGGATCCAGTACGTTGCAACGGTTACAGG");
        let t = q.clone();
        let full = full_sw(&q, &t, &params());
        let banded = banded_sw(
            &q,
            &t,
            &SwParams {
                band: Some(3),
                zdrop: None,
                ..params()
            },
        );
        assert!(banded.cells < full.cells / 2);
        // Identical sequences: the optimum lies on the diagonal, so even a
        // narrow band finds it.
        assert_eq!(banded.score, full.score);
    }

    #[test]
    fn zdrop_aborts_dissimilar_pairs() {
        // A good prefix followed by garbage triggers the early exit.
        let q = seq("ACGTACGTACGTACGTCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCC");
        let t = seq("ACGTACGTACGTACGTGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGG");
        let r = banded_sw(
            &q,
            &t,
            &SwParams {
                band: None,
                zdrop: Some(5),
                ..params()
            },
        );
        assert!(r.zdropped);
        let nor = banded_sw(
            &q,
            &t,
            &SwParams {
                band: None,
                zdrop: None,
                ..params()
            },
        );
        assert!(r.cells < nor.cells);
        assert_eq!(r.score, nor.score); // best score was reached before the drop
    }

    #[test]
    fn batch_overcompute_at_least_one() {
        let tasks: Vec<SwTask> = (0..40)
            .map(|i| {
                let len = 20 + (i * 13) % 120;
                let codes: Vec<u8> = (0..len).map(|j| ((i + j * 3) % 4) as u8).collect();
                let q = DnaSeq::from_codes_unchecked(codes);
                SwTask {
                    target: q.clone(),
                    query: q,
                }
            })
            .collect();
        let (res, rep) = run_batch(&tasks, &params(), 16, false);
        assert_eq!(res.len(), 40);
        assert!(rep.overcompute() >= 1.0);
        assert_eq!(rep.batches, 3);
        // Sorting by length reduces over-compute.
        let (_, sorted) = run_batch(&tasks, &params(), 16, true);
        assert!(sorted.overcompute() <= rep.overcompute());
    }

    #[test]
    fn probe_counts_cell_traffic() {
        use gb_uarch::mix::MixProbe;
        let q = seq("ACGTACGTAC");
        let mut probe = MixProbe::new();
        let r = banded_sw_probed(&q, &q, &params(), &mut probe);
        assert_eq!(probe.mix().loads, 2 * r.cells);
        assert_eq!(probe.mix().stores, 2 * r.cells);
    }

    #[test]
    fn empty_inputs_are_zero() {
        let e = DnaSeq::new();
        let q = seq("ACGT");
        assert_eq!(banded_sw(&e, &q, &params()).score, 0);
        assert_eq!(banded_sw(&q, &e, &params()).cells, 0);
    }
}
