//! Inter-sequence vectorized Smith-Waterman: the actual lockstep kernel.
//!
//! BWA-MEM2's AVX2 bsw assigns one alignment per SIMD lane and computes
//! all lanes' cell `(i, j)` in lockstep; lanes whose sequences are shorter
//! or whose Z-drop fired are masked off but still occupy their slot until
//! the whole batch retires. [`crate::bsw::run_batch`] *models* that
//! execution from scalar runs; this module *implements* it —
//! struct-of-arrays state, one loop iteration per cell position across
//! all lanes — and must produce bit-identical scores to the scalar
//! kernel, while its slot counting reproduces the Fig. 3 over-compute.

use crate::bsw::{BatchReport, SwParams, SwResult, SwTask};
use gb_uarch::probe::{NullProbe, Probe};

// Lane geometry moved to the shared engine layer; re-exported so
// existing callers keep their import path.
pub use crate::lockstep::LANES;

/// Executes up to [`LANES`] tasks in true lockstep; returns per-lane
/// results plus the slot counts.
///
/// All lanes advance through cell positions together: position `(i, j)`
/// is computed for every *active* lane before any lane moves on. A lane
/// deactivates when its matrix (or band) is exhausted or its Z-drop
/// fires; the batch runs until every lane is done.
pub fn lockstep_group(tasks: &[SwTask], params: &SwParams) -> (Vec<SwResult>, BatchReport) {
    lockstep_group_probed(tasks, params, &mut NullProbe)
}

/// [`lockstep_group`] with instrumentation (one SIMD op per vector step).
pub fn lockstep_group_probed<P: Probe>(
    tasks: &[SwTask],
    params: &SwParams,
    probe: &mut P,
) -> (Vec<SwResult>, BatchReport) {
    lockstep_group_width_probed(tasks, params, LANES, probe)
}

/// [`lockstep_group_probed`] generalized to an arbitrary vector width
/// (used by [`crate::bsw::run_batch`] to reproduce lane counts other than
/// the AVX2 default, e.g. the Fig. 3 8-lane row).
// PANIC-FREE: the asserts are documented preconditions on group width
// (config-time constants), not data-dependent paths.
pub fn lockstep_group_width_probed<P: Probe>(
    tasks: &[SwTask],
    params: &SwParams,
    lanes_width: usize,
    probe: &mut P,
) -> (Vec<SwResult>, BatchReport) {
    assert!(lanes_width > 0, "lanes must be positive");
    assert!(
        tasks.len() <= lanes_width,
        "at most {lanes_width} tasks per lockstep group"
    );
    let band = params.band.unwrap_or(usize::MAX);

    struct Lane<'a> {
        q: &'a [u8],
        t: &'a [u8],
        h: Vec<i32>,
        e: Vec<i32>,
        prev_lo: usize,
        prev_hi: usize,
        // Current row state.
        row: usize,
        lo: usize,
        hi: usize,
        col: usize,
        h_diag: i32,
        f: i32,
        row_best: i32,
        result: SwResult,
        active: bool,
    }

    let mut lanes: Vec<Lane> = tasks
        .iter()
        .map(|task| {
            let q = task.query.as_codes();
            let t = task.target.as_codes();
            let n = t.len();
            let active = !q.is_empty() && !t.is_empty();
            Lane {
                q,
                t,
                h: vec![0; n + 1],
                e: vec![0; n + 1],
                prev_lo: 0,
                prev_hi: n,
                row: 0,
                lo: 1,
                hi: 0,
                col: 1,
                h_diag: 0,
                f: 0,
                row_best: 0,
                result: SwResult::default(),
                active,
            }
        })
        .collect();

    // Prime each lane's first row.
    for lane in lanes.iter_mut().filter(|l| l.active) {
        advance_row(lane, band, params);
    }

    let mut report = BatchReport {
        batches: 1,
        ..BatchReport::default()
    };
    loop {
        let mut any_active = false;
        for lane in lanes.iter_mut() {
            if !lane.active {
                continue;
            }
            any_active = true;
            step_cell(lane, params);
            report.scalar_cells += 1;
            if lane.col > lane.hi {
                finish_row(lane, params, band);
            }
        }
        if !any_active {
            break;
        }
        // Every vector step burns one slot per lane, active or not.
        report.vector_cells += lanes_width as u64;
        probe.simd_ops(1);
        probe.branch(true);
    }
    let results = lanes.into_iter().map(|l| l.result).collect();
    return (results, report);

    // PANIC-FREE: `h[lo - 1]` is guarded by `lo >= 1` and rows hold
    // `n + 1` slots, so the band clamp keeps every index in range.
    // xtask: hot
    fn advance_row(lane: &mut Lane, band: usize, _params: &SwParams) {
        lane.row += 1;
        let (m, n) = (lane.q.len(), lane.t.len());
        if lane.row > m {
            lane.active = false;
            return;
        }
        let center = lane.row * n / m;
        lane.lo = center.saturating_sub(band).max(1);
        lane.hi = center.saturating_add(band).min(n);
        if lane.lo > lane.hi {
            lane.active = false;
            return;
        }
        lane.h_diag = if (lane.prev_lo..=lane.prev_hi).contains(&(lane.lo - 1)) {
            lane.h[lane.lo - 1]
        } else {
            0
        };
        lane.f = 0;
        lane.row_best = 0;
        lane.col = lane.lo;
    }

    // PANIC-FREE: `j` stays within the clamped band `[lo, hi]`, and the
    // query/target reads subtract 1 from indices that start at 1.
    // xtask: hot
    fn step_cell(lane: &mut Lane, params: &SwParams) {
        let j = lane.col;
        let i = lane.row;
        let valid = j >= lane.prev_lo && j <= lane.prev_hi;
        let h_up = if valid { lane.h[j] } else { 0 };
        let e_in = if valid { lane.e[j] } else { 0 };
        let s = if lane.q[i - 1] == lane.t[j - 1] {
            params.match_score
        } else {
            -params.mismatch
        };
        let mut score = lane.h_diag + s;
        score = score.max(e_in).max(lane.f).max(0);
        lane.h_diag = h_up;
        lane.h[j] = score;
        lane.e[j] = (score - params.gap_open).max(e_in) - params.gap_extend;
        lane.f = (score - params.gap_open).max(lane.f) - params.gap_extend;
        lane.result.cells += 1;
        if score > lane.row_best {
            lane.row_best = score;
        }
        if score > lane.result.score {
            lane.result.score = score;
            lane.result.query_end = i;
            lane.result.target_end = j;
        }
        lane.col += 1;
    }

    // xtask: hot
    fn finish_row(lane: &mut Lane, params: &SwParams, band: usize) {
        lane.prev_lo = lane.lo;
        lane.prev_hi = lane.hi;
        if let Some(z) = params.zdrop {
            if lane.row_best + z < lane.result.score {
                lane.result.zdropped = true;
                lane.active = false;
                return;
            }
        }
        advance_row(lane, band, params);
    }
}

/// Runs an arbitrary task list through lockstep groups of [`LANES`],
/// optionally length-sorted first (the paper's mitigation).
pub fn run_lockstep(
    tasks: &[SwTask],
    params: &SwParams,
    sort_by_len: bool,
) -> (Vec<SwResult>, BatchReport) {
    run_lockstep_width(tasks, params, LANES, sort_by_len)
}

/// Length-sort order over task indices: the paper's mitigation assigns
/// similarly-sized alignments to the same lockstep group.
pub(crate) fn length_order(tasks: &[SwTask], sort_by_len: bool) -> Vec<usize> {
    crate::lockstep::order_by_key(tasks.len(), sort_by_len, |i| {
        tasks[i].query.len() + tasks[i].target.len()
    })
}

/// [`run_lockstep`] generalized to an arbitrary lane width.
pub fn run_lockstep_width(
    tasks: &[SwTask],
    params: &SwParams,
    lanes_width: usize,
    sort_by_len: bool,
) -> (Vec<SwResult>, BatchReport) {
    let order = length_order(tasks, sort_by_len);
    // Same gather-once idiom as `bsw_simd::run_simd_probed`: one upfront
    // batch allocation, zero allocations inside the group loop.
    let sorted: Vec<SwTask> = order.iter().map(|&i| tasks[i].clone()).collect();
    let mut results = vec![SwResult::default(); tasks.len()];
    let mut total = BatchReport::default();
    for (g, batch) in sorted.chunks(lanes_width).enumerate() {
        let (rs, rep) = lockstep_group_width_probed(batch, params, lanes_width, &mut NullProbe);
        for (&idx, r) in order[g * lanes_width..].iter().zip(rs) {
            results[idx] = r;
        }
        total.merge(&rep);
    }
    (results, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsw::{banded_sw, run_batch};
    use gb_core::seq::DnaSeq;

    fn tasks(n: usize, seed: u64) -> Vec<SwTask> {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        };
        (0..n)
            .map(|_| {
                let qlen = 20 + (next() % 150) as usize;
                let q: Vec<u8> = (0..qlen).map(|_| ((next() >> 33) % 4) as u8).collect();
                // Mix of noisy copies and unrelated targets.
                let t: Vec<u8> = if next() % 10 < 8 {
                    q.iter()
                        .map(|&c| if next() % 100 < 2 { (c + 1) % 4 } else { c })
                        .collect()
                } else {
                    let tlen = 20 + (next() % 150) as usize;
                    (0..tlen).map(|_| ((next() >> 33) % 4) as u8).collect()
                };
                SwTask {
                    query: DnaSeq::from_codes_unchecked(q),
                    target: DnaSeq::from_codes_unchecked(t),
                }
            })
            .collect()
    }

    #[test]
    fn lockstep_scores_match_scalar_exactly() {
        let ts = tasks(40, 11);
        let params = SwParams::default();
        let (results, _) = run_lockstep(&ts, &params, false);
        for (task, r) in ts.iter().zip(&results) {
            let scalar = banded_sw(&task.query, &task.target, &params);
            assert_eq!(r.score, scalar.score);
            assert_eq!(r.query_end, scalar.query_end);
            assert_eq!(r.target_end, scalar.target_end);
            assert_eq!(r.cells, scalar.cells);
            assert_eq!(r.zdropped, scalar.zdropped);
        }
    }

    #[test]
    fn lockstep_slot_count_shows_overcompute() {
        let ts = tasks(48, 13);
        let params = SwParams::default();
        let (_, rep) = run_lockstep(&ts, &params, false);
        assert!(rep.overcompute() > 1.1, "overcompute {}", rep.overcompute());
        let (_, sorted) = run_lockstep(&ts, &params, true);
        assert!(sorted.overcompute() <= rep.overcompute());
    }

    #[test]
    fn lockstep_agrees_with_the_analytic_model_on_cells() {
        // run_batch now delegates here, so the old analytic model
        // (`lanes x max-cells` per group) and the executed lockstep must
        // agree exactly: a lane computes one cell per vector step, so a
        // group runs for max-cells steps and burns lanes slots per step.
        let ts = tasks(16, 17);
        let params = SwParams {
            zdrop: None,
            ..SwParams::default()
        };
        let (model_res, model) = run_batch(&ts, &params, LANES, false);
        let (real_res, real) = run_lockstep(&ts, &params, false);
        assert_eq!(model, real);
        assert_eq!(model_res, real_res);
        // The executed slot count equals the analytic bound: the longest
        // lane's cell count times the vector width.
        let max_cells = real_res.iter().map(|r| r.cells).max().unwrap();
        assert_eq!(real.vector_cells, max_cells * LANES as u64);
    }

    #[test]
    fn empty_and_partial_groups() {
        let params = SwParams::default();
        let (r, rep) = run_lockstep(&[], &params, false);
        assert!(r.is_empty());
        assert_eq!(rep.scalar_cells, 0);
        let one = tasks(1, 19);
        let (r, rep) = run_lockstep(&one, &params, false);
        assert_eq!(r.len(), 1);
        // A single lane still burns all LANES slots per step.
        assert_eq!(rep.vector_cells, rep.scalar_cells * LANES as u64);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_group_panics() {
        let ts = tasks(17, 23);
        let _ = lockstep_group(&ts, &SwParams::default());
    }
}
