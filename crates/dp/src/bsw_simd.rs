//! i16 struct-of-arrays SIMD engine for inter-sequence banded SW.
//!
//! This is the executed counterpart of BWA-MEM2's 16-bit AVX2 bsw: one
//! alignment per lane, all lanes' current cells computed per vector step
//! over contiguous `[i16; LANES]` lane arrays. The hot loop is written so
//! LLVM autovectorizes it on stable Rust (fixed-width arrays, saturating
//! i16 ops, no branches); per-lane gather/scatter and the rare
//! bookkeeping branches (best-score improvement, row turnover, lane
//! retirement) stay scalar.
//!
//! **Precision ladder** (BWA-MEM2's 8/16/32-bit laddering, top two rungs):
//! a lane whose H score reaches [`RETIRE_LIMIT`] is retired from the
//! vector and re-run from scratch with the exact i32 scalar kernel
//! ([`banded_sw`]); parameter sets that don't fit i16 at all
//! ([`params_fit_i16`]) drop the whole group to the i32 lockstep engine.
//!
//! **Bit-identity.** With all scoring parameters in `[0, MAX_I16_PARAM]`:
//! every stored H is `< RETIRE_LIMIT` (larger values retire before the
//! store), so `h_diag + s <= 24574 + 8192 < i16::MAX` never saturates;
//! and E/F are bounded below by `-(gap_open + gap_extend) >= -16384`
//! because each update takes `max(score - open, prev) - extend` with
//! `score >= 0`. Every intermediate therefore stays exactly representable
//! in i16, and the engine's scores, end positions, Z-drop decisions and
//! cell counts are bit-identical to [`banded_sw`].

use crate::bsw::{banded_sw_probed, BatchReport, SwParams, SwResult, SwTask};
use crate::bsw_batch::{self, length_order, LANES};
use gb_uarch::probe::{NullProbe, Probe};

// The ladder constants moved to the shared engine layer when spoa joined
// the i16 lockstep framework; re-exported so existing callers keep their
// import path.
pub use crate::lockstep::{MAX_I16_PARAM, RETIRE_LIMIT};

/// Whether a parameter set is eligible for the i16 engine. All four
/// scoring magnitudes must be in `[0, MAX_I16_PARAM]`; anything else
/// (including the negative values the type allows) runs on the i32
/// lockstep engine instead.
pub fn params_fit_i16(params: &SwParams) -> bool {
    crate::lockstep::fits_i16(&[
        params.match_score,
        params.mismatch,
        params.gap_open,
        params.gap_extend,
    ])
}

/// The branchless vector core: one cell update for all [`LANES`] lanes.
/// Inactive lanes have quiesced inputs (zeros) and compute a harmless 0.
/// Saturating ops map to `paddsw`/`psubsw`/`pmaxsw`; they never actually
/// saturate under the invariants above, so results stay exact.
#[inline(always)]
// The parameter list mirrors the kernel's SIMD register set; bundling
// them into a struct defeats the per-array aliasing analysis.
#[allow(clippy::too_many_arguments)]
// PANIC-FREE: all lane and column indices are bounded by `LANES` and the
// padded row length fixed at group setup.
// xtask: hot
fn step_vector(
    h_diag: &mut [i16; LANES],
    f_gap: &mut [i16; LANES],
    row_best: &mut [i16; LANES],
    sv: &[i16; LANES],
    h_up: &[i16; LANES],
    e_in: &[i16; LANES],
    score: &mut [i16; LANES],
    e_out: &mut [i16; LANES],
    qo: i16,
    qe: i16,
) -> bool {
    let mut hot = 0i16;
    for l in 0..LANES {
        let sc = h_diag[l]
            .saturating_add(sv[l])
            .max(e_in[l])
            .max(f_gap[l])
            .max(0);
        let open = sc.saturating_sub(qo);
        score[l] = sc;
        e_out[l] = open.max(e_in[l]).saturating_sub(qe);
        f_gap[l] = open.max(f_gap[l]).saturating_sub(qe);
        h_diag[l] = h_up[l];
        row_best[l] = row_best[l].max(sc);
        hot |= (sc >= RETIRE_LIMIT) as i16;
    }
    hot != 0
}

/// Executes up to [`LANES`] tasks on the i16 SoA engine; returns per-lane
/// results (bit-identical to [`crate::bsw::banded_sw`]) plus slot counts.
pub fn simd_group(tasks: &[SwTask], params: &SwParams) -> (Vec<SwResult>, BatchReport) {
    simd_group_probed(tasks, params, &mut NullProbe)
}

/// [`simd_group`] with instrumentation: one SIMD op (and one lockstep
/// branch) per vector step, matching the i32 lockstep engine's
/// accounting; retired lanes replay their scalar cell traffic.
// PANIC-FREE: the assert is the documented group-width precondition;
// row/lane indices are bounded by the padded lengths fixed at setup.
pub fn simd_group_probed<P: Probe>(
    tasks: &[SwTask],
    params: &SwParams,
    probe: &mut P,
) -> (Vec<SwResult>, BatchReport) {
    assert!(tasks.len() <= LANES, "at most {LANES} tasks per SIMD group");
    if !params_fit_i16(params) {
        // Ladder top: out-of-range parameters run the exact i32 lockstep.
        return bsw_batch::lockstep_group_probed(tasks, params, probe);
    }
    let band = params.band.unwrap_or(usize::MAX);
    let ms = params.match_score as i16;
    let neg_mm = -(params.mismatch as i16);
    let qo = params.gap_open as i16;
    let qe = params.gap_extend as i16;

    struct Lane<'a> {
        q: &'a [u8],
        t: &'a [u8],
        h: Vec<i16>,
        e: Vec<i16>,
        prev_lo: usize,
        prev_hi: usize,
        row: usize,
        lo: usize,
        hi: usize,
        col: usize,
        /// `q[row - 1]`, cached at row turnover.
        qc: u8,
        result: SwResult,
    }

    let nlanes = tasks.len();
    let mut lanes: Vec<Lane> = tasks
        .iter()
        .map(|task| {
            let q = task.query.as_codes();
            let t = task.target.as_codes();
            let n = t.len();
            Lane {
                q,
                t,
                h: vec![0; n + 1],
                e: vec![0; n + 1],
                prev_lo: 0,
                prev_hi: n,
                row: 0,
                lo: 1,
                hi: 0,
                col: 1,
                qc: 0,
                result: SwResult::default(),
            }
        })
        .collect();

    // SoA hot state; slots past `nlanes` stay quiesced (zero) forever.
    let mut h_diag = [0i16; LANES];
    let mut f_gap = [0i16; LANES];
    let mut row_best = [0i16; LANES];
    let mut best = [0i16; LANES];
    let mut sv = [0i16; LANES];
    let mut h_up = [0i16; LANES];
    let mut e_in = [0i16; LANES];
    let mut score = [0i16; LANES];
    let mut e_out = [0i16; LANES];
    let mut active = [false; LANES];
    let mut retired = [false; LANES];

    // Quiesces a lane's vector slots so it computes a harmless 0 — and
    // can never false-trigger retirement — on every later step.
    macro_rules! quiesce {
        ($l:expr) => {{
            let l = $l;
            active[l] = false;
            h_diag[l] = 0;
            f_gap[l] = 0;
            sv[l] = 0;
            h_up[l] = 0;
            e_in[l] = 0;
        }};
    }

    /// Moves a lane to its next row: band limits, stale-cell zeroing (the
    /// per-cell `in_prev` check of the scalar kernel, hoisted to row
    /// turnover), diagonal seed and cached query base. Returns the new
    /// `h_diag`, or `None` when the lane is exhausted.
    // PANIC-FREE: band clamps keep `lo >= 1` and `hi <= n` against rows
    // allocated with `n + 1` slots.
    // xtask: hot
    fn advance_row(lane: &mut Lane, band: usize) -> Option<i16> {
        lane.row += 1;
        let (m, n) = (lane.q.len(), lane.t.len());
        if lane.row > m {
            return None;
        }
        let center = lane.row * n / m;
        lane.lo = center.saturating_sub(band).max(1);
        lane.hi = center.saturating_add(band).min(n);
        if lane.lo > lane.hi {
            return None;
        }
        // Cells of this row's band not covered by the previous row's band
        // are stale: zero them once here instead of branching per cell.
        for j in lane.lo..lane.prev_lo.min(lane.hi + 1) {
            lane.h[j] = 0;
            lane.e[j] = 0;
        }
        for j in (lane.prev_hi + 1).max(lane.lo)..=lane.hi {
            lane.h[j] = 0;
            lane.e[j] = 0;
        }
        let h_diag = if (lane.prev_lo..=lane.prev_hi).contains(&(lane.lo - 1)) {
            lane.h[lane.lo - 1]
        } else {
            0
        };
        lane.qc = lane.q[lane.row - 1];
        lane.col = lane.lo;
        Some(h_diag)
    }

    // Prime each non-empty lane's first row.
    for l in 0..nlanes {
        let lane = &mut lanes[l];
        if lane.q.is_empty() || lane.t.is_empty() {
            continue;
        }
        if let Some(hd) = advance_row(lane, band) {
            h_diag[l] = hd;
            active[l] = true;
        }
    }

    let mut retired_count = 0u64;
    loop {
        // Gather: per-lane loads into the lane arrays.
        let mut any_active = false;
        for l in 0..nlanes {
            if !active[l] {
                continue;
            }
            any_active = true;
            let lane = &lanes[l];
            let j = lane.col;
            sv[l] = if lane.t[j - 1] == lane.qc { ms } else { neg_mm };
            h_up[l] = lane.h[j];
            e_in[l] = lane.e[j];
        }
        if !any_active {
            break;
        }

        let any_hot = step_vector(
            &mut h_diag,
            &mut f_gap,
            &mut row_best,
            &sv,
            &h_up,
            &e_in,
            &mut score,
            &mut e_out,
            qo,
            qe,
        );
        probe.simd_ops(1);
        probe.branch(true);

        if any_hot {
            // Rare: retire overflowing lanes to the i32 ladder.
            for l in 0..nlanes {
                if active[l] && score[l] >= RETIRE_LIMIT {
                    quiesce!(l);
                    retired[l] = true;
                    retired_count += 1;
                }
            }
        }

        // Scatter + bookkeeping.
        for l in 0..nlanes {
            if !active[l] {
                continue;
            }
            let lane = &mut lanes[l];
            let j = lane.col;
            let sc = score[l];
            lane.h[j] = sc;
            lane.e[j] = e_out[l];
            lane.result.cells += 1;
            if sc > best[l] {
                best[l] = sc;
                lane.result.score = sc as i32;
                lane.result.query_end = lane.row;
                lane.result.target_end = j;
            }
            lane.col = j + 1;
            if lane.col > lane.hi {
                // Row turnover: Z-drop check, then advance.
                lane.prev_lo = lane.lo;
                lane.prev_hi = lane.hi;
                let dropped = match params.zdrop {
                    Some(z) => (row_best[l] as i32) + z < lane.result.score,
                    None => false,
                };
                if dropped {
                    lane.result.zdropped = true;
                    quiesce!(l);
                } else {
                    match advance_row(lane, band) {
                        Some(hd) => {
                            h_diag[l] = hd;
                            f_gap[l] = 0;
                            row_best[l] = 0;
                        }
                        None => quiesce!(l),
                    }
                }
            }
        }
    }

    // Precision ladder: retired lanes re-run from scratch on the exact
    // i32 scalar kernel (their partial i16 state is discarded).
    for l in 0..nlanes {
        if retired[l] {
            lanes[l].result = banded_sw_probed(&tasks[l].query, &tasks[l].target, params, probe);
        }
    }

    // Slot accounting, computed analytically from final cell counts: a
    // lane occupies one slot per vector step and runs for exactly its
    // cell count, so a group burns `LANES x max-cells` slots — the same
    // bound the i32 lockstep engine counts by execution.
    let results: Vec<SwResult> = lanes.into_iter().map(|l| l.result).collect();
    let scalar_cells: u64 = results.iter().map(|r| r.cells).sum();
    let max_cells = results.iter().map(|r| r.cells).max().unwrap_or(0);
    let report = BatchReport {
        scalar_cells,
        vector_cells: LANES as u64 * max_cells,
        batches: 1,
        retired_lanes: retired_count,
    };
    (results, report)
}

/// Runs an arbitrary task list through i16 SIMD groups of [`LANES`],
/// optionally length-sorted first (the paper's dead-slot mitigation).
pub fn run_simd(
    tasks: &[SwTask],
    params: &SwParams,
    sort_by_len: bool,
) -> (Vec<SwResult>, BatchReport) {
    run_simd_probed(tasks, params, sort_by_len, &mut NullProbe)
}

/// [`run_simd`] with instrumentation.
pub fn run_simd_probed<P: Probe>(
    tasks: &[SwTask],
    params: &SwParams,
    sort_by_len: bool,
    probe: &mut P,
) -> (Vec<SwResult>, BatchReport) {
    let order = length_order(tasks, sort_by_len);
    // Gather the issue-ordered batch once, up front: the group loop then
    // slices it directly instead of re-cloning LANES tasks per group.
    let sorted: Vec<SwTask> = order.iter().map(|&i| tasks[i].clone()).collect();
    let mut results = vec![SwResult::default(); tasks.len()];
    let mut total = BatchReport::default();
    for (g, batch) in sorted.chunks(LANES).enumerate() {
        let (rs, rep) = simd_group_probed(batch, params, probe);
        for (&idx, r) in order[g * LANES..].iter().zip(rs) {
            results[idx] = r;
        }
        total.merge(&rep);
    }
    (results, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsw::{banded_sw, run_batch};
    use gb_core::seq::DnaSeq;

    fn tasks(n: usize, seed: u64) -> Vec<SwTask> {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        };
        (0..n)
            .map(|_| {
                let qlen = 20 + (next() % 150) as usize;
                let q: Vec<u8> = (0..qlen).map(|_| ((next() >> 33) % 4) as u8).collect();
                let t: Vec<u8> = if next() % 10 < 8 {
                    q.iter()
                        .map(|&c| if next() % 100 < 2 { (c + 1) % 4 } else { c })
                        .collect()
                } else {
                    let tlen = 20 + (next() % 150) as usize;
                    (0..tlen).map(|_| ((next() >> 33) % 4) as u8).collect()
                };
                SwTask {
                    query: DnaSeq::from_codes_unchecked(q),
                    target: DnaSeq::from_codes_unchecked(t),
                }
            })
            .collect()
    }

    fn assert_identical(ts: &[SwTask], params: &SwParams, got: &[SwResult]) {
        for (task, r) in ts.iter().zip(got) {
            let scalar = banded_sw(&task.query, &task.target, params);
            assert_eq!(*r, scalar);
        }
    }

    #[test]
    fn simd_is_bit_identical_to_scalar() {
        let ts = tasks(48, 29);
        let params = SwParams::default();
        for sort in [false, true] {
            let (results, _) = run_simd(&ts, &params, sort);
            assert_identical(&ts, &params, &results);
        }
    }

    #[test]
    fn simd_report_matches_lockstep_reference() {
        let ts = tasks(48, 31);
        let params = SwParams::default();
        let (_, simd) = run_simd(&ts, &params, false);
        let (_, reference) = run_batch(&ts, &params, LANES, false);
        assert_eq!(simd.scalar_cells, reference.scalar_cells);
        assert_eq!(simd.vector_cells, reference.vector_cells);
        assert_eq!(simd.batches, reference.batches);
        assert_eq!(simd.retired_lanes, 0);
    }

    #[test]
    fn sorting_reduces_dead_slots() {
        let ts = tasks(64, 37);
        let params = SwParams::default();
        let (_, unsorted) = run_simd(&ts, &params, false);
        let (_, sorted) = run_simd(&ts, &params, true);
        assert!(sorted.dead_slot_fraction() <= unsorted.dead_slot_fraction());
    }

    #[test]
    fn overflow_retires_to_i32_ladder() {
        // A long self-alignment with a huge match score crosses
        // RETIRE_LIMIT quickly; the laddered result must still be exact.
        let len = 400usize;
        let codes: Vec<u8> = (0..len).map(|i| (i % 4) as u8).collect();
        let q = DnaSeq::from_codes_unchecked(codes);
        let ts = vec![SwTask {
            query: q.clone(),
            target: q,
        }];
        let params = SwParams {
            match_score: 100,
            band: None,
            zdrop: None,
            ..SwParams::default()
        };
        assert!(params_fit_i16(&params));
        let (results, rep) = run_simd(&ts, &params, false);
        assert_eq!(rep.retired_lanes, 1);
        assert_eq!(results[0].score, 100 * len as i32);
        assert_identical(&ts, &params, &results);
    }

    #[test]
    fn oversized_params_fall_back_to_i32_lockstep() {
        let ts = tasks(20, 41);
        let params = SwParams {
            match_score: 50_000,
            ..SwParams::default()
        };
        assert!(!params_fit_i16(&params));
        let (results, rep) = run_simd(&ts, &params, false);
        assert_identical(&ts, &params, &results);
        assert_eq!(rep.retired_lanes, 0);
    }

    #[test]
    fn empty_and_partial_groups() {
        let params = SwParams::default();
        let (r, rep) = run_simd(&[], &params, false);
        assert!(r.is_empty());
        assert_eq!(rep, BatchReport::default());
        let mut one = tasks(1, 43);
        one.push(SwTask {
            query: DnaSeq::new(),
            target: DnaSeq::new(),
        });
        let (r, rep) = run_simd(&one, &params, false);
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], SwResult::default());
        assert_eq!(rep.vector_cells, r[0].cells * LANES as u64);
    }
}
