//! Anchor chaining — the **chain** kernel.
//!
//! Minimap2's chaining stage groups co-linear seed matches (anchors) into
//! candidate overlaps with a 1-D dynamic program: each anchor looks back
//! at up to `max_pred` previous anchors (default 25) and picks the parent
//! maximizing `score(j) + alpha(j,i) - beta(j,i)`, where `alpha` counts
//! newly matched bases and `beta` penalizes diagonal drift. The
//! input-dependent predecessor scan is what makes the kernel's
//! data-parallelism irregular (paper Table III).

use gb_datagen::anchors::{Anchor, AnchorSet};
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Chaining parameters (minimap2 defaults, scaled for read overlap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainParams {
    /// How many predecessors each anchor examines (minimap2 `--max-chain-iter`
    /// style bound; default 25).
    pub max_pred: usize,
    /// Maximum distance between chainable anchors on either sequence
    /// (minimap2 `-r`, default 5000).
    pub max_dist: u32,
    /// Maximum diagonal drift between chainable anchors (minimap2
    /// bandwidth, default 500).
    pub max_band: u32,
    /// Average seed length used in the gap-cost term.
    pub avg_seed_len: f64,
    /// Minimum score for a chain to be reported.
    pub min_chain_score: i32,
}

impl Default for ChainParams {
    fn default() -> ChainParams {
        ChainParams {
            max_pred: 25,
            max_dist: 5000,
            max_band: 500,
            avg_seed_len: 15.0,
            min_chain_score: 40,
        }
    }
}

/// One chained overlap candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Chain score.
    pub score: i32,
    /// Indices (into the task's anchor list) of the chained anchors, in
    /// increasing target order.
    pub anchors: Vec<usize>,
}

impl Chain {
    /// Number of anchors in the chain.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Whether the chain is empty (never returned by the kernel).
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

/// Result of chaining one anchor set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainResult {
    /// Chains sorted by decreasing score.
    pub chains: Vec<Chain>,
    /// Predecessor comparisons performed (the per-task work measure).
    pub comparisons: u64,
}

/// Chains `task`, returning all chains above the score threshold.
///
/// # Examples
///
/// ```
/// use gb_datagen::anchors::{Anchor, AnchorSet};
/// use gb_dp::chain::{chain_anchors, ChainParams};
/// // A perfect diagonal of anchors chains into one overlap.
/// let anchors: Vec<Anchor> = (0..20)
///     .map(|i| Anchor { target_pos: 100 + i * 20, query_pos: 500 + i * 20, length: 15 })
///     .collect();
/// let r = chain_anchors(&AnchorSet::new(anchors), &ChainParams::default());
/// assert_eq!(r.chains[0].len(), 20);
/// ```
pub fn chain_anchors(task: &AnchorSet, params: &ChainParams) -> ChainResult {
    chain_anchors_probed(task, params, &mut NullProbe)
}

/// [`chain_anchors`] with instrumentation.
// PANIC-FREE: predecessor scans index score/anchor slots with `j < i`
// inside `for i in 0..anchors.len()`.
pub fn chain_anchors_probed<P: Probe>(
    task: &AnchorSet,
    params: &ChainParams,
    probe: &mut P,
) -> ChainResult {
    let a = &task.anchors;
    let n = a.len();
    let mut score = vec![0i32; n];
    let mut parent = vec![usize::MAX; n];
    let mut comparisons = 0u64;

    for i in 0..n {
        let wi = a[i].length as i32;
        let mut best = wi;
        let mut best_parent = usize::MAX;
        let lo = i.saturating_sub(params.max_pred);
        for j in (lo..i).rev() {
            comparisons += 1;
            probe.load(addr_of(&a[j]), 12);
            probe.load(addr_of(&score[j]), 4);
            probe.int_ops(8);
            let gain = match pair_score(&a[j], &a[i], params) {
                Some(g) => g,
                None => {
                    probe.branch(false);
                    continue;
                }
            };
            probe.branch(true);
            let s = score[j] + gain;
            if s > best {
                best = s;
                best_parent = j;
            }
        }
        score[i] = best;
        parent[i] = best_parent;
        probe.store(addr_of(&score[i]), 4);
    }

    // Extract chains greedily from the best unused tail, minimap2-style.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(score[i]));
    let mut used = vec![false; n];
    let mut chains = Vec::new();
    for &tail in &order {
        if used[tail] || score[tail] < params.min_chain_score {
            continue;
        }
        let mut nodes = Vec::new();
        let mut cur = tail;
        loop {
            if used[cur] {
                break; // ran into an already-claimed prefix
            }
            used[cur] = true;
            nodes.push(cur);
            if parent[cur] == usize::MAX {
                break;
            }
            cur = parent[cur];
        }
        nodes.reverse();
        if !nodes.is_empty() {
            chains.push(Chain {
                score: score[tail],
                anchors: nodes,
            });
        }
    }
    chains.sort_by_key(|c| std::cmp::Reverse(c.score));
    ChainResult {
        chains,
        comparisons,
    }
}

/// `alpha - beta` for chaining anchor `i` after anchor `j`, or `None` when
/// the pair is unchainable.
fn pair_score(aj: &Anchor, ai: &Anchor, params: &ChainParams) -> Option<i32> {
    let dt = i64::from(ai.target_pos) - i64::from(aj.target_pos);
    let dq = i64::from(ai.query_pos) - i64::from(aj.query_pos);
    if dt <= 0 || dq <= 0 {
        return None; // must be strictly increasing on both sequences
    }
    if dt > i64::from(params.max_dist) || dq > i64::from(params.max_dist) {
        return None;
    }
    let dd = (dt - dq).unsigned_abs();
    if dd > u64::from(params.max_band) {
        return None;
    }
    // alpha: newly matched bases, capped by the seed length.
    let alpha = dt.min(dq).min(i64::from(ai.length)) as f64;
    // beta: minimap2's gap cost 0.01 * avg_seed * |dd| + 0.5 * log2(|dd|).
    let beta = if dd == 0 {
        0.0
    } else {
        0.01 * params.avg_seed_len * dd as f64 + 0.5 * (dd as f64).log2()
    };
    Some((alpha - beta).round() as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(n: u32, step: u32, offset: u32) -> Vec<Anchor> {
        (0..n)
            .map(|i| Anchor {
                target_pos: 100 + i * step,
                query_pos: 100 + offset + i * step,
                length: 15,
            })
            .collect()
    }

    #[test]
    fn perfect_diagonal_chains_fully() {
        let set = AnchorSet::new(diag(30, 20, 1000));
        let r = chain_anchors(&set, &ChainParams::default());
        assert_eq!(r.chains.len(), 1);
        assert_eq!(r.chains[0].len(), 30);
        // Score = w + 29 * min(dt,dq,len) = 15 + 29*15.
        assert_eq!(r.chains[0].score, 15 + 29 * 15);
    }

    #[test]
    fn two_separate_diagonals_give_two_chains() {
        let mut anchors = diag(20, 20, 0);
        anchors.extend((0..20).map(|i| Anchor {
            target_pos: 20_000 + i * 20,
            query_pos: 1_000_000 + i * 20,
            length: 15,
        }));
        let r = chain_anchors(&AnchorSet::new(anchors), &ChainParams::default());
        assert_eq!(r.chains.len(), 2);
        assert_eq!(r.chains[0].len(), 20);
        assert_eq!(r.chains[1].len(), 20);
    }

    #[test]
    fn noise_anchors_are_excluded() {
        let mut anchors = diag(25, 20, 500);
        // Far off-diagonal noise.
        anchors.push(Anchor {
            target_pos: 150,
            query_pos: 999_999,
            length: 15,
        });
        anchors.push(Anchor {
            target_pos: 310,
            query_pos: 5,
            length: 15,
        });
        let r = chain_anchors(&AnchorSet::new(anchors), &ChainParams::default());
        assert_eq!(r.chains[0].len(), 25);
    }

    #[test]
    fn gap_cost_penalizes_drift() {
        let p = ChainParams::default();
        let a = Anchor {
            target_pos: 100,
            query_pos: 100,
            length: 15,
        };
        let on = Anchor {
            target_pos: 200,
            query_pos: 200,
            length: 15,
        };
        let off = Anchor {
            target_pos: 200,
            query_pos: 260,
            length: 15,
        };
        assert!(pair_score(&a, &on, &p).unwrap() > pair_score(&a, &off, &p).unwrap());
    }

    #[test]
    fn unchainable_pairs_are_rejected() {
        let p = ChainParams::default();
        let a = Anchor {
            target_pos: 100,
            query_pos: 100,
            length: 15,
        };
        // Backwards on query.
        assert_eq!(
            pair_score(
                &a,
                &Anchor {
                    target_pos: 200,
                    query_pos: 50,
                    length: 15
                },
                &p
            ),
            None
        );
        // Same position.
        assert_eq!(pair_score(&a, &a, &p), None);
        // Too far.
        assert_eq!(
            pair_score(
                &a,
                &Anchor {
                    target_pos: 100_000,
                    query_pos: 100_000,
                    length: 15
                },
                &p
            ),
            None
        );
        // Excessive drift.
        assert_eq!(
            pair_score(
                &a,
                &Anchor {
                    target_pos: 2000,
                    query_pos: 900,
                    length: 15
                },
                &p
            ),
            None
        );
    }

    #[test]
    fn max_pred_bounds_comparisons() {
        let set = AnchorSet::new(diag(100, 20, 0));
        let p = ChainParams {
            max_pred: 10,
            ..Default::default()
        };
        let r = chain_anchors(&set, &p);
        assert!(r.comparisons <= 100 * 10);
        // Chain still forms through bounded look-back.
        assert_eq!(r.chains[0].len(), 100);
    }

    #[test]
    fn chains_come_out_sorted_by_score() {
        let mut anchors = diag(30, 20, 0);
        anchors.extend((0..5).map(|i| Anchor {
            target_pos: 40_000 + i * 20,
            query_pos: 900_000 + i * 20,
            length: 15,
        }));
        let r = chain_anchors(
            &AnchorSet::new(anchors),
            &ChainParams {
                min_chain_score: 10,
                ..Default::default()
            },
        );
        assert!(r.chains.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn empty_task_is_empty_result() {
        let r = chain_anchors(&AnchorSet::default(), &ChainParams::default());
        assert!(r.chains.is_empty());
        assert_eq!(r.comparisons, 0);
    }

    #[test]
    fn synthetic_tasks_chain_their_diagonal() {
        use gb_datagen::anchors::{synthetic_anchor_sets, AnchorSimConfig};
        let sets = synthetic_anchor_sets(&AnchorSimConfig::default(), 3);
        let p = ChainParams::default();
        let mut found = 0;
        for s in &sets {
            let r = chain_anchors(s, &p);
            if let Some(c) = r.chains.first() {
                // The dominant chain should capture a decent share of the
                // non-noise anchors.
                if c.len() * 2 > s.len() / 2 {
                    found += 1;
                }
            }
        }
        assert!(found > sets.len() / 2, "only {found} tasks chained well");
    }
}
