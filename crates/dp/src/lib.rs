//! # gb-dp
//!
//! The dynamic-programming kernels of GenomicsBench-rs:
//!
//! - [`bsw`] — banded Smith-Waterman with affine gaps and inter-sequence
//!   batching (BWA-MEM2 seed extension),
//! - [`phmm`] — GATK-style pair-HMM forward likelihood (f32 with f64
//!   rescue),
//! - [`chain`] — minimap2 anchor chaining (1-D DP with bounded
//!   predecessor scan),
//! - [`abea`] — Nanopolish/f5c adaptive banded event alignment.
//!
//! All kernels are generic over a [`gb_uarch::probe::Probe`] so one code
//! path serves both timed benchmarking and microarchitectural
//! characterization.
//!
//! # Examples
//!
//! ```
//! use gb_core::seq::DnaSeq;
//! use gb_dp::bsw::{banded_sw, SwParams};
//! let q: DnaSeq = "ACGTACGGT".parse()?;
//! let t: DnaSeq = "TTACGTACGGTAA".parse()?;
//! assert_eq!(banded_sw(&q, &t, &SwParams::default()).score, 9);
//! # Ok::<(), gb_core::error::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abea;
pub mod bsw;
pub mod bsw_batch;
pub mod chain;
pub mod phmm;
pub mod traceback;
