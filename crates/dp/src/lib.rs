//! # gb-dp
//!
//! The dynamic-programming kernels of GenomicsBench-rs:
//!
//! - [`bsw`] — banded Smith-Waterman with affine gaps and inter-sequence
//!   batching (BWA-MEM2 seed extension),
//! - [`bsw_batch`] / [`bsw_simd`] — the executed lockstep engines: exact
//!   i32 reference and the autovectorizable i16 struct-of-arrays fast
//!   path with precision-ladder lane retirement,
//! - [`phmm`] — GATK-style pair-HMM forward likelihood (f32 with f64
//!   rescue),
//! - [`phmm_wavefront`] — the anti-diagonal f32 phmm execution engine,
//! - [`chain`] — minimap2 anchor chaining (1-D DP with bounded
//!   predecessor scan),
//! - [`abea`] — Nanopolish/f5c adaptive banded event alignment (scalar
//!   and contiguous-band f32 SIMD engines),
//! - [`lockstep`] — the shared engine layer (lane geometry, precision
//!   laddering, slot accounting, lockstep grouping) the vector fast
//!   paths here and in `gb-poa` are built on.
//!
//! Kernels with SIMD fast paths select them via [`DpEngine`].
//!
//! All kernels are generic over a [`gb_uarch::probe::Probe`] so one code
//! path serves both timed benchmarking and microarchitectural
//! characterization.
//!
//! # Examples
//!
//! ```
//! use gb_core::seq::DnaSeq;
//! use gb_dp::bsw::{banded_sw, SwParams};
//! let q: DnaSeq = "ACGTACGGT".parse()?;
//! let t: DnaSeq = "TTACGTACGGTAA".parse()?;
//! assert_eq!(banded_sw(&q, &t, &SwParams::default()).score, 9);
//! # Ok::<(), gb_core::error::Error>(())
//! ```

// The DP engines (bsw_simd, phmm_wavefront) are deliberately written in
// safe slice-indexed form — the SIMD comes from autovectorizable
// struct-of-arrays lockstep loops, not intrinsics — so the whole crate
// forbids `unsafe`. If intrinsics ever land, downgrade to
// `deny(unsafe_code)` per-block and keep the hygiene lint: every unsafe
// op needs its own block + SAFETY comment (`cargo xtask lint` enforces;
// see DESIGN.md, "Concurrency & safety invariants" for the audit).
#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod abea;
pub mod bsw;
pub mod bsw_batch;
pub mod bsw_simd;
pub mod chain;
pub mod lockstep;
pub mod phmm;
pub mod phmm_wavefront;
pub mod traceback;

/// Which execution engine the DP-motif kernels (`bsw`, `phmm`, `spoa`,
/// `abea`) run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DpEngine {
    /// Paper-faithful scalar kernels: per-pair i32 `bsw`, row-wise f32/f64
    /// `phmm`. Reproduces the modelled Fig. 3/5 numbers exactly.
    Scalar,
    /// Vectorized fast paths: i16 SoA lockstep `bsw` with precision
    /// laddering, anti-diagonal f32 `phmm`. Bit-identical results.
    #[default]
    Simd,
}

impl DpEngine {
    /// Stable lowercase name, as used by the `--dp-engine` CLI flag and
    /// recorded in run manifests.
    pub fn name(&self) -> &'static str {
        match self {
            DpEngine::Scalar => "scalar",
            DpEngine::Simd => "simd",
        }
    }
}

impl std::str::FromStr for DpEngine {
    type Err = String;

    /// Case-insensitive: `"Scalar"`, `"SIMD"` etc. all parse, so shell
    /// scripts and CI matrices don't have to agree on a casing.
    fn from_str(s: &str) -> Result<DpEngine, String> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(DpEngine::Scalar),
            "simd" => Ok(DpEngine::Simd),
            _ => Err(format!(
                "unknown dp engine '{s}' (accepted values: 'scalar', 'simd', case-insensitive)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::DpEngine;

    #[test]
    fn engine_parses_case_insensitively() {
        for s in ["scalar", "Scalar", "SCALAR", "sCaLaR"] {
            assert_eq!(s.parse::<DpEngine>(), Ok(DpEngine::Scalar), "{s}");
        }
        for s in ["simd", "Simd", "SIMD", "sImD"] {
            assert_eq!(s.parse::<DpEngine>(), Ok(DpEngine::Simd), "{s}");
        }
    }

    #[test]
    fn engine_parse_error_names_accepted_values() {
        let err = "avx512".parse::<DpEngine>().unwrap_err();
        assert!(err.contains("avx512"), "{err}");
        assert!(err.contains("'scalar'"), "{err}");
        assert!(err.contains("'simd'"), "{err}");
    }

    #[test]
    fn engine_names_roundtrip() {
        for e in [DpEngine::Scalar, DpEngine::Simd] {
            assert_eq!(e.name().parse::<DpEngine>(), Ok(e));
        }
        assert_eq!(DpEngine::default(), DpEngine::Simd);
    }
}
