//! The reusable lockstep-SIMD engine layer shared by every DP-motif
//! kernel with an executed vector fast path (`bsw`, `phmm`, `spoa`,
//! `abea`).
//!
//! What lives here is the machinery that PR 4 originally built privately
//! inside `bsw_simd.rs` and that every later port needs verbatim:
//!
//! - **lane geometry** ([`LANES`]) — the modelled 16-bit AVX2 vector
//!   width every SoA lane array is sized to;
//! - **precision laddering** ([`MAX_I16_PARAM`], [`RETIRE_LIMIT`],
//!   [`fits_i16`]) — the i16 overflow-watch contract: parameters are
//!   bounded so a single cell update moves a value by at most
//!   `MAX_I16_PARAM`, which means a watch against `RETIRE_LIMIT` fires
//!   *before* any wraparound and the lane can be retired to an exact
//!   wider-integer rerun while its last stored values are still exact;
//! - **slot accounting** ([`BatchReport`]) — scalar-vs-vector cell-slot
//!   counts, the dead-slot fraction and lane-retirement gauges surfaced
//!   through `Kernel::export_gauges` and the experiment reports;
//! - **lockstep grouping** ([`order_by_key`], [`inverse_order`],
//!   [`group_slices`]) — length-sorted lane assignment (the paper's
//!   dead-slot mitigation) plus the inverse permutation to scatter
//!   per-lane results back to input order.
//!
//! The bit-identity discipline the ladder exists to serve: integer
//! engines must produce *exactly* the scalar kernel's scores (overflow
//! retires to an exact i32 rerun before precision is lost), and f32
//! engines must preserve the scalar expression tree and evaluation order
//! so every intermediate rounds identically. Differential proptests in
//! `tests/dp_engines_diff.rs` (and `gb-poa`'s `poa_engines_diff.rs`)
//! enforce this per kernel.

/// Number of lanes in the modelled vector (16-bit AVX2 lanes = 16).
pub const LANES: usize = 16;

/// Largest scoring-parameter magnitude the i16 engines accept. Chosen so
/// one cell update can move a value by at most this much, making
/// [`RETIRE_LIMIT`] detection catch overflow *before* any wraparound.
pub const MAX_I16_PARAM: i32 = 8_192;

/// Values at or above this retire the lane to the exact i32 ladder.
/// The value itself is still exact when detected: the previous watch
/// passed below the limit and one update moves at most [`MAX_I16_PARAM`],
/// so nothing has wrapped yet.
pub const RETIRE_LIMIT: i16 = (i16::MAX as i32 - MAX_I16_PARAM) as i16;

/// Whether every scoring magnitude in `values` fits the i16 ladder
/// contract (`[0, MAX_I16_PARAM]`). Kernels with out-of-range parameters
/// must run their exact wider-integer engine for the whole batch.
pub fn fits_i16(values: &[i32]) -> bool {
    values.iter().all(|&v| (0..=MAX_I16_PARAM).contains(&v))
}

/// Outcome of executing a batch of alignments in SIMD lockstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Cells a scalar execution would compute (sum of per-task cells).
    pub scalar_cells: u64,
    /// Cell-update slots consumed by the lockstep execution
    /// (`lanes x max-cells` per batch group).
    pub vector_cells: u64,
    /// Number of lane-batches executed.
    pub batches: u64,
    /// Lanes the i16 SIMD engine retired to the i32 scalar ladder
    /// (always 0 for the i32 lockstep reference and the analytic model).
    pub retired_lanes: u64,
}

impl BatchReport {
    /// The over-compute factor: vectorized cell updates relative to
    /// scalar (the paper reports 2.2x for bsw with 16-lane AVX2).
    pub fn overcompute(&self) -> f64 {
        if self.scalar_cells == 0 {
            return 1.0;
        }
        self.vector_cells as f64 / self.scalar_cells as f64
    }

    /// Fraction of vector cell slots that did no useful work (lane
    /// imbalance waste): `1 - scalar/vector`. Zero for an empty batch.
    pub fn dead_slot_fraction(&self) -> f64 {
        if self.vector_cells == 0 {
            return 0.0;
        }
        1.0 - self.scalar_cells as f64 / self.vector_cells as f64
    }

    /// Folds another report's counts into this one.
    pub fn merge(&mut self, other: &BatchReport) {
        self.scalar_cells += other.scalar_cells;
        self.vector_cells += other.vector_cells;
        self.batches += other.batches;
        self.retired_lanes += other.retired_lanes;
    }
}

/// Task-index order for lockstep lane assignment: identity, or sorted by
/// `key` (the paper's dead-slot mitigation groups similarly-sized tasks
/// into the same vector batch).
pub fn order_by_key<K: Ord>(n: usize, sort: bool, key: impl Fn(usize) -> K) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if sort {
        order.sort_by_key(|&i| key(i));
    }
    order
}

/// Inverse permutation of `order`: `inv[order[k]] == k`. Used to scatter
/// per-lane results (produced in sorted order) back to input order.
pub fn inverse_order(order: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; order.len()];
    for (k, &i) in order.iter().enumerate() {
        inv[i] = k;
    }
    inv
}

/// Splits an order into lockstep groups of at most `width` lanes,
/// preserving order within and across groups.
pub fn group_slices(order: &[usize], width: usize) -> impl Iterator<Item = &[usize]> {
    assert!(width > 0, "lane width must be positive");
    order.chunks(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_limit_leaves_one_update_of_headroom() {
        assert_eq!(RETIRE_LIMIT as i32 + MAX_I16_PARAM, i16::MAX as i32);
    }

    #[test]
    fn fits_i16_bounds() {
        assert!(fits_i16(&[0, 1, MAX_I16_PARAM]));
        assert!(!fits_i16(&[-1]));
        assert!(!fits_i16(&[MAX_I16_PARAM + 1]));
        assert!(fits_i16(&[]));
    }

    #[test]
    fn report_ratios() {
        let r = BatchReport {
            scalar_cells: 75,
            vector_cells: 100,
            batches: 2,
            retired_lanes: 1,
        };
        assert!((r.overcompute() - 100.0 / 75.0).abs() < 1e-12);
        assert!((r.dead_slot_fraction() - 0.25).abs() < 1e-12);
        let mut total = BatchReport::default();
        assert_eq!(total.overcompute(), 1.0);
        assert_eq!(total.dead_slot_fraction(), 0.0);
        total.merge(&r);
        total.merge(&r);
        assert_eq!(total.scalar_cells, 150);
        assert_eq!(total.batches, 4);
        assert_eq!(total.retired_lanes, 2);
    }

    #[test]
    fn ordering_helpers_roundtrip() {
        let lens = [5usize, 1, 9, 3];
        let order = order_by_key(lens.len(), true, |i| lens[i]);
        assert_eq!(order, vec![1, 3, 0, 2]);
        let inv = inverse_order(&order);
        for (k, &i) in order.iter().enumerate() {
            assert_eq!(inv[i], k);
        }
        let ident = order_by_key(lens.len(), false, |i| lens[i]);
        assert_eq!(ident, vec![0, 1, 2, 3]);
        let groups: Vec<&[usize]> = group_slices(&order, 3).collect();
        assert_eq!(groups, vec![&order[..3], &order[3..]]);
    }
}
