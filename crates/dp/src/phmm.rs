//! Pair Hidden Markov Model forward likelihood — the **phmm** kernel.
//!
//! This is GATK HaplotypeCaller's `calcLikelihoodScore`: the probability
//! that a read was sequenced from a candidate haplotype, computed with the
//! forward algorithm over a 3-state (match / insertion / deletion) HMM.
//! Emission priors come from the read's per-base quality scores, which is
//! why this is the suite's only floating-point-dominated CPU kernel
//! (paper Fig. 5). Like GATK, the kernel runs in `f32` and falls back to
//! `f64` only when the result underflows.

use gb_core::quality::Phred;
use gb_core::record::ReadRecord;
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// HMM transition parameters, derived from gap penalties the way GATK
/// does (quality-scaled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmmParams {
    /// Phred-scaled gap-open quality (GATK default 45).
    pub gap_open_qual: u8,
    /// Phred-scaled gap-continuation quality (GATK default 10).
    pub gap_cont_qual: u8,
}

impl Default for HmmParams {
    fn default() -> HmmParams {
        HmmParams {
            gap_open_qual: 45,
            gap_cont_qual: 10,
        }
    }
}

/// Precomputed transition probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Transitions {
    pub(crate) mm: f64,
    pub(crate) gm: f64, // gap -> match
    pub(crate) mx: f64, // match -> insertion
    pub(crate) xx: f64, // insertion -> insertion
    pub(crate) my: f64, // match -> deletion
    pub(crate) yy: f64, // deletion -> deletion
}

impl Transitions {
    pub(crate) fn from_params(p: &HmmParams) -> Transitions {
        let eps = Phred::new(p.gap_open_qual).error_prob();
        let cont = Phred::new(p.gap_cont_qual).error_prob();
        Transitions {
            mm: 1.0 - 2.0 * eps,
            gm: 1.0 - cont,
            mx: eps,
            xx: cont,
            my: eps,
            yy: cont,
        }
    }
}

/// Result of one read-haplotype likelihood evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhmmResult {
    /// log10 of the likelihood P(read | haplotype).
    pub log10_likelihood: f64,
    /// DP cells computed.
    pub cells: u64,
    /// Whether the f32 pass underflowed and the f64 rescue ran.
    pub rescued: bool,
}

/// Computes `log10 P(read | haplotype)` with the forward algorithm.
///
/// # Examples
///
/// ```
/// use gb_core::{quality::Phred, record::ReadRecord, seq::DnaSeq};
/// use gb_dp::phmm::{forward_likelihood, HmmParams};
/// let hap: DnaSeq = "ACGTACGTAC".parse()?;
/// let read = ReadRecord::with_uniform_quality("r", hap.slice(2, 8), Phred::new(30));
/// let r = forward_likelihood(&read, &hap, &HmmParams::default());
/// assert!(r.log10_likelihood < 0.0 && r.log10_likelihood > -10.0);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn forward_likelihood(read: &ReadRecord, haplotype: &DnaSeq, params: &HmmParams) -> PhmmResult {
    forward_likelihood_probed(read, haplotype, params, &mut NullProbe)
}

/// [`forward_likelihood`] with instrumentation (loads/stores of the three
/// DP rows and the FP operations per cell).
pub fn forward_likelihood_probed<P: Probe>(
    read: &ReadRecord,
    haplotype: &DnaSeq,
    params: &HmmParams,
    probe: &mut P,
) -> PhmmResult {
    // f32 first; rescue in f64 when the result is denormal-small, exactly
    // GATK's strategy.
    let (lik32, cells) = forward_generic::<f32, P>(read, haplotype, params, probe);
    if lik32 > UNDERFLOW_LIMIT_F32 && lik32.is_finite() {
        return PhmmResult {
            log10_likelihood: f64::from(lik32).log10(),
            cells,
            rescued: false,
        };
    }
    let (lik64, cells64) = forward_generic::<f64, P>(read, haplotype, params, probe);
    PhmmResult {
        log10_likelihood: lik64.log10(),
        cells: cells + cells64,
        rescued: true,
    }
}

/// Float abstraction so the f32 pass and the f64 rescue share one kernel.
pub trait HmmFloat:
    Copy + PartialOrd + std::ops::Add<Output = Self> + std::ops::Mul<Output = Self>
{
    /// Converts from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64`.
    fn to_f64(self) -> f64;
    /// Additive zero.
    fn zero() -> Self;
}

impl HmmFloat for f32 {
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn zero() -> f32 {
        0.0
    }
}

impl HmmFloat for f64 {
    fn from_f64(v: f64) -> f64 {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn zero() -> f64 {
        0.0
    }
}

/// Threshold below which the f32 pass is considered underflowed and the
/// `f64` rescue runs. Shared with the wavefront engine so both make the
/// same rescue decisions.
pub(crate) const UNDERFLOW_LIMIT_F32: f32 = 1e-28;

// PANIC-FREE: DP rows hold `n + 1` slots and the sweeps run `i in 1..=m`,
// `j in 1..=n`; read/hap reads subtract 1 from 1-based indices.
pub(crate) fn forward_generic<F: HmmFloat, P: Probe>(
    read: &ReadRecord,
    haplotype: &DnaSeq,
    params: &HmmParams,
    probe: &mut P,
) -> (F, u64) {
    let r = read.seq.as_codes();
    let h = haplotype.as_codes();
    let quals = read.quals();
    let (m, n) = (r.len(), h.len());
    if m == 0 || n == 0 {
        return (F::zero(), 0);
    }
    let t = Transitions::from_params(params);
    let tmm = F::from_f64(t.mm);
    let tgm = F::from_f64(t.gm);
    let tmx = F::from_f64(t.mx);
    let txx = F::from_f64(t.xx);
    let tmy = F::from_f64(t.my);
    let tyy = F::from_f64(t.yy);

    // Row i-1 and i of the three state matrices.
    let mut m_prev = vec![F::zero(); n + 1];
    let mut i_prev = vec![F::zero(); n + 1];
    let mut d_prev = vec![F::zero(); n + 1];
    let mut m_cur = vec![F::zero(); n + 1];
    let mut i_cur = vec![F::zero(); n + 1];
    let mut d_cur = vec![F::zero(); n + 1];

    // Free start anywhere on the haplotype: D row 0 = 1/n (GATK's
    // initialization).
    let init = F::from_f64(1.0 / n as f64);
    for d in d_prev.iter_mut() {
        *d = init;
    }

    let mut cells = 0u64;
    for i in 1..=m {
        let err = quals[i - 1].error_prob();
        let p_match = F::from_f64(1.0 - err);
        let p_miss = F::from_f64(err / 3.0);
        m_cur[0] = F::zero();
        i_cur[0] = F::zero();
        d_cur[0] = F::zero();
        for j in 1..=n {
            cells += 1;
            probe.load(addr_of(&m_prev[j - 1]), 4);
            probe.load(addr_of(&i_prev[j - 1]), 4);
            probe.load(addr_of(&d_prev[j - 1]), 4);
            let prior = if r[i - 1] == h[j - 1] {
                p_match
            } else {
                p_miss
            };
            let mv = prior * (tmm * m_prev[j - 1] + tgm * (i_prev[j - 1] + d_prev[j - 1]));
            let iv = tmx * m_prev[j] + txx * i_prev[j];
            let dv = tmy * m_cur[j - 1] + tyy * d_cur[j - 1];
            m_cur[j] = mv;
            i_cur[j] = iv;
            d_cur[j] = dv;
            probe.store(addr_of(&m_cur[j]), 4);
            probe.fp_ops(12);
            probe.branch(false);
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut i_prev, &mut i_cur);
        std::mem::swap(&mut d_prev, &mut d_cur);
    }
    // Likelihood: read fully consumed, ending anywhere on the haplotype.
    let mut sum = F::zero();
    for j in 1..=n {
        sum = sum + m_prev[j] + i_prev[j];
    }
    probe.fp_ops(2 * n as u64);
    (sum, cells)
}

/// Anti-diagonal (wavefront) evaluation of the same forward recurrence —
/// the intra-task parallelism of the paper's Fig. 2d: every cell on a
/// wavefront depends only on the two previous wavefronts, so all of them
/// can be computed in parallel SIMD lanes.
///
/// Numerically identical ordering differences aside, this must agree with
/// [`forward_likelihood`]; the GPU-style port would assign one lane per
/// wavefront cell.
pub fn forward_likelihood_wavefront(
    read: &ReadRecord,
    haplotype: &DnaSeq,
    params: &HmmParams,
) -> PhmmResult {
    let r = read.seq.as_codes();
    let h = haplotype.as_codes();
    let quals = read.quals();
    let (m, n) = (r.len(), h.len());
    if m == 0 || n == 0 {
        return PhmmResult {
            log10_likelihood: f64::NEG_INFINITY,
            cells: 0,
            rescued: false,
        };
    }
    let t = Transitions::from_params(params);

    // Three full matrices indexed [i][j] (clarity over memory here; the
    // production path is the two-row row-wise kernel).
    let w = n + 1;
    let mut mm = vec![0.0f64; (m + 1) * w];
    let mut ii = vec![0.0f64; (m + 1) * w];
    let mut dd = vec![0.0f64; (m + 1) * w];
    for d in dd.iter_mut().take(n + 1) {
        *d = 1.0 / n as f64;
    }
    let mut cells = 0u64;
    // Wavefront d covers cells with i + j == d.
    for d in 2..=(m + n) {
        let ilo = 1.max(d.saturating_sub(n));
        let ihi = m.min(d - 1);
        for i in ilo..=ihi {
            let j = d - i;
            debug_assert!(j >= 1 && j <= n);
            cells += 1;
            let err = quals[i - 1].error_prob();
            let prior = if r[i - 1] == h[j - 1] {
                1.0 - err
            } else {
                err / 3.0
            };
            let up_left = (i - 1) * w + (j - 1);
            let up = (i - 1) * w + j;
            let left = i * w + (j - 1);
            mm[i * w + j] = prior * (t.mm * mm[up_left] + t.gm * (ii[up_left] + dd[up_left]));
            ii[i * w + j] = t.mx * mm[up] + t.xx * ii[up];
            dd[i * w + j] = t.my * mm[left] + t.yy * dd[left];
        }
    }
    let mut sum = 0.0f64;
    for j in 1..=n {
        sum += mm[m * w + j] + ii[m * w + j];
    }
    PhmmResult {
        log10_likelihood: sum.log10(),
        cells,
        rescued: false,
    }
}

/// Brute-force enumeration reference for tiny inputs: sums the
/// probability of every alignment path (exponential; testing only).
pub fn naive_likelihood(read: &ReadRecord, haplotype: &DnaSeq, params: &HmmParams) -> f64 {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        M,
        I,
        D,
        /// The 1/n free-start pseudo-state: behaves like a gap for the
        /// first match but cannot emit insertions or deletions (the DP's
        /// D-row-0 initialization feeds only the M recurrence).
        Start,
    }
    let t = Transitions::from_params(params);
    let r = read.seq.as_codes();
    let h = haplotype.as_codes();
    let quals = read.quals();
    let n = h.len();
    // Recursive path sum from (i bases of read consumed, j of haplotype,
    // previous state).
    fn go(
        i: usize,
        j: usize,
        state: State,
        r: &[u8],
        h: &[u8],
        quals: &[Phred],
        t: &Transitions,
    ) -> f64 {
        if i == r.len() {
            // Read consumed; path ends (M or I end states count).
            return if state == State::D { 0.0 } else { 1.0 };
        }
        let mut total = 0.0;
        // Match: consume one of each.
        if j < h.len() {
            let trans = match state {
                State::M => t.mm,
                _ => t.gm,
            };
            let err = quals[i].error_prob();
            let prior = if r[i] == h[j] { 1.0 - err } else { err / 3.0 };
            total += trans * prior * go(i + 1, j + 1, State::M, r, h, quals, t);
        }
        // Insertion: consume read base only.
        {
            let trans = match state {
                State::M => t.mx,
                State::I => t.xx,
                State::D | State::Start => 0.0,
            };
            if trans > 0.0 {
                total += trans * go(i + 1, j, State::I, r, h, quals, t);
            }
        }
        // Deletion: consume haplotype base only.
        if j < h.len() {
            let trans = match state {
                State::M => t.my,
                State::D => t.yy,
                State::I | State::Start => 0.0,
            };
            if trans > 0.0 {
                total += trans * go(i, j + 1, State::D, r, h, quals, t);
            }
        }
        total
    }
    // Free start at any haplotype offset with weight 1/n; the first move
    // must be a match entered with the gap->match transition, matching the
    // DP's D-row initialization.
    let mut sum = 0.0;
    for start in 0..n {
        sum += go(0, start, State::Start, r, h, quals, &t) / n as f64;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(seq: &str, q: u8) -> ReadRecord {
        ReadRecord::with_uniform_quality("r", seq.parse().unwrap(), Phred::new(q))
    }

    #[test]
    fn matches_brute_force_on_tiny_inputs() {
        let cases = [
            ("ACG", "ACG"),
            ("ACG", "ACGT"),
            ("AC", "GTACGT"),
            ("ACGT", "AGGT"),
            ("TTT", "ACG"),
        ];
        for (rs, hs) in cases {
            let rd = read(rs, 25);
            let hap: DnaSeq = hs.parse().unwrap();
            let got = forward_likelihood(&rd, &hap, &HmmParams::default());
            let want = naive_likelihood(&rd, &hap, &HmmParams::default()).log10();
            assert!(
                (got.log10_likelihood - want).abs() < 1e-4,
                "{rs} vs {hs}: got {} want {want}",
                got.log10_likelihood
            );
        }
    }

    #[test]
    fn perfect_read_beats_mismatched_read() {
        let hap: DnaSeq = "ACGTACGGTTACGTAGGCAT".parse().unwrap();
        let good = read("ACGGTTACGT", 30);
        let bad = read("ACGGTTGGGT", 30);
        let p = HmmParams::default();
        let lg = forward_likelihood(&good, &hap, &p).log10_likelihood;
        let lb = forward_likelihood(&bad, &hap, &p).log10_likelihood;
        assert!(lg > lb + 2.0, "good {lg} vs bad {lb}");
    }

    #[test]
    fn lower_quality_softens_mismatch_penalty() {
        let hap: DnaSeq = "ACGTACGGTTACGTAGGCAT".parse().unwrap();
        let p = HmmParams::default();
        let hi = forward_likelihood(&read("ACGGTTGCGT", 40), &hap, &p).log10_likelihood;
        let lo = forward_likelihood(&read("ACGGTTGCGT", 10), &hap, &p).log10_likelihood;
        assert!(
            lo > hi,
            "q10 {lo} should beat q40 {hi} for a mismatched read"
        );
    }

    #[test]
    fn long_read_underflows_f32_and_rescues() {
        // A read with ~40 guaranteed high-quality mismatches: the forward
        // value lands around 1e-200 — below f32 range, within f64 range.
        let hap_codes = vec![0u8; 200]; // poly-A haplotype
        let read_codes: Vec<u8> = (0..80).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
        let hap = DnaSeq::from_codes_unchecked(hap_codes);
        let rd = ReadRecord::with_uniform_quality(
            "r",
            DnaSeq::from_codes_unchecked(read_codes),
            Phred::new(40),
        );
        let r = forward_likelihood(&rd, &hap, &HmmParams::default());
        assert!(r.rescued, "expected f64 rescue");
        assert!(r.log10_likelihood.is_finite());
        assert!(r.log10_likelihood < -50.0);
    }

    #[test]
    fn cells_equal_read_times_hap() {
        let hap: DnaSeq = "ACGTACGGTT".parse().unwrap();
        let rd = read("ACGTA", 30);
        let r = forward_likelihood(&rd, &hap, &HmmParams::default());
        assert_eq!(r.cells, 50);
    }

    #[test]
    fn likelihood_is_a_probability() {
        let hap: DnaSeq = "ACGTACGGTTACGT".parse().unwrap();
        let rd = read("ACGGTT", 30);
        let r = forward_likelihood(&rd, &hap, &HmmParams::default());
        assert!(r.log10_likelihood <= 0.0);
    }

    #[test]
    fn probe_sees_fp_dominated_mix() {
        use gb_uarch::mix::MixProbe;
        let hap: DnaSeq = "ACGTACGGTTACGTAGGCAT".parse().unwrap();
        let rd = read("ACGGTTACGT", 30);
        let mut probe = MixProbe::new();
        let _ = forward_likelihood_probed(&rd, &hap, &HmmParams::default(), &mut probe);
        let mix = probe.mix();
        assert!(
            mix.fp_ops > mix.int_ops,
            "phmm must be FP-dominated: {mix:?}"
        );
    }

    #[test]
    fn wavefront_matches_rowwise() {
        let hap: DnaSeq = "ACGTACGGTTACGTAGGCATTACGGA".parse().unwrap();
        for r in [
            "ACGGTTACGT",
            "ACGGTTGCGA",
            "TTTT",
            "ACGTACGGTTACGTAGGCATTACGGA",
        ] {
            let rd = read(r, 28);
            let row = forward_likelihood(&rd, &hap, &HmmParams::default());
            let wave = forward_likelihood_wavefront(&rd, &hap, &HmmParams::default());
            assert!(
                (row.log10_likelihood - wave.log10_likelihood).abs() < 1e-4,
                "{r}: row {} vs wave {}",
                row.log10_likelihood,
                wave.log10_likelihood
            );
            assert_eq!(row.cells, wave.cells);
        }
    }

    #[test]
    fn empty_inputs_are_zero_cells() {
        let hap: DnaSeq = "ACGT".parse().unwrap();
        let rd = ReadRecord::with_uniform_quality("r", DnaSeq::new(), Phred::new(30));
        let r = forward_likelihood(&rd, &hap, &HmmParams::default());
        assert_eq!(r.cells, 0);
    }
}
