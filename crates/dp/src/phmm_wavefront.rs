//! Anti-diagonal (wavefront) f32 PairHMM forward pass — the production
//! SIMD engine for the **phmm** kernel.
//!
//! Every cell on anti-diagonal `d = i + j` of the M/I/D recurrence
//! depends only on diagonals `d - 1` and `d - 2`, so a whole diagonal can
//! be computed at once with no loop-carried dependency — unlike the
//! row-wise kernel, whose D state forms a serial multiply-add chain along
//! each row. The inner loop here runs over three rotating O(read-length)
//! diagonal buffers with unit-stride accesses only (the haplotype is
//! copied once in reverse so `h[j-1] = hrev[n-d+i]` advances forward with
//! `i`), which lets LLVM autovectorize it on stable Rust.
//!
//! **Bit-exactness.** The per-cell arithmetic is the same f32 expression
//! tree as [`crate::phmm::forward_likelihood`]'s f32 pass (same constant
//! conversions, no FMA contraction on stable Rust), the final likelihood
//! sums the captured last row in the same `j` order, and the `f64` rescue
//! reuses the row-wise kernel with the same underflow threshold — so
//! results (likelihood, cells, rescue flag) are bit-identical, not merely
//! close.
//!
//! Not to be confused with [`crate::phmm::forward_likelihood_wavefront`],
//! the full-matrix `f64` clarity model of the same traversal used to
//! document Fig. 2d; this module is the optimized execution engine.

use crate::phmm::{forward_generic, HmmParams, PhmmResult, Transitions, UNDERFLOW_LIMIT_F32};
use gb_core::record::ReadRecord;
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Computes `log10 P(read | haplotype)` with the wavefront f32 engine,
/// falling back to the row-wise `f64` kernel on underflow.
pub fn wavefront_likelihood(
    read: &ReadRecord,
    haplotype: &DnaSeq,
    params: &HmmParams,
) -> PhmmResult {
    wavefront_likelihood_probed(read, haplotype, params, &mut NullProbe)
}

/// [`wavefront_likelihood`] with instrumentation: one SIMD op per
/// diagonal step, with FP work and buffer traffic batched per diagonal
/// (the vector-granularity counterpart of the row-wise per-cell probes).
pub fn wavefront_likelihood_probed<P: Probe>(
    read: &ReadRecord,
    haplotype: &DnaSeq,
    params: &HmmParams,
    probe: &mut P,
) -> PhmmResult {
    let (lik32, cells) = wavefront_f32(read, haplotype, params, probe);
    if lik32 > UNDERFLOW_LIMIT_F32 && lik32.is_finite() {
        return PhmmResult {
            log10_likelihood: f64::from(lik32).log10(),
            cells,
            rescued: false,
        };
    }
    // Per-read precision fallback: the rescue stays on the exact row-wise
    // f64 kernel (underflow is rare, so it is never the hot path).
    let (lik64, cells64) = forward_generic::<f64, P>(read, haplotype, params, probe);
    PhmmResult {
        log10_likelihood: lik64.log10(),
        cells: cells + cells64,
        rescued: true,
    }
}

/// The f32 diagonal sweep. Returns the forward likelihood and cell count.
// PANIC-FREE: diagonal cell indices are derived from `d`, `m`, `n` with
// explicit clamps (`i0..=i1` intersected with `1..=m`), and the reversed
// haplotype buffer is sized to make `hrev[n - d + i]` in range.
fn wavefront_f32<P: Probe>(
    read: &ReadRecord,
    haplotype: &DnaSeq,
    params: &HmmParams,
    probe: &mut P,
) -> (f32, u64) {
    let r = read.seq.as_codes();
    let h = haplotype.as_codes();
    let quals = read.quals();
    let (m, n) = (r.len(), h.len());
    if m == 0 || n == 0 {
        return (0.0, 0);
    }
    let t = Transitions::from_params(params);
    // FLOAT-DET: the wavefront engine runs the f32 rung of the precision
    // ladder by design; the f64 rescue re-runs underflowed reads, and the
    // differential tests pin both rungs to the rowwise engine bit for bit.
    let (tmm, tgm, tmx) = (t.mm as f32, t.gm as f32, t.mx as f32);
    let (txx, tmy, tyy) = (t.xx as f32, t.my as f32, t.yy as f32); // FLOAT-DET: ditto.
    let init = (1.0 / n as f64) as f32; // FLOAT-DET: same f32 rung.

    // Per-read-position emission priors (index i in 1..=m; slot 0 unused),
    // hoisted out of the sweep: one diagonal touches many read rows.
    let mut pm = vec![0.0f32; m + 1];
    let mut px = vec![0.0f32; m + 1];
    for i in 1..=m {
        let err = quals[i - 1].error_prob();
        // FLOAT-DET: f32 emission priors, same ladder rung as above.
        pm[i] = (1.0 - err) as f32;
        px[i] = (err / 3.0) as f32; // FLOAT-DET: ditto.
    }
    // Reversed haplotype: cell (i, j) on diagonal d reads h[j-1] =
    // hrev[n - d + i], a forward unit-stride access within a diagonal.
    let hrev: Vec<u8> = h.iter().rev().copied().collect();

    // Rotating diagonal buffers indexed by read row i; `*2` is diagonal
    // d-2, `*1` is d-1, `c*` is the one being computed.
    let mut m2 = vec![0.0f32; m + 1];
    let mut i2 = vec![0.0f32; m + 1];
    let mut d2 = vec![0.0f32; m + 1];
    let mut m1 = vec![0.0f32; m + 1];
    let mut i1 = vec![0.0f32; m + 1];
    let mut d1 = vec![0.0f32; m + 1];
    let mut cm = vec![0.0f32; m + 1];
    let mut ci = vec![0.0f32; m + 1];
    let mut cd = vec![0.0f32; m + 1];
    // Diagonal 0 holds cell (0, 0), diagonal 1 holds (0, 1) and (1, 0):
    // row 0 is the free-start D = 1/n initialization, column 0 is zeros.
    d2[0] = init;
    d1[0] = init;

    // Last-row M/I values captured as the sweep passes row m, summed in
    // `j` order afterwards — the same order as the row-wise kernel.
    let mut last_m = vec![0.0f32; n + 1];
    let mut last_i = vec![0.0f32; n + 1];

    let mut cells = 0u64;
    for d in 2..=(m + n) {
        let ilo = 1.max(d.saturating_sub(n));
        let ihi = m.min(d - 1);
        let len = ihi - ilo + 1;
        // Unit-stride views for the diagonal; `a` slices are the (i-1, .)
        // neighbors, `b` slices the (i, j-1) neighbors.
        let rs = &r[ilo - 1..ilo - 1 + len];
        let hs = &hrev[n + ilo - d..n + ilo - d + len];
        let pms = &pm[ilo..ilo + len];
        let pxs = &px[ilo..ilo + len];
        let m2a = &m2[ilo - 1..ilo - 1 + len];
        let i2a = &i2[ilo - 1..ilo - 1 + len];
        let d2a = &d2[ilo - 1..ilo - 1 + len];
        let m1a = &m1[ilo - 1..ilo - 1 + len];
        let i1a = &i1[ilo - 1..ilo - 1 + len];
        let m1b = &m1[ilo..ilo + len];
        let d1b = &d1[ilo..ilo + len];
        let cms = &mut cm[ilo..ilo + len];
        let cis = &mut ci[ilo..ilo + len];
        let cds = &mut cd[ilo..ilo + len];
        for o in 0..len {
            let prior = if rs[o] == hs[o] { pms[o] } else { pxs[o] };
            cms[o] = prior * (tmm * m2a[o] + tgm * (i2a[o] + d2a[o]));
            cis[o] = tmx * m1a[o] + txx * i1a[o];
            cds[o] = tmy * m1b[o] + tyy * d1b[o];
        }
        cells += len as u64;
        let bytes = (4 * len) as u32;
        probe.load(addr_of(&m2a[0]), bytes);
        probe.load(addr_of(&m1a[0]), bytes);
        probe.load(addr_of(&m1b[0]), bytes);
        probe.store(addr_of(&cm[ilo]), bytes);
        probe.fp_ops(12 * len as u64);
        probe.simd_ops(1);
        probe.branch(true);
        // Boundary cells of this diagonal (stale from d - 3 otherwise):
        // row 0 free-start above the band, column 0 zeros below it.
        if d <= n {
            cm[0] = 0.0;
            ci[0] = 0.0;
            cd[0] = init;
        }
        if d <= m {
            cm[d] = 0.0;
            ci[d] = 0.0;
            cd[d] = 0.0;
        }
        if ihi == m {
            last_m[d - m] = cm[m];
            last_i[d - m] = ci[m];
        }
        std::mem::swap(&mut m2, &mut m1);
        std::mem::swap(&mut i2, &mut i1);
        std::mem::swap(&mut d2, &mut d1);
        std::mem::swap(&mut m1, &mut cm);
        std::mem::swap(&mut i1, &mut ci);
        std::mem::swap(&mut d1, &mut cd);
    }

    let mut sum = 0.0f32;
    for j in 1..=n {
        sum = sum + last_m[j] + last_i[j];
    }
    probe.fp_ops(2 * n as u64);
    (sum, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phmm::forward_likelihood;
    use gb_core::quality::Phred;

    fn read(seq: &str, q: u8) -> ReadRecord {
        ReadRecord::with_uniform_quality("r", seq.parse().unwrap(), Phred::new(q))
    }

    #[test]
    fn wavefront_is_bit_identical_to_rowwise() {
        let hap: DnaSeq = "ACGTACGGTTACGTAGGCATTACGGA".parse().unwrap();
        for r in [
            "ACGGTTACGT",
            "ACGGTTGCGA",
            "TTTT",
            "A",
            "ACGTACGGTTACGTAGGCATTACGGA",
        ] {
            let rd = read(r, 28);
            let row = forward_likelihood(&rd, &hap, &HmmParams::default());
            let wave = wavefront_likelihood(&rd, &hap, &HmmParams::default());
            assert_eq!(
                row.log10_likelihood.to_bits(),
                wave.log10_likelihood.to_bits(),
                "{r}"
            );
            assert_eq!(row.cells, wave.cells);
            assert_eq!(row.rescued, wave.rescued);
        }
    }

    #[test]
    fn underflow_rescues_identically() {
        // ~40 high-quality mismatches: below f32 range, within f64 range.
        let hap = DnaSeq::from_codes_unchecked(vec![0u8; 200]);
        let codes: Vec<u8> = (0..80).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
        let rd = ReadRecord::with_uniform_quality(
            "r",
            DnaSeq::from_codes_unchecked(codes),
            Phred::new(40),
        );
        let row = forward_likelihood(&rd, &hap, &HmmParams::default());
        let wave = wavefront_likelihood(&rd, &hap, &HmmParams::default());
        assert!(wave.rescued);
        assert_eq!(
            row.log10_likelihood.to_bits(),
            wave.log10_likelihood.to_bits()
        );
        assert_eq!(row.cells, wave.cells);
    }

    #[test]
    fn empty_inputs_match_rowwise() {
        let hap: DnaSeq = "ACGT".parse().unwrap();
        let rd = ReadRecord::with_uniform_quality("r", DnaSeq::new(), Phred::new(30));
        let row = forward_likelihood(&rd, &hap, &HmmParams::default());
        let wave = wavefront_likelihood(&rd, &hap, &HmmParams::default());
        assert_eq!(row.cells, wave.cells);
        assert_eq!(row.rescued, wave.rescued);
        assert_eq!(
            row.log10_likelihood.to_bits(),
            wave.log10_likelihood.to_bits()
        );
    }

    #[test]
    fn probe_sees_one_simd_op_per_diagonal() {
        use gb_uarch::mix::MixProbe;
        let hap: DnaSeq = "ACGTACGGTTACGTAGGCAT".parse().unwrap();
        let rd = read("ACGGTTACGT", 30);
        let mut probe = MixProbe::new();
        let res = wavefront_likelihood_probed(&rd, &hap, &HmmParams::default(), &mut probe);
        assert!(!res.rescued);
        let (m, n) = (10u64, 20u64);
        // Diagonals 2..=(m+n): one vector step each.
        assert_eq!(probe.mix().simd_ops, m + n - 1);
        assert!(probe.mix().fp_ops >= 12 * m * n);
    }
}
