//! Smith-Waterman traceback: recovering the alignment path as a CIGAR.
//!
//! The bsw *kernel* only needs scores (BWA-MEM extends seeds and keeps
//! the best end-points), but the surrounding tools emit alignments, so a
//! full affine-gap traceback belongs in the library. This variant stores
//! per-cell direction flags (the ksw approach) and walks them back from
//! the best cell.

use crate::bsw::{SwParams, SwResult};
use gb_core::cigar::{Cigar, CigarOp};
use gb_core::seq::DnaSeq;

/// An alignment with its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwAlignment {
    /// Score and end-points (as from the scoring-only kernel).
    pub result: SwResult,
    /// 0-based inclusive start of the alignment on the query.
    pub query_start: usize,
    /// 0-based inclusive start on the target.
    pub target_start: usize,
    /// The alignment path (M/I/D; I consumes query, D consumes target).
    pub cigar: Cigar,
}

// Direction flags per cell.
const H_STOP: u8 = 0;
const H_DIAG: u8 = 1;
const H_FROM_E: u8 = 2;
const H_FROM_F: u8 = 3;
const E_OPEN: u8 = 4; // E[i][j] opened from H[i-1][j] (vs extended)
const F_OPEN: u8 = 8; // F[i][j] opened from H[i][j-1]

/// Local alignment with full traceback (full matrix — use for bounded
/// sequence lengths; memory is `O(m*n)` bytes).
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_dp::bsw::SwParams;
/// use gb_dp::traceback::sw_align;
/// let q: DnaSeq = "ACGTACGT".parse()?;
/// let t: DnaSeq = "TTACGTACGTTT".parse()?;
/// let a = sw_align(&q, &t, &SwParams::default());
/// assert_eq!(a.cigar.to_string(), "8M");
/// assert_eq!(a.target_start, 2);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn sw_align(query: &DnaSeq, target: &DnaSeq, params: &SwParams) -> SwAlignment {
    let q = query.as_codes();
    let t = target.as_codes();
    let (m, n) = (q.len(), t.len());
    if m == 0 || n == 0 {
        return SwAlignment {
            result: SwResult::default(),
            query_start: 0,
            target_start: 0,
            cigar: Cigar::new(),
        };
    }
    let neg = i32::MIN / 4;
    let mut h_prev = vec![0i32; n + 1];
    let mut e_prev = vec![neg; n + 1];
    let mut flags = vec![0u8; (m + 1) * (n + 1)];
    let mut best = SwResult::default();

    for i in 1..=m {
        let mut h_cur = vec![0i32; n + 1];
        let mut e_cur = vec![neg; n + 1];
        let mut f = neg;
        for j in 1..=n {
            let idx = i * (n + 1) + j;
            // E: vertical gap (consumes query).
            let e_open = h_prev[j] - params.gap_open;
            let e_ext = e_prev[j];
            let e = e_open.max(e_ext) - params.gap_extend;
            if e_open >= e_ext {
                flags[idx] |= E_OPEN;
            }
            e_cur[j] = e;
            // F: horizontal gap (consumes target).
            let f_open = h_cur[j - 1] - params.gap_open;
            let f_ext = f;
            let fv = f_open.max(f_ext) - params.gap_extend;
            if f_open >= f_ext {
                flags[idx] |= F_OPEN;
            }
            f = fv;
            // H.
            let s = if q[i - 1] == t[j - 1] {
                params.match_score
            } else {
                -params.mismatch
            };
            let diag = h_prev[j - 1] + s;
            let (mut hv, mut dir) = (0i32, H_STOP);
            if diag > hv {
                hv = diag;
                dir = H_DIAG;
            }
            if e > hv {
                hv = e;
                dir = H_FROM_E;
            }
            if fv > hv {
                hv = fv;
                dir = H_FROM_F;
            }
            flags[idx] |= dir;
            h_cur[j] = hv;
            if hv > best.score {
                best.score = hv;
                best.query_end = i;
                best.target_end = j;
            }
        }
        h_prev = h_cur;
        e_prev = e_cur;
        best.cells += n as u64;
    }

    // Walk back from the best cell.
    #[derive(PartialEq, Clone, Copy)]
    enum State {
        H,
        E,
        F,
    }
    let mut steps: Vec<CigarOp> = Vec::new();
    let (mut i, mut j) = (best.query_end, best.target_end);
    let mut state = State::H;
    while i > 0 && j > 0 {
        let flag = flags[i * (n + 1) + j];
        match state {
            State::H => match flag & 3 {
                H_DIAG => {
                    steps.push(CigarOp::Match);
                    i -= 1;
                    j -= 1;
                }
                H_FROM_E => state = State::E,
                H_FROM_F => state = State::F,
                _ => break, // H_STOP: local alignment start
            },
            State::E => {
                steps.push(CigarOp::Ins);
                let opened = flag & E_OPEN != 0;
                i -= 1;
                if opened {
                    state = State::H;
                }
            }
            State::F => {
                steps.push(CigarOp::Del);
                let opened = flag & F_OPEN != 0;
                j -= 1;
                if opened {
                    state = State::H;
                }
            }
        }
    }
    steps.reverse();
    let mut cigar = Cigar::new();
    for op in steps {
        cigar.push(1, op);
    }
    SwAlignment {
        result: best,
        query_start: i,
        target_start: j,
        cigar,
    }
}

/// Recomputes the alignment score implied by a traceback — the invariant
/// `rescore(sw_align(..)) == banded_sw(..).score` that tests rely on.
///
/// # Panics
///
/// Panics if the CIGAR walks outside either sequence.
pub fn rescore(query: &DnaSeq, target: &DnaSeq, a: &SwAlignment, params: &SwParams) -> i32 {
    let mut score = 0i32;
    let (mut qi, mut ti) = (a.query_start, a.target_start);
    let mut prev: Option<CigarOp> = None;
    for &(len, op) in a.cigar.ops() {
        for _ in 0..len {
            match op {
                CigarOp::Match => {
                    score += if query.code_at(qi) == target.code_at(ti) {
                        params.match_score
                    } else {
                        -params.mismatch
                    };
                    qi += 1;
                    ti += 1;
                }
                CigarOp::Ins => {
                    score -= if prev == Some(CigarOp::Ins) {
                        params.gap_extend
                    } else {
                        params.gap_open + params.gap_extend
                    };
                    qi += 1;
                }
                CigarOp::Del => {
                    score -= if prev == Some(CigarOp::Del) {
                        params.gap_extend
                    } else {
                        params.gap_open + params.gap_extend
                    };
                    ti += 1;
                }
                CigarOp::SoftClip => qi += 1,
            }
            prev = Some(op);
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsw::full_sw;

    fn params() -> SwParams {
        SwParams {
            band: None,
            zdrop: None,
            ..SwParams::default()
        }
    }

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn identity_alignment() {
        let q = seq("ACGGTTACA");
        let a = sw_align(&q, &q, &params());
        assert_eq!(a.cigar.to_string(), "9M");
        assert_eq!(a.query_start, 0);
        assert_eq!(a.result.score, 9);
    }

    #[test]
    fn deletion_recovered() {
        let mut x = 3u64;
        let t_codes: Vec<u8> = (0..40)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 4) as u8
            })
            .collect();
        let t = DnaSeq::from_codes_unchecked(t_codes);
        let mut q_codes = t.as_codes().to_vec();
        q_codes.drain(18..21);
        let q = DnaSeq::from_codes_unchecked(q_codes);
        let a = sw_align(&q, &t, &params());
        assert_eq!(a.cigar.to_string(), "18M3D19M");
        assert_eq!(rescore(&q, &t, &a, &params()), a.result.score);
    }

    #[test]
    fn insertion_recovered() {
        let mut x = 9u64;
        let t_codes: Vec<u8> = (0..40)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 4) as u8
            })
            .collect();
        let t = DnaSeq::from_codes_unchecked(t_codes);
        let mut q_codes = t.as_codes().to_vec();
        q_codes.insert(20, (q_codes[20] + 1) % 4);
        q_codes.insert(20, (q_codes[19] + 2) % 4);
        let q = DnaSeq::from_codes_unchecked(q_codes);
        let a = sw_align(&q, &t, &params());
        assert!(a.cigar.to_string().contains("2I"), "cigar {}", a.cigar);
        assert_eq!(rescore(&q, &t, &a, &params()), a.result.score);
    }

    #[test]
    fn score_matches_scoring_only_kernel() {
        let mut x = 17u64;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        };
        for _case in 0..20 {
            let qlen = 30 + (next() % 40) as usize;
            let q = DnaSeq::from_codes_unchecked(
                (0..qlen).map(|_| ((next() >> 33) % 4) as u8).collect(),
            );
            let tlen = 30 + (next() % 50) as usize;
            let t = DnaSeq::from_codes_unchecked(
                (0..tlen).map(|_| ((next() >> 33) % 4) as u8).collect(),
            );
            let a = sw_align(&q, &t, &params());
            assert_eq!(a.result.score, full_sw(&q, &t, &params()).score);
            assert_eq!(
                rescore(&q, &t, &a, &params()),
                a.result.score,
                "q={q} t={t}"
            );
        }
    }

    #[test]
    fn cigar_spans_match_endpoints() {
        let q = seq("ACGTACGGTTAC");
        let t = seq("GGACGTACGTTACGG");
        let a = sw_align(&q, &t, &params());
        assert_eq!(a.query_start + a.cigar.query_len(), a.result.query_end);
        assert_eq!(a.target_start + a.cigar.ref_len(), a.result.target_end);
    }

    #[test]
    fn empty_inputs() {
        let a = sw_align(&DnaSeq::new(), &seq("ACGT"), &params());
        assert!(a.cigar.is_empty());
        assert_eq!(a.result.score, 0);
    }
}
