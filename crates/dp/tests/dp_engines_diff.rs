//! Differential proptests: the SIMD DP engines vs their scalar kernels.
//!
//! The i16 SoA bsw engine must be **bit-identical** to the scalar i32
//! kernel — scores, end positions, Z-drop decisions, cell counts — and
//! its `BatchReport` slot counts must match the i32 lockstep reference,
//! across random batches, random banding/Z-drop settings, forced lane
//! overflow (large match scores retire lanes to the i32 ladder) and
//! out-of-i16-range parameters (whole-group fallback).
//!
//! The wavefront phmm engine must match row-wise likelihoods to 1e-6
//! relative — and, because it keeps the exact f32 expression tree and
//! summation order, the tests actually assert bit-equality of the final
//! likelihood, cell counts, and the underflow-rescue decision, including
//! forced-underflow reads.
//!
//! The contiguous-band abea engine must be bit-identical to the scalar
//! adaptive-band kernel — scores, alignments, cell counts and the
//! band-shift walk itself (`moves_right`) — across random signals,
//! random band widths down to the minimum (band-edge ties decide shift
//! direction there), and degenerate inputs, where both engines must
//! agree on returning `None`.
//!
//! The spoa i16 row-sweep engine's differential proptests live in
//! `gb-poa`'s `tests/poa_engines_diff.rs` — `gb-dp` cannot depend on
//! `gb-poa` (the dependency points the other way), so the tests follow
//! the kernel.

use gb_core::quality::Phred;
use gb_core::record::ReadRecord;
use gb_core::seq::DnaSeq;
use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig, PORE_K};
use gb_dp::abea::{align_events, align_events_engine, align_events_simd, AbeaParams, AbeaResult};
use gb_dp::bsw::{banded_sw, run_batch, SwParams, SwTask};
use gb_dp::bsw_batch::LANES;
use gb_dp::bsw_simd::{params_fit_i16, run_simd, simd_group};
use gb_dp::phmm::{forward_likelihood, HmmParams};
use gb_dp::phmm_wavefront::wavefront_likelihood;
use gb_dp::DpEngine;
use proptest::prelude::*;

fn codes(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, min..max)
}

/// A random batch of alignment tasks: a mix of noisy copies (high-score
/// lanes) and unrelated pairs (early Z-drops), with varying lengths so
/// lockstep groups are imbalanced.
fn task_batch(max_tasks: usize) -> impl Strategy<Value = Vec<SwTask>> {
    proptest::collection::vec(
        (codes(1, 120), codes(1, 120), proptest::bool::ANY, 0u8..100),
        1..max_tasks,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(q, t, related, noise)| {
                let target = if related {
                    // Noisy copy of the query: long high-scoring diagonal.
                    q.iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            if (i as u8).wrapping_mul(37) % 100 < noise % 8 {
                                (c + 1) % 4
                            } else {
                                c
                            }
                        })
                        .collect()
                } else {
                    t
                };
                SwTask {
                    query: DnaSeq::from_codes_unchecked(q),
                    target: DnaSeq::from_codes_unchecked(target),
                }
            })
            .collect()
    })
}

fn sw_params() -> impl Strategy<Value = SwParams> {
    // Options built from (present, value) pairs, nested to stay within
    // tuple arity 5: the offline proptest stub has no `proptest::option`
    // module and implements `Strategy` only for small tuples.
    (
        (1i32..6, 0i32..8, 0i32..10, 0i32..4),
        (proptest::bool::ANY, 1usize..60),
        (proptest::bool::ANY, 0i32..80),
    )
        .prop_map(|(scores, band, zdrop)| {
            let (match_score, mismatch, gap_open, gap_extend) = scores;
            SwParams {
                match_score,
                mismatch,
                gap_open,
                gap_extend,
                band: band.0.then_some(band.1),
                zdrop: zdrop.0.then_some(zdrop.1),
            }
        })
}

/// Bit-identity for the two abea engines, including `None` agreement
/// (band drift away from the terminal cell must happen identically).
fn assert_abea_identical(events_seq: &DnaSeq, cfg: &SignalSimConfig, seed: u64, p: &AbeaParams) {
    let model = PoreModel::r9_like();
    let events = simulate_signal(events_seq, &model, cfg, seed).events;
    let scalar = align_events(&events, events_seq, &model, p);
    let simd = align_events_simd(&events, events_seq, &model, p);
    match (scalar, simd) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            let (a, b): (&AbeaResult, &AbeaResult) = (&a, &b);
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits");
            assert_eq!(a.alignment, b.alignment, "alignment");
            assert_eq!(a.cells, b.cells, "cells");
            assert_eq!(a.moves_right, b.moves_right, "band walk");
        }
        (a, b) => panic!("engines disagree on alignability: {a:?} vs {b:?}"),
    }
}

/// Panicking comparison helper (plain asserts, so it works under both the
/// real proptest runner and the offline stub).
fn assert_bsw_identical(tasks: &[SwTask], params: &SwParams, sort: bool) {
    let (simd_results, simd_rep) = run_simd(tasks, params, sort);
    let (lockstep_results, lockstep_rep) = run_batch(tasks, params, LANES, sort);
    for (i, task) in tasks.iter().enumerate() {
        let scalar = banded_sw(&task.query, &task.target, params);
        assert_eq!(simd_results[i], scalar, "task {i} simd vs scalar");
        assert_eq!(lockstep_results[i], scalar, "task {i} lockstep vs scalar");
    }
    // Slot accounting matches the i32 lockstep reference exactly.
    assert_eq!(simd_rep.scalar_cells, lockstep_rep.scalar_cells);
    assert_eq!(simd_rep.vector_cells, lockstep_rep.vector_cells);
    assert_eq!(simd_rep.batches, lockstep_rep.batches);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simd_bsw_bit_identical_default_params(tasks in task_batch(40), sort in proptest::bool::ANY) {
        assert_bsw_identical(&tasks, &SwParams::default(), sort);
    }

    #[test]
    fn simd_bsw_bit_identical_random_params(
        tasks in task_batch(24),
        params in sw_params(),
        sort in proptest::bool::ANY,
    ) {
        assert_bsw_identical(&tasks, &params, sort);
    }

    #[test]
    fn simd_bsw_forced_overflow_retires_and_stays_exact(
        lens in proptest::collection::vec(10usize..400, 1..LANES),
        match_score in 500i32..8_000,
    ) {
        // Self-alignments with a huge match score push H past the i16
        // retire limit fast; the laddered rerun must still be exact. The
        // appended 400-base lane overflows for every generated score
        // (400 x 500 >> RETIRE_LIMIT); shorter lanes may stay in i16.
        let tasks: Vec<SwTask> = lens
            .iter()
            .copied()
            .chain(std::iter::once(400))
            .map(|len| {
                let q = DnaSeq::from_codes_unchecked((0..len).map(|i| (i % 4) as u8).collect());
                SwTask { query: q.clone(), target: q }
            })
            .collect();
        let params = SwParams {
            match_score,
            band: None,
            zdrop: None,
            ..SwParams::default()
        };
        prop_assert!(params_fit_i16(&params));
        let (results, rep) = simd_group(&tasks, &params);
        let mut expected_retired = 0u64;
        for (task, r) in tasks.iter().zip(&results) {
            let scalar = banded_sw(&task.query, &task.target, &params);
            prop_assert_eq!(*r, scalar);
            if scalar.score >= i32::from(gb_dp::bsw_simd::RETIRE_LIMIT) {
                expected_retired += 1;
            }
        }
        prop_assert_eq!(rep.retired_lanes, expected_retired);
        // Long self-alignments at score >= 90/match must overflow i16.
        prop_assert!(rep.retired_lanes > 0);
    }

    #[test]
    fn simd_bsw_out_of_range_params_fall_back_exactly(
        tasks in task_batch(20),
        magnitude in 10_000i32..100_000,
    ) {
        let params = SwParams {
            match_score: magnitude,
            mismatch: magnitude / 2,
            ..SwParams::default()
        };
        prop_assert!(!params_fit_i16(&params));
        assert_bsw_identical(&tasks, &params, false);
    }

    #[test]
    fn wavefront_phmm_matches_rowwise(
        r in codes(1, 60),
        h in codes(1, 80),
        q in 5u8..42,
    ) {
        let read = ReadRecord::with_uniform_quality(
            "r",
            DnaSeq::from_codes_unchecked(r),
            Phred::new(q),
        );
        let hap = DnaSeq::from_codes_unchecked(h);
        let params = HmmParams::default();
        let row = forward_likelihood(&read, &hap, &params);
        let wave = wavefront_likelihood(&read, &hap, &params);
        // The acceptance bound is 1e-6 relative; the engines are in fact
        // bit-equal because the f32 expression tree is preserved.
        let rel = (row.log10_likelihood - wave.log10_likelihood).abs()
            / row.log10_likelihood.abs().max(1.0);
        prop_assert!(rel < 1e-6, "rel {} row {} wave {}", rel, row.log10_likelihood, wave.log10_likelihood);
        prop_assert_eq!(row.log10_likelihood.to_bits(), wave.log10_likelihood.to_bits());
        prop_assert_eq!(row.cells, wave.cells);
        prop_assert_eq!(row.rescued, wave.rescued);
    }

    #[test]
    fn wavefront_phmm_forced_underflow_rescues_identically(
        mismatches in 40usize..70,
        q in 35u8..42,
    ) {
        // Alternating read over a poly-A haplotype: every other base is a
        // guaranteed high-quality mismatch, driving the f32 forward value
        // below the underflow limit so the f64 rescue must run.
        let hap = DnaSeq::from_codes_unchecked(vec![0u8; 220]);
        let codes: Vec<u8> = (0..mismatches * 2)
            .map(|i| if i % 2 == 0 { 0 } else { 1 })
            .collect();
        let read = ReadRecord::with_uniform_quality(
            "r",
            DnaSeq::from_codes_unchecked(codes),
            Phred::new(q),
        );
        let params = HmmParams::default();
        let row = forward_likelihood(&read, &hap, &params);
        let wave = wavefront_likelihood(&read, &hap, &params);
        prop_assert!(wave.rescued, "expected f64 rescue");
        prop_assert_eq!(row.rescued, wave.rescued);
        prop_assert_eq!(row.log10_likelihood.to_bits(), wave.log10_likelihood.to_bits());
        prop_assert_eq!(row.cells, wave.cells);
    }

    #[test]
    fn simd_abea_bit_identical_random_signals(
        r in codes(PORE_K, 160),
        split in 0u32..60,
        skip in 0u32..15,
        seed in 0u64..1_000_000,
    ) {
        let seq = DnaSeq::from_codes_unchecked(r);
        let cfg = SignalSimConfig {
            split_prob: f64::from(split) / 100.0,
            skip_prob: f64::from(skip) / 100.0,
            ..SignalSimConfig::default()
        };
        assert_abea_identical(&seq, &cfg, seed, &AbeaParams::default());
    }

    #[test]
    fn simd_abea_bit_identical_at_narrow_bands(
        r in codes(PORE_K, 120),
        bandwidth in 2usize..12,
        seed in 0u64..1_000_000,
    ) {
        // Narrow bands exercise the band-shift decision's tie cases
        // constantly: the two compared edge cells are often both NEG_INF,
        // so the walk must drift identically on both engines — or both
        // must lose the terminal cell and return None.
        let seq = DnaSeq::from_codes_unchecked(r);
        let params = AbeaParams {
            bandwidth,
            ..AbeaParams::default()
        };
        assert_abea_identical(&seq, &SignalSimConfig::default(), seed, &params);
    }

    #[test]
    fn simd_abea_degenerate_inputs_agree(
        short in codes(0, PORE_K),
        valid in codes(PORE_K, 40),
        bandwidth in 0usize..2,
    ) {
        // Sub-k references (zero k-mers), empty event streams, and
        // sub-minimum bandwidths must be rejected by both engines — the
        // guards have to agree, not just the happy paths.
        let model = PoreModel::r9_like();
        let cfg = SignalSimConfig::default();
        let short_seq = DnaSeq::from_codes_unchecked(short);
        let valid_seq = DnaSeq::from_codes_unchecked(valid);
        let events = simulate_signal(&valid_seq, &model, &cfg, 7).events;
        let defaults = AbeaParams::default();
        let narrow = AbeaParams {
            bandwidth,
            ..AbeaParams::default()
        };
        for engine in [DpEngine::Scalar, DpEngine::Simd] {
            prop_assert!(
                align_events_engine(&events, &short_seq, &model, &defaults, engine).is_none()
            );
            prop_assert!(
                align_events_engine(&[], &valid_seq, &model, &defaults, engine).is_none()
            );
            prop_assert!(
                align_events_engine(&events, &valid_seq, &model, &narrow, engine).is_none()
            );
        }
    }
}
