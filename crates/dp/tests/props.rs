//! Property-based tests for the DP kernels.

use gb_core::quality::Phred;
use gb_core::record::ReadRecord;
use gb_core::seq::DnaSeq;
use gb_datagen::anchors::{Anchor, AnchorSet};
use gb_dp::bsw::{banded_sw, full_sw, SwParams};
use gb_dp::chain::{chain_anchors, ChainParams};
use gb_dp::phmm::{forward_likelihood, HmmParams};
use proptest::prelude::*;

fn codes(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, min..max)
}

fn no_band() -> SwParams {
    SwParams {
        band: None,
        zdrop: None,
        ..SwParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sw_score_bounds(q in codes(1, 80), t in codes(1, 80)) {
        let qs = DnaSeq::from_codes(q).unwrap();
        let ts = DnaSeq::from_codes(t).unwrap();
        let r = full_sw(&qs, &ts, &no_band());
        // Local alignment: 0 <= score <= min(m, n) * match.
        prop_assert!(r.score >= 0);
        prop_assert!(r.score <= qs.len().min(ts.len()) as i32);
        prop_assert_eq!(r.cells, (qs.len() * ts.len()) as u64);
    }

    #[test]
    fn sw_is_symmetric(q in codes(1, 60), t in codes(1, 60)) {
        let qs = DnaSeq::from_codes(q).unwrap();
        let ts = DnaSeq::from_codes(t).unwrap();
        let a = full_sw(&qs, &ts, &no_band());
        let b = full_sw(&ts, &qs, &no_band());
        prop_assert_eq!(a.score, b.score);
    }

    #[test]
    fn huge_band_equals_full(q in codes(1, 60), t in codes(1, 60)) {
        let qs = DnaSeq::from_codes(q).unwrap();
        let ts = DnaSeq::from_codes(t).unwrap();
        let banded =
            banded_sw(&qs, &ts, &SwParams { band: Some(10_000), zdrop: None, ..no_band() });
        prop_assert_eq!(banded.score, full_sw(&qs, &ts, &no_band()).score);
    }

    #[test]
    fn narrow_band_never_beats_full(q in codes(5, 60), t in codes(5, 60), band in 1usize..10) {
        let qs = DnaSeq::from_codes(q).unwrap();
        let ts = DnaSeq::from_codes(t).unwrap();
        let banded = banded_sw(&qs, &ts, &SwParams { band: Some(band), zdrop: None, ..no_band() });
        prop_assert!(banded.score <= full_sw(&qs, &ts, &no_band()).score);
    }

    #[test]
    fn self_alignment_is_perfect(q in codes(1, 100)) {
        let qs = DnaSeq::from_codes(q).unwrap();
        let r = full_sw(&qs, &qs, &no_band());
        prop_assert_eq!(r.score, qs.len() as i32);
    }

    #[test]
    fn phmm_is_a_log_probability(r in codes(1, 12), h in codes(1, 16), q in 5u8..40) {
        let read = ReadRecord::with_uniform_quality(
            "r",
            DnaSeq::from_codes(r).unwrap(),
            Phred::new(q),
        );
        let hap = DnaSeq::from_codes(h).unwrap();
        let res = forward_likelihood(&read, &hap, &HmmParams::default());
        prop_assert!(res.log10_likelihood <= 1e-9, "likelihood above 1");
        prop_assert!(res.log10_likelihood.is_finite());
    }

    #[test]
    fn phmm_perfect_read_beats_mutated(h in codes(20, 60), pos in 0usize..20) {
        let hap = DnaSeq::from_codes(h).unwrap();
        let good = hap.slice(2, hap.len() - 2);
        let mut bad_codes = good.clone().into_codes();
        let p = pos % bad_codes.len();
        bad_codes[p] = (bad_codes[p] + 2) % 4;
        let params = HmmParams::default();
        let lg = forward_likelihood(
            &ReadRecord::with_uniform_quality("g", good, Phred::new(30)),
            &hap,
            &params,
        );
        let lb = forward_likelihood(
            &ReadRecord::with_uniform_quality("b", DnaSeq::from_codes_unchecked(bad_codes), Phred::new(30)),
            &hap,
            &params,
        );
        prop_assert!(lg.log10_likelihood >= lb.log10_likelihood - 1e-9);
    }

    #[test]
    fn chain_score_bounded_by_total_anchor_alpha(
        raw in proptest::collection::vec((0u32..5000, 0u32..5000), 1..80),
    ) {
        let anchors: Vec<Anchor> = raw
            .into_iter()
            .map(|(t, q)| Anchor { target_pos: t, query_pos: q, length: 15 })
            .collect();
        let set = AnchorSet::new(anchors);
        let n = set.len() as i32;
        let r = chain_anchors(&set, &ChainParams { min_chain_score: 0, ..Default::default() });
        for c in &r.chains {
            // Each anchor contributes at most its seed length.
            prop_assert!(c.score <= n * 15, "score {} anchors {n}", c.score);
            prop_assert!(c.score > 0 || c.len() == 1);
            // Chained anchors are strictly increasing on both axes.
            for w in c.anchors.windows(2) {
                let a = set.anchors[w[0]];
                let b = set.anchors[w[1]];
                prop_assert!(b.target_pos > a.target_pos);
                prop_assert!(b.query_pos > a.query_pos);
            }
        }
        // Anchors are never claimed twice.
        let mut used: Vec<usize> = r.chains.iter().flat_map(|c| c.anchors.clone()).collect();
        let before = used.len();
        used.sort_unstable();
        used.dedup();
        prop_assert_eq!(before, used.len());
    }
}
