//! Bidirectional FM-index (2BWT) supporting forward and backward pattern
//! extension — the substrate for super-maximal exact match search.
//!
//! BWA-MEM(2) uses an FMD-index over the text plus its reverse complement;
//! the equivalent formulation here indexes the text and its *reverse* with
//! two FM-indexes. A pattern is tracked as a [`BiInterval`]: its
//! suffix-array interval in the forward index together with the interval
//! of the reversed pattern in the reverse index. Both intervals always
//! have the same size, and either end of the pattern can be extended with
//! one `occ_all` lookup.

use crate::index::{FmIndex, SaRange};
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{NullProbe, Probe};

/// A pattern's state in a [`BiIndex`]: `[k, k+s)` is the forward-index
/// interval of the pattern, `[l, l+s)` the reverse-index interval of the
/// reversed pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BiInterval {
    /// Start row in the forward index.
    pub k: u32,
    /// Start row in the reverse index.
    pub l: u32,
    /// Interval size (number of occurrences).
    pub s: u32,
}

impl BiInterval {
    /// Whether the pattern no longer occurs.
    pub fn is_empty(&self) -> bool {
        self.s == 0
    }

    /// The forward-index range.
    pub fn forward_range(&self) -> SaRange {
        SaRange {
            lo: self.k,
            hi: self.k + self.s,
        }
    }
}

/// Two FM-indexes (text and reversed text) enabling bidirectional search.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_fmi::bidir::BiIndex;
/// let text: DnaSeq = "ACGTACGTGGT".parse()?;
/// let bi = BiIndex::build(&text);
/// let mut iv = bi.init(0); // pattern "A"
/// iv = bi.forward_ext(iv, 1); // pattern "AC"
/// iv = bi.forward_ext(iv, 2); // pattern "ACG"
/// assert_eq!(iv.s, 2);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct BiIndex {
    fwd: FmIndex,
    rev: FmIndex,
    text_len: usize,
}

impl BiIndex {
    /// Builds both component indexes.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty.
    pub fn build(text: &DnaSeq) -> BiIndex {
        let rev_text: DnaSeq = text.as_codes().iter().rev().copied().collect();
        BiIndex {
            fwd: FmIndex::build(text),
            rev: FmIndex::build(&rev_text),
            text_len: text.len(),
        }
    }

    /// The forward-text index.
    pub fn forward(&self) -> &FmIndex {
        &self.fwd
    }

    /// Length of the indexed text.
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Combined heap footprint of both indexes.
    pub fn heap_bytes(&self) -> usize {
        self.fwd.heap_bytes() + self.rev.heap_bytes()
    }

    /// The bi-interval of the single-base pattern `c`.
    pub fn init(&self, c: u8) -> BiInterval {
        debug_assert!(c < 4);
        let k = self.fwd.c_of(c);
        let l = self.rev.c_of(c); // identical C tables (same base multiset)
        let hi = if c == 3 {
            self.fwd.len() as u32
        } else {
            self.fwd.c_of(c + 1)
        };
        BiInterval { k, l, s: hi - k }
    }

    /// Extends the pattern on the left with base `c` (pattern becomes
    /// `c · P`).
    pub fn backward_ext(&self, iv: BiInterval, c: u8) -> BiInterval {
        self.backward_ext_probed(iv, c, &mut NullProbe)
    }

    /// [`BiIndex::backward_ext`] with instrumentation.
    pub fn backward_ext_probed<P: Probe>(
        &self,
        iv: BiInterval,
        c: u8,
        probe: &mut P,
    ) -> BiInterval {
        ext(&self.fwd, iv.k, iv.l, iv.s, c, probe)
    }

    /// Extends the pattern on the right with base `c` (pattern becomes
    /// `P · c`).
    pub fn forward_ext(&self, iv: BiInterval, c: u8) -> BiInterval {
        self.forward_ext_probed(iv, c, &mut NullProbe)
    }

    /// [`BiIndex::forward_ext`] with instrumentation.
    pub fn forward_ext_probed<P: Probe>(&self, iv: BiInterval, c: u8, probe: &mut P) -> BiInterval {
        // Symmetric: backward-extend the reversed pattern in the reverse
        // index, swapping the two interval starts.
        let out = ext(&self.rev, iv.l, iv.k, iv.s, c, probe);
        BiInterval {
            k: out.l,
            l: out.k,
            s: out.s,
        }
    }
}

/// Core 2BWT extension on `index`: `a` is the interval start in `index`,
/// `b` the paired start in the other index.
// PANIC-FREE: `c < 4` (debug-asserted) bounds the count arrays, and
// interval arithmetic stays within `0..=n` by the SA-interval invariant.
// xtask: hot
fn ext<P: Probe>(index: &FmIndex, a: u32, b: u32, s: u32, c: u8, probe: &mut P) -> BiInterval {
    debug_assert!(c < 4);
    let (lo_counts, lo_dollar) = index.occ_all_probed(a, probe);
    let (hi_counts, hi_dollar) = index.occ_all_probed(a + s, probe);
    let count_of = |base: usize| hi_counts[base] - lo_counts[base];
    let dollar_in_range = u32::from(hi_dollar && !lo_dollar);
    let mut smaller = dollar_in_range;
    for base in 0..c as usize {
        smaller += count_of(base);
    }
    probe.int_ops(8);
    BiInterval {
        k: index.c_of(c) + lo_counts[c as usize],
        l: b + smaller,
        s: count_of(c as usize),
    }
}

impl gb_substrate::Codec for BiIndex {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.fwd, e);
        gb_substrate::Codec::encode(&self.rev, e);
        e.put_usize(self.text_len);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<BiIndex> {
        Some(BiIndex {
            fwd: gb_substrate::Codec::decode(d)?,
            rev: gb_substrate::Codec::decode(d)?,
            text_len: d.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn assert_consistent(bi: &BiIndex, text: &DnaSeq, pat: &DnaSeq, iv: BiInterval) {
        // The forward part must equal a plain backward search of the
        // pattern; the size must equal the occurrence count.
        let direct = bi.forward().search(pat);
        assert_eq!(iv.forward_range(), direct, "pattern {pat}");
        let occ = count_naive(text, pat);
        assert_eq!(iv.s, occ, "pattern {pat}");
    }

    fn count_naive(text: &DnaSeq, pat: &DnaSeq) -> u32 {
        let t = text.as_codes();
        let p = pat.as_codes();
        if p.is_empty() || p.len() > t.len() {
            return 0;
        }
        (0..=t.len() - p.len())
            .filter(|&i| &t[i..i + p.len()] == p)
            .count() as u32
    }

    #[test]
    fn forward_and_backward_agree_with_direct_search() {
        let text = seq("ACGTACGGTTACGTAGGCATTACGGATCCAGTACGT");
        let bi = BiIndex::build(&text);
        // Build "TACG" in all orders of extension.
        // Forward only: T, TA, TAC, TACG.
        let codes = seq("TACG");
        let mut iv = bi.init(codes.code_at(0));
        for i in 1..codes.len() {
            iv = bi.forward_ext(iv, codes.code_at(i));
            assert_consistent(&bi, &text, &codes.slice(0, i + 1), iv);
        }
        // Backward only: G, CG, ACG, TACG.
        let mut iv = bi.init(codes.code_at(3));
        for i in (0..3).rev() {
            iv = bi.backward_ext(iv, codes.code_at(i));
            assert_consistent(&bi, &text, &codes.slice(i, 4), iv);
        }
        // Mixed: start at "C" (index 2), extend right then left.
        let mut iv = bi.init(codes.code_at(2));
        iv = bi.forward_ext(iv, codes.code_at(3)); // "CG"
        iv = bi.backward_ext(iv, codes.code_at(1)); // "ACG"
        iv = bi.backward_ext(iv, codes.code_at(0)); // "TACG"
        assert_consistent(&bi, &text, &codes, iv);
    }

    #[test]
    fn mixed_extensions_on_pseudorandom_text() {
        let codes: Vec<u8> = (0..800usize)
            .map(|i| ((i * 37 + i / 11) % 4) as u8)
            .collect();
        let text = DnaSeq::from_codes_unchecked(codes);
        let bi = BiIndex::build(&text);
        // Take substrings and grow them from the middle outward.
        for start in [3usize, 100, 500] {
            let len = 14;
            let sub = text.slice(start, start + len);
            let mid = len / 2;
            let mut iv = bi.init(sub.code_at(mid));
            let (mut lo, mut hi) = (mid, mid + 1);
            let mut step = 0;
            while lo > 0 || hi < len {
                if step % 2 == 0 && hi < len {
                    iv = bi.forward_ext(iv, sub.code_at(hi));
                    hi += 1;
                } else if lo > 0 {
                    iv = bi.backward_ext(iv, sub.code_at(lo - 1));
                    lo -= 1;
                }
                step += 1;
                assert_consistent(&bi, &text, &sub.slice(lo, hi), iv);
            }
        }
    }

    #[test]
    fn init_covers_each_base() {
        let text = seq("AACCGGTTACGT");
        let bi = BiIndex::build(&text);
        let total: u32 = (0..4u8).map(|c| bi.init(c).s).sum();
        assert_eq!(total as usize, text.len());
        assert_eq!(bi.init(0).s, 3); // three As
    }

    #[test]
    fn vanished_pattern_stays_empty() {
        let text = seq("AAAA");
        let bi = BiIndex::build(&text);
        let iv = bi.init(0);
        let gone = bi.forward_ext(iv, 1); // "AC" absent
        assert!(gone.is_empty());
        let still_gone = bi.backward_ext(gone, 3);
        assert!(still_gone.is_empty());
    }
}
