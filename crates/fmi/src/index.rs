//! The FM-index: BWT + sampled occurrence table + sampled suffix array.
//!
//! Layout follows BWA-MEM2's cache-conscious design: the BWT is 2-bit
//! packed into 64-bit words, occurrence counts are checkpointed every 64
//! bases (one checkpoint = 16 bytes of counts + 16 bytes of packed BWT —
//! a half cache line per lookup), and the suffix array is sampled every 32
//! rows for locating hits. The `*_probed` variants report each table
//! access to a [`Probe`], which is how the suite observes the kernel's
//! famously irregular Occ-table access stream (paper Figs. 6, 8, 9).

use crate::sais::suffix_array;
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{addr_of, Probe};

/// Default checkpoint stride of the occurrence table, in BWT positions.
pub const OCC_STRIDE: usize = 64;
/// Default suffix-array sampling stride, in BWT rows.
pub const SA_STRIDE: usize = 32;

/// Sampling configuration of an [`FmIndex`] — the space/time trade the
/// `ablation_fmi_occ` bench sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmConfig {
    /// Occurrence-table checkpoint stride (positions per checkpoint).
    /// Smaller = fewer packed words scanned per lookup, bigger table.
    pub occ_stride: usize,
    /// Suffix-array sample stride (rows per sample). Smaller = fewer LF
    /// steps per locate, bigger table.
    pub sa_stride: usize,
}

impl Default for FmConfig {
    fn default() -> FmConfig {
        FmConfig {
            occ_stride: OCC_STRIDE,
            sa_stride: SA_STRIDE,
        }
    }
}

/// A half-open interval `[lo, hi)` of suffix-array rows: the set of
/// suffixes prefixed by the current search pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaRange {
    /// First matching row.
    pub lo: u32,
    /// One past the last matching row.
    pub hi: u32,
}

impl SaRange {
    /// Number of matches in the range.
    pub fn len(&self) -> u32 {
        self.hi.saturating_sub(self.lo)
    }

    /// Whether the range holds no matches.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// An FM-index over a DNA text.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_fmi::index::FmIndex;
/// let text: DnaSeq = "ACGTACGTGGTACA".parse()?;
/// let idx = FmIndex::build(&text);
/// let hits = idx.locate_all(&"ACGT".parse()?);
/// assert_eq!(hits, vec![0, 4]);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct FmIndex {
    /// Rows in the BWT matrix = text length + 1 (sentinel).
    n: usize,
    /// 2-bit packed BWT; the sentinel row is packed as code 0 and fixed up
    /// via `primary`.
    bwt: Vec<u64>,
    /// Row holding the sentinel.
    primary: usize,
    /// Exclusive prefix counts of each base at every `OCC_STRIDE` rows.
    checkpoints: Vec<[u32; 4]>,
    /// `C[c]`: number of characters in the text (plus sentinel)
    /// lexicographically smaller than base `c`.
    c_table: [u32; 4],
    /// `SA[row]` for every `sa_stride`-th row.
    sa_samples: Vec<u32>,
    occ_stride: usize,
    sa_stride: usize,
}

impl FmIndex {
    /// Builds the index from `text` via SA-IS.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty or longer than `u32::MAX - 1` bases.
    pub fn build(text: &DnaSeq) -> FmIndex {
        FmIndex::build_with(text, &FmConfig::default())
    }

    /// Builds the index with explicit sampling strides.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty, too long for `u32` offsets, or a stride
    /// is zero.
    pub fn build_with(text: &DnaSeq, config: &FmConfig) -> FmIndex {
        assert!(!text.is_empty(), "cannot index an empty text");
        assert!(
            text.len() < u32::MAX as usize - 1,
            "text too long for u32 suffix array"
        );
        assert!(
            config.occ_stride > 0 && config.sa_stride > 0,
            "strides must be positive"
        );
        assert!(
            config.occ_stride.is_multiple_of(32),
            "occ_stride must be a multiple of the 32-base packed word"
        );
        let occ_stride = config.occ_stride;
        let sa_stride = config.sa_stride;
        let sa = suffix_array(text.as_codes());
        let n = sa.len();

        let mut bwt = vec![0u64; n.div_ceil(32)];
        let mut primary = 0usize;
        let mut counts = [0u32; 4];
        let mut checkpoints = Vec::with_capacity(n.div_ceil(occ_stride) + 1);
        let mut sa_samples = Vec::with_capacity(n.div_ceil(sa_stride));
        for (row, &p) in sa.iter().enumerate() {
            if row % occ_stride == 0 {
                checkpoints.push(counts);
            }
            if row % sa_stride == 0 {
                sa_samples.push(p);
            }
            let code = if p == 0 {
                primary = row;
                0 // sentinel packed as 'A'; occ() compensates
            } else {
                let c = text.code_at(p as usize - 1);
                counts[c as usize] += 1;
                c
            };
            bwt[row / 32] |= u64::from(code) << (2 * (row % 32));
        }
        // Final checkpoint so occ(x, n) never reads past the end.
        checkpoints.push(counts);

        let mut c_table = [0u32; 4];
        let mut acc = 1u32; // sentinel is smaller than everything
        for c in 0..4 {
            c_table[c] = acc;
            acc += counts[c];
        }
        FmIndex {
            n,
            bwt,
            primary,
            checkpoints,
            c_table,
            sa_samples,
            occ_stride,
            sa_stride,
        }
    }

    /// Rows in the BWT (text length + 1).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: the index covers at least the sentinel.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The row holding the sentinel.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// `C[c]` — see the field documentation.
    #[inline]
    // PANIC-FREE: `c_table` has 5 slots and callers pass 2-bit base codes
    // (or 4 for the full range), per the field documentation.
    pub fn c_of(&self, c: u8) -> u32 {
        self.c_table[c as usize]
    }

    /// Approximate heap footprint in bytes (the fmi working set).
    pub fn heap_bytes(&self) -> usize {
        self.bwt.len() * 8 + self.checkpoints.len() * 16 + self.sa_samples.len() * 4
    }

    /// The full range covering every suffix.
    pub fn full_range(&self) -> SaRange {
        SaRange {
            lo: 0,
            hi: self.n as u32,
        }
    }

    /// Number of occurrences of base `c` in `bwt[0..i)`.
    #[inline]
    pub fn occ(&self, c: u8, i: u32) -> u32 {
        self.occ_probed(c, i, &mut gb_uarch::probe::NullProbe)
    }

    /// [`FmIndex::occ`] reporting its two memory touches (checkpoint +
    /// packed BWT words) to `probe`.
    #[inline]
    // PANIC-FREE: `i <= n` (debug-asserted interval invariant) keeps the
    // checkpoint index and the packed-word scan in range.
    // xtask: hot
    pub fn occ_probed<P: Probe>(&self, c: u8, i: u32, probe: &mut P) -> u32 {
        debug_assert!(c < 4 && (i as usize) <= self.n);
        let i = i as usize;
        let cp = i / self.occ_stride;
        probe.load(addr_of(&self.checkpoints[cp]), 16);
        let mut count = self.checkpoints[cp][c as usize];
        // Count `c` in the packed words after the checkpoint.
        let mut pos = cp * self.occ_stride;
        if pos < i {
            probe.load(addr_of(&self.bwt[pos / 32]), 16);
        }
        while pos < i {
            let word = self.bwt[pos / 32];
            let upto = (i - pos).min(32) as u32;
            count += count_base_in_word(word, c, upto);
            probe.int_ops(6);
            pos += 32;
        }
        // The sentinel is packed as 'A' in the BWT words (checkpoints
        // already exclude it): remove it from A counts when it lies in the
        // in-block region we just scanned.
        if c == 0 && self.primary >= cp * self.occ_stride && self.primary < i {
            count -= 1;
        }
        probe.int_ops(2);
        count
    }

    /// Occurrence counts of all four bases in `bwt[0..i)` plus whether the
    /// sentinel lies in `bwt[0..i)` — the bidirectional-extension
    /// primitive.
    #[inline]
    // PANIC-FREE: same `i <= n` interval invariant as `occ_probed`.
    // xtask: hot
    pub fn occ_all_probed<P: Probe>(&self, i: u32, probe: &mut P) -> ([u32; 4], bool) {
        debug_assert!((i as usize) <= self.n);
        let i = i as usize;
        let cp = i / self.occ_stride;
        probe.load(addr_of(&self.checkpoints[cp]), 16);
        let mut counts = self.checkpoints[cp];
        let mut pos = cp * self.occ_stride;
        if pos < i {
            probe.load(addr_of(&self.bwt[pos / 32]), 16);
        }
        while pos < i {
            let word = self.bwt[pos / 32];
            let upto = (i - pos).min(32) as u32;
            for c in 0..4u8 {
                counts[c as usize] += count_base_in_word(word, c, upto);
            }
            probe.int_ops(20);
            pos += 32;
        }
        let dollar = self.primary < i;
        if self.primary >= cp * self.occ_stride && self.primary < i {
            counts[0] -= 1; // sentinel packed as 'A' in the scanned block
        }
        probe.int_ops(2);
        (counts, dollar)
    }

    /// The BWT character at `row`, or `None` at the sentinel row.
    #[inline]
    pub fn bwt_at(&self, row: u32) -> Option<u8> {
        let row = row as usize;
        debug_assert!(row < self.n);
        if row == self.primary {
            return None;
        }
        Some(((self.bwt[row / 32] >> (2 * (row % 32))) & 3) as u8)
    }

    /// One backward-search step: narrows `range` to suffixes prefixed by
    /// `c` followed by the current pattern.
    #[inline]
    pub fn backward_ext(&self, range: SaRange, c: u8) -> SaRange {
        self.backward_ext_probed(range, c, &mut gb_uarch::probe::NullProbe)
    }

    /// [`FmIndex::backward_ext`] with instrumentation.
    #[inline]
    pub fn backward_ext_probed<P: Probe>(&self, range: SaRange, c: u8, probe: &mut P) -> SaRange {
        let lo = self.c_of(c) + self.occ_probed(c, range.lo, probe);
        let hi = self.c_of(c) + self.occ_probed(c, range.hi, probe);
        probe.int_ops(2);
        SaRange { lo, hi }
    }

    /// Backward search of the whole `pattern`; empty range when absent.
    pub fn search(&self, pattern: &DnaSeq) -> SaRange {
        self.search_probed(pattern, &mut gb_uarch::probe::NullProbe)
    }

    /// [`FmIndex::search`] with instrumentation.
    pub fn search_probed<P: Probe>(&self, pattern: &DnaSeq, probe: &mut P) -> SaRange {
        let mut range = self.full_range();
        for &c in pattern.as_codes().iter().rev() {
            probe.branch(true);
            range = self.backward_ext_probed(range, c, probe);
            if range.is_empty() {
                break;
            }
        }
        range
    }

    /// Text position of suffix-array row `row`, via LF-stepping to the
    /// nearest sample.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn locate(&self, row: u32) -> u32 {
        assert!((row as usize) < self.n);
        let mut row = row;
        let mut steps = 0u32;
        loop {
            if (row as usize).is_multiple_of(self.sa_stride) {
                return self.sa_samples[row as usize / self.sa_stride] + steps;
            }
            match self.bwt_at(row) {
                None => return steps, // SA[primary] = 0
                Some(c) => {
                    row = self.c_of(c) + self.occ(c, row);
                    steps += 1;
                }
            }
        }
    }

    /// Sorted text positions of every occurrence of `pattern`.
    pub fn locate_all(&self, pattern: &DnaSeq) -> Vec<u32> {
        let range = self.search(pattern);
        let mut hits: Vec<u32> = (range.lo..range.hi).map(|r| self.locate(r)).collect();
        hits.sort_unstable();
        hits
    }
}

/// Counts occurrences of base `c` among the first `upto` 2-bit slots of
/// `word`.
#[inline]
fn count_base_in_word(word: u64, c: u8, upto: u32) -> u32 {
    debug_assert!(c < 4 && upto <= 32);
    if upto == 0 {
        return 0;
    }
    let pat = u64::from(c) * 0x5555_5555_5555_5555;
    let x = word ^ pat; // matching slots become 00
    let matched = !(x | (x >> 1)) & 0x5555_5555_5555_5555;
    let mask = if upto == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * upto)) - 1
    };
    (matched & mask).count_ones()
}

impl gb_substrate::Codec for FmIndex {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.n);
        gb_substrate::Codec::encode(&self.bwt, e);
        e.put_usize(self.primary);
        gb_substrate::Codec::encode(&self.checkpoints, e);
        gb_substrate::Codec::encode(&self.c_table, e);
        gb_substrate::Codec::encode(&self.sa_samples, e);
        e.put_usize(self.occ_stride);
        e.put_usize(self.sa_stride);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<FmIndex> {
        let idx = FmIndex {
            n: d.get_usize()?,
            bwt: gb_substrate::Codec::decode(d)?,
            primary: d.get_usize()?,
            checkpoints: gb_substrate::Codec::decode(d)?,
            c_table: gb_substrate::Codec::decode(d)?,
            sa_samples: gb_substrate::Codec::decode(d)?,
            occ_stride: d.get_usize()?,
            sa_stride: d.get_usize()?,
        };
        // Structural invariants the query paths divide/index by.
        if idx.occ_stride == 0 || idx.sa_stride == 0 || idx.primary >= idx.n.max(1) {
            return None;
        }
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn naive_occurrences(text: &DnaSeq, pat: &DnaSeq) -> Vec<u32> {
        let t = text.as_codes();
        let p = pat.as_codes();
        if p.is_empty() || p.len() > t.len() {
            return Vec::new();
        }
        (0..=t.len() - p.len())
            .filter(|&i| &t[i..i + p.len()] == p)
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn count_base_in_word_exhaustive_small() {
        // Word = bases [A, C, G, T, A, C, ...] repeating.
        let mut word = 0u64;
        for i in 0..32 {
            word |= ((i % 4) as u64) << (2 * i);
        }
        for c in 0..4u8 {
            for upto in 0..=32u32 {
                let expect = (0..upto).filter(|&i| (i % 4) as u8 == c).count() as u32;
                assert_eq!(
                    count_base_in_word(word, c, upto),
                    expect,
                    "c={c} upto={upto}"
                );
            }
        }
    }

    #[test]
    fn occ_matches_direct_bwt_scan() {
        let text = seq("ACGTACGGTACGTTACGACGTACGATCG");
        let idx = FmIndex::build(&text);
        // Reconstruct the BWT characters directly.
        let chars: Vec<Option<u8>> = (0..idx.len() as u32).map(|r| idx.bwt_at(r)).collect();
        for c in 0..4u8 {
            let mut running = 0u32;
            for i in 0..=idx.len() as u32 {
                assert_eq!(idx.occ(c, i), running, "c={c} i={i}");
                if (i as usize) < idx.len() && chars[i as usize] == Some(c) {
                    running += 1;
                }
            }
        }
    }

    #[test]
    fn occ_all_agrees_with_occ() {
        let text = seq("GGGACGTACGTTTTACACAGT");
        let idx = FmIndex::build(&text);
        for i in 0..=idx.len() as u32 {
            let (all, dollar) = idx.occ_all_probed(i, &mut gb_uarch::probe::NullProbe);
            for c in 0..4u8 {
                assert_eq!(all[c as usize], idx.occ(c, i));
            }
            assert_eq!(dollar, idx.primary() < i as usize);
        }
    }

    #[test]
    fn search_finds_all_occurrences() {
        let text = seq("ACGTACGTGGTACAACGT");
        let idx = FmIndex::build(&text);
        for pat in ["A", "AC", "ACGT", "GGT", "TTT", "ACGTACGTGGTACAACGT", "CA"] {
            let pat = seq(pat);
            assert_eq!(
                idx.locate_all(&pat),
                naive_occurrences(&text, &pat),
                "pattern {pat}"
            );
        }
    }

    #[test]
    fn search_larger_pseudorandom_text() {
        let codes: Vec<u8> = (0..3000usize)
            .map(|i| ((i * 131 + i / 5 + i * i % 97) % 4) as u8)
            .collect();
        let text = DnaSeq::from_codes_unchecked(codes);
        let idx = FmIndex::build(&text);
        for start in [0usize, 7, 100, 999, 2500] {
            for len in [1usize, 5, 12, 31] {
                let pat = text.slice(start, start + len);
                let hits = idx.locate_all(&pat);
                assert_eq!(
                    hits,
                    naive_occurrences(&text, &pat),
                    "start={start} len={len}"
                );
                assert!(hits.contains(&(start as u32)));
            }
        }
    }

    #[test]
    fn absent_pattern_is_empty() {
        let text = seq("AAAAAAAA");
        let idx = FmIndex::build(&text);
        assert!(idx.search(&seq("C")).is_empty());
        assert!(idx.locate_all(&seq("ACA")).is_empty());
    }

    #[test]
    fn locate_every_row() {
        let text = seq("ACGGTTACAGTACGGATTACA");
        let idx = FmIndex::build(&text);
        let sa = crate::sais::suffix_array(text.as_codes());
        for row in 0..idx.len() as u32 {
            assert_eq!(idx.locate(row), sa[row as usize], "row {row}");
        }
    }

    #[test]
    fn probe_sees_occ_traffic() {
        use gb_uarch::mix::MixProbe;
        let text = seq("ACGTACGTGGTACAACGTACGGTTAACC");
        let idx = FmIndex::build(&text);
        let mut probe = MixProbe::new();
        let _ = idx.search_probed(&seq("ACGT"), &mut probe);
        // Each backward step does 2 occ lookups, each >= 1 checkpoint load.
        assert!(probe.mix().loads >= 8, "loads = {}", probe.mix().loads);
        assert!(probe.mix().int_ops > 0);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let text = seq("ACGT");
        let idx = FmIndex::build(&text);
        let r = idx.search(&DnaSeq::new());
        assert_eq!(r.len(), idx.len() as u32);
    }

    #[test]
    fn all_strides_agree_with_default() {
        use super::FmConfig;
        let codes: Vec<u8> = (0..2000usize)
            .map(|i| ((i * 61 + i / 7) % 4) as u8)
            .collect();
        let text = DnaSeq::from_codes_unchecked(codes);
        let base = FmIndex::build(&text);
        for occ_stride in [32usize, 64, 128, 256] {
            for sa_stride in [4usize, 32, 128] {
                let idx = FmIndex::build_with(
                    &text,
                    &FmConfig {
                        occ_stride,
                        sa_stride,
                    },
                );
                for pat_start in [0usize, 100, 555] {
                    let pat = text.slice(pat_start, pat_start + 12);
                    assert_eq!(
                        idx.locate_all(&pat),
                        base.locate_all(&pat),
                        "occ {occ_stride} sa {sa_stride}"
                    );
                }
            }
        }
        // Denser sampling costs more memory.
        let dense = FmIndex::build_with(
            &text,
            &FmConfig {
                occ_stride: 32,
                sa_stride: 4,
            },
        );
        let sparse = FmIndex::build_with(
            &text,
            &FmConfig {
                occ_stride: 256,
                sa_stride: 128,
            },
        );
        assert!(dense.heap_bytes() > sparse.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "multiple of the 32-base")]
    fn unaligned_occ_stride_panics() {
        use super::FmConfig;
        let text: DnaSeq = "ACGTACGT".parse().unwrap();
        let _ = FmIndex::build_with(
            &text,
            &FmConfig {
                occ_stride: 48,
                sa_stride: 32,
            },
        );
    }

    #[test]
    fn heap_bytes_scales_with_text() {
        let small = FmIndex::build(&seq("ACGTACGT"));
        let codes: Vec<u8> = (0..10_000).map(|i| (i % 4) as u8).collect();
        let big = FmIndex::build(&DnaSeq::from_codes_unchecked(codes));
        assert!(big.heap_bytes() > small.heap_bytes() * 100);
    }
}
