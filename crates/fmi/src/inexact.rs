//! Inexact (bounded-mismatch) backward search.
//!
//! The paper motivates the FM-index partly by its "support for inexact
//! matching (identifying seeds with a small number of edits)". This
//! module implements the classic bounded backtracking search (BWA's
//! original algorithm): backward search that may substitute up to `k`
//! bases, enumerating all suffix-array ranges reachable within the
//! mismatch budget.

use crate::index::{FmIndex, SaRange};
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{NullProbe, Probe};

/// One inexact hit: a suffix-array range and its mismatch count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InexactHit {
    /// Matching suffix-array rows.
    pub range: SaRange,
    /// Substitutions used relative to the pattern.
    pub mismatches: u32,
}

/// Finds every suffix-array range matching `pattern` with at most
/// `max_mismatches` substitutions, fewest-mismatch hits first.
///
/// Ranges are deduplicated: the same range reachable through different
/// substitution choices is reported once at its minimum mismatch count.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_fmi::{index::FmIndex, inexact::inexact_search};
/// let text: DnaSeq = "ACGTACGTGGTACA".parse()?;
/// let idx = FmIndex::build(&text);
/// // "ACGA" does not occur exactly, but matches "ACGT" with 1 mismatch.
/// let hits = inexact_search(&idx, &"ACGA".parse()?, 1);
/// assert!(hits.iter().all(|h| h.mismatches <= 1));
/// assert!(!hits.is_empty());
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn inexact_search(index: &FmIndex, pattern: &DnaSeq, max_mismatches: u32) -> Vec<InexactHit> {
    inexact_search_probed(index, pattern, max_mismatches, &mut NullProbe)
}

/// [`inexact_search`] with instrumentation.
pub fn inexact_search_probed<P: Probe>(
    index: &FmIndex,
    pattern: &DnaSeq,
    max_mismatches: u32,
    probe: &mut P,
) -> Vec<InexactHit> {
    let mut hits: Vec<InexactHit> = Vec::new();
    let p = pattern.as_codes();
    if p.is_empty() {
        return vec![InexactHit {
            range: index.full_range(),
            mismatches: 0,
        }];
    }
    // Depth-first backtracking from the pattern's end.
    let mut stack: Vec<(usize, SaRange, u32)> = vec![(p.len(), index.full_range(), 0)];
    while let Some((i, range, mm)) = stack.pop() {
        if range.is_empty() {
            continue;
        }
        if i == 0 {
            hits.push(InexactHit {
                range,
                mismatches: mm,
            });
            continue;
        }
        let want = p[i - 1];
        for c in 0..4u8 {
            let cost = u32::from(c != want);
            if mm + cost > max_mismatches {
                probe.branch(false);
                continue;
            }
            probe.branch(true);
            let next = index.backward_ext_probed(range, c, probe);
            if !next.is_empty() {
                stack.push((i - 1, next, mm + cost));
            }
        }
    }
    // Deduplicate ranges, keeping the lowest mismatch count.
    hits.sort_by_key(|h| (h.range.lo, h.range.hi, h.mismatches));
    hits.dedup_by_key(|h| h.range);
    hits.sort_by_key(|h| (h.mismatches, h.range.lo));
    hits
}

/// Text positions of every inexact occurrence, sorted, with their
/// mismatch counts (minimum over alignments at that position).
pub fn inexact_locate_all(
    index: &FmIndex,
    pattern: &DnaSeq,
    max_mismatches: u32,
) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for hit in inexact_search(index, pattern, max_mismatches) {
        for row in hit.range.lo..hit.range.hi {
            out.push((index.locate(row), hit.mismatches));
        }
    }
    out.sort_unstable();
    out.dedup_by_key(|e| e.0);
    out
}

/// Brute-force reference: Hamming-match `pattern` at every text offset.
pub fn naive_inexact(text: &DnaSeq, pattern: &DnaSeq, max_mismatches: u32) -> Vec<(u32, u32)> {
    let t = text.as_codes();
    let p = pattern.as_codes();
    if p.is_empty() || p.len() > t.len() {
        return Vec::new();
    }
    (0..=t.len() - p.len())
        .filter_map(|i| {
            let mm = p.iter().zip(&t[i..]).filter(|(a, b)| a != b).count() as u32;
            (mm <= max_mismatches).then_some((i as u32, mm))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_text(n: usize, seed: u64) -> DnaSeq {
        let mut x = seed;
        DnaSeq::from_codes_unchecked(
            (0..n)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 4) as u8
                })
                .collect(),
        )
    }

    #[test]
    fn zero_mismatch_equals_exact_search() {
        let text = pseudo_text(500, 1);
        let idx = FmIndex::build(&text);
        let pat = text.slice(100, 115);
        let inexact = inexact_locate_all(&idx, &pat, 0);
        let exact = idx.locate_all(&pat);
        assert_eq!(inexact.iter().map(|&(p, _)| p).collect::<Vec<_>>(), exact);
        assert!(inexact.iter().all(|&(_, mm)| mm == 0));
    }

    #[test]
    fn matches_naive_hamming_search() {
        let text = pseudo_text(800, 3);
        let idx = FmIndex::build(&text);
        for (start, k) in [(50usize, 1u32), (200, 2), (431, 1), (700, 2)] {
            let mut codes = text.slice(start, start + 14).into_codes();
            codes[4] = (codes[4] + 1) % 4; // plant one mismatch
            let pat = DnaSeq::from_codes_unchecked(codes);
            let got = inexact_locate_all(&idx, &pat, k);
            let want = naive_inexact(&text, &pat, k);
            assert_eq!(got, want, "start {start} k {k}");
            assert!(
                got.iter().any(|&(p, _)| p == start as u32),
                "planted site found"
            );
        }
    }

    #[test]
    fn mismatch_budget_is_respected() {
        let text = pseudo_text(400, 5);
        let idx = FmIndex::build(&text);
        let mut codes = text.slice(60, 76).into_codes();
        codes[3] = (codes[3] + 1) % 4;
        codes[9] = (codes[9] + 2) % 4;
        let pat = DnaSeq::from_codes_unchecked(codes);
        // Two planted mismatches: absent at k=1, present at k=2.
        let k1: Vec<u32> = inexact_locate_all(&idx, &pat, 1)
            .iter()
            .map(|&(p, _)| p)
            .collect();
        let k2: Vec<u32> = inexact_locate_all(&idx, &pat, 2)
            .iter()
            .map(|&(p, _)| p)
            .collect();
        assert!(!k1.contains(&60));
        assert!(k2.contains(&60));
    }

    #[test]
    fn hits_sorted_by_mismatches() {
        let text = pseudo_text(600, 7);
        let idx = FmIndex::build(&text);
        let pat = text.slice(10, 22);
        let hits = inexact_search(&idx, &pat, 2);
        assert!(hits.windows(2).all(|w| w[0].mismatches <= w[1].mismatches));
        assert_eq!(hits[0].mismatches, 0);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let text = pseudo_text(50, 9);
        let idx = FmIndex::build(&text);
        let hits = inexact_search(&idx, &DnaSeq::new(), 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].range.len() as usize, idx.len());
    }
}
