//! # gb-fmi
//!
//! FM-index substrate and the **fmi** kernel (super-maximal exact match
//! search) of GenomicsBench-rs.
//!
//! Built from scratch: linear-time SA-IS suffix-array construction
//! ([`sais`]), a cache-conscious FM-index with checkpointed occurrence
//! table and sampled suffix array ([`index`]), a bidirectional 2BWT index
//! ([`bidir`]), BWA-MEM's SMEM algorithm ([`smem`]), and bounded-mismatch
//! backtracking search ([`inexact`]).
//!
//! # Examples
//!
//! ```
//! use gb_core::seq::DnaSeq;
//! use gb_fmi::{bidir::BiIndex, smem::{collect_smems, SmemConfig}};
//!
//! let reference: DnaSeq = "ACGGATTACAGGTTACGGATCCAGTAACGTA".parse()?;
//! let bi = BiIndex::build(&reference);
//! let read = reference.slice(5, 25);
//! let smems = collect_smems(&bi, &read, &SmemConfig { min_seed_len: 10, min_intv: 1 });
//! assert!(!smems.is_empty());
//! # Ok::<(), gb_core::error::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bidir;
pub mod index;
pub mod inexact;
pub mod sais;
pub mod smem;

pub use bidir::{BiIndex, BiInterval};
pub use index::{FmIndex, SaRange};
pub use smem::{collect_smems, Smem, SmemConfig};
