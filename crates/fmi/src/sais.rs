//! Linear-time suffix array construction (SA-IS).
//!
//! The FM-index is built from the suffix array of the reference. BWA-MEM2
//! constructs it with a linear-time algorithm; this module implements
//! SA-IS (Nong, Zhang & Chan, 2009) — induced sorting of LMS substrings
//! with recursion on the reduced problem.

/// Computes the suffix array of `text` (2-bit base codes `0..=3`).
///
/// A unique sentinel smaller than every base is appended internally; the
/// returned array has length `text.len() + 1` and its first entry is
/// always `text.len()` (the sentinel suffix).
///
/// # Examples
///
/// ```
/// use gb_fmi::sais::suffix_array;
/// // banana-like: "ACAACA" -> suffixes sorted
/// let sa = suffix_array(&[0, 1, 0, 0, 1, 0]);
/// assert_eq!(sa[0], 6); // sentinel
/// // Property: suffixes are in sorted order.
/// ```
///
/// # Panics
///
/// Panics if any code is `> 3`.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    assert!(text.iter().all(|&c| c < 4), "codes must be 2-bit bases");
    // Shift codes by +1 so 0 is the unique sentinel.
    let mut s: Vec<u32> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&c| u32::from(c) + 1));
    s.push(0);
    sais(&s, 5)
}

/// SA-IS over an integer string `s` that ends with a unique `0` sentinel,
/// with alphabet size `k` (symbols are `0..k`).
fn sais(s: &[u32], k: usize) -> Vec<u32> {
    let n = s.len();
    debug_assert!(n >= 1 && s[n - 1] == 0, "input must end with the sentinel");
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        return vec![1, 0];
    }

    // 1. Classify suffixes: S-type (true) or L-type (false).
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // Bucket sizes per symbol.
    let mut bucket = vec![0u32; k];
    for &c in s {
        bucket[c as usize] += 1;
    }
    let bucket_heads = |bucket: &[u32]| -> Vec<u32> {
        let mut heads = vec![0u32; k];
        let mut sum = 0;
        for c in 0..k {
            heads[c] = sum;
            sum += bucket[c];
        }
        heads
    };
    let bucket_tails = |bucket: &[u32]| -> Vec<u32> {
        let mut tails = vec![0u32; k];
        let mut sum = 0;
        for c in 0..k {
            sum += bucket[c];
            tails[c] = sum;
        }
        tails
    };

    const EMPTY: u32 = u32::MAX;

    // Induced sort given the LMS positions in `lms_order` (sorted order of
    // LMS suffixes, or any order on the first pass).
    let induce = |lms_order: &[u32]| -> Vec<u32> {
        let mut sa = vec![EMPTY; n];
        // a) Place LMS suffixes at bucket tails in reverse order.
        let mut tails = bucket_tails(&bucket);
        for &p in lms_order.iter().rev() {
            let c = s[p as usize] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = p;
        }
        // b) Induce L-type from left to right.
        let mut heads = bucket_heads(&bucket);
        for i in 0..n {
            let p = sa[i];
            if p != EMPTY && p > 0 {
                let j = (p - 1) as usize;
                if !is_s[j] {
                    let c = s[j] as usize;
                    sa[heads[c] as usize] = p - 1;
                    heads[c] += 1;
                }
            }
        }
        // c) Induce S-type from right to left (overwrites the provisional
        // LMS placements with their final positions).
        let mut tails = bucket_tails(&bucket);
        for i in (0..n).rev() {
            let p = sa[i];
            if p != EMPTY && p > 0 {
                let j = (p - 1) as usize;
                if is_s[j] {
                    let c = s[j] as usize;
                    tails[c] -= 1;
                    sa[tails[c] as usize] = p - 1;
                }
            }
        }
        sa
    };

    // 2. First pass: approximate sort of LMS substrings.
    let lms_positions: Vec<u32> = (0..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    let sa0 = induce(&lms_positions);

    // 3. Extract LMS suffixes in induced order and name LMS substrings.
    let lms_in_order: Vec<u32> = sa0
        .iter()
        .copied()
        .filter(|&p| is_lms(p as usize))
        .collect();
    let mut names = vec![EMPTY; n];
    let mut name: u32 = 0;
    let mut prev: Option<u32> = None;
    for &p in &lms_in_order {
        if let Some(q) = prev {
            if !lms_substr_eq(s, &is_s, q as usize, p as usize) {
                name += 1;
            }
        }
        names[p as usize] = name;
        prev = Some(p);
    }
    let num_names = name + 1;

    // 4. Sort the LMS suffixes: recurse if names collide.
    let sorted_lms: Vec<u32> = if num_names as usize == lms_positions.len() {
        // All distinct: induced order is already the sorted order.
        lms_in_order
    } else {
        // Build the reduced string (names in text order) and recurse.
        let reduced: Vec<u32> = lms_positions.iter().map(|&p| names[p as usize]).collect();
        let sub_sa = sais(&reduced, num_names as usize);
        sub_sa.iter().map(|&r| lms_positions[r as usize]).collect()
    };

    // 5. Final induced sort from the fully sorted LMS suffixes.
    induce(&sorted_lms)
}

/// Compares the LMS substrings starting at `a` and `b` for equality.
fn lms_substr_eq(s: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = s.len();
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];
    if a == b {
        return true;
    }
    let mut i = 0;
    loop {
        let ai = a + i;
        let bi = b + i;
        if ai >= n || bi >= n {
            return false;
        }
        let a_lms = i > 0 && is_lms(ai);
        let b_lms = i > 0 && is_lms(bi);
        if a_lms && b_lms {
            return true;
        }
        if a_lms != b_lms || s[ai] != s[bi] {
            return false;
        }
        i += 1;
    }
}

/// Reference O(n² log n) construction for testing.
pub fn naive_suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    let mut idx: Vec<u32> = (0..=n as u32).collect();
    // Slice comparison orders a proper prefix before its extensions, which
    // matches sentinel-terminated suffix ordering (the sentinel is smaller
    // than every base).
    idx.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &[u8]) {
        assert_eq!(
            suffix_array(text),
            naive_suffix_array(text),
            "text = {text:?}"
        );
    }

    #[test]
    fn empty_and_tiny() {
        check(&[]);
        check(&[0]);
        check(&[3]);
        check(&[0, 0]);
        check(&[1, 0]);
        check(&[0, 1]);
    }

    #[test]
    fn known_small_cases() {
        check(&[0, 1, 0, 0, 1, 0]); // ACAACA
        check(&[3, 2, 1, 0]); // TGCA
        check(&[0, 0, 0, 0, 0]); // AAAAA
        check(&[1, 3, 1, 3, 1, 3]); // CTCTCT
        check(&[2, 0, 3, 3, 0, 2, 0, 3, 3, 0]);
    }

    #[test]
    fn repetitive_structures() {
        // Fibonacci-like string over {A, C}: worst case for naive sorts.
        let mut s = vec![0u8];
        let mut t = vec![0u8, 1];
        for _ in 0..10 {
            let next = [t.clone(), s.clone()].concat();
            s = t;
            t = next;
        }
        check(&t);
    }

    #[test]
    fn pseudo_random_matches_naive() {
        let mut x = 99u64;
        for len in [10usize, 37, 100, 257, 1000] {
            let text: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 4) as u8
                })
                .collect();
            check(&text);
        }
    }

    #[test]
    fn sa_is_a_permutation() {
        let text: Vec<u8> = (0..5000).map(|i| ((i * 31 + i / 7) % 4) as u8).collect();
        let sa = suffix_array(&text);
        assert_eq!(sa.len(), text.len() + 1);
        assert_eq!(sa[0] as usize, text.len());
        let mut seen = vec![false; sa.len()];
        for &p in &sa {
            assert!(!seen[p as usize], "duplicate {p}");
            seen[p as usize] = true;
        }
    }

    #[test]
    #[should_panic(expected = "2-bit")]
    fn rejects_invalid_codes() {
        let _ = suffix_array(&[0, 4]);
    }
}
