//! Super-maximal exact match (SMEM) search — the **fmi** kernel.
//!
//! This is the computation GenomicsBench extracts from BWA-MEM2's seeding
//! stage: for each read, find every exact match to the reference that
//! cannot be extended in either direction and is not contained in a longer
//! match covering the same read position. The algorithm is Li's
//! bidirectional procedure (Bioinformatics 2012, used verbatim in
//! BWA-MEM/BWA-MEM2): forward-extend from a pivot recording every interval
//! shrink, then backward-extend the recorded chain, emitting the longest
//! surviving match each time extension fails.

use crate::bidir::{BiIndex, BiInterval};
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{NullProbe, Probe};

/// One super-maximal exact match of a read against the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Smem {
    /// Start offset in the read (inclusive).
    pub start: usize,
    /// End offset in the read (exclusive).
    pub end: usize,
    /// The match's bi-interval (`interval.s` = occurrence count).
    pub interval: BiInterval,
}

impl Smem {
    /// Match length in bases.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the match is degenerate (never produced by the search).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Tuning parameters for SMEM collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmemConfig {
    /// Discard matches shorter than this (BWA-MEM's `-k`, default 19).
    pub min_seed_len: usize,
    /// Stop extending when the interval size would drop below this
    /// (BWA-MEM's `min_intv`, default 1).
    pub min_intv: u32,
}

impl Default for SmemConfig {
    fn default() -> SmemConfig {
        SmemConfig {
            min_seed_len: 19,
            min_intv: 1,
        }
    }
}

/// Collects all SMEMs of `read`, sorted by start position.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_fmi::{bidir::BiIndex, smem::{collect_smems, SmemConfig}};
/// let text: DnaSeq = "ACGTACGGTTACGTAGGCATTACGGATCCAGT".parse()?;
/// let bi = BiIndex::build(&text);
/// let read = text.slice(4, 24);
/// let cfg = SmemConfig { min_seed_len: 5, min_intv: 1 };
/// let smems = collect_smems(&bi, &read, &cfg);
/// // The read is an exact substring: one SMEM covering all of it.
/// assert_eq!(smems.len(), 1);
/// assert_eq!((smems[0].start, smems[0].end), (0, read.len()));
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn collect_smems(bi: &BiIndex, read: &DnaSeq, config: &SmemConfig) -> Vec<Smem> {
    collect_smems_probed(bi, read, config, &mut NullProbe)
}

/// [`collect_smems`] with instrumentation.
pub fn collect_smems_probed<P: Probe>(
    bi: &BiIndex,
    read: &DnaSeq,
    config: &SmemConfig,
    probe: &mut P,
) -> Vec<Smem> {
    let mut out = Vec::new();
    let mut x = 0usize;
    while x < read.len() {
        let next = smems_at_pivot(bi, read, x, config, &mut out, probe);
        x = next.max(x + 1);
    }
    out.retain(|m| m.len() >= config.min_seed_len);
    out.sort_by_key(|m| (m.start, m.end));
    out.dedup();
    out
}

/// An interval paired with the read end position it matches up to.
#[derive(Debug, Clone, Copy)]
struct IntvEnd {
    iv: BiInterval,
    end: usize,
}

/// Li's SMEM procedure at pivot `x`; appends matches covering `x` to
/// `out` and returns the next pivot (end of the longest forward
/// extension).
fn smems_at_pivot<P: Probe>(
    bi: &BiIndex,
    read: &DnaSeq,
    x: usize,
    config: &SmemConfig,
    out: &mut Vec<Smem>,
    probe: &mut P,
) -> usize {
    let len = read.len();
    let min_intv = config.min_intv.max(1);

    // Forward extension: record the interval every time it shrinks.
    let mut curr: Vec<IntvEnd> = Vec::new();
    let mut ik = IntvEnd {
        iv: bi.init(read.code_at(x)),
        end: x + 1,
    };
    let mut i = x + 1;
    while i < len {
        probe.branch(true);
        let ok = bi.forward_ext_probed(ik.iv, read.code_at(i), probe);
        if ok.s != ik.iv.s {
            curr.push(ik);
            if ok.s < min_intv {
                break;
            }
        }
        ik = IntvEnd { iv: ok, end: i + 1 };
        i += 1;
    }
    if i == len {
        curr.push(ik);
    }
    // Longest-first order for the backward phase.
    curr.reverse();
    let next_pivot = curr.first().map_or(x + 1, |p| p.end);
    let mut prev = curr;

    // Backward extension: peel one base off the left each iteration.
    let mut emitted_start = usize::MAX;
    let mut i = x as isize - 1;
    loop {
        let c: Option<u8> = if i >= 0 {
            Some(read.code_at(i as usize))
        } else {
            None
        };
        let mut curr: Vec<IntvEnd> = Vec::new();
        for p in &prev {
            probe.branch(true);
            let ok = c.map(|c| bi.backward_ext_probed(p.iv, c, probe));
            match ok {
                Some(ok) if ok.s >= min_intv => {
                    // Keep only the first interval of each distinct size:
                    // later (shorter) ones are contained in it.
                    if curr.last().map(|l| l.iv.s) != Some(ok.s) {
                        curr.push(IntvEnd { iv: ok, end: p.end });
                    }
                }
                _ => {
                    // Extension failed: p is left-maximal at i+1. Emit it
                    // if no longer match survived this round and it is
                    // not contained in a previously emitted match.
                    let start = (i + 1) as usize;
                    if curr.is_empty() && start < emitted_start {
                        out.push(Smem {
                            start,
                            end: p.end,
                            interval: p.iv,
                        });
                        emitted_start = start;
                    }
                }
            }
        }
        if curr.is_empty() {
            break;
        }
        prev = curr;
        i -= 1;
    }
    next_pivot
}

/// Brute-force SMEM computation for testing: maximal matches per start
/// position with containment filtering.
pub fn naive_smems(text: &DnaSeq, read: &DnaSeq, min_len: usize) -> Vec<(usize, usize)> {
    let t = text.as_codes();
    let occurs = |p: &[u8]| -> bool {
        !p.is_empty()
            && p.len() <= t.len()
            && (0..=t.len() - p.len()).any(|i| &t[i..i + p.len()] == p)
    };
    let r = read.as_codes();
    let n = r.len();
    // Longest match starting at each i.
    let mut best: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        let mut j = i;
        while j < n && occurs(&r[i..j + 1]) {
            j += 1;
        }
        if j > i {
            best.push((i, j));
        }
    }
    // Remove contained intervals.
    let mut out: Vec<(usize, usize)> = Vec::new();
    for &(s, e) in &best {
        if !best
            .iter()
            .any(|&(s2, e2)| (s2, e2) != (s, e) && s2 <= s && e <= e2)
        {
            out.push((s, e));
        }
    }
    out.retain(|&(s, e)| e - s >= min_len);
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn run(text: &DnaSeq, read: &DnaSeq, min_len: usize) {
        let bi = BiIndex::build(text);
        let cfg = SmemConfig {
            min_seed_len: min_len,
            min_intv: 1,
        };
        let got: Vec<(usize, usize)> = collect_smems(&bi, read, &cfg)
            .iter()
            .map(|m| (m.start, m.end))
            .collect();
        let want = naive_smems(text, read, min_len);
        assert_eq!(got, want, "text={text} read={read}");
    }

    #[test]
    fn exact_substring_is_single_smem() {
        let text = seq("ACGTACGGTTACGTAGGCATT");
        let read = text.slice(3, 15);
        run(&text, &read, 1);
    }

    #[test]
    fn mismatch_splits_matches() {
        let text = seq("ACGTACGTACGTACGTACGT");
        // Read with a foreign block in the middle.
        let read = seq("ACGTACCCCCGTACGT");
        run(&text, &read, 1);
    }

    #[test]
    fn pseudorandom_reads_match_naive() {
        let codes: Vec<u8> = (0..600usize)
            .map(|i| ((i * 53 + i / 7 + (i * i) % 13) % 4) as u8)
            .collect();
        let text = DnaSeq::from_codes_unchecked(codes);
        for (start, mutate) in [(10usize, 3usize), (100, 7), (300, 5), (450, 11)] {
            let mut r = text.slice(start, start + 60).into_codes();
            // Sprinkle substitutions to create multiple SMEMs.
            let mut k = 1;
            while k < r.len() {
                r[k] = (r[k] + 1) % 4;
                k += mutate;
            }
            let read = DnaSeq::from_codes_unchecked(r);
            run(&text, &read, 1);
            run(&text, &read, 10);
        }
    }

    #[test]
    fn smems_cover_every_read_position() {
        let codes: Vec<u8> = (0..400usize)
            .map(|i| ((i * 29 + i / 3) % 4) as u8)
            .collect();
        let text = DnaSeq::from_codes_unchecked(codes);
        let bi = BiIndex::build(&text);
        let read = text.slice(50, 150);
        let cfg = SmemConfig {
            min_seed_len: 1,
            min_intv: 1,
        };
        let smems = collect_smems(&bi, &read, &cfg);
        // Every base of the read occurs in the text (alphabet present), so
        // every position must be covered by some SMEM.
        for pos in 0..read.len() {
            assert!(
                smems.iter().any(|m| m.start <= pos && pos < m.end),
                "position {pos} uncovered by {smems:?}"
            );
        }
    }

    #[test]
    fn interval_counts_are_occurrence_counts() {
        let text = seq("ACGTACGTGGTACAACGTACGTTT");
        let bi = BiIndex::build(&text);
        let read = seq("ACGTACGT");
        let cfg = SmemConfig {
            min_seed_len: 1,
            min_intv: 1,
        };
        for m in collect_smems(&bi, &read, &cfg) {
            let sub = read.slice(m.start, m.end);
            let hits = bi.forward().locate_all(&sub);
            assert_eq!(hits.len() as u32, m.interval.s, "smem {m:?}");
        }
    }

    #[test]
    fn min_seed_len_filters_short_matches() {
        let text = seq("ACGTACGGTTACGTAGGCATT");
        let read = seq("ACGTAAAAAAAAAAAAAAGGCATT");
        let bi = BiIndex::build(&text);
        let all = collect_smems(
            &bi,
            &read,
            &SmemConfig {
                min_seed_len: 1,
                min_intv: 1,
            },
        );
        let filtered = collect_smems(
            &bi,
            &read,
            &SmemConfig {
                min_seed_len: 6,
                min_intv: 1,
            },
        );
        assert!(filtered.len() <= all.len());
        assert!(filtered.iter().all(|m| m.len() >= 6));
    }

    #[test]
    fn probe_counts_lookups() {
        use gb_uarch::mix::MixProbe;
        let codes: Vec<u8> = (0..500usize)
            .map(|i| ((i * 17 + i / 9) % 4) as u8)
            .collect();
        let text = DnaSeq::from_codes_unchecked(codes);
        let bi = BiIndex::build(&text);
        let read = text.slice(100, 251);
        let mut probe = MixProbe::new();
        let _ = collect_smems_probed(&bi, &read, &SmemConfig::default(), &mut probe);
        // Each extension does 2 occ_all lookups = 2+ loads.
        assert!(
            probe.mix().loads as usize > read.len(),
            "loads = {}",
            probe.mix().loads
        );
    }
}
