//! Property-based tests for the FM-index stack.

use gb_core::seq::DnaSeq;
use gb_fmi::bidir::BiIndex;
use gb_fmi::index::FmIndex;
use gb_fmi::sais::{naive_suffix_array, suffix_array};
use gb_fmi::smem::{collect_smems, naive_smems, SmemConfig};
use proptest::prelude::*;

fn codes(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, min..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sais_matches_naive(text in codes(0, 400)) {
        prop_assert_eq!(suffix_array(&text), naive_suffix_array(&text));
    }

    #[test]
    fn suffixes_come_out_sorted(text in codes(1, 300)) {
        let sa = suffix_array(&text);
        for w in sa.windows(2) {
            let a = &text[w[0] as usize..];
            let b = &text[w[1] as usize..];
            prop_assert!(a < b, "suffixes out of order");
        }
    }

    #[test]
    fn bwt_lf_mapping_inverts_text(text in codes(1, 200)) {
        // Walking LF from the sentinel row reconstructs the text
        // backwards — BWT invertibility.
        let s = DnaSeq::from_codes(text.clone()).unwrap();
        let idx = FmIndex::build(&s);
        let mut row = 0u32; // row 0 is the sentinel suffix
        let mut rebuilt = Vec::new();
        loop {
            match idx.bwt_at(row) {
                None => break, // reached the sentinel character
                Some(c) => {
                    rebuilt.push(c);
                    row = idx.c_of(c) + idx.occ(c, row);
                }
            }
        }
        rebuilt.reverse();
        prop_assert_eq!(rebuilt, text);
    }

    #[test]
    fn search_finds_exactly_the_occurrences(
        text in codes(10, 300),
        start in 0usize..250,
        len in 1usize..20,
    ) {
        let s = DnaSeq::from_codes(text.clone()).unwrap();
        let start = start % text.len().saturating_sub(1).max(1);
        let len = len.min(text.len() - start).max(1);
        let pat = s.slice(start, start + len);
        let idx = FmIndex::build(&s);
        let hits = idx.locate_all(&pat);
        let p = pat.as_codes();
        let expect: Vec<u32> = (0..=text.len() - p.len())
            .filter(|&i| &text[i..i + p.len()] == p)
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(hits, expect);
    }

    #[test]
    fn bidir_extension_sizes_match_plain_search(
        text in codes(20, 250),
        start in 0usize..200,
        len in 2usize..12,
    ) {
        let s = DnaSeq::from_codes(text.clone()).unwrap();
        let start = start % (text.len() - len - 1).max(1);
        let sub = s.slice(start, start + len);
        let bi = BiIndex::build(&s);
        // Grow backward from the last base.
        let mut iv = bi.init(sub.code_at(sub.len() - 1));
        for i in (0..sub.len() - 1).rev() {
            iv = bi.backward_ext(iv, sub.code_at(i));
        }
        prop_assert_eq!(iv.forward_range(), bi.forward().search(&sub));
        // Grow forward from the first base: same occurrence count.
        let mut fv = bi.init(sub.code_at(0));
        for i in 1..sub.len() {
            fv = bi.forward_ext(fv, sub.code_at(i));
        }
        prop_assert_eq!(fv.s, iv.s);
    }

    #[test]
    fn smems_match_naive_and_are_maximal(text in codes(30, 200), rstart in 0usize..150, rlen in 5usize..40) {
        let s = DnaSeq::from_codes(text).unwrap();
        let rstart = rstart % (s.len() - 5).max(1);
        let rlen = rlen.min(s.len() - rstart).max(2);
        // Mutate the middle base so the read is not one giant match.
        let mut rc = s.slice(rstart, rstart + rlen).into_codes();
        let mid = rc.len() / 2;
        rc[mid] = (rc[mid] + 1) % 4;
        let read = DnaSeq::from_codes_unchecked(rc);
        let bi = BiIndex::build(&s);
        let cfg = SmemConfig { min_seed_len: 1, min_intv: 1 };
        let got: Vec<(usize, usize)> =
            collect_smems(&bi, &read, &cfg).iter().map(|m| (m.start, m.end)).collect();
        let want = naive_smems(&s, &read, 1);
        prop_assert_eq!(got.clone(), want);
        // No SMEM contains another.
        for a in &got {
            for b in &got {
                if a != b {
                    prop_assert!(!(a.0 <= b.0 && b.1 <= a.1), "{a:?} contains {b:?}");
                }
            }
        }
    }
}
