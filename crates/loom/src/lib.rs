//! # gb-loom
//!
//! A minimal, dependency-free model checker in the style of
//! [`loom`](https://github.com/tokio-rs/loom), built for this repository
//! because the offline build sandbox cannot fetch the real crate. It
//! exhaustively explores thread interleavings of a small concurrent
//! model under a **bounded number of preemptions**, driving the real
//! code through instrumented [`sync::atomic`] types and the scheduler-
//! aware [`thread::spawn`]/[`thread::JoinHandle::join`] shims.
//!
//! ## What it checks — and what it does not
//!
//! Every instrumented operation (each atomic load/store/RMW, spawn,
//! join, yield) is a *scheduling point*: the checker serializes the
//! model onto one running thread at a time and, across repeated
//! executions, explores **every sequentially-consistent interleaving**
//! of those points reachable within the preemption bound. Assertion
//! failures, panics and deadlocks in *any* interleaving fail the test
//! with the offending schedule.
//!
//! Unlike real loom it does **not** model C11 weak-memory effects:
//! every atomic executes with `SeqCst` semantics regardless of the
//! ordering the code requested, and `compare_exchange_weak` never fails
//! spuriously. Interleaving bugs (lost updates, double-claims,
//! use-after-release, missed shutdown) are found; store-buffer
//! litmus-test reorderings are out of scope. The crates under test keep
//! their `Relaxed` orderings honest by construction (owner-write-only
//! slots) and by the `cargo xtask lint` allowlist.
//!
//! ## Usage
//!
//! ```
//! use gb_loom::sync::atomic::{AtomicUsize, Ordering};
//! use gb_loom::sync::Arc;
//!
//! gb_loom::model(|| {
//!     let c = Arc::new(AtomicUsize::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = gb_loom::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(c.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! The closure runs once per explored schedule. State must therefore be
//! created *inside* the closure (statics would leak between
//! executions).
//!
//! ## Tuning
//!
//! * `GB_LOOM_PREEMPTION_BOUND` — maximum forced context switches away
//!   from a runnable thread per execution (default 2; `0` = unbounded).
//!   Two preemptions find the overwhelming majority of real
//!   interleaving bugs (the CHESS result) while keeping CI runtimes
//!   sane.
//! * `GB_LOOM_MAX_ITERATIONS` — safety valve on the number of explored
//!   schedules (default 1,000,000); exceeding it fails the test so an
//!   oversized model is noticed rather than silently slow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sched;
pub mod sync;
pub mod thread;

pub use sched::{model, model_with, Config};
