//! The cooperative scheduler and schedule-space explorer.
//!
//! One execution of the model runs every model thread as a real OS
//! thread, but only one is ever *running*: all others are parked on a
//! condvar until the scheduler hands them the token. Each instrumented
//! operation calls [`yield_point`], which is a *decision point*: the
//! scheduler consults the replay prefix (the DFS path into the schedule
//! tree) and either continues the current thread or preempts to another
//! runnable one. After the execution finishes, the recorded decision
//! log is used to compute the next unexplored branch; the model closure
//! re-runs until the tree is exhausted.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Panic payload used to unwind parked model threads once an execution
/// has already failed elsewhere; never surfaces to user code.
pub(crate) struct ModelAbort;

/// How long a parked model thread waits before declaring the scheduler
/// wedged. Generous: a healthy handoff is microseconds.
const STALL: Duration = Duration::from_secs(30);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Waiting for the given thread id to finish.
    BlockedJoin(usize),
    Finished,
}

/// What a thread does with itself at a scheduling point.
pub(crate) enum Block {
    /// Plain yield; the thread stays runnable.
    None,
    /// Block until the given thread id finishes.
    Join(usize),
    /// The thread is done.
    Finish,
}

struct State {
    threads: Vec<TState>,
    /// Id of the thread holding the run token (`usize::MAX` once all
    /// threads have finished).
    current: usize,
    /// Decision index within this execution.
    depth: usize,
    /// Replay path: choice index to take at each decision, in order.
    /// Decisions beyond the prefix take choice 0 and extend the log.
    prefix: Vec<usize>,
    /// `(choice_taken, choices_available)` per decision of this run.
    log: Vec<(usize, usize)>,
    preemptions: usize,
    failure: Option<String>,
    finished: usize,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    bound: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// `(scheduler, thread id)` of the calling thread, when it is a model
/// thread of an active execution.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Scheduler>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// A scheduling point for the calling thread. No-op outside a model.
#[inline]
pub(crate) fn yield_point() {
    if let Some((sched, me)) = current() {
        sched.reschedule(me, Block::None);
    }
}

impl Scheduler {
    fn new(prefix: Vec<usize>, bound: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(State {
                threads: vec![TState::Runnable],
                current: 0,
                depth: 0,
                prefix,
                log: Vec::new(),
                preemptions: 0,
                failure: None,
                finished: 0,
            }),
            cv: Condvar::new(),
            bound,
        }
    }

    /// Registers a newly spawned model thread; it starts runnable but
    /// does not run until a decision picks it.
    pub(crate) fn register(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.threads.push(TState::Runnable);
        st.threads.len() - 1
    }

    /// Records a failure (assertion/panic/deadlock) for this execution
    /// and wakes every parked thread so the execution can unwind.
    pub(crate) fn fail(&self, msg: String) {
        let mut st = self.state.lock().unwrap();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Marks a thread finished without taking a scheduling decision —
    /// used on the unwind path, where the decision log must not grow.
    pub(crate) fn finish_quiet(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        if st.threads[me] != TState::Finished {
            st.threads[me] = TState::Finished;
            st.finished += 1;
            let n = st.threads.len();
            for i in 0..n {
                if st.threads[i] == TState::BlockedJoin(me) {
                    st.threads[i] = TState::Runnable;
                }
            }
        }
        self.cv.notify_all();
    }

    /// The decision point. Applies `block` to the calling thread, picks
    /// the next thread to run (replaying the prefix or extending it with
    /// choice 0), then parks until the token comes back.
    ///
    /// Panics with [`ModelAbort`] when the execution has failed.
    pub(crate) fn reschedule(&self, me: usize, block: Block) {
        let mut st = self.state.lock().unwrap();
        if st.failure.is_some() {
            drop(st);
            resume_unwind(Box::new(ModelAbort));
        }
        match block {
            Block::None => {}
            Block::Join(t) => {
                if st.threads[t] != TState::Finished {
                    st.threads[me] = TState::BlockedJoin(t);
                }
            }
            Block::Finish => {
                st.threads[me] = TState::Finished;
                st.finished += 1;
                let n = st.threads.len();
                for i in 0..n {
                    if st.threads[i] == TState::BlockedJoin(me) {
                        st.threads[i] = TState::Runnable;
                    }
                }
            }
        }

        // Runnable set, calling thread first: choice 0 always means
        // "keep running the current thread" when that is possible, so
        // only non-zero choices consume preemption budget.
        let me_runnable = st.threads[me] == TState::Runnable;
        let mut runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&i| i != me && st.threads[i] == TState::Runnable)
            .collect();
        if me_runnable {
            runnable.insert(0, me);
        }

        if runnable.is_empty() {
            if st.finished == st.threads.len() {
                // Execution complete.
                st.current = usize::MAX;
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<usize> = (0..st.threads.len())
                .filter(|&i| matches!(st.threads[i], TState::BlockedJoin(_)))
                .collect();
            st.failure = Some(format!(
                "deadlock: no runnable threads, {blocked:?} blocked on join"
            ));
            self.cv.notify_all();
            if matches!(st.threads[me], TState::Finished) {
                return;
            }
            drop(st);
            resume_unwind(Box::new(ModelAbort));
        }

        let forced = me_runnable && self.bound != 0 && st.preemptions >= self.bound;
        let choices = if forced { 1 } else { runnable.len() };
        let pick = if st.depth < st.prefix.len() {
            st.prefix[st.depth]
        } else {
            0
        };
        assert!(
            pick < choices,
            "gb-loom: nondeterministic model — replay expected {choices} choices at \
             decision {}, prefix wanted choice {pick}",
            st.depth
        );
        st.log.push((pick, choices));
        st.depth += 1;
        let next = runnable[pick];
        if me_runnable && next != me {
            st.preemptions += 1;
        }
        st.current = next;
        self.cv.notify_all();

        if matches!(block, Block::Finish) {
            return;
        }
        while st.current != me {
            if st.failure.is_some() {
                drop(st);
                resume_unwind(Box::new(ModelAbort));
            }
            let (guard, timeout) = self.cv.wait_timeout(st, STALL).unwrap();
            st = guard;
            if timeout.timed_out() && st.current != me && st.failure.is_none() {
                st.failure = Some("scheduler stall: handoff took > 30s".into());
                self.cv.notify_all();
            }
        }
        if st.failure.is_some() {
            drop(st);
            resume_unwind(Box::new(ModelAbort));
        }
    }

    /// Parks a freshly spawned thread until it is scheduled for the
    /// first time.
    pub(crate) fn wait_first(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        while st.current != me {
            if st.failure.is_some() {
                drop(st);
                resume_unwind(Box::new(ModelAbort));
            }
            let (guard, timeout) = self.cv.wait_timeout(st, STALL).unwrap();
            st = guard;
            if timeout.timed_out() && st.current != me && st.failure.is_none() {
                st.failure = Some("scheduler stall: spawned thread never scheduled".into());
                self.cv.notify_all();
            }
        }
        if st.failure.is_some() {
            drop(st);
            resume_unwind(Box::new(ModelAbort));
        }
    }

    /// Blocks the (already finished) main thread until every model
    /// thread has finished, so the next execution starts clean.
    fn wait_all_finished(&self) {
        let mut st = self.state.lock().unwrap();
        while st.finished < st.threads.len() {
            let (guard, timeout) = self.cv.wait_timeout(st, STALL).unwrap();
            st = guard;
            if timeout.timed_out() && st.finished < st.threads.len() {
                // A wedged worker would hang the whole test run;
                // failing loudly beats that.
                panic!(
                    "gb-loom: {} of {} model threads failed to unwind",
                    st.threads.len() - st.finished,
                    st.threads.len()
                );
            }
        }
    }
}

/// Exploration limits; see the crate docs for the environment knobs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Max forced preemptions of a runnable thread per execution
    /// (`0` = unbounded).
    pub preemption_bound: usize,
    /// Max schedules explored before the checker gives up and fails.
    pub max_iterations: u64,
}

impl Default for Config {
    fn default() -> Config {
        let env_usize = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Config {
            preemption_bound: env_usize("GB_LOOM_PREEMPTION_BOUND", 2),
            max_iterations: env_usize("GB_LOOM_MAX_ITERATIONS", 1_000_000) as u64,
        }
    }
}

/// Runs `f` once per schedule until the (preemption-bounded) schedule
/// space is exhausted, panicking with the failing schedule if any
/// execution panics, fails an assertion, or deadlocks.
pub fn model<F: Fn()>(f: F) {
    model_with(Config::default(), f);
}

/// [`model`] with explicit [`Config`] (tests use tight bounds; the CI
/// loom job sets the environment knobs instead).
pub fn model_with<F: Fn()>(cfg: Config, f: F) {
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= cfg.max_iterations,
            "gb-loom: model exceeded {} explored schedules — shrink the model \
             or raise GB_LOOM_MAX_ITERATIONS",
            cfg.max_iterations
        );
        let sched = Arc::new(Scheduler::new(prefix.clone(), cfg.preemption_bound));
        set_current(Some((Arc::clone(&sched), 0)));
        let result = catch_unwind(AssertUnwindSafe(&f));
        match result {
            Ok(()) => {
                // The finishing handoff can itself abort if another
                // thread failed while we were returning.
                if catch_unwind(AssertUnwindSafe(|| sched.reschedule(0, Block::Finish))).is_err() {
                    sched.finish_quiet(0);
                }
            }
            Err(payload) => {
                if !payload.is::<ModelAbort>() {
                    sched.fail(panic_message(payload.as_ref()));
                }
                sched.finish_quiet(0);
            }
        }
        sched.wait_all_finished();
        set_current(None);
        let st = sched.state.lock().unwrap();
        if let Some(msg) = &st.failure {
            let path: Vec<usize> = st.log.iter().map(|&(p, _)| p).collect();
            panic!(
                "gb-loom: model failed on schedule {path:?} \
                 (execution #{iterations}): {msg}"
            );
        }
        // DFS: advance the deepest decision that still has an untaken
        // branch; drop everything below it.
        let next = st
            .log
            .iter()
            .rposition(|&(pick, choices)| pick + 1 < choices)
            .map(|d| {
                let mut p: Vec<usize> = st.log[..d].iter().map(|&(pick, _)| pick).collect();
                p.push(st.log[d].0 + 1);
                p
            });
        drop(st);
        match next {
            Some(p) => prefix = p,
            None => break,
        }
    }
}

/// Renders a panic payload the way the test harness would.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Installs the scheduler TLS for a spawned model thread and parks it
/// until first scheduled. Returns a guard that clears the TLS.
pub(crate) struct TlsGuard;

impl TlsGuard {
    pub(crate) fn install(sched: Arc<Scheduler>, tid: usize) -> TlsGuard {
        set_current(Some((sched, tid)));
        TlsGuard
    }
}

impl Drop for TlsGuard {
    fn drop(&mut self) {
        set_current(None);
    }
}
