//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Each operation is a scheduling point inside a model and a plain
//! `SeqCst` std atomic operation outside one. The `Ordering` argument
//! is accepted for API compatibility but **every access runs `SeqCst`**:
//! the checker explores sequentially-consistent interleavings only (see
//! the crate docs for what that does and does not cover).

pub use std::sync::Arc;

/// Atomic types whose every operation is a model scheduling point.
pub mod atomic {
    use crate::sched::yield_point;
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::Ordering::SeqCst;

    macro_rules! instrumented_atomic {
        ($(#[$doc:meta])* $Name:ident, $Std:ty, $T:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $Name {
                inner: $Std,
            }

            impl $Name {
                /// Creates the atomic (const, so statics work in both
                /// `cfg(loom)` and normal builds — unlike real loom).
                pub const fn new(v: $T) -> Self {
                    Self { inner: <$Std>::new(v) }
                }

                /// Instrumented load (always `SeqCst`).
                pub fn load(&self, _order: Ordering) -> $T {
                    yield_point();
                    self.inner.load(SeqCst)
                }

                /// Instrumented store (always `SeqCst`).
                pub fn store(&self, v: $T, _order: Ordering) {
                    yield_point();
                    self.inner.store(v, SeqCst)
                }

                /// Instrumented swap (always `SeqCst`).
                pub fn swap(&self, v: $T, _order: Ordering) -> $T {
                    yield_point();
                    self.inner.swap(v, SeqCst)
                }

                /// Instrumented compare-exchange (always `SeqCst`).
                pub fn compare_exchange(
                    &self,
                    current: $T,
                    new: $T,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$T, $T> {
                    yield_point();
                    self.inner.compare_exchange(current, new, SeqCst, SeqCst)
                }

                /// Like [`Self::compare_exchange`]; the model never
                /// fails spuriously (a superset of real executions is
                /// *not* explored on this axis — documented limitation).
                pub fn compare_exchange_weak(
                    &self,
                    current: $T,
                    new: $T,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$T, $T> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consumes the atomic, returning the value (not a
                /// scheduling point: requires unique ownership).
                pub fn into_inner(self) -> $T {
                    self.inner.into_inner()
                }
            }
        };
    }

    macro_rules! instrumented_int_ops {
        ($Name:ident, $T:ty) => {
            impl $Name {
                /// Instrumented add, returning the previous value.
                pub fn fetch_add(&self, v: $T, _order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_add(v, SeqCst)
                }

                /// Instrumented subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $T, _order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_sub(v, SeqCst)
                }

                /// Instrumented max, returning the previous value.
                pub fn fetch_max(&self, v: $T, _order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_max(v, SeqCst)
                }

                /// Instrumented min, returning the previous value.
                pub fn fetch_min(&self, v: $T, _order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_min(v, SeqCst)
                }
            }
        };
    }

    instrumented_atomic!(
        /// Model-checked `AtomicBool`.
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );
    instrumented_atomic!(
        /// Model-checked `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    instrumented_atomic!(
        /// Model-checked `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    instrumented_atomic!(
        /// Model-checked `AtomicI64`.
        AtomicI64,
        std::sync::atomic::AtomicI64,
        i64
    );
    instrumented_atomic!(
        /// Model-checked `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );

    instrumented_int_ops!(AtomicUsize, usize);
    instrumented_int_ops!(AtomicU64, u64);
    instrumented_int_ops!(AtomicI64, i64);
    instrumented_int_ops!(AtomicU32, u32);

    impl AtomicBool {
        /// Instrumented logical-or, returning the previous value.
        pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
            yield_point();
            self.inner.fetch_or(v, SeqCst)
        }

        /// Instrumented logical-and, returning the previous value.
        pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
            yield_point();
            self.inner.fetch_and(v, SeqCst)
        }
    }
}
