//! Scheduler-aware replacements for `std::thread` used inside a model.
//!
//! Outside [`crate::model`] these delegate to `std::thread`, so code
//! compiled against the facade keeps working in ordinary tests.

use crate::sched::{self, Block, ModelAbort, TlsGuard};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Handle to a spawned (model or plain) thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    /// Model-thread id and scheduler, when spawned inside a model.
    model: Option<(std::sync::Arc<sched::Scheduler>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.
    ///
    /// Inside a model this is a scheduling point that blocks the caller
    /// until the target thread's model execution completes.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, tid)) = &self.model {
            if let Some((my_sched, me)) = sched::current() {
                debug_assert!(std::sync::Arc::ptr_eq(sched, &my_sched));
                my_sched.reschedule(me, Block::Join(*tid));
            } else {
                // Join from outside the model (should not happen in
                // well-formed tests): fall through to the OS join.
            }
        }
        match self.inner.join() {
            Ok(v) => Ok(v),
            Err(payload) => {
                if payload.is::<ModelAbort>() {
                    // The target unwound because the execution failed;
                    // propagate the abort so this thread unwinds too.
                    resume_unwind(Box::new(ModelAbort));
                }
                Err(payload)
            }
        }
    }
}

/// Spawns a thread. Inside a model the thread is registered with the
/// scheduler, starts parked, and every instrumented operation it
/// performs becomes a scheduling point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        None => JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        },
        Some((sched, me)) => {
            let tid = sched.register();
            let child_sched = std::sync::Arc::clone(&sched);
            let inner = std::thread::spawn(move || {
                let _tls = TlsGuard::install(std::sync::Arc::clone(&child_sched), tid);
                // The first park can abort (execution failed before this
                // thread ever ran); it must still mark itself finished.
                if catch_unwind(AssertUnwindSafe(|| child_sched.wait_first(tid))).is_err() {
                    child_sched.finish_quiet(tid);
                    resume_unwind(Box::new(ModelAbort));
                }
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        // The finishing handoff can abort if another
                        // thread failed first; finish quietly then.
                        if catch_unwind(AssertUnwindSafe(|| {
                            child_sched.reschedule(tid, Block::Finish)
                        }))
                        .is_err()
                        {
                            child_sched.finish_quiet(tid);
                        }
                        v
                    }
                    Err(payload) => {
                        if !payload.is::<ModelAbort>() {
                            child_sched.fail(sched::panic_message(payload.as_ref()));
                        }
                        child_sched.finish_quiet(tid);
                        resume_unwind(payload);
                    }
                }
            });
            // Spawning is itself a scheduling point: the child may run
            // immediately or arbitrarily later.
            sched.reschedule(me, Block::None);
            JoinHandle {
                inner,
                model: Some((sched, tid)),
            }
        }
    }
}

/// A voluntary scheduling point (no-op outside a model beyond the OS
/// yield).
pub fn yield_now() {
    if sched::current().is_some() {
        sched::yield_point();
    } else {
        std::thread::yield_now();
    }
}
