//! Sanity checks of the checker itself: it must *find* seeded
//! interleaving bugs, must *pass* correct code, and must explore the
//! full set of sequentially-consistent outcomes of small litmus tests.

use gb_loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use gb_loom::sync::Arc;
use gb_loom::{model_with, Config};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

fn cfg(bound: usize) -> Config {
    Config {
        preemption_bound: bound,
        max_iterations: 1_000_000,
    }
}

#[test]
fn finds_lost_update_race() {
    // Non-atomic read-modify-write: two threads load, then both store
    // load+1 — some interleaving loses an update. The checker must
    // surface it as a failure.
    let result = catch_unwind(AssertUnwindSafe(|| {
        model_with(cfg(2), || {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = gb_loom::thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
        });
    }));
    let msg = match result {
        Ok(()) => panic!("model passed but a lost-update interleaving exists"),
        Err(p) => *p.downcast::<String>().expect("string panic"),
    };
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

#[test]
fn passes_atomic_rmw() {
    // The same counter with a real RMW is correct in every schedule.
    model_with(cfg(3), || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = gb_loom::thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn explores_all_sc_outcomes_of_store_load_litmus() {
    // Dekker-style litmus: T1 {x=1; r1=y}  T2 {y=1; r2=x}.
    // Under sequential consistency (0,0) is impossible; the other three
    // outcomes are all reachable, and exhaustive exploration with a
    // preemption bound >= 1 must observe every one of them.
    let seen: Mutex<HashSet<(usize, usize)>> = Mutex::new(HashSet::new());
    model_with(cfg(2), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = gb_loom::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r2 = x.load(Ordering::SeqCst);
        let r1 = t.join().unwrap();
        assert!(
            !(r1 == 0 && r2 == 0),
            "SC forbids both threads missing the other's store"
        );
        seen.lock().unwrap().insert((r1, r2));
    });
    let seen = seen.into_inner().unwrap();
    for want in [(0, 1), (1, 0), (1, 1)] {
        assert!(seen.contains(&want), "outcome {want:?} never explored");
    }
}

#[test]
fn finds_unsynchronized_flag_publication_bug() {
    // A "publication" via two independent relaxed flags with a reader
    // that asserts an impossible-under-correct-code state: data read
    // before it was written. The checker must catch the assertion in
    // the schedule where the reader runs between the two writes.
    let result = catch_unwind(AssertUnwindSafe(|| {
        model_with(cfg(2), || {
            let ready = Arc::new(AtomicBool::new(false));
            let data = Arc::new(AtomicUsize::new(0));
            let (ready2, data2) = (Arc::clone(&ready), Arc::clone(&data));
            let t = gb_loom::thread::spawn(move || {
                // BUG (seeded): ready is raised before data is written.
                ready2.store(true, Ordering::Relaxed);
                data2.store(42, Ordering::Relaxed);
            });
            if ready.load(Ordering::Relaxed) {
                assert_eq!(data.load(Ordering::Relaxed), 42, "read before publish");
            }
            t.join().unwrap();
        });
    }));
    assert!(result.is_err(), "publication race not found");
}

#[test]
fn iteration_cap_fails_loudly() {
    // The exhaustion valve: a model whose schedule tree exceeds the
    // iteration cap must fail with a clear message, not hang CI.
    let result = catch_unwind(AssertUnwindSafe(|| {
        model_with(
            Config {
                preemption_bound: 0,
                max_iterations: 3,
            },
            || {
                let c = Arc::new(AtomicUsize::new(0));
                let c2 = Arc::clone(&c);
                let t = gb_loom::thread::spawn(move || {
                    for _ in 0..4 {
                        c2.fetch_add(1, Ordering::Relaxed);
                    }
                });
                for _ in 0..4 {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                t.join().unwrap();
            },
        );
    }));
    let msg = match result {
        Ok(()) => panic!("iteration cap not enforced"),
        Err(p) => *p.downcast::<String>().expect("string panic"),
    };
    assert!(msg.contains("explored schedules"), "unexpected: {msg}");
}

#[test]
fn outside_model_atomics_pass_through() {
    // The instrumented types work as plain atomics outside `model`.
    let a = AtomicUsize::new(7);
    assert_eq!(a.fetch_add(1, Ordering::Relaxed), 7);
    assert_eq!(a.load(Ordering::SeqCst), 8);
    let h = gb_loom::thread::spawn(|| 21 * 2);
    assert_eq!(h.join().unwrap(), 42);
}
