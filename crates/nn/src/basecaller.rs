//! Neural basecalling — the **nn-base** kernel.
//!
//! A Bonito-like convolutional basecaller: raw nanopore current is split
//! into fixed 4,000-sample chunks (making the computation regular, as the
//! paper stresses); each chunk runs through a strided input convolution
//! and a stack of depthwise-separable blocks with swish activations, ends
//! in a 5-way CTC head, and the decoded chunk sequences are stitched
//! together. Weights are seeded-random: the characterization concerns
//! inference compute shape, not basecall accuracy (see DESIGN.md).

use crate::ctc::greedy_decode;
use crate::layers::{softmax, Conv1d, SeparableBlock};
use gb_core::matrix::Matrix;
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{NullProbe, Probe};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasecallerConfig {
    /// Raw samples per chunk (Bonito uses 4000).
    pub chunk_size: usize,
    /// Stride of the input convolution (temporal downsampling).
    pub stride: usize,
    /// Feature channels through the separable stack.
    pub channels: usize,
    /// Number of separable blocks.
    pub blocks: usize,
    /// Kernel width of the separable blocks.
    pub kernel: usize,
}

impl Default for BasecallerConfig {
    /// A scaled-down Bonito: 4000-sample chunks, stride 5, 48 channels,
    /// 5 separable blocks.
    fn default() -> BasecallerConfig {
        BasecallerConfig {
            chunk_size: 4000,
            stride: 5,
            channels: 48,
            blocks: 5,
            kernel: 9,
        }
    }
}

/// The basecaller network.
#[derive(Debug, Clone)]
pub struct Basecaller {
    config: BasecallerConfig,
    stem: Conv1d,
    stack: Vec<SeparableBlock>,
    head: Conv1d,
}

/// Output of basecalling one signal.
#[derive(Debug, Clone, PartialEq)]
pub struct BasecallResult {
    /// The decoded sequence (chunks stitched).
    pub seq: DnaSeq,
    /// Chunks processed.
    pub chunks: usize,
    /// Total multiply-accumulates executed.
    pub flops: u64,
}

impl Basecaller {
    /// Builds a model with seeded-random weights.
    // PANIC-FREE: `bias[BLANK]` indexes a 5-class head built three lines
    // up; model shapes are config constants.
    pub fn new(config: &BasecallerConfig, seed: u64) -> Basecaller {
        let mut rng = StdRng::seed_from_u64(seed);
        let stem = Conv1d::new(1, config.channels, config.kernel, config.stride, &mut rng);
        let stack = (0..config.blocks)
            .map(|_| SeparableBlock::new(config.channels, config.channels, config.kernel, &mut rng))
            .collect();
        let mut head = Conv1d::new(config.channels, 5, 1, 1, &mut rng);
        // Untrained weights would let the blank class dominate whole
        // chunks; de-bias it slightly so decoding emits sequences and the
        // CTC path is exercised end-to-end.
        head.bias[crate::ctc::BLANK] -= 1.0;
        Basecaller {
            config: *config,
            stem,
            stack,
            head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &BasecallerConfig {
        &self.config
    }

    /// Multiply-accumulates needed per chunk — the number the SIMT model
    /// uses to size the GPU launch.
    pub fn flops_per_chunk(&self) -> u64 {
        let t = self.config.chunk_size;
        let t_down = self.stem.out_len(t);
        let mut f = self.stem.flops(t);
        for b in &self.stack {
            f += b.flops(t_down);
        }
        f + self.head.flops(t_down)
    }

    /// Runs the network on one chunk, returning `5 x T'` posteriors.
    // PANIC-FREE: the chunk-size assert is the documented input contract;
    // the softmax loop indexes the 5-row logits matrix it just built.
    pub fn forward_chunk_probed<P: Probe>(&self, chunk: &[f32], probe: &mut P) -> Matrix {
        assert_eq!(chunk.len(), self.config.chunk_size, "chunk size mismatch");
        // Normalize the current (med/mad-style, simplified to mean/std).
        let mean = chunk.iter().sum::<f32>() / chunk.len() as f32;
        let var = chunk.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / chunk.len() as f32;
        let std = var.sqrt().max(1e-3);
        let input = Matrix::from_vec(
            1,
            chunk.len(),
            chunk.iter().map(|v| (v - mean) / std).collect(),
        );
        probe.fp_ops(3 * chunk.len() as u64);

        let mut x = self.stem.forward_probed(&input, probe);
        for v in x.as_mut_slice() {
            *v = crate::layers::swish(*v);
        }
        for block in &self.stack {
            x = block.forward_probed(&x, probe);
        }
        let mut logits = self.head.forward_probed(&x, probe);
        // Column-wise softmax into posteriors.
        let t_out = logits.cols();
        for t in 0..t_out {
            let mut col: Vec<f32> = (0..5).map(|r| logits[(r, t)]).collect();
            softmax(&mut col);
            for (r, v) in col.into_iter().enumerate() {
                logits[(r, t)] = v;
            }
        }
        probe.fp_ops(5 * t_out as u64);
        logits
    }

    /// Basecalls a raw signal: chunk, infer, CTC-decode, stitch.
    ///
    /// The trailing partial chunk is zero-padded, as Bonito does.
    pub fn basecall(&self, raw: &[f32]) -> BasecallResult {
        self.basecall_probed(raw, &mut NullProbe)
    }

    /// [`Basecaller::basecall`] with instrumentation.
    pub fn basecall_probed<P: Probe>(&self, raw: &[f32], probe: &mut P) -> BasecallResult {
        let cs = self.config.chunk_size;
        let mut seq = DnaSeq::new();
        let mut chunks = 0usize;
        for chunk in raw.chunks(cs) {
            let mut buf;
            let chunk = if chunk.len() == cs {
                chunk
            } else {
                buf = chunk.to_vec();
                buf.resize(cs, 0.0);
                &buf
            };
            let posteriors = self.forward_chunk_probed(chunk, probe);
            let part = greedy_decode(&posteriors);
            seq.extend(part.as_codes().iter().copied());
            chunks += 1;
        }
        BasecallResult {
            seq,
            chunks,
            flops: self.flops_per_chunk() * chunks as u64,
        }
    }
}

impl gb_substrate::Codec for BasecallerConfig {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.chunk_size);
        e.put_usize(self.stride);
        e.put_usize(self.channels);
        e.put_usize(self.blocks);
        e.put_usize(self.kernel);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<BasecallerConfig> {
        Some(BasecallerConfig {
            chunk_size: d.get_usize()?,
            stride: d.get_usize()?,
            channels: d.get_usize()?,
            blocks: d.get_usize()?,
            kernel: d.get_usize()?,
        })
    }
}

impl gb_substrate::Codec for Basecaller {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.config, e);
        gb_substrate::Codec::encode(&self.stem, e);
        gb_substrate::Codec::encode(&self.stack, e);
        gb_substrate::Codec::encode(&self.head, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Basecaller> {
        Some(Basecaller {
            config: gb_substrate::Codec::decode(d)?,
            stem: gb_substrate::Codec::decode(d)?,
            stack: gb_substrate::Codec::decode(d)?,
            head: gb_substrate::Codec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BasecallerConfig {
        BasecallerConfig {
            chunk_size: 500,
            stride: 5,
            channels: 16,
            blocks: 2,
            kernel: 5,
        }
    }

    #[test]
    fn posterior_shape_and_simplex() {
        let bc = Basecaller::new(&tiny(), 1);
        let chunk: Vec<f32> = (0..500)
            .map(|i| (i as f32 * 0.1).sin() * 20.0 + 90.0)
            .collect();
        let p = bc.forward_chunk_probed(&chunk, &mut NullProbe);
        assert_eq!(p.shape(), (5, 100));
        for t in 0..100 {
            let sum: f32 = (0..5).map(|r| p[(r, t)]).sum();
            assert!((sum - 1.0).abs() < 1e-4, "t={t} sum={sum}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let chunk: Vec<f32> = (0..500).map(|i| ((i * 7) % 40) as f32 + 70.0).collect();
        let a = Basecaller::new(&tiny(), 9).basecall(&chunk);
        let b = Basecaller::new(&tiny(), 9).basecall(&chunk);
        assert_eq!(a, b);
        let c = Basecaller::new(&tiny(), 10).basecall(&chunk);
        // Different weights essentially always give a different call.
        assert!(a.seq != c.seq || a.seq.is_empty());
    }

    #[test]
    fn chunking_covers_whole_signal() {
        let bc = Basecaller::new(&tiny(), 2);
        let raw: Vec<f32> = (0..1750).map(|i| (i % 100) as f32).collect();
        let r = bc.basecall(&raw);
        assert_eq!(r.chunks, 4); // 500*3 + padded 250
        assert_eq!(r.flops, bc.flops_per_chunk() * 4);
    }

    #[test]
    fn different_signals_give_different_calls() {
        let bc = Basecaller::new(&tiny(), 3);
        let a: Vec<f32> = (0..500)
            .map(|i| (i as f32 * 0.3).sin() * 15.0 + 85.0)
            .collect();
        let b: Vec<f32> = (0..500)
            .map(|i| (i as f32 * 0.11).cos() * 18.0 + 95.0)
            .collect();
        let ra = bc.basecall(&a);
        let rb = bc.basecall(&b);
        assert_ne!(ra.seq, rb.seq);
    }

    #[test]
    fn flops_match_bonito_scale_relationship() {
        let small = Basecaller::new(&tiny(), 1);
        let big = Basecaller::new(
            &BasecallerConfig {
                channels: 32,
                ..tiny()
            },
            1,
        );
        // Pointwise convs dominate: 2x channels ~ 4x flops.
        let ratio = big.flops_per_chunk() as f64 / small.flops_per_chunk() as f64;
        assert!(ratio > 2.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn probe_sees_vector_dominated_mix() {
        use gb_uarch::mix::MixProbe;
        let bc = Basecaller::new(&tiny(), 4);
        let chunk: Vec<f32> = vec![80.0; 500];
        let mut probe = MixProbe::new();
        let _ = bc.forward_chunk_probed(&chunk, &mut probe);
        let mix = probe.mix();
        assert!(
            mix.simd_ops > mix.int_ops,
            "nn-base must be vector-heavy: {mix:?}"
        );
    }
}
