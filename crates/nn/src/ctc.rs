//! Connectionist Temporal Classification decoding.
//!
//! Basecallers emit per-timestep probabilities over `{A, C, G, T, blank}`;
//! a CTC decoder collapses them into a base sequence. Greedy (best-path)
//! decoding is what Bonito's fast path uses; a small beam search is
//! provided as the higher-accuracy alternative.

use gb_core::matrix::Matrix;
use gb_core::seq::DnaSeq;

/// Index of the CTC blank symbol in the 5-way posterior.
pub const BLANK: usize = 4;

/// Greedy (best-path) decode: per-step argmax, collapse repeats, drop
/// blanks.
///
/// `posteriors` is `5 x T` (rows: A, C, G, T, blank).
///
/// # Examples
///
/// ```
/// use gb_core::matrix::Matrix;
/// use gb_nn::ctc::greedy_decode;
/// // T=4 steps: A, A, blank, C  ->  "AC"
/// let p = Matrix::from_vec(5, 4, vec![
///     0.9, 0.9, 0.1, 0.1, // A
///     0.0, 0.0, 0.1, 0.8, // C
///     0.0, 0.0, 0.1, 0.0, // G
///     0.0, 0.0, 0.1, 0.0, // T
///     0.1, 0.1, 0.6, 0.1, // blank
/// ]);
/// assert_eq!(greedy_decode(&p).to_string(), "AC");
/// ```
// PANIC-FREE: the 5-row assert is the documented input contract, and the
// argmax scan indexes `(r, t)` with `r < 5`, `t < cols()`.
pub fn greedy_decode(posteriors: &Matrix) -> DnaSeq {
    assert_eq!(posteriors.rows(), 5, "posteriors must have 5 rows");
    let t_len = posteriors.cols();
    let mut out = DnaSeq::new();
    let mut prev = BLANK;
    for t in 0..t_len {
        let mut best = 0usize;
        for r in 1..5 {
            if posteriors[(r, t)] > posteriors[(best, t)] {
                best = r;
            }
        }
        if best != BLANK && best != prev {
            out.push_code(best as u8);
        }
        prev = best;
    }
    out
}

/// One beam-search hypothesis.
#[derive(Debug, Clone)]
struct Beam {
    seq: Vec<u8>,
    /// Probability of the hypothesis ending in a blank.
    p_blank: f64,
    /// Probability of the hypothesis ending in its last symbol.
    p_label: f64,
}

impl Beam {
    fn total(&self) -> f64 {
        self.p_blank + self.p_label
    }
}

/// Prefix beam-search decode with the given beam width.
///
/// Follows the standard CTC prefix search (Graves 2014): hypotheses are
/// label prefixes; per step each prefix extends with blank, a repeat of
/// its last label, or a new label, and the top `width` survive.
///
/// # Panics
///
/// Panics if `width == 0` or the posterior matrix does not have 5 rows.
pub fn beam_decode(posteriors: &Matrix, width: usize) -> DnaSeq {
    assert!(width > 0, "beam width must be positive");
    assert_eq!(posteriors.rows(), 5, "posteriors must have 5 rows");
    let t_len = posteriors.cols();
    let mut beams: Vec<Beam> = vec![Beam {
        seq: Vec::new(),
        p_blank: 1.0,
        p_label: 0.0,
    }];
    for t in 0..t_len {
        let p: Vec<f64> = (0..5).map(|r| f64::from(posteriors[(r, t)])).collect();
        let mut next: std::collections::HashMap<Vec<u8>, Beam> = std::collections::HashMap::new();
        for beam in &beams {
            // 1. Extend with blank: prefix unchanged.
            let e = next.entry(beam.seq.clone()).or_insert_with(|| Beam {
                seq: beam.seq.clone(),
                p_blank: 0.0,
                p_label: 0.0,
            });
            e.p_blank += beam.total() * p[BLANK];
            // 2. Repeat the last label: prefix unchanged, only extends the
            // label-ending mass.
            if let Some(&last) = beam.seq.last() {
                let e = next.get_mut(&beam.seq).expect("just inserted");
                e.p_label += beam.p_label * p[last as usize];
            }
            // 3. Extend with each non-blank label.
            for c in 0..4u8 {
                let mut seq = beam.seq.clone();
                seq.push(c);
                let mass = if beam.seq.last() == Some(&c) {
                    // Same label after a blank only.
                    beam.p_blank * p[c as usize]
                } else {
                    beam.total() * p[c as usize]
                };
                if mass == 0.0 {
                    continue;
                }
                let e = next.entry(seq.clone()).or_insert(Beam {
                    seq,
                    p_blank: 0.0,
                    p_label: 0.0,
                });
                e.p_label += mass;
            }
        }
        let mut all: Vec<Beam> = next.into_values().collect();
        all.sort_by(|a, b| {
            b.total()
                .partial_cmp(&a.total())
                .expect("finite probabilities")
        });
        all.truncate(width);
        beams = all;
    }
    let best = beams
        .into_iter()
        .max_by(|a, b| a.total().partial_cmp(&b.total()).expect("finite"));
    DnaSeq::from_codes_unchecked(best.map(|b| b.seq).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a 5 x T posterior matrix from per-step (symbol, confidence).
    fn posteriors(steps: &[(usize, f32)]) -> Matrix {
        let t = steps.len();
        let mut m = Matrix::zeros(5, t);
        for (ti, &(sym, conf)) in steps.iter().enumerate() {
            for r in 0..5 {
                m[(r, ti)] = if r == sym { conf } else { (1.0 - conf) / 4.0 };
            }
        }
        m
    }

    #[test]
    fn greedy_collapses_repeats_and_blanks() {
        let p = posteriors(&[(0, 0.9), (0, 0.9), (4, 0.9), (0, 0.9), (1, 0.9), (1, 0.8)]);
        assert_eq!(greedy_decode(&p).to_string(), "AAC");
    }

    #[test]
    fn greedy_empty_for_all_blank() {
        let p = posteriors(&[(4, 0.9), (4, 0.9)]);
        assert!(greedy_decode(&p).is_empty());
    }

    #[test]
    fn beam_equals_greedy_on_confident_input() {
        let p = posteriors(&[
            (2, 0.99),
            (4, 0.99),
            (2, 0.99),
            (1, 0.99),
            (4, 0.99),
            (3, 0.99),
        ]);
        assert_eq!(beam_decode(&p, 4), greedy_decode(&p));
        assert_eq!(beam_decode(&p, 4).to_string(), "GGCT");
    }

    #[test]
    fn beam_sums_paths_greedy_cannot() {
        // Classic CTC case: per-step argmax picks blank, but the summed
        // label mass beats it. Steps: P(A)=0.4, P(blank)=0.6 twice.
        // Paths for "A": A·A + A·- + -·A = 0.16+0.24+0.24 = 0.64
        // Paths for "": -·- = 0.36. Beam finds "A"; greedy finds "".
        let mut m = Matrix::zeros(5, 2);
        for t in 0..2 {
            m[(0, t)] = 0.4;
            m[(4, t)] = 0.6;
        }
        assert!(greedy_decode(&m).is_empty());
        assert_eq!(beam_decode(&m, 8).to_string(), "A");
    }

    #[test]
    fn beam_respects_repeat_semantics() {
        // "AA" requires a blank between the two A's.
        let p = posteriors(&[(0, 0.95), (4, 0.95), (0, 0.95)]);
        assert_eq!(beam_decode(&p, 8).to_string(), "AA");
        let no_blank = posteriors(&[(0, 0.95), (0, 0.95), (0, 0.95)]);
        assert_eq!(beam_decode(&no_blank, 8).to_string(), "A");
    }

    #[test]
    fn wider_beam_never_decodes_worse_probability() {
        // Construct a mildly ambiguous posterior and check the beam=1
        // result is also found by beam=8 search space (sanity: same or
        // different, but decode must be deterministic).
        let p = posteriors(&[(0, 0.5), (1, 0.5), (4, 0.5), (2, 0.5)]);
        let narrow = beam_decode(&p, 1);
        let wide = beam_decode(&p, 8);
        assert_eq!(beam_decode(&p, 8), wide);
        assert!(!narrow.is_empty() || !wide.is_empty());
    }
}
