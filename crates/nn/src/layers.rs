//! Neural-network layers for inference.
//!
//! A deliberately small, dependency-free inference library covering what
//! the two neural kernels need: 1-D convolutions (plain, depthwise and
//! separable, as in Bonito's TCS blocks), dense layers, LSTMs
//! (bidirectional, as in Clair), and the usual activations. Activations
//! are `channels x time` matrices ([`Matrix`]).

use gb_core::matrix::Matrix;
use gb_uarch::probe::{addr_of, NullProbe, Probe};
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier-uniform initialization for a `rows x cols` weight matrix.
pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Sigmoid activation.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Swish activation (`x * sigmoid(x)`), Bonito's nonlinearity.
#[inline]
pub fn swish(x: f32) -> f32 {
    x * sigmoid(x)
}

/// In-place softmax over a slice.
pub fn softmax(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// A 1-D convolution.
#[derive(Debug, Clone)]
pub struct Conv1d {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Temporal stride.
    pub stride: usize,
    /// Weights: `out_ch x (in_ch * kernel)`.
    pub weights: Matrix,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
}

impl Conv1d {
    /// Creates a randomly initialized convolution ("same" padding).
    // PANIC-FREE: odd-kernel assert is a config-time contract (kernel
    // widths come from `BasecallerConfig`, not data).
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Conv1d {
        assert!(kernel % 2 == 1, "odd kernels only (same padding)");
        Conv1d {
            in_ch,
            out_ch,
            kernel,
            stride: stride.max(1),
            weights: xavier(out_ch, in_ch * kernel, rng),
            bias: (0..out_ch).map(|_| rng.gen_range(-0.1..0.1)).collect(),
        }
    }

    /// Output length for input length `t`.
    pub fn out_len(&self, t: usize) -> usize {
        t.div_ceil(self.stride)
    }

    /// Applies the convolution to a `in_ch x T` activation.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        self.forward_probed(input, &mut NullProbe)
    }

    /// [`Conv1d::forward`] with instrumentation.
    // PANIC-FREE: the shape assert is the layer contract; `ti - pad` is
    // guarded by `ti < pad` continue, and weight/row indices are bounded
    // by the constructor's shapes.
    pub fn forward_probed<P: Probe>(&self, input: &Matrix, probe: &mut P) -> Matrix {
        assert_eq!(input.rows(), self.in_ch, "channel mismatch");
        let t = input.cols();
        let t_out = self.out_len(t);
        let pad = self.kernel / 2;
        let mut out = Matrix::zeros(self.out_ch, t_out);
        for oc in 0..self.out_ch {
            let w = self.weights.row(oc);
            probe.load(addr_of(&w[0]), (w.len() * 4) as u32);
            for to in 0..t_out {
                let center = to * self.stride;
                let mut acc = self.bias[oc];
                for ic in 0..self.in_ch {
                    let row = input.row(ic);
                    for k in 0..self.kernel {
                        let ti = center + k;
                        if ti < pad || ti - pad >= t {
                            continue;
                        }
                        acc += w[ic * self.kernel + k] * row[ti - pad];
                    }
                }
                out[(oc, to)] = acc;
            }
            probe.simd_ops((t_out * self.in_ch * self.kernel / 8 + 1) as u64);
            probe.load(addr_of(&input.as_slice()[0]), (self.in_ch * t * 4) as u32);
        }
        out
    }

    /// Multiply-accumulate count for an input of length `t`.
    pub fn flops(&self, t: usize) -> u64 {
        (self.out_ch * self.out_len(t) * self.in_ch * self.kernel) as u64 * 2
    }
}

/// A depthwise 1-D convolution (one filter per channel).
#[derive(Debug, Clone)]
pub struct DepthwiseConv1d {
    /// Channel count.
    pub channels: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Weights: `channels x kernel`.
    pub weights: Matrix,
    /// Per-channel bias.
    pub bias: Vec<f32>,
}

impl DepthwiseConv1d {
    /// Creates a randomly initialized depthwise convolution.
    // PANIC-FREE: odd-kernel assert is a config-time contract.
    pub fn new(channels: usize, kernel: usize, rng: &mut StdRng) -> DepthwiseConv1d {
        assert!(kernel % 2 == 1, "odd kernels only (same padding)");
        DepthwiseConv1d {
            channels,
            kernel,
            weights: xavier(channels, kernel, rng),
            bias: (0..channels).map(|_| rng.gen_range(-0.1..0.1)).collect(),
        }
    }

    /// Applies the convolution (stride 1, same padding).
    // PANIC-FREE: shape assert is the layer contract; the padding guard
    // keeps `ti - pad < t`.
    pub fn forward_probed<P: Probe>(&self, input: &Matrix, probe: &mut P) -> Matrix {
        assert_eq!(input.rows(), self.channels);
        let t = input.cols();
        let pad = self.kernel / 2;
        let mut out = Matrix::zeros(self.channels, t);
        for c in 0..self.channels {
            let w = self.weights.row(c);
            let row = input.row(c);
            for to in 0..t {
                let mut acc = self.bias[c];
                for (k, &wk) in w.iter().enumerate() {
                    let ti = to + k;
                    if ti < pad || ti - pad >= t {
                        continue;
                    }
                    acc += wk * row[ti - pad];
                }
                out[(c, to)] = acc;
            }
            probe.simd_ops((t * self.kernel / 8 + 1) as u64);
        }
        probe.load(
            addr_of(&input.as_slice()[0]),
            (input.as_slice().len() * 4) as u32,
        );
        out
    }

    /// Multiply-accumulate count for an input of length `t`.
    pub fn flops(&self, t: usize) -> u64 {
        (self.channels * t * self.kernel) as u64 * 2
    }
}

/// Bonito's TCS block: depthwise conv + pointwise conv + swish.
#[derive(Debug, Clone)]
pub struct SeparableBlock {
    /// The depthwise stage.
    pub depthwise: DepthwiseConv1d,
    /// The pointwise (1x1) stage.
    pub pointwise: Conv1d,
}

impl SeparableBlock {
    /// Creates a randomly initialized block.
    pub fn new(in_ch: usize, out_ch: usize, kernel: usize, rng: &mut StdRng) -> SeparableBlock {
        SeparableBlock {
            depthwise: DepthwiseConv1d::new(in_ch, kernel, rng),
            pointwise: Conv1d::new(in_ch, out_ch, 1, 1, rng),
        }
    }

    /// Applies depthwise -> pointwise -> swish.
    pub fn forward_probed<P: Probe>(&self, input: &Matrix, probe: &mut P) -> Matrix {
        let mid = self.depthwise.forward_probed(input, probe);
        let mut out = self.pointwise.forward_probed(&mid, probe);
        for v in out.as_mut_slice() {
            *v = swish(*v);
        }
        probe.fp_ops(out.as_slice().len() as u64 * 3);
        out
    }

    /// Multiply-accumulate count for an input of length `t`.
    pub fn flops(&self, t: usize) -> u64 {
        self.depthwise.flops(t) + self.pointwise.flops(t)
    }
}

/// A dense (fully connected) layer.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights: `out x in`.
    pub weights: Matrix,
    /// Bias, length `out`.
    pub bias: Vec<f32>,
}

impl Dense {
    /// Creates a randomly initialized dense layer.
    pub fn new(input: usize, output: usize, rng: &mut StdRng) -> Dense {
        Dense {
            weights: xavier(output, input, rng),
            bias: (0..output).map(|_| rng.gen_range(-0.1..0.1)).collect(),
        }
    }

    /// `W x + b`.
    // PANIC-FREE: the input-size assert is the layer contract; `bias[o]`
    // has one slot per weight row by construction.
    pub fn forward_probed<P: Probe>(&self, x: &[f32], probe: &mut P) -> Vec<f32> {
        assert_eq!(x.len(), self.weights.cols(), "input size mismatch");
        probe.load(addr_of(&x[0]), (x.len() * 4) as u32);
        let mut out = Vec::with_capacity(self.weights.rows());
        for o in 0..self.weights.rows() {
            let w = self.weights.row(o);
            let mut acc = self.bias[o];
            for (wi, xi) in w.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
            probe.simd_ops((x.len() / 8 + 1) as u64);
        }
        probe.load(
            addr_of(&self.weights.as_slice()[0]),
            (self.weights.as_slice().len() * 4) as u32,
        );
        out
    }
}

/// A single-direction LSTM layer.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input size.
    pub input: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Input weights: `4*hidden x input` (i, f, g, o gate order).
    pub w: Matrix,
    /// Recurrent weights: `4*hidden x hidden`.
    pub u: Matrix,
    /// Gate biases, length `4*hidden`.
    pub bias: Vec<f32>,
}

impl Lstm {
    /// Creates a randomly initialized LSTM.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Lstm {
        Lstm {
            input,
            hidden,
            w: xavier(4 * hidden, input, rng),
            u: xavier(4 * hidden, hidden, rng),
            // Forget-gate bias +1, the standard stabilization.
            bias: (0..4 * hidden)
                .map(|i| {
                    if i >= hidden && i < 2 * hidden {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect(),
        }
    }

    /// Runs over `steps` (each an input vector), returning all hidden
    /// states as a `hidden x T` matrix. `reverse` iterates the sequence
    /// backwards (for the backward half of a bi-LSTM) while still storing
    /// states at their original positions.
    // PANIC-FREE: the input-feature assert is the layer contract; gate and
    // state indices are bounded by `4 * hidden` fixed in the constructor.
    pub fn forward_probed<P: Probe>(&self, steps: &Matrix, reverse: bool, probe: &mut P) -> Matrix {
        assert_eq!(steps.rows(), self.input, "input feature mismatch");
        let t_len = steps.cols();
        let h = self.hidden;
        let mut hs = Matrix::zeros(h, t_len);
        let mut hstate = vec![0.0f32; h];
        let mut cstate = vec![0.0f32; h];
        let order: Vec<usize> = if reverse {
            (0..t_len).rev().collect()
        } else {
            (0..t_len).collect()
        };
        for t in order {
            let mut gates = self.bias.clone();
            for (g, gate) in gates.iter_mut().enumerate() {
                let wrow = self.w.row(g);
                let mut acc = 0.0f32;
                for i in 0..self.input {
                    acc += wrow[i] * steps[(i, t)];
                }
                let urow = self.u.row(g);
                for (ui, hi) in urow.iter().zip(&hstate) {
                    acc += ui * hi;
                }
                *gate += acc;
            }
            probe.simd_ops((4 * h * (self.input + h) / 8 + 1) as u64);
            probe.load(
                addr_of(&self.w.as_slice()[0]),
                (self.w.as_slice().len() * 4) as u32,
            );
            probe.load(
                addr_of(&self.u.as_slice()[0]),
                (self.u.as_slice().len() * 4) as u32,
            );
            for j in 0..h {
                let i_g = sigmoid(gates[j]);
                let f_g = sigmoid(gates[h + j]);
                let g_g = gates[2 * h + j].tanh();
                let o_g = sigmoid(gates[3 * h + j]);
                cstate[j] = f_g * cstate[j] + i_g * g_g;
                hstate[j] = o_g * cstate[j].tanh();
                hs[(j, t)] = hstate[j];
            }
            probe.fp_ops(10 * h as u64);
        }
        hs
    }

    /// Multiply-accumulate count per timestep.
    pub fn flops_per_step(&self) -> u64 {
        (4 * self.hidden * (self.input + self.hidden)) as u64 * 2
    }
}

/// A bidirectional LSTM: forward and backward halves concatenated.
#[derive(Debug, Clone)]
pub struct BiLstm {
    /// Forward-direction LSTM.
    pub fwd: Lstm,
    /// Backward-direction LSTM.
    pub bwd: Lstm,
}

impl BiLstm {
    /// Creates a randomly initialized bi-LSTM.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> BiLstm {
        BiLstm {
            fwd: Lstm::new(input, hidden, rng),
            bwd: Lstm::new(input, hidden, rng),
        }
    }

    /// Output: `2*hidden x T` (forward states stacked over backward).
    // PANIC-FREE: both halves return `hidden x T` matrices, so the stack
    // loop's `(h + j, ti)` stays inside the `2*hidden x T` output.
    pub fn forward_probed<P: Probe>(&self, steps: &Matrix, probe: &mut P) -> Matrix {
        let f = self.fwd.forward_probed(steps, false, probe);
        let b = self.bwd.forward_probed(steps, true, probe);
        let h = self.fwd.hidden;
        let t = steps.cols();
        let mut out = Matrix::zeros(2 * h, t);
        for j in 0..h {
            for ti in 0..t {
                out[(j, ti)] = f[(j, ti)];
                out[(h + j, ti)] = b[(j, ti)];
            }
        }
        out
    }
}

impl gb_substrate::Codec for Conv1d {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.in_ch);
        e.put_usize(self.out_ch);
        e.put_usize(self.kernel);
        e.put_usize(self.stride);
        gb_substrate::Codec::encode(&self.weights, e);
        gb_substrate::Codec::encode(&self.bias, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Conv1d> {
        Some(Conv1d {
            in_ch: d.get_usize()?,
            out_ch: d.get_usize()?,
            kernel: d.get_usize()?,
            stride: d.get_usize()?,
            weights: gb_substrate::Codec::decode(d)?,
            bias: gb_substrate::Codec::decode(d)?,
        })
    }
}

impl gb_substrate::Codec for DepthwiseConv1d {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.channels);
        e.put_usize(self.kernel);
        gb_substrate::Codec::encode(&self.weights, e);
        gb_substrate::Codec::encode(&self.bias, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<DepthwiseConv1d> {
        Some(DepthwiseConv1d {
            channels: d.get_usize()?,
            kernel: d.get_usize()?,
            weights: gb_substrate::Codec::decode(d)?,
            bias: gb_substrate::Codec::decode(d)?,
        })
    }
}

impl gb_substrate::Codec for SeparableBlock {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.depthwise, e);
        gb_substrate::Codec::encode(&self.pointwise, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<SeparableBlock> {
        Some(SeparableBlock {
            depthwise: gb_substrate::Codec::decode(d)?,
            pointwise: gb_substrate::Codec::decode(d)?,
        })
    }
}

impl gb_substrate::Codec for Dense {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.weights, e);
        gb_substrate::Codec::encode(&self.bias, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Dense> {
        Some(Dense {
            weights: gb_substrate::Codec::decode(d)?,
            bias: gb_substrate::Codec::decode(d)?,
        })
    }
}

impl gb_substrate::Codec for Lstm {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.input);
        e.put_usize(self.hidden);
        gb_substrate::Codec::encode(&self.w, e);
        gb_substrate::Codec::encode(&self.u, e);
        gb_substrate::Codec::encode(&self.bias, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<Lstm> {
        Some(Lstm {
            input: d.get_usize()?,
            hidden: d.get_usize()?,
            w: gb_substrate::Codec::decode(d)?,
            u: gb_substrate::Codec::decode(d)?,
            bias: gb_substrate::Codec::decode(d)?,
        })
    }
}

impl gb_substrate::Codec for BiLstm {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.fwd, e);
        gb_substrate::Codec::encode(&self.bwd, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<BiLstm> {
        Some(BiLstm {
            fwd: gb_substrate::Codec::decode(d)?,
            bwd: gb_substrate::Codec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn softmax_is_a_distribution() {
        let mut xs = vec![1.0, 2.0, 3.0, -1.0];
        softmax(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0] && xs[0] > xs[3]);
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut c = Conv1d::new(1, 1, 3, 1, &mut rng());
        c.weights = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]);
        c.bias = vec![0.0];
        let input = Matrix::from_vec(1, 5, vec![1., 2., 3., 4., 5.]);
        let out = c.forward(&input);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv_stride_downsamples() {
        let c = Conv1d::new(2, 4, 5, 3, &mut rng());
        let input = Matrix::zeros(2, 30);
        let out = c.forward(&input);
        assert_eq!(out.shape(), (4, 10));
    }

    #[test]
    fn conv_edges_use_zero_padding() {
        let mut c = Conv1d::new(1, 1, 3, 1, &mut rng());
        c.weights = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        c.bias = vec![0.0];
        let input = Matrix::from_vec(1, 3, vec![1., 1., 1.]);
        let out = c.forward(&input);
        assert_eq!(out.as_slice(), &[2.0, 3.0, 2.0]);
    }

    #[test]
    fn depthwise_keeps_channels_independent() {
        let mut d = DepthwiseConv1d::new(2, 3, &mut rng());
        d.weights = Matrix::from_vec(2, 3, vec![0., 1., 0., 0., 2., 0.]);
        d.bias = vec![0.0, 0.0];
        let input = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let out = d.forward_probed(&input, &mut NullProbe);
        assert_eq!(out.row(0), &[1., 2., 3.]);
        assert_eq!(out.row(1), &[8., 10., 12.]);
    }

    #[test]
    fn dense_matches_manual_product() {
        let mut d = Dense::new(3, 2, &mut rng());
        d.weights = Matrix::from_vec(2, 3, vec![1., 0., 0., 0., 1., 1.]);
        d.bias = vec![0.5, -0.5];
        let out = d.forward_probed(&[2.0, 3.0, 4.0], &mut NullProbe);
        assert_eq!(out, vec![2.5, 6.5]);
    }

    #[test]
    fn lstm_shapes_and_determinism() {
        let l = Lstm::new(8, 16, &mut rng());
        let steps = xavier(8, 10, &mut rng());
        let a = l.forward_probed(&steps, false, &mut NullProbe);
        let b = l.forward_probed(&steps, false, &mut NullProbe);
        assert_eq!(a.shape(), (16, 10));
        assert_eq!(a, b);
        // States are bounded by tanh.
        assert!(a.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_state_propagates_information() {
        let l = Lstm::new(2, 8, &mut rng());
        let zeros = Matrix::zeros(2, 6);
        let mut spiked = Matrix::zeros(2, 6);
        spiked[(0, 0)] = 5.0;
        let a = l.forward_probed(&zeros, false, &mut NullProbe);
        let b = l.forward_probed(&spiked, false, &mut NullProbe);
        // The t=0 spike must influence the final state.
        let last_diff: f32 = (0..8).map(|j| (a[(j, 5)] - b[(j, 5)]).abs()).sum();
        assert!(last_diff > 1e-4, "spike vanished: {last_diff}");
    }

    #[test]
    fn bilstm_concatenates_directions() {
        let bl = BiLstm::new(4, 6, &mut rng());
        let steps = xavier(4, 7, &mut rng());
        let out = bl.forward_probed(&steps, &mut NullProbe);
        assert_eq!(out.shape(), (12, 7));
        // Backward half at t=T-1 equals backward LSTM's first processed
        // step; just check the two halves differ.
        let fwd_sum: f32 = (0..6).map(|j| out[(j, 3)].abs()).sum();
        let bwd_sum: f32 = (0..6).map(|j| out[(6 + j, 3)].abs()).sum();
        assert!((fwd_sum - bwd_sum).abs() > 1e-6);
    }

    #[test]
    fn separable_block_runs_and_activates() {
        let s = SeparableBlock::new(8, 16, 5, &mut rng());
        let input = xavier(8, 20, &mut rng());
        let out = s.forward_probed(&input, &mut NullProbe);
        assert_eq!(out.shape(), (16, 20));
        // Swish is bounded below by ~-0.28.
        assert!(out.as_slice().iter().all(|&v| v > -0.3));
    }

    #[test]
    fn flops_counts_are_consistent() {
        let c = Conv1d::new(4, 8, 3, 1, &mut rng());
        assert_eq!(c.flops(10), (8 * 10 * 4 * 3) as u64 * 2);
        let l = Lstm::new(4, 8, &mut rng());
        assert_eq!(l.flops_per_step(), (4 * 8 * 12) as u64 * 2);
    }
}
