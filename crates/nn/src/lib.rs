//! # gb-nn
//!
//! From-scratch neural-network inference for the two GPU-class kernels of
//! GenomicsBench-rs:
//!
//! - [`layers`] — conv1d / depthwise-separable blocks / dense / (bi)LSTM,
//! - [`ctc`] — greedy and prefix-beam CTC decoding,
//! - [`pore_decoder`] — the classical HMM/Viterbi basecaller baseline,
//! - [`basecaller`] — the Bonito-like **nn-base** model,
//! - [`variant_caller`] — the Clair-like **nn-variant** model.
//!
//! Weights are seeded-random: the suite characterizes inference *compute
//! shape*, not model accuracy (see `DESIGN.md`).
//!
//! # Examples
//!
//! ```
//! use gb_nn::basecaller::{Basecaller, BasecallerConfig};
//! let cfg = BasecallerConfig { chunk_size: 500, ..Default::default() };
//! let model = Basecaller::new(&cfg, 42);
//! let raw: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.2).sin() * 12.0 + 90.0).collect();
//! let result = model.basecall(&raw);
//! assert_eq!(result.chunks, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basecaller;
pub mod ctc;
pub mod layers;
pub mod pore_decoder;
pub mod variant_caller;

pub use basecaller::{Basecaller, BasecallerConfig};
pub use variant_caller::{VariantCall, VariantCaller, VariantCallerConfig};
