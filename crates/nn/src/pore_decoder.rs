//! Model-based event decoding: a Viterbi basecaller over the pore model.
//!
//! The neural basecaller (**nn-base**) replaces the older HMM-based
//! basecallers; this module implements that classical baseline — Viterbi
//! decoding over the 4096 6-mer states of the pore model — so the suite
//! has a comparator whose accuracy can actually be tested (the neural
//! model ships untrained weights; see DESIGN.md). Each event either
//! *stays* on the current k-mer (over-segmentation) or *steps* to one of
//! its four successors; emissions are the pore model's per-k-mer
//! Gaussians.

use gb_core::seq::DnaSeq;
use gb_datagen::signal::{Event, PoreModel, PORE_K};

/// Decoding parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoreDecoderParams {
    /// Probability that consecutive events sample the same k-mer.
    pub p_stay: f64,
}

impl Default for PoreDecoderParams {
    fn default() -> PoreDecoderParams {
        PoreDecoderParams { p_stay: 0.25 }
    }
}

/// Result of decoding one event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PoreDecode {
    /// The decoded base sequence.
    pub seq: DnaSeq,
    /// Viterbi path log-likelihood.
    pub log_likelihood: f64,
    /// The k-mer state path (one per event).
    pub path: Vec<u16>,
}

/// Viterbi-decodes `events` into a sequence under `model`.
///
/// Returns `None` for an empty event stream.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
/// use gb_nn::pore_decoder::{accuracy, viterbi_decode, PoreDecoderParams};
/// let truth: DnaSeq = "ACGGTTACAGGATCCAGTTACGTACCGGT".parse()?;
/// let model = PoreModel::r9_like();
/// let cfg = SignalSimConfig { split_prob: 0.0, skip_prob: 0.0, ..Default::default() };
/// let sig = simulate_signal(&truth, &model, &cfg, 3);
/// let d = viterbi_decode(&sig.events, &model, &PoreDecoderParams::default()).unwrap();
/// // A clean signal decodes near-perfectly (the first k-mer's leading
/// // bases carry only one emission of evidence, so allow an edit or two).
/// assert!(accuracy(&d.seq, &truth) > 0.93);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
pub fn viterbi_decode(
    events: &[Event],
    model: &PoreModel,
    params: &PoreDecoderParams,
) -> Option<PoreDecode> {
    let n = events.len();
    if n == 0 {
        return None;
    }
    let states = model.len(); // 4096
    let mask = (states - 1) as u64;
    let lp_stay = params.p_stay.clamp(1e-6, 0.999).ln();
    let lp_step = ((1.0 - params.p_stay.clamp(1e-6, 0.999)) / 4.0).ln();

    // Pre-compute emission tables lazily per event.
    let emit = |ev: &Event, s: usize| -> f64 {
        let m = model.get(s as u64);
        let z = f64::from((ev.mean - m.level_mean) / m.level_stdv);
        -f64::from(m.level_stdv.ln()) - 0.918_938_533_204_672_7 - 0.5 * z * z
    };

    let mut dp: Vec<f64> = (0..states).map(|s| emit(&events[0], s)).collect();
    // Backpointers: 0 = stay, 1..=4 = stepped from predecessor with
    // leading base (b-1).
    let mut back = vec![vec![0u8; states]; n];
    for (e, ev) in events.iter().enumerate().skip(1) {
        let mut next = vec![f64::NEG_INFINITY; states];
        for (s, slot) in next.iter_mut().enumerate() {
            // Stay on s.
            let mut best = dp[s] + lp_stay;
            let mut bp = 0u8;
            // Step from each predecessor p where (p << 2 | last) & mask == s.
            let suffix = (s as u64) >> 2;
            for lead in 0..4u64 {
                let p = (suffix | (lead << (2 * (PORE_K - 1)))) & mask;
                let cand = dp[p as usize] + lp_step;
                if cand > best {
                    best = cand;
                    bp = lead as u8 + 1;
                }
            }
            *slot = best + emit(ev, s);
            back[e][s] = bp;
        }
        dp = next;
    }

    // Best terminal state, then backtrack.
    let (mut state, &ll) = dp
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("states non-empty");
    let mut path = vec![0u16; n];
    for e in (0..n).rev() {
        path[e] = state as u16;
        if e == 0 {
            break;
        }
        let bp = back[e][state];
        if bp > 0 {
            // We stepped into `state`; the predecessor had the recorded
            // leading base and our leading (k-1)-mer as suffix.
            let lead = u64::from(bp - 1);
            state = (((state as u64) >> 2) | (lead << (2 * (PORE_K - 1)))) as usize;
        }
    }

    // Path -> sequence: first k-mer's bases, then one base per step.
    let mut codes = gb_core::seq::unpack_kmer(u64::from(path[0]), PORE_K);
    for w in path.windows(2) {
        if w[1] != w[0] {
            codes.push((w[1] & 3) as u8);
        }
    }
    Some(PoreDecode {
        seq: DnaSeq::from_codes_unchecked(codes),
        log_likelihood: ll,
        path,
    })
}

/// Base-level accuracy of `decoded` against `truth` (1 - edit distance /
/// truth length), the usual basecaller metric.
pub fn accuracy(decoded: &DnaSeq, truth: &DnaSeq) -> f64 {
    let d = edit_distance(decoded.as_codes(), truth.as_codes());
    1.0 - d as f64 / truth.len().max(1) as f64
}

fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &x) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &y) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(x != y);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_datagen::signal::{simulate_signal, SignalSimConfig};

    fn truth(n: usize, seed: u64) -> DnaSeq {
        let mut x = seed;
        DnaSeq::from_codes_unchecked(
            (0..n)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 4) as u8
                })
                .collect(),
        )
    }

    #[test]
    fn clean_signal_decodes_exactly() {
        let t = truth(120, 5);
        let model = PoreModel::r9_like();
        let cfg = SignalSimConfig {
            split_prob: 0.0,
            skip_prob: 0.0,
            ..Default::default()
        };
        let sig = simulate_signal(&t, &model, &cfg, 6);
        let d = viterbi_decode(&sig.events, &model, &PoreDecoderParams::default()).unwrap();
        assert_eq!(d.seq, t);
        assert_eq!(accuracy(&d.seq, &t), 1.0);
    }

    #[test]
    fn oversegmented_signal_decodes_accurately() {
        let t = truth(200, 7);
        let model = PoreModel::r9_like();
        let cfg = SignalSimConfig {
            split_prob: 0.4,
            skip_prob: 0.0,
            ..Default::default()
        };
        let sig = simulate_signal(&t, &model, &cfg, 8);
        let d = viterbi_decode(&sig.events, &model, &PoreDecoderParams::default()).unwrap();
        let acc = accuracy(&d.seq, &t);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn path_is_valid_kmer_walk() {
        let t = truth(100, 9);
        let model = PoreModel::r9_like();
        let sig = simulate_signal(&t, &model, &SignalSimConfig::default(), 10);
        let d = viterbi_decode(&sig.events, &model, &PoreDecoderParams::default()).unwrap();
        for w in d.path.windows(2) {
            let (a, b) = (u64::from(w[0]), u64::from(w[1]));
            let stepped = (a << 2) & 0xFFF | (b & 3);
            assert!(
                b == a || b == stepped,
                "invalid transition {a:03x} -> {b:03x}"
            );
        }
        assert_eq!(d.path.len(), sig.events.len());
    }

    #[test]
    fn empty_events_decode_to_none() {
        let model = PoreModel::r9_like();
        assert!(viterbi_decode(&[], &model, &PoreDecoderParams::default()).is_none());
    }

    #[test]
    fn accuracy_metric_behaves() {
        let a: DnaSeq = "ACGT".parse().unwrap();
        let b: DnaSeq = "ACGA".parse().unwrap();
        assert_eq!(accuracy(&a, &a), 1.0);
        assert!((accuracy(&b, &a) - 0.75).abs() < 1e-9);
    }
}
