//! Neural variant calling — the **nn-variant** kernel.
//!
//! A Clair-like network: the `33 x 8 x 4` pileup tensor (from
//! `gb-pileup`) is treated as a 33-step sequence of 32 features, run
//! through two bidirectional LSTM layers and fully-connected layers, and
//! projected onto the prediction heads (zygosity, variant type, and
//! alternate base). Weights are seeded-random — the kernel's compute
//! shape, LSTM-recurrence-dominated inference, is what the suite
//! characterizes.

use crate::layers::{softmax, BiLstm, Dense};
use gb_core::matrix::Matrix;
use gb_pileup::feature::{ClairTensor, CHANNELS, ENCODINGS, WINDOW};
use gb_uarch::probe::{NullProbe, Probe};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Features per window position (8 channels x 4 encodings = 32).
pub const FEATURES: usize = CHANNELS * ENCODINGS;

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantCallerConfig {
    /// Hidden size of each LSTM direction.
    pub lstm_hidden: usize,
    /// Width of the shared fully-connected layer.
    pub fc_width: usize,
}

impl Default for VariantCallerConfig {
    fn default() -> VariantCallerConfig {
        VariantCallerConfig {
            lstm_hidden: 48,
            fc_width: 96,
        }
    }
}

/// Zygosity call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zygosity {
    /// Matches the reference on both haplotypes.
    HomRef,
    /// Variant on one haplotype.
    Het,
    /// Variant on both haplotypes.
    HomAlt,
}

/// Variant type call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantType {
    /// No variant.
    Reference,
    /// Single-nucleotide variant.
    Snv,
    /// Insertion.
    Insertion,
    /// Deletion.
    Deletion,
}

/// One variant call with calibrated-ish probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantCall {
    /// Candidate position (the tensor's center).
    pub pos: usize,
    /// Zygosity probabilities `[hom-ref, het, hom-alt]`.
    pub zygosity_probs: [f32; 3],
    /// Variant-type probabilities `[ref, snv, ins, del]`.
    pub type_probs: [f32; 4],
    /// Alternate-base probabilities `[A, C, G, T]`.
    pub alt_probs: [f32; 4],
}

impl VariantCall {
    /// The argmax zygosity.
    pub fn zygosity(&self) -> Zygosity {
        match argmax(&self.zygosity_probs) {
            0 => Zygosity::HomRef,
            1 => Zygosity::Het,
            _ => Zygosity::HomAlt,
        }
    }

    /// The argmax variant type.
    pub fn variant_type(&self) -> VariantType {
        match argmax(&self.type_probs) {
            0 => VariantType::Reference,
            1 => VariantType::Snv,
            2 => VariantType::Insertion,
            _ => VariantType::Deletion,
        }
    }

    /// The argmax alternate base (2-bit code).
    pub fn alt_base(&self) -> u8 {
        argmax(&self.alt_probs) as u8
    }
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// The Clair-like network.
#[derive(Debug, Clone)]
pub struct VariantCaller {
    lstm1: BiLstm,
    lstm2: BiLstm,
    fc: Dense,
    head_zygosity: Dense,
    head_type: Dense,
    head_alt: Dense,
    config: VariantCallerConfig,
}

impl VariantCaller {
    /// Builds a model with seeded-random weights.
    pub fn new(config: &VariantCallerConfig, seed: u64) -> VariantCaller {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = config.lstm_hidden;
        let lstm1 = BiLstm::new(FEATURES, h, &mut rng);
        let lstm2 = BiLstm::new(2 * h, h, &mut rng);
        let fc = Dense::new(2 * h * 2, config.fc_width, &mut rng);
        VariantCaller {
            lstm1,
            lstm2,
            fc,
            head_zygosity: Dense::new(config.fc_width, 3, &mut rng),
            head_type: Dense::new(config.fc_width, 4, &mut rng),
            head_alt: Dense::new(config.fc_width, 4, &mut rng),
            config: *config,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &VariantCallerConfig {
        &self.config
    }

    /// Multiply-accumulates per call (for the SIMT launch model).
    pub fn flops_per_call(&self) -> u64 {
        let t = WINDOW as u64;
        let per_dir1 = self.lstm1.fwd.flops_per_step();
        let per_dir2 = self.lstm2.fwd.flops_per_step();
        let lstm = t * 2 * (per_dir1 + per_dir2);
        let h = self.config.lstm_hidden as u64;
        let fc = 2 * (4 * h) * self.config.fc_width as u64;
        let heads = 2 * self.config.fc_width as u64 * (3 + 4 + 4);
        lstm + fc + heads
    }

    /// Calls one candidate site.
    pub fn call(&self, tensor: &ClairTensor) -> VariantCall {
        self.call_probed(tensor, &mut NullProbe)
    }

    /// [`VariantCaller::call`] with instrumentation.
    // PANIC-FREE: WINDOW/FEATURES are compile-time tensor dimensions and
    // the summary loops index `h2` inside `rows() x WINDOW`.
    pub fn call_probed<P: Probe>(&self, tensor: &ClairTensor, probe: &mut P) -> VariantCall {
        // Reshape 33 x (8*4) into a feature-major sequence matrix.
        let mut steps = Matrix::zeros(FEATURES, WINDOW);
        for w in 0..WINDOW {
            for f in 0..FEATURES {
                steps[(f, w)] = tensor.data[w * FEATURES + f];
            }
        }
        let h1 = self.lstm1.forward_probed(&steps, probe);
        let h2 = self.lstm2.forward_probed(&h1, probe);
        // Summary vector: first and last timestep states concatenated
        // (Clair pools the bi-LSTM ends).
        let rows = h2.rows();
        let mut summary = Vec::with_capacity(rows * 2);
        for r in 0..rows {
            summary.push(h2[(r, 0)]);
        }
        for r in 0..rows {
            summary.push(h2[(r, WINDOW - 1)]);
        }
        let mut hidden = self.fc.forward_probed(&summary, probe);
        for v in hidden.iter_mut() {
            *v = v.max(0.0); // ReLU
        }
        probe.fp_ops(hidden.len() as u64);
        let mut zyg: [f32; 3] = self
            .head_zygosity
            .forward_probed(&hidden, probe)
            .try_into()
            .expect("3 outputs");
        let mut ty: [f32; 4] = self
            .head_type
            .forward_probed(&hidden, probe)
            .try_into()
            .expect("4 outputs");
        let mut alt: [f32; 4] = self
            .head_alt
            .forward_probed(&hidden, probe)
            .try_into()
            .expect("4 outputs");
        softmax(&mut zyg);
        softmax(&mut ty);
        softmax(&mut alt);
        VariantCall {
            pos: tensor.center,
            zygosity_probs: zyg,
            type_probs: ty,
            alt_probs: alt,
        }
    }

    /// Calls a batch of sites (the kernel's data-parallel loop).
    pub fn call_batch_probed<P: Probe>(
        &self,
        tensors: &[ClairTensor],
        probe: &mut P,
    ) -> Vec<VariantCall> {
        tensors.iter().map(|t| self.call_probed(t, probe)).collect()
    }
}

impl gb_substrate::Codec for VariantCallerConfig {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.lstm_hidden);
        e.put_usize(self.fc_width);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<VariantCallerConfig> {
        Some(VariantCallerConfig {
            lstm_hidden: d.get_usize()?,
            fc_width: d.get_usize()?,
        })
    }
}

impl gb_substrate::Codec for VariantCaller {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.lstm1, e);
        gb_substrate::Codec::encode(&self.lstm2, e);
        gb_substrate::Codec::encode(&self.fc, e);
        gb_substrate::Codec::encode(&self.head_zygosity, e);
        gb_substrate::Codec::encode(&self.head_type, e);
        gb_substrate::Codec::encode(&self.head_alt, e);
        gb_substrate::Codec::encode(&self.config, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<VariantCaller> {
        Some(VariantCaller {
            lstm1: gb_substrate::Codec::decode(d)?,
            lstm2: gb_substrate::Codec::decode(d)?,
            fc: gb_substrate::Codec::decode(d)?,
            head_zygosity: gb_substrate::Codec::decode(d)?,
            head_type: gb_substrate::Codec::decode(d)?,
            head_alt: gb_substrate::Codec::decode(d)?,
            config: gb_substrate::Codec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_pileup::feature::TENSOR_LEN;

    fn tensor(fill: impl Fn(usize) -> f32) -> ClairTensor {
        ClairTensor {
            center: 100,
            data: (0..TENSOR_LEN).map(fill).collect(),
        }
    }

    #[test]
    fn outputs_are_probability_simplices() {
        let vc = VariantCaller::new(&VariantCallerConfig::default(), 1);
        let call = vc.call(&tensor(|i| (i % 9) as f32 / 9.0));
        for probs in [
            &call.zygosity_probs[..],
            &call.type_probs[..],
            &call.alt_probs[..],
        ] {
            let sum: f32 = probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let t = tensor(|i| (i % 5) as f32 / 5.0);
        let a = VariantCaller::new(&VariantCallerConfig::default(), 7).call(&t);
        let b = VariantCaller::new(&VariantCallerConfig::default(), 7).call(&t);
        assert_eq!(a, b);
        let c = VariantCaller::new(&VariantCallerConfig::default(), 8).call(&t);
        assert_ne!(a.zygosity_probs, c.zygosity_probs);
    }

    #[test]
    fn different_tensors_give_different_calls() {
        let vc = VariantCaller::new(&VariantCallerConfig::default(), 3);
        let a = vc.call(&tensor(|_| 0.0));
        let b = vc.call(&tensor(|i| ((i * 13) % 7) as f32 / 7.0));
        assert_ne!(a.zygosity_probs, b.zygosity_probs);
    }

    #[test]
    fn argmax_helpers_work() {
        let call = VariantCall {
            pos: 5,
            zygosity_probs: [0.1, 0.7, 0.2],
            type_probs: [0.1, 0.2, 0.6, 0.1],
            alt_probs: [0.0, 0.0, 0.1, 0.9],
        };
        assert_eq!(call.zygosity(), Zygosity::Het);
        assert_eq!(call.variant_type(), VariantType::Insertion);
        assert_eq!(call.alt_base(), 3);
    }

    #[test]
    fn batch_matches_singles() {
        let vc = VariantCaller::new(&VariantCallerConfig::default(), 5);
        let ts = vec![tensor(|i| i as f32 / 1000.0), tensor(|i| (i % 3) as f32)];
        let batch = vc.call_batch_probed(&ts, &mut NullProbe);
        assert_eq!(batch[0], vc.call(&ts[0]));
        assert_eq!(batch[1], vc.call(&ts[1]));
    }

    #[test]
    fn flops_scale_with_hidden_size() {
        let small = VariantCaller::new(
            &VariantCallerConfig {
                lstm_hidden: 24,
                fc_width: 48,
            },
            1,
        );
        let big = VariantCaller::new(
            &VariantCallerConfig {
                lstm_hidden: 48,
                fc_width: 96,
            },
            1,
        );
        assert!(big.flops_per_call() > small.flops_per_call() * 2);
    }

    #[test]
    fn end_to_end_from_pileup() {
        use gb_core::cigar::Cigar;
        use gb_core::quality::Phred;
        use gb_core::record::{AlignmentRecord, ReadRecord, Strand};
        use gb_core::region::{Region, RegionTask};
        use gb_core::seq::DnaSeq;
        use gb_pileup::feature::clair_tensor;
        use gb_pileup::pileup::count_pileup;
        let ref_seq = DnaSeq::from_codes_unchecked(vec![0u8; 100]);
        let reads: Vec<AlignmentRecord> = (0..8)
            .map(|i| {
                let read = ReadRecord::with_uniform_quality(
                    format!("r{i}"),
                    DnaSeq::from_codes_unchecked(vec![if i % 2 == 0 { 1u8 } else { 0 }; 40]),
                    Phred::new(30),
                );
                let cig: Cigar = "40M".parse().unwrap();
                AlignmentRecord::new(read, 0, 30, cig, 60, Strand::Forward).unwrap()
            })
            .collect();
        let task = RegionTask {
            region: Region::new(0, 0, 100),
            ref_seq: ref_seq.clone(),
            reads,
        };
        let p = count_pileup(&task);
        let t = clair_tensor(&p, &ref_seq, 50);
        let vc = VariantCaller::new(&VariantCallerConfig::default(), 11);
        let call = vc.call(&t);
        assert_eq!(call.pos, 50);
        let sum: f32 = call.zygosity_probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
}
