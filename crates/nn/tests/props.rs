//! Property-based tests for the neural-network substrate.

use gb_core::matrix::Matrix;
use gb_nn::ctc::{beam_decode, greedy_decode};
use gb_nn::layers::softmax;
use proptest::prelude::*;

/// Random CTC posterior matrix: 5 x T column-stochastic.
fn posteriors(max_t: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(0.01f32..1.0, 5), 1..max_t).prop_map(
        |cols| {
            let t = cols.len();
            let mut m = Matrix::zeros(5, t);
            for (ti, mut col) in cols.into_iter().enumerate() {
                softmax(&mut col);
                for (r, v) in col.into_iter().enumerate() {
                    m[(r, ti)] = v;
                }
            }
            m
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_always_a_distribution(xs in proptest::collection::vec(-50.0f32..50.0, 1..40)) {
        let mut v = xs;
        softmax(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn greedy_decode_never_longer_than_input(p in posteriors(50)) {
        let d = greedy_decode(&p);
        prop_assert!(d.len() <= p.cols());
        // No immediate repeats without an intervening blank is impossible
        // to check from the output alone, but the output must be valid
        // 2-bit codes.
        prop_assert!(d.as_codes().iter().all(|&c| c < 4));
    }

    #[test]
    fn beam_width_one_is_deterministic(p in posteriors(20)) {
        let a = beam_decode(&p, 1);
        let b = beam_decode(&p, 1);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn beam_decode_bounded_by_steps(p in posteriors(30), width in 1usize..6) {
        let d = beam_decode(&p, width);
        prop_assert!(d.len() <= p.cols());
    }

    #[test]
    fn confident_posteriors_decode_identically(labels in proptest::collection::vec(0usize..5, 1..25)) {
        // Near-one-hot posteriors: greedy and beam agree.
        let t = labels.len();
        let mut m = Matrix::zeros(5, t);
        for (ti, &l) in labels.iter().enumerate() {
            for r in 0..5 {
                m[(r, ti)] = if r == l { 0.96 } else { 0.01 };
            }
        }
        prop_assert_eq!(greedy_decode(&m), beam_decode(&m, 4));
    }
}

mod pore {
    use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
    use gb_nn::pore_decoder::{accuracy, viterbi_decode, PoreDecoderParams};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn clean_signals_decode_accurately(codes in proptest::collection::vec(0u8..4, 60..150), seed in 0u64..1000) {
            let seq = gb_core::seq::DnaSeq::from_codes_unchecked(codes);
            let model = PoreModel::r9_like();
            let cfg = SignalSimConfig { split_prob: 0.0, skip_prob: 0.0, ..Default::default() };
            let sig = simulate_signal(&seq, &model, &cfg, seed);
            let d = viterbi_decode(&sig.events, &model, &PoreDecoderParams::default()).expect("non-empty");
            let acc = accuracy(&d.seq, &seq);
            prop_assert!(acc > 0.9, "accuracy {acc}");
        }
    }
}
