//! Profile analytics: folding raw telemetry into a **stage tree**.
//!
//! PRs 1–3 record flat streams — Chrome-trace spans on per-worker
//! tracks, per-kernel [`MemoryRecord`]s — and this module turns them
//! into the hierarchical attribution the paper's characterization needs:
//!
//! * [`StageTree::from_trace`] nests complete (`'X'`) spans by time
//!   containment *within each track* (a span is a child of the innermost
//!   span that fully covers it), then merges identical frame paths
//!   across tracks and occurrences. Merging across tracks means values
//!   are **CPU time**: with N busy workers a kernel frame's total is ~N×
//!   its wall time, which is exactly what a flamegraph should show.
//! * [`StageTree::from_kernel_memory`] builds the same shape from
//!   manifest memory records, so the identical tooling renders a
//!   bytes-flamegraph.
//! * [`StageTree::to_collapsed`] emits the collapsed-stack format
//!   (`frame;frame;frame VALUE`, one line per frame's *self* value) that
//!   `inferno-flamegraph` / `flamegraph.pl` consume directly, and
//!   [`StageTree::rows`] yields a self-times table for terminal output.
//!
//! Self time is `total − Σ(direct children totals)` (saturating), so
//! nested spans are never double-counted: summing every collapsed line
//! reproduces the sum of the top-level span durations exactly (the
//! conservation invariant under proptest in `tests/agg_properties.rs`).
//!
//! Frames can carry free-form **annotations** (e.g. IPC / L1-miss-rate
//! strings from sampled `gb-uarch` characterization). Annotations render
//! in the self-times table only — the collapsed file stays plain
//! `path value` so downstream flamegraph tooling needs no escaping.

use crate::manifest::MemoryRecord;
use crate::trace::TraceBuffer;
use std::collections::BTreeMap;

/// One frame in the tree (named node with an inclusive total). Fields
/// are crate-visible so the sibling `render`/`diff` modules can walk
/// trees without going through an iterator API.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Node {
    /// Inclusive value: the frame's own self value plus all descendants.
    pub(crate) total: u64,
    /// Optional annotation shown in the self-times table.
    pub(crate) note: Option<String>,
    /// Child frames by name.
    pub(crate) children: BTreeMap<String, Node>,
}

impl Node {
    pub(crate) fn child_total(&self) -> u64 {
        self.children.values().map(|c| c.total).sum()
    }

    /// Self value: inclusive total minus direct children, clamped at 0
    /// (clock jitter can make children sum past a parent by nanoseconds).
    pub(crate) fn self_value(&self) -> u64 {
        self.total.saturating_sub(self.child_total())
    }
}

/// One row of the self-times table ([`StageTree::rows`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Depth in the tree (0 for top-level frames).
    pub depth: usize,
    /// Frame name (last path component).
    pub name: String,
    /// `;`-joined full path.
    pub path: String,
    /// Inclusive value.
    pub total: u64,
    /// Exclusive (self) value.
    pub self_value: u64,
    /// Annotation, when one was attached.
    pub note: Option<String>,
}

/// A merged tree of named frames with inclusive totals; see the module
/// docs for the model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTree {
    /// Unit label for tables (`"ns"`, `"bytes"`).
    unit: String,
    pub(crate) roots: BTreeMap<String, Node>,
}

/// Collapsed-stack frame names must not contain the `;` separator or
/// any whitespace (a space delimits the value, a newline delimits the
/// record — and tabs/CRs confuse downstream flamegraph tooling just the
/// same); every such byte is folded to `_`.
fn sanitize(name: &str) -> String {
    name.replace(|c: char| c == ';' || c.is_whitespace(), "_")
}

impl StageTree {
    /// An empty tree whose values are in `unit`.
    pub fn new(unit: &str) -> Self {
        StageTree {
            unit: unit.to_string(),
            roots: BTreeMap::new(),
        }
    }

    /// The unit label values are expressed in.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// True when no frames were added.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Adds `value` to the inclusive total of the frame at `path`
    /// (creating intermediate frames with zero own contribution).
    ///
    /// Only the *leaf* of the path accumulates; callers adding a parent
    /// and its children separately should add each span's own duration
    /// at its own path, which is exactly what [`from_trace`] does.
    ///
    /// [`from_trace`]: StageTree::from_trace
    pub fn add_total(&mut self, path: &[&str], value: u64) {
        let Some((first, rest)) = path.split_first() else {
            return;
        };
        let mut node = self.roots.entry(sanitize(first)).or_default();
        for part in rest {
            node = node.children.entry(sanitize(part)).or_default();
        }
        node.total += value;
    }

    /// Attaches `note` to the frame at `path` (created if absent, with a
    /// zero total).
    pub fn annotate(&mut self, path: &[&str], note: &str) {
        let Some((first, rest)) = path.split_first() else {
            return;
        };
        let mut node = self.roots.entry(sanitize(first)).or_default();
        for part in rest {
            node = node.children.entry(sanitize(part)).or_default();
        }
        node.note = Some(note.to_string());
    }

    /// Inclusive total of one top-level frame (0 when absent).
    pub fn total_of(&self, name: &str) -> u64 {
        self.roots.get(name).map_or(0, |n| n.total)
    }

    /// Sum of all top-level inclusive totals — by conservation, also the
    /// sum of every collapsed self value.
    pub fn total(&self) -> u64 {
        self.roots.values().map(|n| n.total).sum()
    }

    /// Names of the top-level frames, in sorted order.
    pub fn root_names(&self) -> Vec<String> {
        self.roots.keys().cloned().collect()
    }

    /// Folds a trace's complete spans into a tree; see the module docs
    /// for the nesting rule. Instant events and zero-length categories
    /// ride along untouched (only `ph == 'X'` spans contribute).
    pub fn from_trace(trace: &TraceBuffer, unit: &str) -> StageTree {
        let mut tree = StageTree::new(unit);
        // Group span indices per track; containment is only meaningful
        // within one timeline.
        let mut tracks: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, e) in trace.events.iter().enumerate() {
            if e.ph == 'X' {
                tracks.entry(e.tid).or_default().push(i);
            }
        }
        for idxs in tracks.values_mut() {
            // Start-time order, longest-first on ties, so an enclosing
            // span is visited before the spans it contains.
            idxs.sort_by_key(|&i| {
                let e = &trace.events[i];
                (e.ts_ns, std::cmp::Reverse(e.dur_ns))
            });
            // Stack of (end_ns, path) for the currently open ancestry.
            let mut open: Vec<(u64, Vec<String>)> = Vec::new();
            for &i in idxs.iter() {
                let e = &trace.events[i];
                let end = e.ts_ns.saturating_add(e.dur_ns);
                // Pop ancestors that ended, or that this span is not
                // fully contained in (partial overlap ⇒ sibling).
                while let Some((p_end, _)) = open.last() {
                    if e.ts_ns >= *p_end || end > *p_end {
                        open.pop();
                    } else {
                        break;
                    }
                }
                let mut path = open.last().map(|(_, p)| p.clone()).unwrap_or_default();
                path.push(sanitize(&e.name));
                {
                    let parts: Vec<&str> = path.iter().map(String::as_str).collect();
                    tree.add_total(&parts, e.dur_ns);
                }
                open.push((end, path));
            }
        }
        tree
    }

    /// Builds a bytes tree from per-kernel manifest memory records: one
    /// top-level frame per kernel valued at its peak footprint, with a
    /// `retained` child for bytes still held at span exit and a
    /// `task_peak_max` child for the largest single-task footprint.
    pub fn from_kernel_memory<'a, I>(records: I) -> StageTree
    where
        I: IntoIterator<Item = (&'a str, &'a MemoryRecord)>,
    {
        let mut tree = StageTree::new("bytes");
        for (kernel, m) in records {
            tree.add_total(&[kernel], m.peak_bytes);
            if m.end_bytes > 0 {
                tree.add_total(&[kernel, "retained"], m.end_bytes.min(m.peak_bytes));
            }
            if let Some(t) = m.task_peak_max_bytes {
                if t > 0 {
                    let budget = m.peak_bytes.saturating_sub(m.end_bytes.min(m.peak_bytes));
                    tree.add_total(&[kernel, "task_peak_max"], t.min(budget));
                }
            }
        }
        tree
    }

    /// Re-roots the whole forest under a single `name` frame whose
    /// inclusive total is `max(min_total, Σ children)` — used by
    /// `profile --flame` to put a kernel-named root valued at the
    /// kernel's wall time above its task spans, so root self time reads
    /// as non-worker (scheduler / orchestration) time.
    pub fn into_rooted(self, name: &str, min_total: u64) -> StageTree {
        let child_sum: u64 = self.roots.values().map(|n| n.total).sum();
        let mut root = Node {
            total: min_total.max(child_sum),
            note: None,
            children: self.roots,
        };
        // A child frame with the same name as the root would render as a
        // recursive stack (`x;x`), which is legal but noisy when the
        // child is just the root's own task spans.
        if root.children.len() == 1 {
            if let Some(only) = root.children.get(sanitize(name).as_str()) {
                if only.children.is_empty() {
                    let merged = only.total;
                    let mut children = BTreeMap::new();
                    children.insert(
                        "tasks".to_string(),
                        Node {
                            total: merged,
                            note: None,
                            children: BTreeMap::new(),
                        },
                    );
                    root.children = children;
                }
            }
        }
        let mut roots = BTreeMap::new();
        roots.insert(sanitize(name), root);
        StageTree {
            unit: self.unit,
            roots,
        }
    }

    /// Emits the collapsed-stack format: one `a;b;c VALUE` line per
    /// frame with a non-zero self value, where `VALUE` is the self value
    /// divided by `div` (rounded to nearest). Pass `div = 1_000` to
    /// express nanosecond trees in the micros the issue format names
    /// (`kernel;stage;substage N_micros`), `div = 1` for bytes or exact
    /// conservation checks.
    pub fn to_collapsed(&self, div: u64) -> String {
        let div = div.max(1);
        let mut out = String::new();
        let mut stack: Vec<(String, &Node)> = self
            .roots
            .iter()
            .rev()
            .map(|(k, v)| (k.clone(), v))
            .collect();
        while let Some((path, node)) = stack.pop() {
            let s = node.self_value();
            if s > 0 {
                let scaled = (s + div / 2) / div;
                out.push_str(&path);
                out.push(' ');
                out.push_str(&scaled.max(1).to_string());
                out.push('\n');
            }
            for (name, child) in node.children.iter().rev() {
                stack.push((format!("{path};{name}"), child));
            }
        }
        out
    }

    /// Lossless flat serialization: one `(path, inclusive total)` pair
    /// per frame, in depth-first name order. Every frame appears —
    /// including zero-total intermediates — so
    /// [`StageTree::from_path_totals`] reconstructs the exact tree.
    /// This is the shape manifests persist as per-kernel `stages`.
    pub fn path_totals(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        let mut stack: Vec<(String, &Node)> = self
            .roots
            .iter()
            .rev()
            .map(|(k, v)| (k.clone(), v))
            .collect();
        while let Some((path, node)) = stack.pop() {
            out.push((path.clone(), node.total));
            for (name, child) in node.children.iter().rev() {
                stack.push((format!("{path};{name}"), child));
            }
        }
        out
    }

    /// Rebuilds a tree from `(path, total)` pairs as emitted by
    /// [`StageTree::path_totals`]. Paths are split on `;`; each entry
    /// *sets* its frame's inclusive total (intermediate frames named
    /// only as prefixes start at zero). Frame names pass through the
    /// collapsed-format sanitizer, so hand-edited manifests cannot
    /// smuggle separators back in.
    pub fn from_path_totals<I>(unit: &str, entries: I) -> StageTree
    where
        I: IntoIterator<Item = (String, u64)>,
    {
        let mut tree = StageTree::new(unit);
        for (path, total) in entries {
            let mut parts = path.split(';').filter(|p| !p.is_empty());
            let Some(first) = parts.next() else {
                continue;
            };
            let mut node = tree.roots.entry(sanitize(first)).or_default();
            for part in parts {
                node = node.children.entry(sanitize(part)).or_default();
            }
            node.total = total;
        }
        tree
    }

    /// Depth-first self-times rows for terminal tables, heaviest
    /// top-level frames first, children in descending total order.
    pub fn rows(&self) -> Vec<StageRow> {
        fn walk(name: &str, path: String, depth: usize, node: &Node, out: &mut Vec<StageRow>) {
            out.push(StageRow {
                depth,
                name: name.to_string(),
                path: path.clone(),
                total: node.total,
                self_value: node.self_value(),
                note: node.note.clone(),
            });
            let mut kids: Vec<(&String, &Node)> = node.children.iter().collect();
            kids.sort_by_key(|(n, c)| (std::cmp::Reverse(c.total), (*n).clone()));
            for (n, c) in kids {
                walk(n, format!("{path};{n}"), depth + 1, c, out);
            }
        }
        let mut tops: Vec<(&String, &Node)> = self.roots.iter().collect();
        tops.sort_by_key(|(n, c)| (std::cmp::Reverse(c.total), (*n).clone()));
        let mut out = Vec::new();
        for (n, c) in tops {
            walk(n, n.clone(), 0, c, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn span(name: &str, tid: u32, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "stage".into(),
            ph: 'X',
            ts_ns: ts,
            dur_ns: dur,
            tid,
        }
    }

    #[test]
    fn nests_by_containment_per_track() {
        let trace = TraceBuffer {
            events: vec![
                span("rg", 0, 0, 100),
                span("rg:map", 0, 10, 40),
                span("rg:call", 0, 60, 30),
                // Different track: same names must merge into the same
                // paths, not new ones.
                span("rg", 1, 0, 50),
                span("rg:map", 1, 5, 20),
            ],
        };
        let t = StageTree::from_trace(&trace, "ns");
        assert_eq!(t.total_of("rg"), 150);
        let folded = t.to_collapsed(1);
        // rg self = (100-70) + (50-20) = 60; children carry their own.
        assert!(folded.contains("rg 60\n"), "folded:\n{folded}");
        assert!(folded.contains("rg;rg:map 60\n"), "folded:\n{folded}");
        assert!(folded.contains("rg;rg:call 30\n"), "folded:\n{folded}");
        // Conservation at div=1: every line sums to top-level total.
        let sum: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, t.total());
    }

    #[test]
    fn partial_overlap_is_a_sibling_not_a_child() {
        let trace = TraceBuffer {
            events: vec![span("a", 0, 0, 50), span("b", 0, 40, 30)],
        };
        let t = StageTree::from_trace(&trace, "ns");
        assert_eq!(t.total_of("a"), 50);
        assert_eq!(t.total_of("b"), 30);
        assert!(!t.to_collapsed(1).contains("a;b"));
    }

    #[test]
    fn instants_are_ignored() {
        let trace = TraceBuffer {
            events: vec![
                span("a", 0, 0, 10),
                TraceEvent {
                    name: "tick".into(),
                    cat: "instant".into(),
                    ph: 'i',
                    ts_ns: 5,
                    dur_ns: 0,
                    tid: 0,
                },
            ],
        };
        let t = StageTree::from_trace(&trace, "ns");
        assert_eq!(t.total(), 10);
        assert!(!t.to_collapsed(1).contains("tick"));
    }

    #[test]
    fn rooted_tree_absorbs_task_frames_and_reports_overhead_as_self() {
        let trace = TraceBuffer {
            events: vec![span("chain", 0, 0, 40), span("chain", 1, 0, 45)],
        };
        let t = StageTree::from_trace(&trace, "ns").into_rooted("chain", 100);
        assert_eq!(t.total_of("chain"), 100);
        let folded = t.to_collapsed(1);
        // Busy time shows under chain;tasks, overhead as chain self.
        assert!(folded.contains("chain;tasks 85\n"), "folded:\n{folded}");
        assert!(folded.contains("chain 15\n"), "folded:\n{folded}");
    }

    #[test]
    fn collapsed_values_scale_and_never_emit_zero_lines() {
        let trace = TraceBuffer {
            events: vec![span("x", 0, 0, 2_499), span("y", 0, 3_000, 600)],
        };
        let t = StageTree::from_trace(&trace, "ns");
        let folded = t.to_collapsed(1_000);
        assert!(folded.contains("x 2\n"), "folded:\n{folded}");
        // 600 ns rounds to 1 µs rather than disappearing.
        assert!(folded.contains("y 1\n"), "folded:\n{folded}");
    }

    #[test]
    fn memory_tree_carries_peak_retained_and_task_frames() {
        let rec = MemoryRecord {
            peak_bytes: 1000,
            end_bytes: 200,
            allocs: 5,
            frees: 3,
            task_peak_max_bytes: Some(300),
            task_peak_mean_bytes: Some(150),
        };
        let t = StageTree::from_kernel_memory([("fmi", &rec)]);
        assert_eq!(t.unit(), "bytes");
        assert_eq!(t.total_of("fmi"), 1000);
        let folded = t.to_collapsed(1);
        assert!(folded.contains("fmi;retained 200\n"), "folded:\n{folded}");
        assert!(
            folded.contains("fmi;task_peak_max 300\n"),
            "folded:\n{folded}"
        );
        assert!(folded.contains("fmi 500\n"), "folded:\n{folded}");
    }

    #[test]
    fn annotations_show_in_rows_not_in_collapsed_output() {
        let mut t = StageTree::new("ns");
        t.add_total(&["bsw"], 100);
        t.annotate(&["bsw"], "ipc 1.8");
        let rows = t.rows();
        assert_eq!(rows[0].note.as_deref(), Some("ipc 1.8"));
        assert!(!t.to_collapsed(1).contains("ipc"));
    }

    #[test]
    fn frame_names_are_sanitized_for_the_collapsed_format() {
        let mut t = StageTree::new("ns");
        t.add_total(&["a;b c"], 7);
        assert_eq!(t.to_collapsed(1), "a_b_c 7\n");
    }

    #[test]
    fn tabs_newlines_and_other_whitespace_are_sanitized_too() {
        // Regression: only ';' and ' ' used to be folded, so a label
        // with a tab or newline could corrupt the collapsed file (the
        // format is line- and space-delimited).
        let mut t = StageTree::new("ns");
        t.add_total(&["a\tb\nc\rd"], 3);
        assert_eq!(t.to_collapsed(1), "a_b_c_d 3\n");
        // Trace-derived frames go through the same sanitizer.
        let trace = TraceBuffer {
            events: vec![span("stage one\ntwo", 0, 0, 10)],
        };
        let folded = StageTree::from_trace(&trace, "ns").to_collapsed(1);
        assert_eq!(folded, "stage_one_two 10\n");
    }

    #[test]
    fn path_totals_round_trip_exactly() {
        let mut t = StageTree::new("ns");
        t.add_total(&["rg"], 100);
        t.add_total(&["rg", "map"], 40);
        t.add_total(&["rg", "call"], 30);
        t.add_total(&["dn", "polish", "hmm"], 7);
        let entries = t.path_totals();
        // Zero-total intermediates ("dn", "dn;polish") are listed too.
        assert!(entries.contains(&("dn".to_string(), 0)));
        assert!(entries.contains(&("dn;polish".to_string(), 0)));
        let back = StageTree::from_path_totals("ns", entries);
        assert_eq!(back, t);
        assert_eq!(back.to_collapsed(1), t.to_collapsed(1));
    }

    #[test]
    fn from_path_totals_sanitizes_and_skips_empty_paths() {
        let entries = vec![
            ("a b;c\td".to_string(), 9),
            (String::new(), 5),
            (";;".to_string(), 5),
        ];
        let t = StageTree::from_path_totals("ns", entries);
        assert_eq!(t.to_collapsed(1), "a_b;c_d 9\n");
        // The root was only ever named as a prefix, so it stays at 0.
        assert_eq!(t.total_of("a_b"), 0);
    }

    #[test]
    fn rows_order_heaviest_first() {
        let mut t = StageTree::new("ns");
        t.add_total(&["small"], 10);
        t.add_total(&["big"], 100);
        t.add_total(&["big", "kid"], 60);
        let rows = t.rows();
        assert_eq!(rows[0].name, "big");
        assert_eq!(rows[0].self_value, 40);
        assert_eq!(rows[1].name, "kid");
        assert_eq!(rows[2].name, "small");
    }
}
