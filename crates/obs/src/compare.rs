//! `genomicsbench compare`: a noise-aware perf-regression gate over two
//! [`RunManifest`]s.
//!
//! Comparisons are direction-aware (wall time up = bad, throughput down
//! = bad, peak memory up = bad) and guarded against microbenchmark
//! jitter two ways:
//!
//! 1. a **min-runtime floor** ([`CompareConfig::min_wall_ns`]) — kernels
//!    whose wall time is below the floor in *both* runs are reported but
//!    never gate, because sub-floor timings are noise-dominated;
//! 2. an **absolute slack** ([`CompareConfig::min_abs_wall_ns`]) — a
//!    relative change only counts when the absolute wall-time delta also
//!    clears the slack, so a 30% swing on a 2 ms kernel cannot fail CI
//!    while a 30% swing on a 2 s kernel always does.
//!
//! The gate is deliberately symmetric-safe: comparing a manifest against
//! itself never regresses, whatever the thresholds.
//!
//! Panic audit (2026-08): every `unwrap`/`expect` in this module sits
//! inside `#[cfg(test)]` code; the production comparison paths are
//! total over already-validated [`RunManifest`]s. Corrupt or
//! wrong-schema manifest files are rejected by the CLI's loader with
//! exit code 2 before reaching [`compare`] (covered end-to-end by
//! `crates/suite/tests/cli_corrupt_manifest.rs`).

use crate::diff::{DiffRow, TreeDiff};
use crate::manifest::{KernelRecord, RunManifest};
use serde_json::{json, Value};

/// Thresholds for [`compare`]. The defaults are tuned so that two
/// honest tiny-tier runs pass while a 20% slowdown of any
/// non-trivial kernel fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Relative change (fraction, not percent) beyond which a metric
    /// counts as a regression or improvement.
    pub rel_tolerance: f64,
    /// Kernels below this wall time in both runs never gate.
    pub min_wall_ns: u64,
    /// A wall-time change must also exceed this absolute delta to gate.
    pub min_abs_wall_ns: u64,
    /// Peak-memory comparisons ignore kernels below this footprint in
    /// both runs.
    pub min_peak_bytes: u64,
    /// Per-task peak-memory comparisons ignore kernels whose largest
    /// task footprint is below this in both runs (task footprints are
    /// orders of magnitude smaller than kernel footprints, so they get
    /// their own floor).
    pub min_task_peak_bytes: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            rel_tolerance: 0.10,
            min_wall_ns: 10_000_000,       // 10 ms
            min_abs_wall_ns: 5_000_000,    // 5 ms
            min_peak_bytes: 1 << 20,       // 1 MiB
            min_task_peak_bytes: 64 << 10, // 64 KiB
        }
    }
}

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (wall time, peak memory).
    LowerIsBetter,
    /// Larger is better (throughput).
    HigherIsBetter,
}

/// Verdict for one metric of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Ok,
    /// Moved the good way beyond tolerance.
    Improved,
    /// Moved the bad way beyond tolerance — gates CI.
    Regressed,
    /// Below the noise floor; informational only.
    BelowFloor,
    /// The baseline had no signal for this metric (zero or absent) and
    /// the candidate does — e.g. the baseline predates `mem-profile`
    /// builds or the 1.1 per-task fields. A 0 → X jump has no
    /// meaningful relative change, so it neither gates nor silently
    /// passes as "no change"; it is reported as new.
    New,
    /// Purely informational metric (e.g. `prepare_wall`): reported for
    /// visibility but never classified as regressed or improved —
    /// substrate prepare cost sits outside the measured kernel region
    /// and depends on cache state, which legitimately differs between
    /// a cold baseline run and a warm candidate run.
    Info,
}

impl Verdict {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::BelowFloor => "below-floor",
            Verdict::New => "new",
            Verdict::Info => "info",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Kernel name.
    pub kernel: String,
    /// Metric name (`wall_time`, `throughput`, `peak_memory`).
    pub metric: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
    /// `(cand - base) / base` (0 when the baseline is 0).
    pub rel_change: f64,
    /// Which way this metric should move.
    pub direction: Direction,
    /// Outcome.
    pub verdict: Verdict,
}

/// Stage-level attribution for one wall-time-regressed kernel: where
/// inside the kernel the time went. Built from the per-kernel `stages`
/// trees (schema ≥ 1.3) via [`TreeDiff`], so instead of "bsw is 12%
/// slower" the gate can say "bsw;tasks self time +9.8 ms". Only
/// produced when *both* runs carry stage data for the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAttribution {
    /// The regressed kernel.
    pub kernel: String,
    /// Root inclusive-total delta in ns (candidate − baseline) — by the
    /// conservation invariant, exactly the sum of the row self deltas.
    pub root_delta_ns: i64,
    /// All diff rows, worst self-time regressor first
    /// ([`TreeDiff::ranked`]); callers typically print the top few.
    pub rows: Vec<DiffRow>,
}

impl StageAttribution {
    /// Rebuilds the [`TreeDiff`] from the stored rows. The rows carry
    /// every frame's inclusive total on both sides, so this is lossless
    /// — callers holding only the attribution (a trend report, a parsed
    /// compare JSON) can still render the differential flamegraph.
    pub fn to_diff(&self) -> TreeDiff {
        use crate::agg::StageTree;
        use crate::diff::FrameStatus;
        let side = |keep: fn(&DiffRow) -> bool, total: fn(&DiffRow) -> u64| {
            StageTree::from_path_totals(
                "ns",
                self.rows
                    .iter()
                    .filter(|r| keep(r))
                    .map(|r| (r.path.clone(), total(r))),
            )
        };
        let base = side(|r| r.status != FrameStatus::Added, |r| r.base_total);
        let cand = side(|r| r.status != FrameStatus::Removed, |r| r.cand_total);
        TreeDiff::between(&base, &cand)
    }
}

/// Everything [`compare`] found.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompareReport {
    /// Per-kernel, per-metric verdicts.
    pub deltas: Vec<Delta>,
    /// Kernels present only in the baseline (informational).
    pub only_in_baseline: Vec<String>,
    /// Kernels present only in the candidate (informational).
    pub only_in_candidate: Vec<String>,
    /// Stage attribution per wall-time-regressed kernel, in kernel
    /// order; empty when no kernel regressed or no run carried stages.
    pub attributions: Vec<StageAttribution>,
}

impl CompareReport {
    /// The regressed deltas.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
    }

    /// Whether any metric regressed (the CI gate).
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// The stage attribution for `kernel`, when one was computed.
    pub fn attribution_for(&self, kernel: &str) -> Option<&StageAttribution> {
        self.attributions.iter().find(|a| a.kernel == kernel)
    }

    /// Machine-readable form for `compare --json`.
    pub fn to_json(&self) -> Value {
        json!({
            "regressions": self.regressions().count(),
            "deltas": self.deltas.iter().map(|d| json!({
                "kernel": d.kernel,
                "metric": d.metric,
                "base": d.base,
                "candidate": d.cand,
                "rel_change": d.rel_change,
                "verdict": d.verdict.label(),
            })).collect::<Vec<_>>(),
            "only_in_baseline": self.only_in_baseline,
            "only_in_candidate": self.only_in_candidate,
            "attributions": self.attributions.iter().map(|a| json!({
                "kernel": a.kernel,
                "root_delta_ns": a.root_delta_ns,
                "stages": a.rows.iter().map(|r| json!({
                    "path": r.path,
                    "status": r.status.label(),
                    "base_total_ns": r.base_total,
                    "cand_total_ns": r.cand_total,
                    "self_delta_ns": r.self_delta,
                    "total_delta_ns": r.total_delta,
                })).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
        })
    }
}

fn rel_change(base: f64, cand: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (cand - base) / base
    }
}

/// Classifies one metric. `gated` is false when the kernel sits below
/// the noise floor; `abs_ok` is whether the absolute-delta slack is
/// cleared.
fn verdict(rel: f64, direction: Direction, tolerance: f64, gated: bool, abs_ok: bool) -> Verdict {
    if !gated {
        return Verdict::BelowFloor;
    }
    let signed = match direction {
        Direction::LowerIsBetter => rel,   // increase is bad
        Direction::HigherIsBetter => -rel, // decrease is bad
    };
    if signed > tolerance && abs_ok {
        Verdict::Regressed
    } else if signed < -tolerance && abs_ok {
        Verdict::Improved
    } else {
        Verdict::Ok
    }
}

/// Computes `(rel_change, verdict)` for one metric, catching the
/// zero-baseline case first: a metric going 0 → X has an undefined
/// relative change (`rel_change` returns 0.0), which previously let it
/// sail through the gate as "no change". It now classifies as
/// [`Verdict::New`] — informational, never gating, never "ok".
pub(crate) fn classify(
    base: f64,
    cand: f64,
    direction: Direction,
    tolerance: f64,
    gated: bool,
    abs_ok: bool,
) -> (f64, Verdict) {
    if base == 0.0 && cand != 0.0 {
        return (0.0, Verdict::New);
    }
    let rel = rel_change(base, cand);
    (rel, verdict(rel, direction, tolerance, gated, abs_ok))
}

/// Compares `cand` against `base` under `cfg`.
pub fn compare(base: &RunManifest, cand: &RunManifest, cfg: &CompareConfig) -> CompareReport {
    let mut report = CompareReport::default();
    for (name, b) in &base.kernels {
        let Some(c) = cand.kernels.get(name) else {
            report.only_in_baseline.push(name.clone());
            continue;
        };
        // The floor looks at both runs: a kernel that crossed the floor
        // in either direction is still compared, so a regression that
        // pushes a kernel *over* the floor cannot hide below it.
        let gated = b.wall_ns.max(c.wall_ns) >= cfg.min_wall_ns;
        let abs_ok = b.wall_ns.abs_diff(c.wall_ns) >= cfg.min_abs_wall_ns;

        let (rel, v) = classify(
            b.wall_ns as f64,
            c.wall_ns as f64,
            Direction::LowerIsBetter,
            cfg.rel_tolerance,
            gated,
            abs_ok,
        );
        report.deltas.push(Delta {
            kernel: name.clone(),
            metric: "wall_time",
            base: b.wall_ns as f64,
            cand: c.wall_ns as f64,
            rel_change: rel,
            direction: Direction::LowerIsBetter,
            verdict: v,
        });

        // Wall-time regression + stage trees on both sides → attribute
        // the regression to the stages that actually slowed down.
        if v == Verdict::Regressed {
            if let (Some(bt), Some(ct)) = (b.stage_tree(), c.stage_tree()) {
                let diff = TreeDiff::between(&bt, &ct);
                report.attributions.push(StageAttribution {
                    kernel: name.clone(),
                    root_delta_ns: diff.root_delta(),
                    rows: diff.ranked(),
                });
            }
        }

        // Substrate prepare wall (schema ≥ 1.4): informational only.
        // A warm candidate against a cold baseline shows a large
        // "improvement" that says nothing about kernel performance, so
        // these rows carry [`Verdict::Info`] and can never gate.
        if let Some(cp) = c.prepare_wall_ns {
            let bp = b.prepare_wall_ns.unwrap_or(0);
            report.deltas.push(Delta {
                kernel: name.clone(),
                metric: "prepare_wall",
                base: bp as f64,
                cand: cp as f64,
                rel_change: rel_change(bp as f64, cp as f64),
                direction: Direction::LowerIsBetter,
                verdict: Verdict::Info,
            });
        }

        if c.throughput_per_s > 0.0 {
            let (rel, v) = classify(
                b.throughput_per_s,
                c.throughput_per_s,
                Direction::HigherIsBetter,
                cfg.rel_tolerance,
                gated,
                abs_ok,
            );
            report.deltas.push(Delta {
                kernel: name.clone(),
                metric: "throughput",
                base: b.throughput_per_s,
                cand: c.throughput_per_s,
                rel_change: rel,
                direction: Direction::HigherIsBetter,
                // Throughput is work/wall, so its significance guard is
                // the same wall-based one — relative throughput noise is
                // exactly relative wall noise when work is fixed.
                verdict: v,
            });
        }

        // Memory: a candidate record with no baseline counterpart (or a
        // zero baseline) is reported as New; a baseline record the
        // candidate dropped is skipped (nothing to gate on).
        let base_mem = b.memory.as_ref();
        if let Some(cm) = &c.memory {
            let base_peak = base_mem.map_or(0, |m| m.peak_bytes);
            let mem_gated = base_peak.max(cm.peak_bytes) >= cfg.min_peak_bytes;
            let (rel, v) = classify(
                base_peak as f64,
                cm.peak_bytes as f64,
                Direction::LowerIsBetter,
                cfg.rel_tolerance,
                mem_gated,
                // Allocation totals are deterministic, so no absolute
                // slack beyond the footprint floor.
                true,
            );
            report.deltas.push(Delta {
                kernel: name.clone(),
                metric: "peak_memory",
                base: base_peak as f64,
                cand: cm.peak_bytes as f64,
                rel_change: rel,
                direction: Direction::LowerIsBetter,
                verdict: v,
            });

            // Per-task attribution (schema ≥ 1.1): gate the largest
            // task footprint so a per-task blow-up hidden inside a flat
            // kernel total still trips.
            if let Some(ct) = cm.task_peak_max_bytes {
                let bt = base_mem.and_then(|m| m.task_peak_max_bytes).unwrap_or(0);
                let task_gated = bt.max(ct) >= cfg.min_task_peak_bytes;
                let (rel, v) = classify(
                    bt as f64,
                    ct as f64,
                    Direction::LowerIsBetter,
                    cfg.rel_tolerance,
                    task_gated,
                    true,
                );
                report.deltas.push(Delta {
                    kernel: name.clone(),
                    metric: "task_peak_memory",
                    base: bt as f64,
                    cand: ct as f64,
                    rel_change: rel,
                    direction: Direction::LowerIsBetter,
                    verdict: v,
                });
            }
        }
    }
    for name in cand.kernels.keys() {
        if !base.kernels.contains_key(name) {
            report.only_in_candidate.push(name.clone());
        }
    }
    report
}

/// Takes the pointwise best of `other` into `best`: min wall time, max
/// throughput, min memory peaks. When `other` holds the new best wall
/// time it also becomes the representative record (stages, latency,
/// checksum), so a later attribution diff is internally consistent with
/// the wall number being gated against.
fn fold_best(best: &mut KernelRecord, other: &KernelRecord) {
    if other.wall_ns < best.wall_ns {
        let prev = std::mem::replace(best, other.clone());
        fold_scalars(best, &prev);
    } else {
        fold_scalars(best, other);
    }
}

/// Overlays the pointwise-best scalar metrics of `other` onto `best`
/// without touching the representative fields.
fn fold_scalars(best: &mut KernelRecord, other: &KernelRecord) {
    best.wall_ns = best.wall_ns.min(other.wall_ns);
    if other.throughput_per_s > best.throughput_per_s {
        best.throughput_per_s = other.throughput_per_s;
    }
    match (&mut best.memory, &other.memory) {
        (Some(bm), Some(om)) => {
            bm.peak_bytes = bm.peak_bytes.min(om.peak_bytes);
            bm.end_bytes = bm.end_bytes.min(om.end_bytes);
            bm.task_peak_max_bytes = match (bm.task_peak_max_bytes, om.task_peak_max_bytes) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            bm.task_peak_mean_bytes = match (bm.task_peak_mean_bytes, om.task_peak_mean_bytes) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        // A baseline that ever saw memory data keeps that signal: a
        // candidate then compares against it instead of reading "new".
        (None, Some(om)) => best.memory = Some(*om),
        _ => {}
    }
}

/// Folds N baseline manifests into one synthetic best-known baseline by
/// taking, per kernel, the pointwise best of every metric: minimum wall
/// time, maximum throughput, minimum memory peaks. Kernels are the
/// union across manifests. This is what `compare --baseline-dir` gates
/// against — min-over-N kills the "lucky slow baseline" failure mode
/// where a candidate passes only because the single stored baseline had
/// a noisy bad day.
///
/// Non-kernel fields (tier, threads, git_rev, …) come from the first
/// manifest; callers should pre-filter to one comparable context, as
/// the genomicsbench CLI does. Returns `None` for an empty slice.
pub fn pointwise_min_baseline(manifests: &[RunManifest]) -> Option<RunManifest> {
    let (first, rest) = manifests.split_first()?;
    let mut acc = first.clone();
    for m in rest {
        for (name, rec) in &m.kernels {
            match acc.kernels.get_mut(name) {
                Some(best) => fold_best(best, rec),
                None => {
                    acc.kernels.insert(name.clone(), rec.clone());
                }
            }
        }
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{KernelRecord, MemoryRecord};

    fn manifest(kernels: &[(&str, u64, f64)]) -> RunManifest {
        let mut m = RunManifest::new("run", "tiny", 1);
        for (name, wall_ns, thr) in kernels {
            m.add_kernel(
                name,
                KernelRecord {
                    wall_ns: *wall_ns,
                    tasks: 10,
                    checksum: 1,
                    work_unit: "cells".into(),
                    work_total: 1000,
                    throughput_per_s: *thr,
                    latency: None,
                    utilization: None,
                    memory: None,
                    stages: None,
                    prepare_wall_ns: None,
                    cache_hit: None,
                },
            );
        }
        m
    }

    #[test]
    fn self_compare_never_regresses() {
        let m = manifest(&[("bsw", 50_000_000, 1e6), ("fmi", 500_000, 9e6)]);
        let r = compare(&m, &m, &CompareConfig::default());
        assert!(!r.has_regressions());
        assert!(r.deltas.iter().all(|d| d.rel_change == 0.0));
    }

    #[test]
    fn twenty_percent_slowdown_regresses_and_names_kernel() {
        let base = manifest(&[("phmm", 700_000_000, 1e6)]);
        let cand = manifest(&[("phmm", 840_000_000, 1e6 / 1.2)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        let regs: Vec<_> = r.regressions().collect();
        assert!(regs
            .iter()
            .any(|d| d.kernel == "phmm" && d.metric == "wall_time"));
        assert!(regs
            .iter()
            .any(|d| d.kernel == "phmm" && d.metric == "throughput"));
    }

    #[test]
    fn prepare_wall_is_informational_and_never_gates() {
        // A warm candidate (prepare 100x faster) against a cold
        // baseline: the row must appear, labelled info, and a candidate
        // whose prepare got 100x *slower* must not gate either.
        let mut base = manifest(&[("fmi", 50_000_000, 1e6)]);
        let mut cand = manifest(&[("fmi", 50_000_000, 1e6)]);
        for (m, ns) in [(&mut base, 200_000_000u64), (&mut cand, 2_000_000)] {
            let r = m.kernels.get_mut("fmi").unwrap();
            r.prepare_wall_ns = Some(ns);
            r.cache_hit = Some(ns < 10_000_000);
        }
        let warm = compare(&base, &cand, &CompareConfig::default());
        let cold = compare(&cand, &base, &CompareConfig::default());
        for r in [&warm, &cold] {
            let d = r
                .deltas
                .iter()
                .find(|d| d.metric == "prepare_wall")
                .expect("prepare_wall row present");
            assert_eq!(d.verdict, Verdict::Info);
            assert_eq!(d.verdict.label(), "info");
            assert!(!r.has_regressions());
        }
    }

    #[test]
    fn missing_baseline_prepare_wall_still_reports_info() {
        // Baseline predates schema 1.4: candidate-only prepare data is
        // still surfaced (base = 0), still non-gating.
        let base = manifest(&[("grm", 50_000_000, 1e6)]);
        let mut cand = manifest(&[("grm", 50_000_000, 1e6)]);
        cand.kernels.get_mut("grm").unwrap().prepare_wall_ns = Some(5_000_000);
        let r = compare(&base, &cand, &CompareConfig::default());
        let d = r
            .deltas
            .iter()
            .find(|d| d.metric == "prepare_wall")
            .unwrap();
        assert_eq!((d.base, d.verdict), (0.0, Verdict::Info));
        assert!(!r.has_regressions());
    }

    #[test]
    fn sub_floor_jitter_does_not_gate() {
        // 2 ms -> 3 ms is a 50% swing but far below the 10 ms floor.
        let base = manifest(&[("fmi", 2_000_000, 1e6)]);
        let cand = manifest(&[("fmi", 3_000_000, 0.66e6)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(!r.has_regressions());
        assert!(r.deltas.iter().all(|d| d.verdict == Verdict::BelowFloor));
    }

    #[test]
    fn small_absolute_delta_does_not_gate() {
        // 12% relative but only 2.4 ms absolute: inside the 5 ms slack.
        let base = manifest(&[("dbg", 20_000_000, 1e6)]);
        let cand = manifest(&[("dbg", 22_400_000, 1e6 / 1.12)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(!r.has_regressions());
    }

    #[test]
    fn speedup_reports_improvement() {
        let base = manifest(&[("grm", 100_000_000, 1e6)]);
        let cand = manifest(&[("grm", 50_000_000, 2e6)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(!r.has_regressions());
        assert!(r.deltas.iter().any(|d| d.verdict == Verdict::Improved));
    }

    #[test]
    fn disjoint_kernels_are_informational() {
        let base = manifest(&[("bsw", 50_000_000, 1e6)]);
        let cand = manifest(&[("fmi", 50_000_000, 1e6)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        assert_eq!(r.only_in_baseline, vec!["bsw".to_string()]);
        assert_eq!(r.only_in_candidate, vec!["fmi".to_string()]);
        assert!(!r.has_regressions());
    }

    fn mem(peak: u64, task_peak: Option<u64>) -> Option<MemoryRecord> {
        Some(MemoryRecord {
            peak_bytes: peak,
            end_bytes: peak / 2,
            allocs: 10,
            frees: 5,
            task_peak_max_bytes: task_peak,
            task_peak_mean_bytes: task_peak.map(|t| t / 2),
        })
    }

    #[test]
    fn memory_growth_regresses() {
        let mut base = manifest(&[("kmer-cnt", 50_000_000, 1e6)]);
        base.kernels.get_mut("kmer-cnt").unwrap().memory = mem(100 << 20, None);
        let mut cand = manifest(&[("kmer-cnt", 50_000_000, 1e6)]);
        cand.kernels.get_mut("kmer-cnt").unwrap().memory = mem(150 << 20, None);
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(r
            .regressions()
            .any(|d| d.metric == "peak_memory" && d.kernel == "kmer-cnt"));
    }

    #[test]
    fn task_peak_growth_regresses_even_when_kernel_peak_is_flat() {
        let mut base = manifest(&[("spoa", 50_000_000, 1e6)]);
        base.kernels.get_mut("spoa").unwrap().memory = mem(100 << 20, Some(1 << 20));
        let mut cand = manifest(&[("spoa", 50_000_000, 1e6)]);
        cand.kernels.get_mut("spoa").unwrap().memory = mem(100 << 20, Some(3 << 20));
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(r
            .regressions()
            .any(|d| d.metric == "task_peak_memory" && d.kernel == "spoa"));
        // The kernel-level peak itself did not move.
        assert!(!r.regressions().any(|d| d.metric == "peak_memory"));
    }

    #[test]
    fn zero_baseline_wall_time_is_new_not_ok() {
        // 0 → 50 ms: a 10% relative gate on a zero baseline is
        // meaningless, but it must not read as "no change" either.
        let base = manifest(&[("phmm", 0, 1e6)]);
        let cand = manifest(&[("phmm", 50_000_000, 1e6)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        let wall = r
            .deltas
            .iter()
            .find(|d| d.metric == "wall_time")
            .expect("wall_time compared");
        assert_eq!(wall.verdict, Verdict::New);
        assert!(!r.has_regressions(), "New is informational, not gating");
    }

    #[test]
    fn zero_baseline_peak_bytes_is_new_not_ok() {
        // Baseline recorded a memory record with a zero peak (e.g. the
        // tracker was registered but the span saw nothing); candidate
        // reports 150 MiB. Previously rel_change = 0.0 → silently "ok".
        let mut base = manifest(&[("kmer-cnt", 50_000_000, 1e6)]);
        base.kernels.get_mut("kmer-cnt").unwrap().memory = mem(0, None);
        let mut cand = manifest(&[("kmer-cnt", 50_000_000, 1e6)]);
        cand.kernels.get_mut("kmer-cnt").unwrap().memory = mem(150 << 20, None);
        let r = compare(&base, &cand, &CompareConfig::default());
        let peak = r
            .deltas
            .iter()
            .find(|d| d.metric == "peak_memory")
            .expect("peak_memory compared");
        assert_eq!(peak.verdict, Verdict::New);
        assert!(!r.has_regressions());
    }

    fn with_stages(m: &mut RunManifest, kernel: &str, stages: &[(&str, u64)]) {
        m.kernels.get_mut(kernel).unwrap().stages = Some(
            stages
                .iter()
                .map(|(p, t)| crate::manifest::StageTotal {
                    path: p.to_string(),
                    total_ns: *t,
                })
                .collect(),
        );
    }

    #[test]
    fn wall_regression_with_stages_names_the_regressing_stage() {
        let mut base = manifest(&[("bsw", 100_000_000, 1e6)]);
        with_stages(
            &mut base,
            "bsw",
            &[("bsw", 100_000_000), ("bsw;tasks", 80_000_000)],
        );
        let mut cand = manifest(&[("bsw", 140_000_000, 1e6 / 1.4)]);
        with_stages(
            &mut cand,
            "bsw",
            &[("bsw", 140_000_000), ("bsw;tasks", 118_000_000)],
        );
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(r.has_regressions());
        let a = r.attribution_for("bsw").expect("attribution computed");
        assert_eq!(a.root_delta_ns, 40_000_000);
        // tasks self grew by 38 ms, orchestration self by 2 ms — the
        // ranked table leads with the real culprit.
        assert_eq!(a.rows[0].path, "bsw;tasks");
        assert_eq!(a.rows[0].self_delta, 38_000_000);
        // Conservation: the rows fully explain the root delta.
        let sum: i64 = a.rows.iter().map(|r| r.self_delta).sum();
        assert_eq!(sum, a.root_delta_ns);
    }

    #[test]
    fn no_attribution_without_stage_data_or_without_regression() {
        // Regressed but no stages on either side.
        let base = manifest(&[("bsw", 100_000_000, 1e6)]);
        let cand = manifest(&[("bsw", 140_000_000, 1e6)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(r.has_regressions());
        assert!(r.attributions.is_empty());

        // Stages on both sides but nothing regressed.
        let mut base = manifest(&[("bsw", 100_000_000, 1e6)]);
        with_stages(&mut base, "bsw", &[("bsw", 100_000_000)]);
        let mut cand = base.clone();
        with_stages(&mut cand, "bsw", &[("bsw", 100_000_000)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(!r.has_regressions());
        assert!(r.attributions.is_empty());

        // Regressed with stages only in the candidate: attribution
        // needs both sides.
        let base = manifest(&[("bsw", 100_000_000, 1e6)]);
        let mut cand = manifest(&[("bsw", 140_000_000, 1e6)]);
        with_stages(&mut cand, "bsw", &[("bsw", 140_000_000)]);
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(r.has_regressions());
        assert!(r.attributions.is_empty());
    }

    #[test]
    fn attributions_surface_in_json() {
        let mut base = manifest(&[("bsw", 100_000_000, 1e6)]);
        with_stages(&mut base, "bsw", &[("bsw", 100_000_000)]);
        let mut cand = manifest(&[("bsw", 140_000_000, 1e6 / 1.4)]);
        with_stages(&mut cand, "bsw", &[("bsw", 140_000_000)]);
        let j = compare(&base, &cand, &CompareConfig::default()).to_json();
        assert_eq!(j["attributions"][0]["kernel"], "bsw");
        assert_eq!(j["attributions"][0]["root_delta_ns"], 40_000_000);
        assert_eq!(j["attributions"][0]["stages"][0]["path"], "bsw");
        assert_eq!(j["attributions"][0]["stages"][0]["status"], "matched");
    }

    #[test]
    fn attribution_to_diff_round_trips_the_tree_diff() {
        let mut base = manifest(&[("bsw", 100_000_000, 1e6)]);
        with_stages(
            &mut base,
            "bsw",
            &[("bsw", 100_000_000), ("bsw;old", 10_000_000)],
        );
        let mut cand = manifest(&[("bsw", 140_000_000, 1e6 / 1.4)]);
        with_stages(
            &mut cand,
            "bsw",
            &[("bsw", 140_000_000), ("bsw;new", 30_000_000)],
        );
        let r = compare(&base, &cand, &CompareConfig::default());
        let a = r.attribution_for("bsw").unwrap();
        let diff = a.to_diff();
        assert_eq!(diff.root_delta(), a.root_delta_ns);
        assert_eq!(diff.ranked(), a.rows);
    }

    #[test]
    fn pointwise_min_takes_best_of_each_metric() {
        let mut a = manifest(&[("bsw", 200_000_000, 1e6), ("fmi", 30_000_000, 5e6)]);
        a.kernels.get_mut("bsw").unwrap().memory = mem(100 << 20, Some(2 << 20));
        let mut b = manifest(&[("bsw", 160_000_000, 1.2e6), ("grm", 40_000_000, 2e6)]);
        b.kernels.get_mut("bsw").unwrap().memory = mem(120 << 20, Some(1 << 20));
        with_stages(&mut b, "bsw", &[("bsw", 160_000_000)]);

        let min = pointwise_min_baseline(&[a, b]).expect("non-empty");
        let bsw = &min.kernels["bsw"];
        assert_eq!(bsw.wall_ns, 160_000_000);
        assert_eq!(bsw.throughput_per_s, 1.2e6);
        let m = bsw.memory.as_ref().unwrap();
        assert_eq!(m.peak_bytes, 100 << 20);
        assert_eq!(m.task_peak_max_bytes, Some(1 << 20));
        // Representative fields follow the min-wall record (b's).
        assert!(bsw.stages.is_some());
        // Kernels are the union.
        assert!(min.kernels.contains_key("fmi"));
        assert!(min.kernels.contains_key("grm"));
        assert!(pointwise_min_baseline(&[]).is_none());
    }

    #[test]
    fn candidate_matching_a_single_baseline_passes_the_min_gate() {
        // Min-over-N must be a no-op for N = 1: gating against the min
        // of one manifest is gating against that manifest.
        let m = manifest(&[("bsw", 50_000_000, 1e6)]);
        let min = pointwise_min_baseline(std::slice::from_ref(&m)).unwrap();
        assert_eq!(min, m);
        let r = compare(&min, &m, &CompareConfig::default());
        assert!(!r.has_regressions());
    }

    #[test]
    fn lucky_slow_baseline_cannot_mask_a_regression() {
        // One noisy-slow baseline (200 ms) would wave the 190 ms
        // candidate through; the min over both baselines (160 ms) does
        // not.
        let slow = manifest(&[("chain", 200_000_000, 1e6)]);
        let fast = manifest(&[("chain", 160_000_000, 1.25e6)]);
        let cand = manifest(&[("chain", 190_000_000, 1.05e6)]);
        let vs_slow = compare(&slow, &cand, &CompareConfig::default());
        assert!(!vs_slow.has_regressions());
        let min = pointwise_min_baseline(&[slow, fast]).unwrap();
        let vs_min = compare(&min, &cand, &CompareConfig::default());
        assert!(vs_min.has_regressions());
    }

    #[test]
    fn memory_record_absent_in_baseline_is_new() {
        // Baselines recorded before mem-profile builds have no memory
        // record at all; the candidate's must surface as New.
        let base = manifest(&[("grm", 50_000_000, 1e6)]);
        let mut cand = manifest(&[("grm", 50_000_000, 1e6)]);
        cand.kernels.get_mut("grm").unwrap().memory = mem(64 << 20, Some(2 << 20));
        let r = compare(&base, &cand, &CompareConfig::default());
        assert!(r
            .deltas
            .iter()
            .any(|d| d.metric == "peak_memory" && d.verdict == Verdict::New));
        assert!(r
            .deltas
            .iter()
            .any(|d| d.metric == "task_peak_memory" && d.verdict == Verdict::New));
        assert!(!r.has_regressions());
    }
}
