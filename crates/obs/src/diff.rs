//! Structural stage-tree diffing: run-to-run **attribution**.
//!
//! `compare` and `trend` can say *that* a kernel regressed; this module
//! says *where*. [`TreeDiff::between`] matches frames of two
//! [`StageTree`]s by full `;`-joined path and computes, per frame, the
//! inclusive-total delta and the **self delta** (candidate self minus
//! baseline self, in signed arithmetic — a frame absent on one side
//! contributes zero there). Frames present only in the candidate are
//! [`FrameStatus::Added`], only in the baseline [`FrameStatus::Removed`].
//!
//! # Conservation
//!
//! Within one tree, self values telescope: summing `total − Σ children`
//! over every frame cancels all interior totals and leaves exactly the
//! sum of the top-level totals. Taking the difference of that identity
//! for the two trees gives the invariant this module is built on:
//!
//! > the sum of every frame's self delta — including structural adds
//! > and removes — equals the delta of the root totals.
//!
//! [`TreeDiff::self_delta_sum`] and [`TreeDiff::root_delta`] are
//! therefore always equal (property-tested in
//! `tests/diff_properties.rs`, alongside antisymmetry: `diff(a, b)`
//! deltas are the negation of `diff(b, a)`). Because the identity is
//! algebraic, no regression can "leak" between stages: whatever the gate
//! saw at the kernel root is fully distributed over the ranked rows.
//!
//! The diff renders two ways: [`TreeDiff::ranked`] is the attribution
//! table (worst self-time regressor first), and
//! [`crate::render::differential_svg`] draws the red/blue differential
//! flamegraph.

use crate::agg::{Node, StageTree};
use std::collections::BTreeMap;

/// How a frame of the diff relates to the two input trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// Present in both trees.
    Matched,
    /// Present only in the candidate.
    Added,
    /// Present only in the baseline.
    Removed,
}

impl FrameStatus {
    /// Stable lowercase label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FrameStatus::Matched => "matched",
            FrameStatus::Added => "added",
            FrameStatus::Removed => "removed",
        }
    }
}

/// One frame of the merged diff tree. Totals are `None` on the side the
/// frame does not exist in — distinct from existing with a zero total.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct DiffNode {
    pub(crate) base_total: Option<u64>,
    pub(crate) cand_total: Option<u64>,
    pub(crate) children: BTreeMap<String, DiffNode>,
}

impl DiffNode {
    pub(crate) fn status(&self) -> FrameStatus {
        match (self.base_total, self.cand_total) {
            (Some(_), Some(_)) => FrameStatus::Matched,
            (None, _) => FrameStatus::Added,
            (_, None) => FrameStatus::Removed,
        }
    }

    /// Signed baseline self value: total minus direct children, where
    /// absence counts as zero. Signed (unlike [`Node::self_value`]) so
    /// conservation is exact even on clock-jittered trees.
    pub(crate) fn base_self(&self) -> i64 {
        let kids: i64 = self
            .children
            .values()
            .map(|c| c.base_total.unwrap_or(0) as i64)
            .sum();
        self.base_total.unwrap_or(0) as i64 - kids
    }

    /// Signed candidate self value; see [`DiffNode::base_self`].
    pub(crate) fn cand_self(&self) -> i64 {
        let kids: i64 = self
            .children
            .values()
            .map(|c| c.cand_total.unwrap_or(0) as i64)
            .sum();
        self.cand_total.unwrap_or(0) as i64 - kids
    }

    pub(crate) fn self_delta(&self) -> i64 {
        self.cand_self() - self.base_self()
    }

    pub(crate) fn total_delta(&self) -> i64 {
        self.cand_total.unwrap_or(0) as i64 - self.base_total.unwrap_or(0) as i64
    }

    fn merge(base: Option<&Node>, cand: Option<&Node>) -> DiffNode {
        let mut children = BTreeMap::new();
        let mut names: Vec<&String> = Vec::new();
        if let Some(b) = base {
            names.extend(b.children.keys());
        }
        if let Some(c) = cand {
            names.extend(c.children.keys());
        }
        names.sort();
        names.dedup();
        for name in names {
            let b = base.and_then(|n| n.children.get(name));
            let c = cand.and_then(|n| n.children.get(name));
            children.insert(name.clone(), DiffNode::merge(b, c));
        }
        DiffNode {
            base_total: base.map(|n| n.total),
            cand_total: cand.map(|n| n.total),
            children,
        }
    }
}

/// One row of the attribution table ([`TreeDiff::rows`] /
/// [`TreeDiff::ranked`]). All deltas are candidate minus baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Depth in the merged tree (0 for top-level frames).
    pub depth: usize,
    /// Frame name (last path component).
    pub name: String,
    /// `;`-joined full path.
    pub path: String,
    /// Whether the frame matched or is a structural add/remove.
    pub status: FrameStatus,
    /// Baseline inclusive total (0 when absent).
    pub base_total: u64,
    /// Candidate inclusive total (0 when absent).
    pub cand_total: u64,
    /// Signed baseline self value.
    pub base_self: i64,
    /// Signed candidate self value.
    pub cand_self: i64,
    /// `cand_self − base_self`: the frame's own contribution to the
    /// root delta.
    pub self_delta: i64,
    /// `cand_total − base_total`.
    pub total_delta: i64,
}

/// A structural diff of two [`StageTree`]s; see the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TreeDiff {
    unit: String,
    pub(crate) roots: BTreeMap<String, DiffNode>,
}

impl TreeDiff {
    /// Diffs `cand` against `base`, matching frames by full path. The
    /// trees should carry the same unit (the baseline's label is kept).
    pub fn between(base: &StageTree, cand: &StageTree) -> TreeDiff {
        let mut names: Vec<&String> = base.roots.keys().chain(cand.roots.keys()).collect();
        names.sort();
        names.dedup();
        let mut roots = BTreeMap::new();
        for name in names {
            roots.insert(
                name.clone(),
                DiffNode::merge(base.roots.get(name), cand.roots.get(name)),
            );
        }
        TreeDiff {
            unit: base.unit().to_string(),
            roots,
        }
    }

    /// Unit label inherited from the inputs (`"ns"`, `"bytes"`).
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// True when both inputs were empty.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Delta of the top-level inclusive totals — what the gate saw.
    pub fn root_delta(&self) -> i64 {
        self.roots.values().map(DiffNode::total_delta).sum()
    }

    /// Sum of every frame's self delta. Identically equal to
    /// [`TreeDiff::root_delta`] (the conservation invariant).
    pub fn self_delta_sum(&self) -> i64 {
        self.rows().iter().map(|r| r.self_delta).sum()
    }

    /// Depth-first rows over the merged tree, children in name order —
    /// the deterministic traversal the SVG renderer and proptests use.
    pub fn rows(&self) -> Vec<DiffRow> {
        fn walk(name: &str, path: String, depth: usize, node: &DiffNode, out: &mut Vec<DiffRow>) {
            out.push(DiffRow {
                depth,
                name: name.to_string(),
                path: path.clone(),
                status: node.status(),
                base_total: node.base_total.unwrap_or(0),
                cand_total: node.cand_total.unwrap_or(0),
                base_self: node.base_self(),
                cand_self: node.cand_self(),
                self_delta: node.self_delta(),
                total_delta: node.total_delta(),
            });
            for (n, c) in &node.children {
                walk(n, format!("{path};{n}"), depth + 1, c, out);
            }
        }
        let mut out = Vec::new();
        for (n, c) in &self.roots {
            walk(n, n.clone(), 0, c, &mut out);
        }
        out
    }

    /// The attribution table: rows ranked worst-regressing first
    /// (descending self delta, path as the tie-break). The caller
    /// typically takes the top few rows with a positive delta.
    pub fn ranked(&self) -> Vec<DiffRow> {
        let mut rows = self.rows();
        rows.sort_by(|a, b| {
            b.self_delta
                .cmp(&a.self_delta)
                .then_with(|| a.path.cmp(&b.path))
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(entries: &[(&str, u64)]) -> StageTree {
        StageTree::from_path_totals("ns", entries.iter().map(|(p, v)| (p.to_string(), *v)))
    }

    #[test]
    fn matched_frames_carry_signed_self_deltas() {
        let base = tree(&[("k", 100), ("k;dp", 60), ("k;io", 20)]);
        let cand = tree(&[("k", 130), ("k;dp", 95), ("k;io", 15)]);
        let d = TreeDiff::between(&base, &cand);
        assert_eq!(d.root_delta(), 30);
        assert_eq!(d.self_delta_sum(), 30);
        let by_path: BTreeMap<String, DiffRow> =
            d.rows().into_iter().map(|r| (r.path.clone(), r)).collect();
        assert_eq!(by_path["k;dp"].self_delta, 35);
        assert_eq!(by_path["k;io"].self_delta, -5);
        // Root self: (130-110) - (100-80) = 0.
        assert_eq!(by_path["k"].self_delta, 0);
        assert_eq!(by_path["k"].total_delta, 30);
        assert!(by_path.values().all(|r| r.status == FrameStatus::Matched));
    }

    #[test]
    fn structural_adds_and_removes_balance_the_root_delta() {
        let base = tree(&[("k", 100), ("k;old", 40)]);
        let cand = tree(&[("k", 100), ("k;new", 40)]);
        let d = TreeDiff::between(&base, &cand);
        assert_eq!(d.root_delta(), 0);
        assert_eq!(d.self_delta_sum(), 0);
        let by_path: BTreeMap<String, DiffRow> =
            d.rows().into_iter().map(|r| (r.path.clone(), r)).collect();
        assert_eq!(by_path["k;old"].status, FrameStatus::Removed);
        assert_eq!(by_path["k;old"].self_delta, -40);
        assert_eq!(by_path["k;new"].status, FrameStatus::Added);
        assert_eq!(by_path["k;new"].self_delta, 40);
        assert_eq!(by_path["k"].self_delta, 0);
    }

    #[test]
    fn ranked_puts_the_worst_regressor_first() {
        let base = tree(&[("k", 100), ("k;a", 10), ("k;b", 10)]);
        let cand = tree(&[("k", 160), ("k;a", 60), ("k;b", 20)]);
        let ranked = TreeDiff::between(&base, &cand).ranked();
        assert_eq!(ranked[0].path, "k;a");
        assert_eq!(ranked[0].self_delta, 50);
        assert_eq!(ranked[1].path, "k;b");
    }

    #[test]
    fn diff_of_identical_trees_is_all_zero() {
        let t = tree(&[("k", 100), ("k;dp", 60)]);
        let d = TreeDiff::between(&t, &t);
        assert_eq!(d.root_delta(), 0);
        assert!(d
            .rows()
            .iter()
            .all(|r| r.self_delta == 0 && r.total_delta == 0 && r.status == FrameStatus::Matched));
    }

    #[test]
    fn empty_inputs_diff_to_empty() {
        let d = TreeDiff::between(&StageTree::new("ns"), &StageTree::new("ns"));
        assert!(d.is_empty());
        assert_eq!(d.rows().len(), 0);
        assert_eq!(d.root_delta(), 0);
    }
}
