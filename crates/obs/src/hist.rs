//! Log-bucketed latency histograms (HDR-style).
//!
//! Values are bucketed log-linearly: each power of two is split into
//! [`SUB_BUCKETS`] equal sub-buckets, so any recorded value is off by at
//! most `1/SUB_BUCKETS` (~3% relative error) while the whole `u64` range
//! fits in a fixed, merge-friendly array. Quantiles report the bucket's
//! upper bound, so they never under-estimate.

use serde::{Deserialize, Serialize};

/// Sub-buckets per power of two; bounds the relative quantile error at
/// `1/SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 32;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Total bucket count covering all of `u64`.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Bucket index for a value: identity below [`SUB_BUCKETS`], then
/// log-linear (exponent selects the bucket group, the next `SUB_BITS`
/// bits of mantissa select the sub-bucket).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let top = exp - SUB_BITS;
    let sub = (v >> top) - SUB_BUCKETS;
    ((top as u64 + 1) * SUB_BUCKETS + sub) as usize
}

/// Largest value mapping to bucket `idx` (the value quantiles report).
fn bucket_upper(idx: usize) -> u64 {
    if (idx as u64) < SUB_BUCKETS {
        return idx as u64;
    }
    let top = (idx as u64 / SUB_BUCKETS - 1) as u32;
    let sub = idx as u64 % SUB_BUCKETS;
    ((SUB_BUCKETS + sub) << top) | ((1u64 << top) - 1)
}

/// A mergeable log-bucketed histogram over `u64` samples (typically
/// nanosecond latencies).
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of the same sample.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Exact mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest sample, i.e.
    /// within `1/SUB_BUCKETS` above the true quantile. Returns 0 when
    /// empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true extremes.
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::value_at_quantile`]).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.value_at_quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Adds every sample of `other` into `self`. Merging is associative
    /// and commutative, so per-worker histograms can be combined in any
    /// order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fixed-size percentile summary for serialization.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max(),
        }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

/// Serializable percentile summary of a [`LogHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact mean.
    pub mean: f64,
    /// Median (bucket upper bound, ≤3% above true).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        // Below SUB_BUCKETS each value has its own bucket: quantiles are
        // exact.
        assert_eq!(h.value_at_quantile(1.0), SUB_BUCKETS - 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.count(), SUB_BUCKETS);
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        // Every probe value lands in a bucket whose upper bound is >= the
        // value and within 1/SUB_BUCKETS relative error above it.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + 1, v.saturating_mul(3) / 2] {
                let upper = bucket_upper(bucket_index(probe));
                assert!(upper >= probe, "upper {upper} < probe {probe}");
                let err = (upper - probe) as f64 / probe.max(1) as f64;
                assert!(
                    err <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                    "err {err} at {probe}"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn quantiles_match_sorted_reference() {
        // Deterministic pseudo-random samples (no external RNG needed).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let samples: Vec<u64> = (0..10_000).map(|_| next() % 1_000_000_000).collect();
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = h.value_at_quantile(q);
            assert!(est >= truth, "q={q}: est {est} < truth {truth}");
            let bound = truth + truth / SUB_BUCKETS + 1;
            assert!(est <= bound, "q={q}: est {est} > bound {bound}");
        }
        assert_eq!(h.max(), *sorted.last().unwrap());
        assert_eq!(h.min(), sorted[0]);
    }

    #[test]
    fn merge_equals_bulk_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.min(), all.min());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.value_at_quantile(q), all.value_at_quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
    }
}
