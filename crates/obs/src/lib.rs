//! # gb-obs
//!
//! Observability for GenomicsBench-rs: a zero-cost-when-disabled tracing
//! facade ([`Recorder`]/[`NullRecorder`]), log-bucketed latency
//! histograms ([`LogHistogram`]), a JSON-serializable metrics registry
//! ([`MetricsRegistry`]), and a Chrome trace-event exporter
//! ([`TraceBuffer`]) whose output loads in Perfetto.
//!
//! The suite's dynamic-scheduling pool records per-task latencies and
//! per-worker busy/idle time through this crate; the pipelines emit
//! stage spans; the CLI surfaces both via `--trace`, `--metrics`, and
//! the `profile` subcommand.
//!
//! On top of the live instrumentation sit the persistence and
//! comparison layers: [`manifest`] (schema-versioned [`RunManifest`]
//! artifacts with atomic writes), [`mem`] (a feature-gated
//! [`TrackingAllocator`](mem::TrackingAllocator) with thread-local
//! allocation slots, per-task [`TaskSpan`](mem::TaskSpan) epochs, and
//! cross-thread [`PoolMemStats`](mem::PoolMemStats) folding so
//! concurrent spans don't cross-talk), and [`compare`] (the noise-aware
//! regression gate behind `genomicsbench compare`).
//!
//! The profile-analytics layer folds those artifacts into higher-level
//! views: [`agg`] (stage trees and collapsed-stack flamegraph output
//! from traces and memory records, behind `profile --flame`) and
//! [`trend`] (per-kernel sparkline time series over N manifests with
//! the same noise-aware gating, behind `genomicsbench trend`).
//!
//! Differential profiling closes the attribution loop: [`render`]
//! draws self-contained SVG flamegraphs straight from stage trees
//! (`profile --flame-svg`, no external tooling), and [`diff`]
//! structurally diffs two trees — with a proven conservation invariant
//! tying per-stage self deltas to the root delta — so a failed
//! [`compare`] or [`trend`] gate can name the regressing stages and
//! emit a red/blue differential flamegraph instead of a bare
//! percentage.
//!
//! ```
//! use gb_obs::{LogHistogram, NullRecorder, Recorder};
//!
//! let mut h = LogHistogram::new();
//! for v in [120_u64, 80, 95, 4000] {
//!     h.record(v);
//! }
//! assert!(h.p99() >= h.p50());
//!
//! // The disabled recorder costs nothing and reports disabled.
//! assert!(!NullRecorder.enabled());
//! ```

// The one unsafe impl in the crate is the `GlobalAlloc` delegation in
// `mem` (feature-gated); everything else stays forbidden via deny+allow,
// and any unsafe operation inside an `unsafe fn` still needs its own
// `unsafe {}` block with a SAFETY comment (`cargo xtask lint` checks).
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod agg;
pub mod compare;
pub mod diff;
pub mod hist;
pub mod manifest;
pub mod mem;
pub mod pool;
pub mod recorder;
pub mod registry;
pub mod render;
pub mod stats;
pub mod sync;
pub mod trace;
pub mod trend;

pub use agg::{StageRow, StageTree};
pub use compare::{
    pointwise_min_baseline, CompareConfig, CompareReport, Delta, StageAttribution, Verdict,
};
pub use diff::{DiffRow, FrameStatus, TreeDiff};
pub use hist::{HistogramSummary, LogHistogram};
pub use manifest::{
    KernelRecord, ManifestError, MemoryRecord, RunManifest, StageTotal, SCHEMA_VERSION,
};
pub use mem::{MemSpan, PoolMemStats, TaskMemRecord, TaskSpan, WorkerMemTally};
pub use pool::TaskCursor;
pub use recorder::{NullRecorder, Recorder, TraceRecorder};
pub use registry::MetricsRegistry;
pub use render::{differential_svg, flamegraph_svg, Palette, RenderConfig};
pub use stats::{TaskStats, WorkerStats};
pub use trace::{TraceBuffer, TraceEvent};
pub use trend::{trend, KernelTrend, TrendContext, TrendGroup, TrendReport, TrendRun};
