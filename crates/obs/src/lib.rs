//! # gb-obs
//!
//! Observability for GenomicsBench-rs: a zero-cost-when-disabled tracing
//! facade ([`Recorder`]/[`NullRecorder`]), log-bucketed latency
//! histograms ([`LogHistogram`]), a JSON-serializable metrics registry
//! ([`MetricsRegistry`]), and a Chrome trace-event exporter
//! ([`TraceBuffer`]) whose output loads in Perfetto.
//!
//! The suite's dynamic-scheduling pool records per-task latencies and
//! per-worker busy/idle time through this crate; the pipelines emit
//! stage spans; the CLI surfaces both via `--trace`, `--metrics`, and
//! the `profile` subcommand.
//!
//! ```
//! use gb_obs::{LogHistogram, NullRecorder, Recorder};
//!
//! let mut h = LogHistogram::new();
//! for v in [120_u64, 80, 95, 4000] {
//!     h.record(v);
//! }
//! assert!(h.p99() >= h.p50());
//!
//! // The disabled recorder costs nothing and reports disabled.
//! assert!(!NullRecorder.enabled());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod recorder;
pub mod registry;
pub mod stats;
pub mod trace;

pub use hist::{HistogramSummary, LogHistogram};
pub use recorder::{NullRecorder, Recorder, TraceRecorder};
pub use registry::MetricsRegistry;
pub use stats::{TaskStats, WorkerStats};
pub use trace::{TraceBuffer, TraceEvent};
