//! Run manifests: one schema-versioned JSON artifact per suite
//! invocation, capturing everything needed to compare two runs —
//! per-kernel wall time, throughput in paper units, latency-histogram
//! summaries, worker utilization, measured memory footprint, and the
//! merged [`MetricsRegistry`](crate::MetricsRegistry) dump (runtime +
//! microarchitectural counters).
//!
//! Manifests are written atomically (temp file + rename in the target
//! directory) so a reader — `genomicsbench compare`, CI tooling — never
//! sees a half-written file, and every manifest embeds
//! [`SCHEMA_VERSION`]; loading rejects files whose major version this
//! build does not understand.
//!
//! JSON conversion is hand-rolled over [`serde_json::Value`] (rather
//! than derived) so absent optional fields are *omitted*, field order
//! is stable, and the exact shape under test in
//! `tests/manifest_schema.rs` is explicit in one place.

use crate::hist::HistogramSummary;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// Manifest schema version, `major.minor`. Bump the major for breaking
/// shape changes (readers reject them), the minor for additive ones.
///
/// History: `1.0` introduced the manifest; `1.1` added the optional
/// per-task heap-attribution fields on `memory`
/// (`task_peak_max_bytes`, `task_peak_mean_bytes`); `1.2` added the
/// optional top-level `dp_engine` field recording which DP execution
/// engine (`scalar` or `simd`) the run used; `1.3` added the optional
/// per-kernel `stages` array (flattened stage tree: `path`/`total_ns`
/// per frame) so two manifests can be diffed stage-by-stage; `1.4`
/// added the optional per-kernel `prepare_wall_ns` and `cache_hit`
/// fields recording substrate-cache prepare attribution.
pub const SCHEMA_VERSION: &str = "1.4";

/// Parses the major component of a `major.minor` schema version.
pub fn schema_major(version: &str) -> Option<u64> {
    version.split('.').next()?.parse().ok()
}

/// Why a manifest could not be loaded.
#[derive(Debug)]
pub enum ManifestError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file is not valid manifest JSON.
    Parse(String),
    /// The manifest's schema major differs from this build's.
    Version {
        /// `schema_version` found in the file.
        found: String,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "{e}"),
            ManifestError::Parse(e) => write!(f, "invalid manifest JSON: {e}"),
            ManifestError::Version { found } => write!(
                f,
                "unsupported manifest schema '{found}' (this build reads major {})",
                schema_major(SCHEMA_VERSION).unwrap_or(0)
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e)
    }
}

/// Measured heap footprint of one kernel span (requires the
/// `mem-profile` feature and the tracking allocator; see [`crate::mem`]).
///
/// All values are **span-relative and span-attributed**: they cover the
/// allocations performed by the span's own threads (the opener plus any
/// pool workers folded in), measured against the live-set at span
/// entry. Concurrent spans therefore report disjoint footprints instead
/// of absorbing each other's allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRecord {
    /// Peak bytes held live above the span's entry point, summed over
    /// the span's threads (an exact measurement single-threaded, a
    /// tight upper bound under a concurrent pool).
    pub peak_bytes: u64,
    /// Bytes still retained when the span closed (net growth, clamped
    /// at zero).
    pub end_bytes: u64,
    /// Allocations performed during the span.
    pub allocs: u64,
    /// Deallocations performed during the span.
    pub frees: u64,
    /// Largest single-task peak of the span's pool run (schema ≥ 1.1,
    /// instrumented runs only).
    pub task_peak_max_bytes: Option<u64>,
    /// Mean per-task peak of the span's pool run (schema ≥ 1.1,
    /// instrumented runs only).
    pub task_peak_mean_bytes: Option<u64>,
}

/// One frame of a kernel's flattened stage tree (schema ≥ 1.3): the
/// `;`-joined path and the frame's inclusive nanoseconds. The list is
/// exactly [`StageTree::path_totals`](crate::StageTree::path_totals)
/// output, so [`StageTree::from_path_totals`](crate::StageTree::from_path_totals)
/// reconstructs the tree losslessly for diffing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotal {
    /// `;`-joined frame path (`bsw;tasks`).
    pub path: String,
    /// Inclusive total, nanoseconds.
    pub total_ns: u64,
}

/// One kernel's results within a run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Wall-clock time, nanoseconds.
    pub wall_ns: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Order-insensitive output checksum (divergence detector).
    pub checksum: u64,
    /// Unit of `work_total` — the paper's per-kernel throughput unit
    /// (`cells`, `kmers`, `anchors`, `occ_lookups`, …).
    pub work_unit: String,
    /// Total data-parallel work across tasks, in `work_unit`s.
    pub work_total: u64,
    /// `work_total / wall seconds` — throughput in `work_unit`/s.
    pub throughput_per_s: f64,
    /// Per-task latency percentiles (instrumented runs).
    pub latency: Option<HistogramSummary>,
    /// Mean worker utilization in `[0, 1]` (instrumented runs).
    pub utilization: Option<f64>,
    /// Measured heap footprint (`mem-profile` builds only).
    pub memory: Option<MemoryRecord>,
    /// Flattened stage tree from the run's trace (instrumented runs,
    /// schema ≥ 1.3) — the data `compare`/`trend` use to attribute a
    /// regression to specific stages.
    pub stages: Option<Vec<StageTotal>>,
    /// Wall time of the kernel's prepare phase, nanoseconds (schema
    /// ≥ 1.4; absent on reports and pre-1.4 manifests).
    pub prepare_wall_ns: Option<u64>,
    /// Whether the prepare's substrate was served from the warm cache
    /// rather than built cold (schema ≥ 1.4).
    pub cache_hit: Option<bool>,
}

/// A complete, self-describing record of one suite invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Manifest schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: String,
    /// Subcommand that produced the manifest (`run`, `profile`, `report`).
    pub command: String,
    /// Suite crate version.
    pub suite_version: String,
    /// Git revision of the suite checkout, when discoverable.
    pub git_rev: Option<String>,
    /// Unix timestamp (seconds) at write time.
    pub created_unix_s: Option<u64>,
    /// Dataset tier the run used (`tiny`, `small`, `large`).
    pub tier: String,
    /// Worker threads the run used.
    pub threads: usize,
    /// DP execution engine (`scalar` or `simd`) the run used for the
    /// bsw/phmm kernels, when the producing command had one (schema
    /// ≥ 1.2; absent on reports and pre-1.2 manifests).
    pub dp_engine: Option<String>,
    /// Per-kernel results, keyed by kernel name.
    pub kernels: BTreeMap<String, KernelRecord>,
    /// Full [`MetricsRegistry`](crate::MetricsRegistry) dump: counters,
    /// gauges, histograms — including the `gb-uarch` characterization
    /// counters when the invocation gathered them. `Null` when the run
    /// collected none.
    pub metrics: Value,
}

// --- field readers over Value (shared by every from_json below) ---

fn need<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not a u64"))
}

fn need_f64(v: &Value, key: &str) -> Result<f64, String> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    Ok(need(v, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))?
        .to_string())
}

impl MemoryRecord {
    /// JSON form; absent optionals are omitted, not null.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("peak_bytes".into(), Value::from(self.peak_bytes));
        m.insert("end_bytes".into(), Value::from(self.end_bytes));
        m.insert("allocs".into(), Value::from(self.allocs));
        m.insert("frees".into(), Value::from(self.frees));
        if let Some(v) = self.task_peak_max_bytes {
            m.insert("task_peak_max_bytes".into(), Value::from(v));
        }
        if let Some(v) = self.task_peak_mean_bytes {
            m.insert("task_peak_mean_bytes".into(), Value::from(v));
        }
        Value::Object(m)
    }

    /// Parses the JSON form (the per-task fields are optional — schema
    /// 1.0 manifests omit them).
    pub fn from_json(v: &Value) -> Result<MemoryRecord, String> {
        Ok(MemoryRecord {
            peak_bytes: need_u64(v, "peak_bytes")?,
            end_bytes: need_u64(v, "end_bytes")?,
            allocs: need_u64(v, "allocs")?,
            frees: need_u64(v, "frees")?,
            task_peak_max_bytes: v.get("task_peak_max_bytes").and_then(Value::as_u64),
            task_peak_mean_bytes: v.get("task_peak_mean_bytes").and_then(Value::as_u64),
        })
    }
}

fn summary_to_json(s: &HistogramSummary) -> Value {
    let mut m = Map::new();
    m.insert("count".into(), Value::from(s.count));
    m.insert("mean".into(), Value::from(s.mean));
    m.insert("p50".into(), Value::from(s.p50));
    m.insert("p90".into(), Value::from(s.p90));
    m.insert("p99".into(), Value::from(s.p99));
    m.insert("max".into(), Value::from(s.max));
    Value::Object(m)
}

fn summary_from_json(v: &Value) -> Result<HistogramSummary, String> {
    Ok(HistogramSummary {
        count: need_u64(v, "count")?,
        mean: need_f64(v, "mean")?,
        p50: need_u64(v, "p50")?,
        p90: need_u64(v, "p90")?,
        p99: need_u64(v, "p99")?,
        max: need_u64(v, "max")?,
    })
}

impl KernelRecord {
    /// JSON form; absent optionals are omitted, not null.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("wall_ns".into(), Value::from(self.wall_ns));
        m.insert("tasks".into(), Value::from(self.tasks));
        m.insert("checksum".into(), Value::from(self.checksum));
        m.insert("work_unit".into(), Value::from(self.work_unit.as_str()));
        m.insert("work_total".into(), Value::from(self.work_total));
        m.insert(
            "throughput_per_s".into(),
            Value::from(self.throughput_per_s),
        );
        if let Some(l) = &self.latency {
            m.insert("latency".into(), summary_to_json(l));
        }
        if let Some(u) = self.utilization {
            m.insert("utilization".into(), Value::from(u));
        }
        if let Some(mem) = &self.memory {
            m.insert("memory".into(), mem.to_json());
        }
        if let Some(stages) = &self.stages {
            let rows: Vec<Value> = stages
                .iter()
                .map(|s| {
                    let mut row = Map::new();
                    row.insert("path".into(), Value::from(s.path.as_str()));
                    row.insert("total_ns".into(), Value::from(s.total_ns));
                    Value::Object(row)
                })
                .collect();
            m.insert("stages".into(), Value::Array(rows));
        }
        if let Some(ns) = self.prepare_wall_ns {
            m.insert("prepare_wall_ns".into(), Value::from(ns));
        }
        if let Some(hit) = self.cache_hit {
            m.insert("cache_hit".into(), Value::from(hit));
        }
        Value::Object(m)
    }

    /// Parses the JSON form.
    pub fn from_json(v: &Value) -> Result<KernelRecord, String> {
        Ok(KernelRecord {
            wall_ns: need_u64(v, "wall_ns")?,
            tasks: need_u64(v, "tasks")?,
            checksum: need_u64(v, "checksum")?,
            work_unit: need_str(v, "work_unit")?,
            work_total: need_u64(v, "work_total")?,
            throughput_per_s: need_f64(v, "throughput_per_s")?,
            latency: match v.get("latency") {
                Some(l) if !l.is_null() => Some(summary_from_json(l)?),
                _ => None,
            },
            utilization: v.get("utilization").and_then(Value::as_f64),
            memory: match v.get("memory") {
                Some(mv) if !mv.is_null() => Some(MemoryRecord::from_json(mv)?),
                _ => None,
            },
            stages: match v.get("stages") {
                Some(Value::Array(rows)) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        out.push(StageTotal {
                            path: need_str(row, "path")?,
                            total_ns: need_u64(row, "total_ns")?,
                        });
                    }
                    Some(out)
                }
                _ => None,
            },
            prepare_wall_ns: v.get("prepare_wall_ns").and_then(Value::as_u64),
            cache_hit: v.get("cache_hit").and_then(Value::as_bool),
        })
    }

    /// Reconstructs the kernel's [`StageTree`](crate::StageTree) from
    /// the persisted `stages` rows (`None` when the run captured none).
    pub fn stage_tree(&self) -> Option<crate::StageTree> {
        let stages = self.stages.as_ref()?;
        Some(crate::StageTree::from_path_totals(
            "ns",
            stages.iter().map(|s| (s.path.clone(), s.total_ns)),
        ))
    }

    /// Persists `tree` as the kernel's flattened `stages` rows.
    pub fn set_stage_tree(&mut self, tree: &crate::StageTree) {
        self.stages = Some(
            tree.path_totals()
                .into_iter()
                .map(|(path, total_ns)| StageTotal { path, total_ns })
                .collect(),
        );
    }
}

impl RunManifest {
    /// An empty manifest stamped with the current schema version, suite
    /// version, wall-clock time, and (when discoverable) git revision.
    pub fn new(command: &str, tier: &str, threads: usize) -> RunManifest {
        RunManifest {
            schema_version: SCHEMA_VERSION.to_string(),
            command: command.to_string(),
            suite_version: env!("CARGO_PKG_VERSION").to_string(),
            git_rev: git_revision(),
            created_unix_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .ok()
                .map(|d| d.as_secs()),
            tier: tier.to_string(),
            threads,
            dp_engine: None,
            kernels: BTreeMap::new(),
            metrics: Value::Null,
        }
    }

    /// Adds one kernel's record.
    pub fn add_kernel(&mut self, name: &str, record: KernelRecord) {
        self.kernels.insert(name.to_string(), record);
    }

    /// JSON form.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "schema_version".into(),
            Value::from(self.schema_version.as_str()),
        );
        m.insert("command".into(), Value::from(self.command.as_str()));
        m.insert(
            "suite_version".into(),
            Value::from(self.suite_version.as_str()),
        );
        if let Some(rev) = &self.git_rev {
            m.insert("git_rev".into(), Value::from(rev.as_str()));
        }
        if let Some(ts) = self.created_unix_s {
            m.insert("created_unix_s".into(), Value::from(ts));
        }
        m.insert("tier".into(), Value::from(self.tier.as_str()));
        m.insert("threads".into(), Value::from(self.threads as u64));
        if let Some(engine) = &self.dp_engine {
            m.insert("dp_engine".into(), Value::from(engine.as_str()));
        }
        let mut kernels = Map::new();
        for (name, rec) in &self.kernels {
            kernels.insert(name.clone(), rec.to_json());
        }
        m.insert("kernels".into(), Value::Object(kernels));
        m.insert("metrics".into(), self.metrics.clone());
        Value::Object(m)
    }

    /// Parses the JSON form (schema version must match in major; use
    /// [`RunManifest::load`] for files).
    pub fn from_json(v: &Value) -> Result<RunManifest, ManifestError> {
        let found = v
            .get("schema_version")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        if schema_major(&found) != schema_major(SCHEMA_VERSION) {
            return Err(ManifestError::Version { found });
        }
        let parse = || -> Result<RunManifest, String> {
            let mut kernels = BTreeMap::new();
            let kmap = need(v, "kernels")?
                .as_object()
                .ok_or("'kernels' is not an object")?;
            for (name, rec) in kmap.iter() {
                kernels.insert(
                    name.clone(),
                    KernelRecord::from_json(rec).map_err(|e| format!("kernel '{name}': {e}"))?,
                );
            }
            Ok(RunManifest {
                schema_version: found.clone(),
                command: need_str(v, "command")?,
                suite_version: need_str(v, "suite_version")?,
                git_rev: v.get("git_rev").and_then(Value::as_str).map(str::to_string),
                created_unix_s: v.get("created_unix_s").and_then(Value::as_u64),
                tier: need_str(v, "tier")?,
                threads: need_u64(v, "threads")? as usize,
                dp_engine: v
                    .get("dp_engine")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                kernels,
                metrics: v.get("metrics").cloned().unwrap_or(Value::Null),
            })
        };
        parse().map_err(ManifestError::Parse)
    }

    /// Serializes to pretty JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("manifest serializes")
    }

    /// Writes the manifest atomically (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<(), ManifestError> {
        write_bytes_atomic(path, self.to_json_string().as_bytes())?;
        Ok(())
    }

    /// Loads and validates a manifest: parse errors and unknown schema
    /// majors are rejected (a minor-version skew is accepted — the
    /// schema only grows within a major).
    pub fn load(path: &Path) -> Result<RunManifest, ManifestError> {
        let body = std::fs::read_to_string(path)?;
        let probe: Value =
            serde_json::from_str(&body).map_err(|e| ManifestError::Parse(e.to_string()))?;
        RunManifest::from_json(&probe)
    }
}

/// Cached result of the one-and-only `git` probe.
static GIT_REVISION: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
/// How many times the probe actually forked a subprocess (observable in
/// tests; must stay ≤ 1 per process).
static GIT_PROBES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Best-effort git revision of the current checkout (`None` outside a
/// repo or without git on PATH). The subprocess probe runs **at most
/// once per process** — [`RunManifest::new`] sits on instrumented run
/// paths, and forking `git` per manifest both skews timings and fails
/// noisily in sandboxes without git.
pub fn git_revision() -> Option<String> {
    GIT_REVISION
        .get_or_init(|| {
            GIT_PROBES.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            probe_git_revision()
        })
        .clone()
}

fn probe_git_revision() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

/// Writes `bytes` to `path` atomically: the content lands in a unique
/// temp file in the same directory and is renamed into place, so
/// concurrent readers see either the old file or the new one — never a
/// partial write. All `results/` artifacts go through this.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    // Unique per process+thread: concurrent writers race on the rename
    // (last one wins, each file complete), never on the temp content.
    let tmp = dir.join(format!(
        ".{file_name}.{}.{:?}.tmp",
        std::process::id(),
        std::thread::current().id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// [`write_bytes_atomic`] for a JSON value, pretty-printed.
pub fn write_json_atomic(path: &Path, json: &Value) -> std::io::Result<()> {
    let body = serde_json::to_string_pretty(json).expect("JSON serializes");
    write_bytes_atomic(path, body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gb_obs_manifest_{name}_{}", std::process::id()));
        p
    }

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("run", "tiny", 2);
        m.add_kernel(
            "chain",
            KernelRecord {
                wall_ns: 3_000_000,
                tasks: 20,
                checksum: 0x355e855,
                work_unit: "anchors".into(),
                work_total: 40_000,
                throughput_per_s: 40_000.0 / 3e-3,
                latency: None,
                utilization: Some(0.93),
                memory: None,
                stages: None,
                prepare_wall_ns: None,
                cache_hit: None,
            },
        );
        m
    }

    #[test]
    fn save_load_round_trips() {
        let path = tmp_path("round_trip");
        let m = sample();
        m.save(&path).unwrap();
        let loaded = RunManifest::load(&path).unwrap();
        assert_eq!(loaded, m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_major_is_rejected() {
        let path = tmp_path("bad_major");
        let mut m = sample();
        m.schema_version = "99.0".into();
        m.save(&path).unwrap();
        match RunManifest::load(&path) {
            Err(ManifestError::Version { found }) => assert_eq!(found, "99.0"),
            other => panic!("expected version error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn newer_minor_is_accepted() {
        let path = tmp_path("newer_minor");
        let mut m = sample();
        m.schema_version = "1.99".into();
        m.save(&path).unwrap();
        assert!(RunManifest::load(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn half_written_file_is_a_parse_error_not_a_panic() {
        let path = tmp_path("truncated");
        let full = sample().to_json_string();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            RunManifest::load(&path),
            Err(ManifestError::Parse(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_existing_content() {
        let path = tmp_path("replace");
        write_bytes_atomic(&path, b"old").unwrap();
        write_bytes_atomic(&path, b"new").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn schema_major_parses() {
        assert_eq!(schema_major("1.0"), Some(1));
        assert_eq!(schema_major("12.34"), Some(12));
        assert_eq!(schema_major("nope"), None);
    }

    #[test]
    fn full_record_round_trips_through_json() {
        let mut m = sample();
        let rec = m.kernels.get_mut("chain").unwrap();
        rec.latency = Some(HistogramSummary {
            count: 20,
            mean: 150_000.0,
            p50: 140_000,
            p90: 200_000,
            p99: 250_000,
            max: 260_000,
        });
        rec.memory = Some(MemoryRecord {
            peak_bytes: 5 << 20,
            end_bytes: 1 << 20,
            allocs: 100,
            frees: 90,
            task_peak_max_bytes: Some(512 << 10),
            task_peak_mean_bytes: Some(128 << 10),
        });
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn dp_engine_round_trips_and_stays_optional() {
        let mut m = sample();
        assert_eq!(m.dp_engine, None);
        // Absent -> omitted from the JSON object, and loads back as None.
        assert!(m.to_json().get("dp_engine").is_none());
        assert_eq!(
            RunManifest::from_json(&m.to_json()).unwrap().dp_engine,
            None
        );
        m.dp_engine = Some("simd".into());
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.dp_engine.as_deref(), Some("simd"));
        assert_eq!(back, m);
    }

    #[test]
    fn stages_round_trip_and_stay_optional() {
        let mut m = sample();
        // Absent -> omitted from the JSON, loads back as None.
        assert!(m.to_json()["kernels"]["chain"].get("stages").is_none());
        let mut tree = crate::StageTree::new("ns");
        tree.add_total(&["chain"], 3_000_000);
        tree.add_total(&["chain", "tasks"], 2_700_000);
        let rec = m.kernels.get_mut("chain").unwrap();
        rec.set_stage_tree(&tree);
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        let round = back.kernels["chain"].stage_tree().expect("stages kept");
        assert_eq!(round, tree);
        assert_eq!(round.total_of("chain"), 3_000_000);
    }

    #[test]
    fn schema_1_0_memory_record_still_parses() {
        // A 1.0-era memory object has no per-task fields; they must
        // load as None, not error.
        let v = serde_json::json!({
            "peak_bytes": 1024, "end_bytes": 512, "allocs": 3, "frees": 2,
        });
        let rec = MemoryRecord::from_json(&v).unwrap();
        assert_eq!(rec.task_peak_max_bytes, None);
        assert_eq!(rec.task_peak_mean_bytes, None);
        assert_eq!(rec.peak_bytes, 1024);
    }

    #[test]
    fn repeated_manifest_construction_probes_git_at_most_once() {
        let a = RunManifest::new("run", "tiny", 1);
        let b = RunManifest::new("run", "tiny", 2);
        let c = RunManifest::new("profile", "small", 4);
        assert_eq!(a.git_rev, b.git_rev);
        assert_eq!(b.git_rev, c.git_rev);
        // Every construction in the whole test process funnels through
        // the OnceLock, so at most one subprocess was ever forked.
        assert!(
            GIT_PROBES.load(std::sync::atomic::Ordering::SeqCst) <= 1,
            "git probe forked more than once"
        );
    }
}
