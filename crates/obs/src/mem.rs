//! Heap-footprint profiling with **thread-local allocation tracking**:
//! a [`TrackingAllocator`] that wraps the system allocator and feeds a
//! lock-free registry of per-thread counter slots, plus span types that
//! attribute allocations to the code region — and the *thread* — that
//! performed them.
//!
//! # Why thread-local
//!
//! The first version of this module kept four global atomic counters.
//! That made every `MemSpan` a *process-wide* measurement: when two
//! kernels (or two tasks inside one kernel's dynamic pool) ran
//! concurrently, each span absorbed the other's allocations and the
//! reported peaks were garbage at `--threads > 1`. The registry fixes
//! the attribution and, as a bonus, removes the shared-cache-line
//! contention: each thread's allocator hook bumps only its own slot.
//!
//! # Model
//!
//! * Every thread that *participates in measurement* owns a **slot**:
//!   monotone `alloc_bytes`/`free_bytes`/`allocs`/`frees` counters plus
//!   a resettable high-water mark of the slot's net live bytes. A slot
//!   is written only by its owning thread (the fold paths read it with
//!   relaxed atomics), claimed on first span entry, and released when
//!   the thread exits. Threads that never enter a span — and the rare
//!   allocation that lands while thread-local storage is being torn
//!   down — fall back to a shared *orphan* slot, so process-wide totals
//!   stay exact even when attribution is impossible.
//! * A [`TaskSpan`] is a **per-thread epoch**: it snapshots the owning
//!   thread's slot, resets the slot's peak, and on exit reports the
//!   bytes the thread allocated, freed, and held live *above the
//!   span's entry point*. Task spans nest (the enclosing span's peak is
//!   restored as `max(outer, inner)`), and spans on different threads
//!   are fully independent — N concurrent task spans over disjoint
//!   allocations report disjoint peaks.
//! * A [`MemSpan`] is a **cross-thread span**: a task span on the
//!   opening thread plus an explicit aggregation step.
//!   [`MemSpan::exit_with_pool`] folds the per-worker tallies that an
//!   instrumented pool run collected ([`PoolMemStats`]) into one
//!   [`MemoryRecord`], bounding the concurrent peak by
//!   `Σ_worker (retained + max task peak)`. Because only the span's own
//!   participants are folded, concurrent spans no longer cross-talk.
//!
//! All reported peaks are **span-relative** (bytes above the span's
//! entry live-set, attributed to the span's threads), not process
//! absolutes — that is the quantity that survives concurrency.
//!
//! # Machine-checked invariants
//!
//! The registry protocol lives in [`SlotRegistry`], an instantiable
//! type whose atomics come from the [`crate::sync`] facade. The process
//! uses one `'static` instance ([`TaskSpan`]/[`MemSpan`] and the
//! allocator hook route through it via TLS); the loom tests
//! (`tests/loom_mem.rs`, built under `RUSTFLAGS="--cfg loom"`) create
//! small registries inside a model and exhaustively check the
//! no-cross-talk, no-lost-allocation, epoch-nesting and no-double-fold
//! invariants across every bounded-preemption interleaving. DESIGN.md
//! ("Concurrency & safety invariants") names them all.
//!
//! Everything is gated behind the `mem-profile` cargo feature. With the
//! feature off this module still compiles — every probe returns zeros
//! and [`enabled`] is `false` — so call sites need no `cfg` of their
//! own. With the feature on, the *binary* must additionally register the
//! allocator for numbers to flow:
//!
//! ```ignore
//! #[cfg(feature = "mem-profile")]
//! #[global_allocator]
//! static ALLOC: gb_obs::mem::TrackingAllocator = gb_obs::mem::TrackingAllocator;
//! ```
//!
//! Overhead: a thread-local read plus three relaxed atomic updates per
//! allocation event, all on the owning thread's cache line (no
//! cross-core traffic in steady state). The suite's default build
//! leaves the feature off and pays nothing.

use crate::manifest::MemoryRecord;
use crate::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Whether this build can track heap usage (the `mem-profile` feature).
/// Numbers additionally require the binary to register
/// [`TrackingAllocator`] as its global allocator.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "mem-profile")
}

// --- the slot registry -------------------------------------------------

/// Fixed registry capacity of the process-wide registry. Slots are
/// recycled when threads exit, so this bounds *live* measured threads,
/// not threads over the process lifetime; overflow degrades gracefully
/// to the orphan slot.
const MAX_SLOTS: usize = 512;

/// Slot-index value meaning "not registered — use the orphan slot".
pub const UNREGISTERED: usize = usize::MAX;

/// One thread's counters. Only the owning thread writes (the orphan
/// slot is the exception — it may have many concurrent writers, which
/// is safe because every update is a single atomic RMW). Cache-line
/// sized so neighbouring slots never false-share.
///
/// `Ordering::Relaxed` is correct here — and allowlisted by
/// `cargo xtask lint` for this file only — because each counter is
/// written by one owner (or via single RMWs on the orphan slot) and the
/// fold paths only need per-counter atomicity, not cross-counter
/// ordering; the loom tests check exactly this protocol.
#[repr(align(64))]
struct Slot {
    /// Claimed by a live thread.
    in_use: AtomicBool,
    /// Monotone: bytes ever allocated by this slot's owners.
    alloc_bytes: AtomicU64,
    /// Monotone: bytes ever freed by this slot's owners.
    free_bytes: AtomicU64,
    /// Monotone: allocation events.
    allocs: AtomicU64,
    /// Monotone: deallocation events.
    frees: AtomicU64,
    /// High-water mark of `alloc_bytes - free_bytes` since the last
    /// epoch reset by the owner. `i64`: a thread that frees memory
    /// allocated elsewhere has a negative net.
    peak_net: AtomicI64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            in_use: AtomicBool::new(false),
            alloc_bytes: AtomicU64::new(0),
            free_bytes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            peak_net: AtomicI64::new(0),
        }
    }

    /// Net live bytes attributed to this slot (allocated here minus
    /// freed here; negative when the slot freed other threads' memory).
    #[inline]
    fn net(&self) -> i64 {
        self.alloc_bytes
            .load(Ordering::Relaxed)
            .wrapping_sub(self.free_bytes.load(Ordering::Relaxed)) as i64
    }

    // xtask: hot
    #[inline]
    fn record_alloc(&self, bytes: u64) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let net = (self
            .alloc_bytes
            .fetch_add(bytes, Ordering::Relaxed)
            .wrapping_add(bytes))
        .wrapping_sub(self.free_bytes.load(Ordering::Relaxed)) as i64;
        self.peak_net.fetch_max(net, Ordering::Relaxed);
    }

    // xtask: hot
    #[inline]
    fn record_free(&self, bytes: u64) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.free_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// A lock-free registry of per-thread allocation-counter slots plus one
/// shared orphan slot.
///
/// The process uses a single `'static` instance behind [`TaskSpan`],
/// [`MemSpan`], [`snapshot`] and the allocator hook; the type is public
/// (and const-generic over its capacity) so the loom model tests can
/// exhaustively check the claim/release/record/fold protocol on small
/// instances. Indices outside `0..N` — conventionally
/// [`UNREGISTERED`] — address the orphan slot, so every code path can
/// hold a plain `usize` instead of an option.
pub struct SlotRegistry<const N: usize> {
    slots: [Slot; N],
    orphan: Slot,
    /// High-water mark of claimed slot indices + 1; bounds registry folds.
    hwm: AtomicUsize,
}

impl<const N: usize> Default for SlotRegistry<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> SlotRegistry<N> {
    /// An empty registry (const: usable in statics in every cfg).
    pub const fn new() -> SlotRegistry<N> {
        SlotRegistry {
            slots: [const { Slot::new() }; N],
            orphan: Slot::new(),
            hwm: AtomicUsize::new(0),
        }
    }

    /// The slot behind an index (out-of-range indices, including
    /// [`UNREGISTERED`], map to the orphan slot).
    #[inline]
    fn slot(&self, idx: usize) -> &Slot {
        if idx < N {
            &self.slots[idx]
        } else {
            &self.orphan
        }
    }

    /// Claims a free slot for the calling thread, or `None` when the
    /// registry is exhausted (callers then route to the orphan slot via
    /// [`UNREGISTERED`]). Lock-free: one CAS per probed slot.
    pub fn claim(&self) -> Option<usize> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .in_use
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.hwm.fetch_max(i + 1, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }

    /// Releases a claimed slot for recycling. The slot's monotone
    /// counters are *not* reset — totals must survive owner turnover —
    /// which is exactly the no-lost-allocation invariant the loom tests
    /// check across release/re-claim interleavings.
    pub fn release(&self, idx: usize) {
        if idx < N {
            self.slots[idx].in_use.store(false, Ordering::Release);
        }
    }

    /// Records an allocation of `bytes` into slot `idx` (orphan slot
    /// for out-of-range indices).
    #[inline]
    pub fn record_alloc(&self, idx: usize, bytes: u64) {
        self.slot(idx).record_alloc(bytes);
    }

    /// Records a deallocation of `bytes` into slot `idx` (orphan slot
    /// for out-of-range indices).
    #[inline]
    pub fn record_free(&self, idx: usize, bytes: u64) {
        self.slot(idx).record_free(bytes);
    }

    /// Net live bytes attributed to slot `idx`.
    pub fn slot_net(&self, idx: usize) -> i64 {
        self.slot(idx).net()
    }

    /// Point-in-time fold of every claimed slot plus the orphan slot.
    pub fn snapshot(&self) -> MemSnapshot {
        let hwm = self.hwm.load(Ordering::Relaxed).min(N);
        let mut current: i64 = 0;
        let mut peak: i64 = 0;
        let mut allocs = 0u64;
        let mut frees = 0u64;
        for s in self.slots[..hwm]
            .iter()
            .chain(std::iter::once(&self.orphan))
        {
            let net = s.net();
            current += net;
            peak += s.peak_net.load(Ordering::Relaxed).max(net).max(0);
            allocs += s.allocs.load(Ordering::Relaxed);
            frees += s.frees.load(Ordering::Relaxed);
        }
        let current = current.max(0) as u64;
        MemSnapshot {
            current_bytes: current,
            peak_bytes: (peak.max(0) as u64).max(current),
            allocs,
            frees,
        }
    }

    /// Opens a measurement epoch on slot `idx`: snapshots the slot and
    /// resets its peak to the current net. Must be paired with
    /// [`SlotRegistry::span_exit`] on the same registry, from the
    /// slot-owning thread.
    pub fn span_enter(&self, idx: usize) -> SpanState {
        let s = self.slot(idx);
        let start_net = s.net();
        SpanState {
            idx,
            start_net,
            start_allocs: s.allocs.load(Ordering::Relaxed),
            start_frees: s.frees.load(Ordering::Relaxed),
            saved_peak: s.peak_net.swap(start_net, Ordering::Relaxed),
        }
    }

    /// Closes an epoch, returning the epoch's footprint and restoring
    /// the enclosing epoch's peak accounting as `max(outer, inner)`.
    pub fn span_exit(&self, state: SpanState) -> TaskMemRecord {
        let s = self.slot(state.idx);
        let net_now = s.net();
        let peak = s.peak_net.load(Ordering::Relaxed).max(net_now);
        s.peak_net.fetch_max(state.saved_peak, Ordering::Relaxed);
        TaskMemRecord {
            peak_bytes: (peak - state.start_net).max(0) as u64,
            net_bytes: net_now - state.start_net,
            allocs: s
                .allocs
                .load(Ordering::Relaxed)
                .wrapping_sub(state.start_allocs),
            frees: s
                .frees
                .load(Ordering::Relaxed)
                .wrapping_sub(state.start_frees),
        }
    }
}

/// Epoch bookkeeping returned by [`SlotRegistry::span_enter`]; the
/// borrow-free payload inside [`TaskSpan`].
#[derive(Debug, Clone, Copy)]
pub struct SpanState {
    idx: usize,
    start_net: i64,
    start_allocs: u64,
    start_frees: u64,
    saved_peak: i64,
}

/// The process-wide registry every public span/snapshot API folds.
static REGISTRY: SlotRegistry<MAX_SLOTS> = SlotRegistry::new();

thread_local! {
    /// The current thread's slot index, read on the allocation hot path.
    /// Const-initialized `Cell` — accessing it never allocates, which
    /// keeps the `GlobalAlloc` hook re-entrancy-free.
    static SLOT_IDX: Cell<usize> = const { Cell::new(UNREGISTERED) };

    /// Claims a slot on first *span* entry (normal code, where
    /// allocating is fine) and releases it when the thread exits.
    static SLOT_HANDLE: SlotHandle = SlotHandle::claim();
}

struct SlotHandle {
    idx: usize,
}

impl SlotHandle {
    fn claim() -> SlotHandle {
        // On exhaustion the index stays UNREGISTERED: the thread keeps
        // routing to the orphan slot.
        let idx = REGISTRY.claim().unwrap_or(UNREGISTERED);
        let _ = SLOT_IDX.try_with(|c| c.set(idx));
        SlotHandle { idx }
    }
}

impl Drop for SlotHandle {
    fn drop(&mut self) {
        // Stop routing this thread's allocations to the slot *before*
        // releasing it, so a new claimant never races an old owner.
        let _ = SLOT_IDX.try_with(|c| c.set(UNREGISTERED));
        REGISTRY.release(self.idx);
    }
}

/// Ensures the current thread owns a slot (claiming one if needed) and
/// returns its index. Must only be called from normal code — claiming
/// may allocate. Falls back to the orphan sentinel during TLS teardown
/// or registry exhaustion.
fn register_current_thread() -> usize {
    match SLOT_IDX.try_with(Cell::get) {
        Ok(idx) if idx != UNREGISTERED => idx,
        Ok(_) => SLOT_HANDLE.try_with(|h| h.idx).unwrap_or(UNREGISTERED),
        Err(_) => UNREGISTERED,
    }
}

/// Registers the current thread (see [`register_current_thread`]) and
/// returns its slot's absolute net live bytes. Used by instrumented
/// pools to snapshot the coordinating thread before workers start; `0`
/// without the `mem-profile` feature.
pub fn current_thread_net() -> i64 {
    if !enabled() {
        return 0;
    }
    REGISTRY.slot_net(register_current_thread())
}

// --- the allocator hook ------------------------------------------------

/// A `#[global_allocator]` shim over [`std::alloc::System`] that feeds
/// the calling thread's registry slot. Does nothing unless the
/// `mem-profile` feature is on (without it the `GlobalAlloc` impl is
/// absent, so registering the tracker in a default build is a compile
/// error rather than silent zeros).
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAllocator;

#[cfg(feature = "mem-profile")]
#[allow(unsafe_code)] // the one unsafe impl in the crate; see lib.rs
                      // SAFETY: delegates every operation verbatim to `System`; the counter
                      // updates have no effect on the returned memory. The hook only ever
                      // *reads* the const-initialized `SLOT_IDX` cell, so it cannot recurse
                      // into TLS initialization (which may itself allocate).
unsafe impl std::alloc::GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract
        // (non-zero-sized layout); forwarded unchanged to `System`.
        let p = unsafe { std::alloc::System.alloc(layout) };
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        // SAFETY: caller guarantees `ptr` was allocated by this
        // allocator with `layout`; `System` is the allocator we
        // delegated that allocation to.
        unsafe { std::alloc::System.dealloc(ptr, layout) };
        record_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller guarantees `ptr`/`layout` describe a live
        // allocation from this allocator and `new_size` is non-zero;
        // forwarded unchanged to `System`, which owns the allocation.
        let p = unsafe { std::alloc::System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            record_free(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

#[cfg(feature = "mem-profile")]
#[inline]
fn record_alloc(bytes: usize) {
    let idx = SLOT_IDX.try_with(Cell::get).unwrap_or(UNREGISTERED);
    REGISTRY.record_alloc(idx, bytes as u64);
}

#[cfg(feature = "mem-profile")]
#[inline]
fn record_free(bytes: usize) {
    let idx = SLOT_IDX.try_with(Cell::get).unwrap_or(UNREGISTERED);
    REGISTRY.record_free(idx, bytes as u64);
}

// --- snapshots ---------------------------------------------------------

/// Point-in-time fold of the whole registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Live heap bytes (sum of every slot's net, clamped at zero).
    pub current_bytes: u64,
    /// Upper bound on the peak live bytes: the sum of each slot's
    /// epoch high-water mark. Per-slot marks are exact; their sum can
    /// exceed the true simultaneous peak when threads peak at
    /// different times.
    pub peak_bytes: u64,
    /// Allocation events since process start.
    pub allocs: u64,
    /// Deallocation events since process start.
    pub frees: u64,
}

/// Folds every registered slot plus the orphan slot (all zeros without
/// `mem-profile` or when the allocator is not registered).
pub fn snapshot() -> MemSnapshot {
    REGISTRY.snapshot()
}

// --- per-thread (task) spans ------------------------------------------

/// What one [`TaskSpan`] measured: the footprint of one task on one
/// thread, relative to the span's entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskMemRecord {
    /// Peak bytes held live above the entry live-set (never negative).
    pub peak_bytes: u64,
    /// Net change in live bytes across the span (negative when the
    /// task freed more than it allocated).
    pub net_bytes: i64,
    /// Allocation events inside the span.
    pub allocs: u64,
    /// Deallocation events inside the span.
    pub frees: u64,
}

/// A measurement epoch on the **current thread's** slot. Cheap enough
/// to open per pool task; concurrent task spans on different threads
/// are fully independent. Spans on the same thread nest: exiting an
/// inner span restores the enclosing span's peak as
/// `max(outer so far, inner)`.
///
/// Enter and exit must happen on the same thread.
#[derive(Debug)]
pub struct TaskSpan {
    state: SpanState,
}

impl TaskSpan {
    /// Opens an epoch: registers the thread if needed, snapshots its
    /// slot, and resets the slot's peak to the current net.
    pub fn enter() -> TaskSpan {
        if !enabled() {
            return TaskSpan {
                state: SpanState {
                    idx: UNREGISTERED,
                    start_net: 0,
                    start_allocs: 0,
                    start_frees: 0,
                    saved_peak: 0,
                },
            };
        }
        let idx = register_current_thread();
        TaskSpan {
            state: REGISTRY.span_enter(idx),
        }
    }

    /// Closes the epoch, returning the task's footprint and restoring
    /// the enclosing epoch's peak accounting.
    pub fn exit(self) -> TaskMemRecord {
        if !enabled() {
            return TaskMemRecord::default();
        }
        REGISTRY.span_exit(self.state)
    }
}

// --- pool aggregation --------------------------------------------------

/// One worker's accumulated task-span records; folded into
/// [`PoolMemStats`] after the pool joins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerMemTally {
    /// Tasks folded in.
    pub tasks: u64,
    /// Largest single-task peak.
    pub peak_max: u64,
    /// Sum of task peaks (for the mean).
    pub peak_sum: u64,
    /// Net live-byte change across all tasks.
    pub net_bytes: i64,
    /// Allocation events across all tasks.
    pub allocs: u64,
    /// Deallocation events across all tasks.
    pub frees: u64,
}

impl WorkerMemTally {
    /// Folds one task's record in.
    pub fn add(&mut self, r: TaskMemRecord) {
        self.tasks += 1;
        self.peak_max = self.peak_max.max(r.peak_bytes);
        self.peak_sum += r.peak_bytes;
        self.net_bytes += r.net_bytes;
        self.allocs += r.allocs;
        self.frees += r.frees;
    }
}

/// Per-task heap attribution for one instrumented pool run, aggregated
/// across workers. Carried on
/// [`TaskStats::memory`](crate::TaskStats) and folded into the
/// enclosing kernel span by [`MemSpan::exit_with_pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolMemStats {
    /// Tasks measured.
    pub tasks: u64,
    /// Largest per-task peak across all workers.
    pub task_peak_max_bytes: u64,
    /// Mean per-task peak across all workers.
    pub task_peak_mean_bytes: u64,
    /// Allocation events inside tasks.
    pub allocs: u64,
    /// Deallocation events inside tasks.
    pub frees: u64,
    /// Net live-byte change across all tasks.
    pub net_bytes: i64,
    /// Upper bound on the workers' simultaneous footprint:
    /// `Σ_worker (retained + max task peak)`. At any instant each
    /// worker holds at most its retained bytes plus one in-flight
    /// task's peak, so the true concurrent peak never exceeds this.
    pub concurrent_peak_bound: u64,
    /// Whether the pool ran on the calling thread (`threads == 1`), in
    /// which case the caller's own epoch already covers the tasks.
    pub serial: bool,
    /// The calling thread's absolute slot net when the pool started;
    /// lets [`MemSpan::exit_with_pool`] place the workers' footprint on
    /// top of whatever the caller had retained by then.
    pub caller_net_at_start: i64,
}

impl PoolMemStats {
    /// Folds per-worker tallies. `caller_net_at_start` should come from
    /// [`current_thread_net`] taken just before the workers started;
    /// `serial` marks pools that ran on the calling thread.
    pub fn fold<'a>(
        caller_net_at_start: i64,
        serial: bool,
        workers: impl IntoIterator<Item = &'a WorkerMemTally>,
    ) -> PoolMemStats {
        let mut out = PoolMemStats {
            tasks: 0,
            task_peak_max_bytes: 0,
            task_peak_mean_bytes: 0,
            allocs: 0,
            frees: 0,
            net_bytes: 0,
            concurrent_peak_bound: 0,
            serial,
            caller_net_at_start,
        };
        let mut peak_sum = 0u64;
        for w in workers {
            out.tasks += w.tasks;
            out.allocs += w.allocs;
            out.frees += w.frees;
            out.net_bytes += w.net_bytes;
            out.task_peak_max_bytes = out.task_peak_max_bytes.max(w.peak_max);
            peak_sum += w.peak_sum;
            out.concurrent_peak_bound += w.net_bytes.max(0) as u64 + w.peak_max;
        }
        out.task_peak_mean_bytes = peak_sum.checked_div(out.tasks).unwrap_or(0);
        out
    }
}

// --- cross-thread (kernel) spans --------------------------------------

/// A kernel- or stage-level measurement scope: a [`TaskSpan`] on the
/// opening thread plus an explicit cross-thread aggregation step. Exit
/// with [`MemSpan::exit`] when everything ran on this thread, or with
/// [`MemSpan::exit_with_pool`] to fold the per-worker tallies of an
/// instrumented pool run. Only the span's own participants are folded,
/// so concurrent spans (other kernels, other tasks) never contribute.
#[derive(Debug)]
pub struct MemSpan {
    own: TaskSpan,
}

impl MemSpan {
    /// Opens a span on the current thread.
    pub fn enter() -> MemSpan {
        MemSpan {
            own: TaskSpan::enter(),
        }
    }

    /// Closes the span. The record covers this thread's allocations
    /// only — use [`MemSpan::exit_with_pool`] after a multi-threaded
    /// pool run.
    pub fn exit(self) -> MemoryRecord {
        self.exit_with_pool(None)
    }

    /// Closes the span, folding the per-worker memory tallies of a pool
    /// run that happened inside it. `peak_bytes` is the span-relative
    /// peak: this thread's own epoch peak, or — when workers ran
    /// concurrently — the caller's retained bytes at pool start plus
    /// the workers' concurrent-footprint bound, whichever is larger.
    pub fn exit_with_pool(self, pool: Option<&PoolMemStats>) -> MemoryRecord {
        let start_net = self.own.state.start_net;
        let own = self.own.exit();
        let (peak_bytes, net, allocs, frees) = match pool {
            // Serial pools ran on this thread: the own epoch already
            // saw every task allocation — folding would double-count.
            None => (own.peak_bytes, own.net_bytes, own.allocs, own.frees),
            Some(p) if p.serial => (own.peak_bytes, own.net_bytes, own.allocs, own.frees),
            Some(p) => {
                let own_net_at_pool = (p.caller_net_at_start - start_net).max(0) as u64;
                (
                    own.peak_bytes
                        .max(own_net_at_pool + p.concurrent_peak_bound),
                    own.net_bytes + p.net_bytes,
                    own.allocs + p.allocs,
                    own.frees + p.frees,
                )
            }
        };
        MemoryRecord {
            peak_bytes,
            end_bytes: net.max(0) as u64,
            allocs,
            frees,
            task_peak_max_bytes: pool.map(|p| p.task_peak_max_bytes),
            task_peak_mean_bytes: pool.map(|p| p.task_peak_mean_bytes),
        }
    }
}

/// Renders a byte count with a binary-unit suffix (`3.2 MiB`).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bytes_picks_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 + 200 * 1024), "3.2 MiB");
    }

    #[test]
    fn snapshot_peak_never_below_current() {
        let s = snapshot();
        assert!(s.peak_bytes >= s.current_bytes);
    }

    #[test]
    fn registry_claims_are_unique_and_recyclable() {
        let reg = SlotRegistry::<3>::new();
        let a = reg.claim().unwrap();
        let b = reg.claim().unwrap();
        let c = reg.claim().unwrap();
        assert_eq!({ [a, b, c] }, [0, 1, 2]);
        assert_eq!(reg.claim(), None, "exhausted registry must say so");
        reg.release(b);
        assert_eq!(reg.claim(), Some(b), "released slot is recycled");
    }

    #[test]
    fn registry_totals_survive_owner_turnover() {
        // The no-lost-allocation invariant, sequentially: an owner
        // allocates, dies (releases), and the memory is freed later by
        // a different owner of a different slot — totals still balance.
        let reg = SlotRegistry::<2>::new();
        let a = reg.claim().unwrap();
        reg.record_alloc(a, 640);
        reg.release(a);
        let b = reg.claim().unwrap();
        reg.record_free(b, 640);
        let snap = reg.snapshot();
        assert_eq!(snap.current_bytes, 0);
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.frees, 1);
    }

    #[test]
    fn orphan_routing_balances() {
        // UNREGISTERED (and any out-of-range index) routes to the
        // orphan slot, which keeps process totals exact.
        let reg = SlotRegistry::<1>::new();
        reg.record_alloc(UNREGISTERED, 100);
        reg.record_free(7, 40); // out-of-range == orphan too
        let snap = reg.snapshot();
        assert_eq!(snap.current_bytes, 60);
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.frees, 1);
    }

    #[test]
    fn span_nesting_restores_outer_peak() {
        let reg = SlotRegistry::<1>::new();
        let idx = reg.claim().unwrap();
        let outer = reg.span_enter(idx);
        reg.record_alloc(idx, 100);
        let inner = reg.span_enter(idx);
        reg.record_alloc(idx, 300);
        reg.record_free(idx, 300);
        let ir = reg.span_exit(inner);
        assert_eq!(ir.peak_bytes, 300, "inner sees only its own transient");
        assert_eq!(ir.net_bytes, 0);
        reg.record_free(idx, 100);
        let or = reg.span_exit(outer);
        assert_eq!(or.peak_bytes, 400, "outer peak includes the inner's");
        assert_eq!(or.net_bytes, 0);
        assert_eq!(or.allocs, 2);
        assert_eq!(or.frees, 2);
    }

    #[test]
    fn pool_stats_fold_aggregates_workers() {
        let w1 = WorkerMemTally {
            tasks: 2,
            peak_max: 100,
            peak_sum: 150,
            net_bytes: 20,
            allocs: 4,
            frees: 3,
        };
        let w2 = WorkerMemTally {
            tasks: 1,
            peak_max: 300,
            peak_sum: 300,
            net_bytes: -10,
            allocs: 2,
            frees: 5,
        };
        let p = PoolMemStats::fold(7, false, [&w1, &w2]);
        assert_eq!(p.tasks, 3);
        assert_eq!(p.task_peak_max_bytes, 300);
        assert_eq!(p.task_peak_mean_bytes, 150);
        assert_eq!(p.allocs, 6);
        assert_eq!(p.frees, 8);
        assert_eq!(p.net_bytes, 10);
        // Worker 2's negative net clamps to 0 in the concurrency bound:
        // (20 + 100) for worker 1, (0 + 300) for worker 2.
        assert_eq!(p.concurrent_peak_bound, 420);
        assert_eq!(p.caller_net_at_start, 7);
        assert!(!p.serial);
    }

    #[test]
    fn empty_fold_is_zero() {
        let p = PoolMemStats::fold(0, true, []);
        assert_eq!(p.tasks, 0);
        assert_eq!(p.task_peak_mean_bytes, 0);
        assert_eq!(p.concurrent_peak_bound, 0);
    }

    // Behaviour with the allocator actually registered is covered by the
    // feature-gated integration tests `tests/mem_tracking.rs` and
    // `tests/mem_stress.rs` (run via
    // `cargo test -p gb-obs --features mem-profile`); the concurrency
    // protocol is model-checked by `tests/loom_mem.rs` under
    // `RUSTFLAGS="--cfg loom"`.
}
