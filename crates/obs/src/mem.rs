//! Heap-footprint profiling: a [`TrackingAllocator`] that wraps the
//! system allocator and counts live bytes, peak bytes, and
//! allocation/deallocation events, plus [`MemSpan`] scopes that report
//! the peak observed within a region (one kernel, one pipeline stage).
//!
//! Everything is gated behind the `mem-profile` cargo feature. With the
//! feature off this module still compiles — every probe returns zeros
//! and [`enabled`] is `false` — so call sites need no `cfg` of their
//! own. With the feature on, the *binary* must additionally register the
//! allocator for numbers to flow:
//!
//! ```ignore
//! #[cfg(feature = "mem-profile")]
//! #[global_allocator]
//! static ALLOC: gb_obs::mem::TrackingAllocator = gb_obs::mem::TrackingAllocator;
//! ```
//!
//! Overhead: four relaxed atomic updates per allocation/deallocation
//! (roughly 5–15% on allocation-heavy kernels, unmeasurable on
//! compute-bound ones), which is why the suite's default build leaves
//! the feature off and the `obs_overhead` bench guards the default
//! path. Span accounting assumes spans are entered sequentially (the
//! CLI measures one kernel at a time); allocations from unrelated
//! concurrent threads land in whichever span is open.

use crate::manifest::MemoryRecord;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live heap bytes.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`] since the last span reset.
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Allocation events.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Deallocation events.
static FREES: AtomicU64 = AtomicU64::new(0);

/// Whether this build can track heap usage (the `mem-profile` feature).
/// Numbers additionally require the binary to register
/// [`TrackingAllocator`] as its global allocator.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "mem-profile")
}

/// A `#[global_allocator]` shim over [`std::alloc::System`] that feeds
/// the module's counters. Does nothing unless the `mem-profile` feature
/// is on (without it the `GlobalAlloc` impl is absent, so registering
/// the tracker in a default build is a compile error rather than silent
/// zeros).
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAllocator;

#[cfg(feature = "mem-profile")]
#[allow(unsafe_code)]
// SAFETY: delegates every operation verbatim to `System`; the counter
// updates have no effect on the returned memory.
unsafe impl std::alloc::GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout);
        record_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = std::alloc::System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            record_free(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

#[cfg(feature = "mem-profile")]
#[inline]
fn record_alloc(bytes: usize) {
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(feature = "mem-profile")]
#[inline]
fn record_free(bytes: usize) {
    CURRENT.fetch_sub(bytes, Ordering::Relaxed);
    FREES.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time view of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Live heap bytes.
    pub current_bytes: u64,
    /// Peak live bytes since the innermost open span began (or since
    /// process start when no span ever opened).
    pub peak_bytes: u64,
    /// Allocation events since process start.
    pub allocs: u64,
    /// Deallocation events since process start.
    pub frees: u64,
}

/// Reads the counters (all zeros without `mem-profile` or when the
/// allocator is not registered).
pub fn snapshot() -> MemSnapshot {
    let current = CURRENT.load(Ordering::Relaxed) as u64;
    MemSnapshot {
        current_bytes: current,
        // The peak can lag a racing allocation's fetch_max; never report
        // a peak below the live total.
        peak_bytes: (PEAK.load(Ordering::Relaxed) as u64).max(current),
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
    }
}

/// A measurement scope: peak-bytes tracking restarts at entry, and
/// [`MemSpan::exit`] reports the footprint of everything that happened
/// inside. Spans nest — exiting restores the enclosing span's peak as
/// `max(outer peak so far, inner peak)`, so an outer span always
/// reports at least what any inner span saw.
#[derive(Debug)]
pub struct MemSpan {
    start: MemSnapshot,
    saved_peak: usize,
}

impl MemSpan {
    /// Opens a span: snapshots the counters and resets peak tracking to
    /// the current live total.
    pub fn enter() -> MemSpan {
        let start = snapshot();
        let saved_peak = PEAK.swap(start.current_bytes as usize, Ordering::Relaxed);
        MemSpan { start, saved_peak }
    }

    /// Closes the span, returning its footprint and restoring the
    /// enclosing span's peak accounting.
    pub fn exit(self) -> MemoryRecord {
        let end = snapshot();
        PEAK.fetch_max(self.saved_peak, Ordering::Relaxed);
        MemoryRecord {
            peak_bytes: end.peak_bytes,
            end_bytes: end.current_bytes,
            allocs: end.allocs - self.start.allocs,
            frees: end.frees - self.start.frees,
        }
    }
}

/// Renders a byte count with a binary-unit suffix (`3.2 MiB`).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bytes_picks_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 + 200 * 1024), "3.2 MiB");
    }

    #[test]
    fn snapshot_peak_never_below_current() {
        let s = snapshot();
        assert!(s.peak_bytes >= s.current_bytes);
    }

    // Behavior with the allocator actually registered is covered by the
    // feature-gated integration test `tests/mem_tracking.rs` (run via
    // `cargo test -p gb-obs --features mem-profile`).
}
