//! Lock-free work distribution for the suite's dynamic pool: a
//! [`TaskCursor`] that hands out task indices exactly once and supports
//! cooperative early shutdown.
//!
//! The suite's `run_dynamic` workers used to inline a bare
//! `AtomicUsize::fetch_add` claim loop. Hoisting the protocol into this
//! crate (behind the [`crate::sync`] facade) buys two things: the
//! claim/close protocol is model-checked by `tests/loom_pool.rs` under
//! `RUSTFLAGS="--cfg loom"` — exactly-once claiming, no lost tasks, and
//! shutdown monotonicity across every bounded-preemption interleaving —
//! and the suite's scheduler code reads as intent (`claim`/`close`)
//! rather than raw atomics.

use crate::sync::atomic::{AtomicUsize, Ordering};

/// A monotonically advancing cursor over the task range `0..limit`.
///
/// Workers call [`TaskCursor::claim`] in a loop; each call returns a
/// distinct index (exactly-once, across any number of threads) until the
/// range is exhausted or the cursor is [closed](TaskCursor::close).
/// `Ordering::Relaxed` suffices — and is allowlisted by
/// `cargo xtask lint` for this file — because the only property the
/// protocol needs is the atomicity of `fetch_add`/`fetch_max`: claiming
/// establishes no happens-before edge with the task *data*, which the
/// pool publishes before spawning and reads back only after joining.
#[derive(Debug)]
pub struct TaskCursor {
    next: AtomicUsize,
    limit: usize,
}

impl TaskCursor {
    /// A cursor over `0..limit`.
    pub const fn new(limit: usize) -> TaskCursor {
        TaskCursor {
            next: AtomicUsize::new(0),
            limit,
        }
    }

    /// Total number of tasks this cursor distributes.
    #[inline]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Claims the next unclaimed task index, or `None` once the range
    /// is exhausted or the cursor closed. Each index in `0..limit` is
    /// returned to exactly one caller.
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx < self.limit {
            Some(idx)
        } else {
            // Keep the counter from creeping far past `limit` under
            // repeated polling (overflow is a theoretical concern only,
            // but saturating costs nothing on the cold path).
            self.next.fetch_max(self.limit, Ordering::Relaxed);
            None
        }
    }

    /// Closes the cursor: every subsequent [`TaskCursor::claim`] (on
    /// any thread) returns `None`. Tasks already claimed are
    /// unaffected — shutdown is cooperative, not preemptive. Closing is
    /// idempotent and monotone: a cursor never reopens.
    pub fn close(&self) {
        self.next.fetch_max(self.limit, Ordering::Relaxed);
    }

    /// Whether every index has been claimed or the cursor was closed.
    pub fn is_exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_each_index_exactly_once_serially() {
        let c = TaskCursor::new(3);
        assert_eq!(c.claim(), Some(0));
        assert_eq!(c.claim(), Some(1));
        assert!(!c.is_exhausted());
        assert_eq!(c.claim(), Some(2));
        assert_eq!(c.claim(), None);
        assert_eq!(c.claim(), None, "exhaustion is sticky");
        assert!(c.is_exhausted());
    }

    #[test]
    fn close_stops_further_claims() {
        let c = TaskCursor::new(10);
        assert_eq!(c.claim(), Some(0));
        c.close();
        assert_eq!(c.claim(), None);
        assert!(c.is_exhausted());
        c.close(); // idempotent
        assert_eq!(c.claim(), None);
    }

    #[test]
    fn empty_cursor_is_born_exhausted() {
        let c = TaskCursor::new(0);
        assert!(c.is_exhausted());
        assert_eq!(c.claim(), None);
        assert_eq!(c.limit(), 0);
    }

    #[test]
    fn concurrent_claims_partition_the_range() {
        // Sequentially-consistent sanity check with real threads; the
        // exhaustive interleaving proof lives in tests/loom_pool.rs.
        const TASKS: usize = 1000;
        let c = std::sync::Arc::new(TaskCursor::new(TASKS));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(i) = c.claim() {
                    got.push(i);
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..TASKS).collect::<Vec<_>>());
    }
}
