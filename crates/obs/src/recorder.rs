//! The tracing facade: a [`Recorder`] that instrumented code calls into,
//! with a no-op [`NullRecorder`] that compiles away entirely.
//!
//! This mirrors the `Probe`/`NullProbe` pattern in `gb-uarch`: every
//! trait method has an inlined empty default, so generic call sites
//! instantiated with [`NullRecorder`] carry zero cost, and hot loops can
//! additionally gate timestamp capture on [`Recorder::enabled`].

use crate::trace::{TraceBuffer, TraceEvent};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Sink for structured runtime events. All methods default to inlined
/// no-ops; implementations override what they care about.
///
/// Timestamps are nanoseconds since the recorder's epoch, obtained from
/// [`Recorder::now_ns`] so all events recorded through one recorder
/// share a timebase.
pub trait Recorder: Sync {
    /// Whether events are being kept. Hot paths may skip timestamp
    /// capture when this is `false`.
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    /// Current time in nanoseconds since the recorder's epoch (0 when
    /// disabled).
    #[inline(always)]
    fn now_ns(&self) -> u64 {
        0
    }

    /// Records a completed span (`name` within category `cat`, on lane
    /// `track`, covering `[start_ns, start_ns + dur_ns)`).
    #[inline(always)]
    fn span(&self, _name: &str, _cat: &str, _track: u32, _start_ns: u64, _dur_ns: u64) {}

    /// Records a point-in-time event.
    #[inline(always)]
    fn instant(&self, _name: &str, _track: u32, _ts_ns: u64) {}

    /// Adds `delta` to the named counter.
    #[inline(always)]
    fn counter(&self, _name: &str, _delta: u64) {}
}

/// The zero-cost recorder: every call inlines to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

#[derive(Default)]
struct TraceInner {
    events: Vec<TraceEvent>,
    counters: BTreeMap<String, u64>,
}

/// A thread-safe recorder that buffers spans for Chrome-trace export and
/// accumulates counters.
pub struct TraceRecorder {
    epoch: Instant,
    inner: Mutex<TraceInner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A new recorder; its epoch (timestamp zero) is now.
    pub fn new() -> Self {
        TraceRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// Snapshot of the accumulated counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.lock().expect("recorder lock").counters.clone()
    }

    /// Snapshot of the buffered events as a [`TraceBuffer`].
    pub fn trace(&self) -> TraceBuffer {
        TraceBuffer {
            events: self.inner.lock().expect("recorder lock").events.clone(),
        }
    }

    /// Consumes the recorder, returning the buffered events.
    pub fn into_trace(self) -> TraceBuffer {
        TraceBuffer {
            events: self.inner.into_inner().expect("recorder lock").events,
        }
    }
}

impl Recorder for TraceRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn span(&self, name: &str, cat: &str, track: u32, start_ns: u64, dur_ns: u64) {
        let mut inner = self.inner.lock().expect("recorder lock");
        inner.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_ns: start_ns,
            dur_ns,
            tid: track,
        });
    }

    fn instant(&self, name: &str, track: u32, ts_ns: u64) {
        let mut inner = self.inner.lock().expect("recorder lock");
        inner.events.push(TraceEvent {
            name: name.to_string(),
            cat: "instant".to_string(),
            ph: 'i',
            ts_ns,
            dur_ns: 0,
            tid: track,
        });
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
        assert_eq!(r.now_ns(), 0);
        // No-ops by contract; just exercise them.
        r.span("x", "y", 0, 0, 1);
        r.instant("x", 0, 0);
        r.counter("x", 1);
    }

    #[test]
    fn trace_recorder_buffers_events_and_counters() {
        let r = TraceRecorder::new();
        assert!(r.enabled());
        r.span("a", "task", 0, 100, 50);
        r.span("b", "stage", 1, 200, 25);
        r.instant("tick", 2, 300);
        r.counter("tasks", 3);
        r.counter("tasks", 4);
        let counters = r.counters();
        assert_eq!(counters.get("tasks"), Some(&7));
        let trace = r.into_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events[0].name, "a");
        assert_eq!(trace.events[2].ph, 'i');
    }

    #[test]
    fn now_ns_is_monotonic() {
        let r = TraceRecorder::new();
        let a = r.now_ns();
        let b = r.now_ns();
        assert!(b >= a);
    }
}
