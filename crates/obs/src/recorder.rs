//! The tracing facade: a [`Recorder`] that instrumented code calls into,
//! with a no-op [`NullRecorder`] that compiles away entirely.
//!
//! This mirrors the `Probe`/`NullProbe` pattern in `gb-uarch`: every
//! trait method has an inlined empty default, so generic call sites
//! instantiated with [`NullRecorder`] carry zero cost, and hot loops can
//! additionally gate timestamp capture on [`Recorder::enabled`].

use crate::trace::{TraceBuffer, TraceEvent};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sink for structured runtime events. All methods default to inlined
/// no-ops; implementations override what they care about.
///
/// Timestamps are nanoseconds since the recorder's epoch, obtained from
/// [`Recorder::now_ns`] so all events recorded through one recorder
/// share a timebase.
pub trait Recorder: Sync {
    /// Whether events are being kept. Hot paths may skip timestamp
    /// capture when this is `false`.
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    /// Current time in nanoseconds since the recorder's epoch (0 when
    /// disabled).
    #[inline(always)]
    fn now_ns(&self) -> u64 {
        0
    }

    /// Records a completed span (`name` within category `cat`, on lane
    /// `track`, covering `[start_ns, start_ns + dur_ns)`).
    #[inline(always)]
    fn span(&self, _name: &str, _cat: &str, _track: u32, _start_ns: u64, _dur_ns: u64) {}

    /// Records a point-in-time event.
    #[inline(always)]
    fn instant(&self, _name: &str, _track: u32, _ts_ns: u64) {}

    /// Adds `delta` to the named counter.
    #[inline(always)]
    fn counter(&self, _name: &str, _delta: u64) {}
}

/// The zero-cost recorder: every call inlines to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// String interner for span/instant names and categories. Pool runs
/// emit thousands of spans carrying a handful of distinct labels (one
/// name per kernel, `"task"`/`"stage"` categories), so events store a
/// `u32` id and the backing `String` is allocated once per distinct
/// label instead of once per event.
#[derive(Default)]
struct Interner {
    ids: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let owned: Arc<str> = Arc::from(s);
        let id = u32::try_from(self.strings.len()).expect("fewer than 2^32 distinct labels");
        self.strings.push(Arc::clone(&owned));
        self.ids.insert(owned, id);
        id
    }

    // PANIC-FREE: `id` was handed out by `intern` on this recorder, so it
    // always indexes a live slot.
    fn get(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }
}

/// A buffered event holding interned label ids; materialized into a
/// [`TraceEvent`] only at snapshot time, so the public trace API is
/// unchanged.
#[derive(Clone, Copy)]
struct RawEvent {
    name: u32,
    cat: u32,
    ph: char,
    ts_ns: u64,
    dur_ns: u64,
    tid: u32,
}

#[derive(Default)]
struct TraceInner {
    interner: Interner,
    events: Vec<RawEvent>,
    counters: BTreeMap<String, u64>,
}

impl TraceInner {
    fn materialize(&self) -> TraceBuffer {
        TraceBuffer {
            events: self
                .events
                .iter()
                .map(|e| TraceEvent {
                    name: self.interner.get(e.name).to_string(),
                    cat: self.interner.get(e.cat).to_string(),
                    ph: e.ph,
                    ts_ns: e.ts_ns,
                    dur_ns: e.dur_ns,
                    tid: e.tid,
                })
                .collect(),
        }
    }
}

/// A thread-safe recorder that buffers spans for Chrome-trace export and
/// accumulates counters.
pub struct TraceRecorder {
    epoch: Instant,
    inner: Mutex<TraceInner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A new recorder; its epoch (timestamp zero) is now.
    pub fn new() -> Self {
        TraceRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// Snapshot of the accumulated counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.lock().expect("recorder lock").counters.clone()
    }

    /// Snapshot of the buffered events as a [`TraceBuffer`].
    pub fn trace(&self) -> TraceBuffer {
        self.inner.lock().expect("recorder lock").materialize()
    }

    /// Number of events buffered so far — cheap (no materialization),
    /// so callers running several kernels through one recorder can
    /// bookmark the stream and slice it per kernel afterwards.
    pub fn event_count(&self) -> usize {
        self.inner.lock().expect("recorder lock").events.len()
    }

    /// Materializes only the events at index `start` onward — the
    /// suffix recorded since an [`TraceRecorder::event_count`]
    /// bookmark. `run` uses this to build one stage tree per kernel
    /// from a single shared recorder without cloning the whole stream
    /// N times.
    pub fn trace_from(&self, start: usize) -> TraceBuffer {
        let inner = self.inner.lock().expect("recorder lock");
        TraceBuffer {
            events: inner
                .events
                .iter()
                .skip(start)
                .map(|e| TraceEvent {
                    name: inner.interner.get(e.name).to_string(),
                    cat: inner.interner.get(e.cat).to_string(),
                    ph: e.ph,
                    ts_ns: e.ts_ns,
                    dur_ns: e.dur_ns,
                    tid: e.tid,
                })
                .collect(),
        }
    }

    /// Consumes the recorder, returning the buffered events.
    pub fn into_trace(self) -> TraceBuffer {
        self.inner
            .into_inner()
            .expect("recorder lock")
            .materialize()
    }

    /// Number of distinct interned label strings (names + categories) —
    /// observable so tests and the `obs_overhead` bench can assert that
    /// repeated spans do not allocate per-event label copies.
    pub fn interned_labels(&self) -> usize {
        self.inner
            .lock()
            .expect("recorder lock")
            .interner
            .strings
            .len()
    }
}

impl Recorder for TraceRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn span(&self, name: &str, cat: &str, track: u32, start_ns: u64, dur_ns: u64) {
        let mut inner = self.inner.lock().expect("recorder lock");
        let name = inner.interner.intern(name);
        let cat = inner.interner.intern(cat);
        inner.events.push(RawEvent {
            name,
            cat,
            ph: 'X',
            ts_ns: start_ns,
            dur_ns,
            tid: track,
        });
    }

    fn instant(&self, name: &str, track: u32, ts_ns: u64) {
        let mut inner = self.inner.lock().expect("recorder lock");
        let name = inner.interner.intern(name);
        let cat = inner.interner.intern("instant");
        inner.events.push(RawEvent {
            name,
            cat,
            ph: 'i',
            ts_ns,
            dur_ns: 0,
            tid: track,
        });
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
        assert_eq!(r.now_ns(), 0);
        // No-ops by contract; just exercise them.
        r.span("x", "y", 0, 0, 1);
        r.instant("x", 0, 0);
        r.counter("x", 1);
    }

    #[test]
    fn trace_recorder_buffers_events_and_counters() {
        let r = TraceRecorder::new();
        assert!(r.enabled());
        r.span("a", "task", 0, 100, 50);
        r.span("b", "stage", 1, 200, 25);
        r.instant("tick", 2, 300);
        r.counter("tasks", 3);
        r.counter("tasks", 4);
        let counters = r.counters();
        assert_eq!(counters.get("tasks"), Some(&7));
        let trace = r.into_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events[0].name, "a");
        assert_eq!(trace.events[2].ph, 'i');
    }

    #[test]
    fn repeated_labels_intern_to_a_handful_of_strings() {
        let r = TraceRecorder::new();
        for i in 0..10_000 {
            r.span("chain", "task", i % 4, u64::from(i) * 10, 5);
        }
        r.instant("tick", 0, 1);
        // "chain", "task", "tick", "instant" — labels, not events.
        assert_eq!(r.interned_labels(), 4);
        let trace = r.trace();
        assert_eq!(trace.len(), 10_001);
        assert_eq!(trace.events[0].name, "chain");
        assert_eq!(trace.events[0].cat, "task");
        assert_eq!(trace.events[10_000].cat, "instant");
    }

    #[test]
    fn event_count_bookmarks_slice_the_stream() {
        let r = TraceRecorder::new();
        r.span("a", "task", 0, 0, 10);
        let mark = r.event_count();
        assert_eq!(mark, 1);
        r.span("b", "task", 0, 20, 10);
        r.instant("tick", 1, 35);
        let tail = r.trace_from(mark);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.events[0].name, "b");
        assert_eq!(tail.events[1].name, "tick");
        assert_eq!(r.trace_from(99).len(), 0);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let r = TraceRecorder::new();
        let a = r.now_ns();
        let b = r.now_ns();
        assert!(b >= a);
    }
}
