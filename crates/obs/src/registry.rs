//! A metrics registry: named counters, gauges, and histograms that
//! serialize to one JSON document (`genomicsbench ... --metrics out.json`).

use crate::hist::LogHistogram;
use crate::stats::TaskStats;
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// Named metrics, JSON-serializable. Keys are emitted in sorted order so
/// the output is stable across runs.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the named histogram.
    pub fn record(&mut self, name: &str, sample: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// Merges a whole histogram into the named histogram.
    pub fn merge_histogram(&mut self, name: &str, hist: &LogHistogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Read access to a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Ingests one instrumented run's [`TaskStats`] under `prefix`:
    /// a `<prefix>.tasks` counter plus latency-percentile and
    /// utilization gauges (`<prefix>.p50_ns`, …, `<prefix>.utilization`).
    /// When the run carried per-task heap attribution (`mem-profile`
    /// builds), also emits `<prefix>.task_peak_max_bytes` and
    /// `<prefix>.task_peak_mean_bytes` gauges.
    pub fn record_task_stats(&mut self, prefix: &str, stats: &TaskStats) {
        self.counter_add(&format!("{prefix}.tasks"), stats.count);
        self.set_gauge(&format!("{prefix}.mean_ns"), stats.mean_ns as f64);
        self.set_gauge(&format!("{prefix}.p50_ns"), stats.p50_ns as f64);
        self.set_gauge(&format!("{prefix}.p90_ns"), stats.p90_ns as f64);
        self.set_gauge(&format!("{prefix}.p99_ns"), stats.p99_ns as f64);
        self.set_gauge(&format!("{prefix}.max_ns"), stats.max_ns as f64);
        self.set_gauge(&format!("{prefix}.utilization"), stats.utilization);
        if let Some(mem) = &stats.memory {
            self.set_gauge(
                &format!("{prefix}.task_peak_max_bytes"),
                mem.task_peak_max_bytes as f64,
            );
            self.set_gauge(
                &format!("{prefix}.task_peak_mean_bytes"),
                mem.task_peak_mean_bytes as f64,
            );
        }
    }

    /// Serializes every metric:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: summary}}`.
    pub fn to_json(&self) -> Value {
        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), Value::from(*v));
        }
        let mut gauges = Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), Value::from(*v));
        }
        let mut hists = Map::new();
        for (k, h) in &self.histograms {
            let s = h.summary();
            let mut m = Map::new();
            m.insert("count".into(), Value::from(s.count));
            m.insert("mean".into(), Value::from(s.mean));
            m.insert("p50".into(), Value::from(s.p50));
            m.insert("p90".into(), Value::from(s.p90));
            m.insert("p99".into(), Value::from(s.p99));
            m.insert("max".into(), Value::from(s.max));
            hists.insert(k.clone(), Value::Object(m));
        }
        let mut root = Map::new();
        root.insert("counters".into(), Value::Object(counters));
        root.insert("gauges".into(), Value::Object(gauges));
        root.insert("histograms".into(), Value::Object(hists));
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_through_json() {
        let mut r = MetricsRegistry::new();
        r.counter_add("tasks", 5);
        r.counter_add("tasks", 2);
        r.set_gauge("utilization", 0.75);
        for v in [10u64, 20, 30, 40] {
            r.record("latency_ns", v);
        }
        let j = r.to_json();
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("tasks"))
                .and_then(Value::as_u64),
            Some(7)
        );
        assert_eq!(
            j.get("gauges")
                .and_then(|g| g.get("utilization"))
                .and_then(Value::as_f64),
            Some(0.75)
        );
        let h = j
            .get("histograms")
            .and_then(|h| h.get("latency_ns"))
            .expect("histogram");
        assert_eq!(h.get("count").and_then(Value::as_u64), Some(4));
        assert_eq!(h.get("max").and_then(Value::as_u64), Some(40));
    }

    #[test]
    fn untouched_counter_reads_zero() {
        let r = MetricsRegistry::new();
        assert_eq!(r.counter("nope"), 0);
        assert!(r.histogram("nope").is_none());
    }
}
