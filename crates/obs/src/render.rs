//! Dependency-free SVG flamegraph rendering over [`StageTree`]s and
//! [`TreeDiff`]s — no inferno, no `flamegraph.pl`.
//!
//! The output is a **self-contained single file**: inline `<style>`,
//! no scripts, no external references (the only URL is the mandatory
//! SVG `xmlns`). Layout is the classic icicle: x-extent proportional to
//! a frame's inclusive value, one row per depth, children partitioning
//! their parent left-to-right in name order. Everything is
//! deterministic — frame colors are hashed from the frame name, not
//! randomized — so re-rendering the same tree is byte-identical and CI
//! artifacts diff cleanly.
//!
//! Each frame is a `<g>` carrying machine-readable `data-*` attributes
//! (path, values, depth) and a `<title>` child, which browsers show as
//! a hover tooltip; the structural golden test in
//! `tests/render_svg.rs` parses those attributes back out and checks
//! frame count, nesting, and width proportionality.
//!
//! [`flamegraph_svg`] renders one tree with a wall-time (warm) or
//! peak-memory (cool) palette; [`differential_svg`] renders a
//! [`TreeDiff`] in the Brendan-Gregg differential style — red frames
//! got slower in the candidate, blue got faster, gray frames were
//! structurally added or removed. A differential frame's x-extent is
//! `max(base self, cand self) + Σ children`, which keeps both sides'
//! frames visible while guaranteeing children never overflow their
//! parent.

use crate::agg::{Node, StageTree};
use crate::diff::{DiffNode, FrameStatus, TreeDiff};
use std::fmt::Write as _;

/// Frame-fill color family for [`flamegraph_svg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Palette {
    /// Warm reds/oranges — wall/CPU time trees.
    Wall,
    /// Cool blues/greens — byte trees.
    Memory,
}

/// Rendering knobs; the defaults match CI artifact expectations.
#[derive(Debug, Clone)]
pub struct RenderConfig {
    /// Headline drawn at the top of the image.
    pub title: String,
    /// Total image width in px.
    pub width: u32,
    /// Height of one frame row in px.
    pub frame_height: u32,
    /// Color family.
    pub palette: Palette,
}

impl RenderConfig {
    /// Wall-time defaults: 1200 px wide, warm palette.
    pub fn wall(title: &str) -> RenderConfig {
        RenderConfig {
            title: title.to_string(),
            width: 1200,
            frame_height: 16,
            palette: Palette::Wall,
        }
    }

    /// Peak-memory defaults: 1200 px wide, cool palette.
    pub fn memory(title: &str) -> RenderConfig {
        RenderConfig {
            palette: Palette::Memory,
            ..RenderConfig::wall(title)
        }
    }
}

const MARGIN: f64 = 10.0;
const HEADER: f64 = 42.0;
const ROW_GAP: f64 = 1.0;
/// Minimum frame width that still gets a text label.
const MIN_LABEL_PX: f64 = 28.0;
/// Approximate glyph advance at font-size 11 monospace-ish.
const CHAR_PX: f64 = 6.6;

/// Escapes the five XML-reserved characters for element and attribute
/// content.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// FNV-1a over the frame name: the deterministic entropy source for
/// per-frame color jitter.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn frame_fill(name: &str, palette: Palette) -> String {
    let h = name_hash(name);
    match palette {
        Palette::Wall => format!(
            "rgb({},{},{})",
            205 + (h % 50),
            50 + ((h >> 8) % 130),
            (h >> 16) % 55
        ),
        Palette::Memory => format!(
            "rgb({},{},{})",
            (h % 60),
            110 + ((h >> 8) % 100),
            160 + ((h >> 16) % 90)
        ),
    }
}

/// Human-readable value in the tree's unit (`ns` and `bytes` get
/// adaptive prefixes, anything else renders raw).
pub fn format_value(unit: &str, v: u64) -> String {
    match unit {
        "ns" => {
            let v = v as f64;
            if v < 1_000.0 {
                format!("{v:.0} ns")
            } else if v < 1_000_000.0 {
                format!("{:.1} us", v / 1_000.0)
            } else if v < 1_000_000_000.0 {
                format!("{:.1} ms", v / 1_000_000.0)
            } else {
                format!("{:.2} s", v / 1_000_000_000.0)
            }
        }
        "bytes" => {
            let v = v as f64;
            if v < 1024.0 {
                format!("{v:.0} B")
            } else if v < 1024.0 * 1024.0 {
                format!("{:.1} KiB", v / 1024.0)
            } else if v < 1024.0 * 1024.0 * 1024.0 {
                format!("{:.1} MiB", v / (1024.0 * 1024.0))
            } else {
                format!("{:.2} GiB", v / (1024.0 * 1024.0 * 1024.0))
            }
        }
        _ => format!("{v} {unit}"),
    }
}

/// Signed [`format_value`]: `+1.2 ms` / `-340 us` / `0 ns`.
pub fn format_delta(unit: &str, d: i64) -> String {
    let sign = if d > 0 {
        "+"
    } else if d < 0 {
        "-"
    } else {
        ""
    };
    format!("{sign}{}", format_value(unit, d.unsigned_abs()))
}

fn svg_open(out: &mut String, cfg_width: u32, height: f64, title: &str, subtitle: &str) {
    let w = cfg_width;
    let _ = write!(
        out,
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h:.0}\" \
         viewBox=\"0 0 {w} {h:.0}\">\n",
        h = height
    );
    out.push_str(
        "<style>\n\
         text { font-family: Menlo, Consolas, monospace; font-size: 11px; fill: #222; }\n\
         .hdr { font-size: 14px; font-weight: bold; }\n\
         .sub { font-size: 10px; fill: #666; }\n\
         .f rect { stroke: #fff; stroke-width: 0.5; }\n\
         .f:hover rect { stroke: #000; }\n\
         </style>\n",
    );
    let _ = write!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{w}\" height=\"{h:.0}\" fill=\"#fdfdfd\"/>\n\
         <text class=\"hdr\" x=\"{m}\" y=\"20\">{t}</text>\n\
         <text class=\"sub\" x=\"{m}\" y=\"34\">{s}</text>\n",
        h = height,
        m = MARGIN,
        t = xml_escape(title),
        s = xml_escape(subtitle),
    );
}

fn emit_frame_text(out: &mut String, x: f64, y: f64, w: f64, fh: f64, name: &str) {
    if w < MIN_LABEL_PX {
        return;
    }
    let max_chars = ((w - 6.0) / CHAR_PX) as usize;
    if max_chars < 3 {
        return;
    }
    let label: String = if name.chars().count() > max_chars {
        let mut s: String = name.chars().take(max_chars.saturating_sub(1)).collect();
        s.push('\u{2026}');
        s
    } else {
        name.to_string()
    };
    let _ = writeln!(
        out,
        "<text x=\"{:.2}\" y=\"{:.2}\">{}</text>",
        x + 3.0,
        y + fh - 4.0,
        xml_escape(&label)
    );
}

fn max_depth_node(node: &Node) -> usize {
    1 + node
        .children
        .values()
        .map(max_depth_node)
        .max()
        .unwrap_or(0)
}

/// Renders `tree` as a self-contained SVG flamegraph (icicle layout,
/// deterministic colors, `<title>` tooltips). Returns the full SVG
/// document as a string.
pub fn flamegraph_svg(tree: &StageTree, cfg: &RenderConfig) -> String {
    let grand_total: u64 = tree.total();
    let depth_rows = tree.roots.values().map(max_depth_node).max().unwrap_or(0);
    let fh = f64::from(cfg.frame_height);
    let height = HEADER + depth_rows as f64 * (fh + ROW_GAP) + MARGIN;
    let drawable = f64::from(cfg.width) - 2.0 * MARGIN;

    let mut out = String::new();
    let subtitle = format!(
        "total {} \u{00b7} {} top-level frame(s) \u{00b7} width \u{221d} inclusive {}",
        format_value(tree.unit(), grand_total),
        tree.roots.len(),
        tree.unit()
    );
    svg_open(&mut out, cfg.width, height, &cfg.title, &subtitle);

    // Recursive emit: each frame gets the x-extent proportional to its
    // inclusive total; children pack left-to-right inside it. The arg
    // list is the full per-frame layout state, threaded explicitly so
    // the recursion stays a plain fn.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        out: &mut String,
        name: &str,
        path: &str,
        node: &Node,
        x: f64,
        w: f64,
        depth: usize,
        grand_total: u64,
        unit: &str,
        fh: f64,
        palette: Palette,
    ) {
        let y = HEADER + depth as f64 * (fh + ROW_GAP);
        let pct = if grand_total > 0 {
            node.total as f64 * 100.0 / grand_total as f64
        } else {
            0.0
        };
        let mut tooltip = format!(
            "{path} \u{00b7} total {} ({pct:.1}%) \u{00b7} self {}",
            format_value(unit, node.total),
            format_value(unit, node.self_value()),
        );
        if let Some(note) = &node.note {
            let _ = write!(tooltip, " \u{00b7} {note}");
        }
        let _ = write!(
            out,
            "<g class=\"f\" data-path=\"{}\" data-depth=\"{depth}\" data-total=\"{}\" \
             data-self=\"{}\">\n<title>{}</title>\n\
             <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{fh:.0}\" fill=\"{}\"/>\n",
            xml_escape(path),
            node.total,
            node.self_value(),
            xml_escape(&tooltip),
            frame_fill(name, palette),
        );
        emit_frame_text(out, x, y, w, fh, name);
        out.push_str("</g>\n");
        let mut cursor = x;
        for (cname, child) in &node.children {
            let cw = if node.total > 0 {
                (w * child.total as f64 / node.total as f64).min(x + w - cursor)
            } else {
                0.0
            };
            let cpath = format!("{path};{cname}");
            emit(
                out,
                cname,
                &cpath,
                child,
                cursor,
                cw.max(0.0),
                depth + 1,
                grand_total,
                unit,
                fh,
                palette,
            );
            cursor += cw.max(0.0);
        }
    }

    let mut cursor = MARGIN;
    for (name, node) in &tree.roots {
        let w = if grand_total > 0 {
            drawable * node.total as f64 / grand_total as f64
        } else {
            0.0
        };
        emit(
            &mut out,
            name,
            name,
            node,
            cursor,
            w,
            0,
            grand_total,
            tree.unit(),
            fh,
            cfg.palette,
        );
        cursor += w;
    }
    out.push_str("</svg>\n");
    out
}

/// The x-extent a diff frame occupies: the larger of its two (clamped)
/// self values plus its children's extents — so added, removed, and
/// both matched sides all stay visible, and a parent always covers its
/// children.
fn layout_total(node: &DiffNode) -> u64 {
    let self_px = node.base_self().max(node.cand_self()).max(0) as u64;
    self_px + node.children.values().map(layout_total).sum::<u64>()
}

fn diff_fill(node: &DiffNode, scale: i64) -> String {
    match node.status() {
        FrameStatus::Added => "rgb(160,160,160)".to_string(),
        FrameStatus::Removed => "rgb(205,205,205)".to_string(),
        FrameStatus::Matched => {
            let t = if scale > 0 {
                (node.self_delta() as f64 / scale as f64).clamp(-1.0, 1.0)
            } else {
                0.0
            };
            if t >= 0.0 {
                // white -> red(220,50,47) as the frame regresses.
                format!(
                    "rgb({},{},{})",
                    (255.0 - 35.0 * t) as u32,
                    (255.0 - 205.0 * t) as u32,
                    (255.0 - 208.0 * t) as u32
                )
            } else {
                // white -> blue(38,139,210) as the frame improves.
                let t = -t;
                format!(
                    "rgb({},{},{})",
                    (255.0 - 217.0 * t) as u32,
                    (255.0 - 116.0 * t) as u32,
                    (255.0 - 45.0 * t) as u32
                )
            }
        }
    }
}

fn max_depth_diff(node: &DiffNode) -> usize {
    1 + node
        .children
        .values()
        .map(max_depth_diff)
        .max()
        .unwrap_or(0)
}

fn max_abs_self_delta(node: &DiffNode) -> i64 {
    node.children
        .values()
        .map(max_abs_self_delta)
        .max()
        .unwrap_or(0)
        .max(node.self_delta().abs())
}

/// Renders a [`TreeDiff`] as a self-contained differential flamegraph
/// SVG: red = self time grew in the candidate, blue = shrank, gray =
/// frame added/removed. Color intensity scales with the frame's share
/// of the largest absolute self delta.
pub fn differential_svg(diff: &TreeDiff, cfg: &RenderConfig) -> String {
    let depth_rows = diff.roots.values().map(max_depth_diff).max().unwrap_or(0);
    let fh = f64::from(cfg.frame_height);
    let height = HEADER + depth_rows as f64 * (fh + ROW_GAP) + MARGIN;
    let drawable = f64::from(cfg.width) - 2.0 * MARGIN;
    let grand_layout: u64 = diff.roots.values().map(layout_total).sum();
    let scale = diff
        .roots
        .values()
        .map(max_abs_self_delta)
        .max()
        .unwrap_or(0);

    let mut out = String::new();
    let subtitle = format!(
        "root \u{0394} {} \u{00b7} red = slower in candidate, blue = faster, gray = added/removed",
        format_delta(diff.unit(), diff.root_delta())
    );
    svg_open(&mut out, cfg.width, height, &cfg.title, &subtitle);

    // Same shape as the flamegraph emitter: the args are the whole
    // per-frame layout state of the recursion.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        out: &mut String,
        name: &str,
        path: &str,
        node: &DiffNode,
        x: f64,
        w: f64,
        depth: usize,
        unit: &str,
        fh: f64,
        scale: i64,
        px_per_unit: f64,
    ) {
        let y = HEADER + depth as f64 * (fh + ROW_GAP);
        let tooltip = format!(
            "{path} \u{00b7} self {} \u{2192} {} (\u{0394} {}) \u{00b7} total \u{0394} {} \u{00b7} {}",
            format_value(unit, node.base_self().max(0).unsigned_abs()),
            format_value(unit, node.cand_self().max(0).unsigned_abs()),
            format_delta(unit, node.self_delta()),
            format_delta(unit, node.total_delta()),
            node.status().label(),
        );
        let _ = write!(
            out,
            "<g class=\"f\" data-path=\"{}\" data-depth=\"{depth}\" data-status=\"{}\" \
             data-self-delta=\"{}\">\n<title>{}</title>\n\
             <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{fh:.0}\" fill=\"{}\"/>\n",
            xml_escape(path),
            node.status().label(),
            node.self_delta(),
            xml_escape(&tooltip),
            diff_fill(node, scale),
        );
        emit_frame_text(out, x, y, w, fh, name);
        out.push_str("</g>\n");
        // Children pack after the parent's own self extent, so the
        // leading slack of the parent's bar reads as its self share.
        let mut cursor = x;
        for (cname, child) in &node.children {
            let cw = (layout_total(child) as f64 * px_per_unit).min(x + w - cursor);
            let cpath = format!("{path};{cname}");
            emit(
                out,
                cname,
                &cpath,
                child,
                cursor,
                cw.max(0.0),
                depth + 1,
                unit,
                fh,
                scale,
                px_per_unit,
            );
            cursor += cw.max(0.0);
        }
    }

    let px_per_unit = if grand_layout > 0 {
        drawable / grand_layout as f64
    } else {
        0.0
    };
    let mut cursor = MARGIN;
    for (name, node) in &diff.roots {
        let w = layout_total(node) as f64 * px_per_unit;
        emit(
            &mut out,
            name,
            name,
            node,
            cursor,
            w,
            0,
            diff.unit(),
            fh,
            scale,
            px_per_unit,
        );
        cursor += w;
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::TreeDiff;

    fn tree(entries: &[(&str, u64)]) -> StageTree {
        StageTree::from_path_totals("ns", entries.iter().map(|(p, v)| (p.to_string(), *v)))
    }

    #[test]
    fn svg_is_well_formed_and_self_contained() {
        let t = tree(&[("k", 1_000_000), ("k;dp", 600_000), ("k;io", 250_000)]);
        let svg = flamegraph_svg(&t, &RenderConfig::wall("k \u{00b7} tiny"));
        assert!(svg.starts_with("<?xml"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        // Self-contained: the only URL is the SVG namespace.
        assert!(!svg.contains("href"));
        assert!(!svg.contains("url("));
        assert!(!svg.contains("<script"));
        assert_eq!(svg.matches("http").count(), 1);
        // One frame group per tree node.
        assert_eq!(svg.matches("<g class=\"f\"").count(), t.rows().len());
    }

    #[test]
    fn rendering_is_deterministic() {
        let t = tree(&[("k", 100), ("k;a", 60)]);
        let cfg = RenderConfig::wall("t");
        assert_eq!(flamegraph_svg(&t, &cfg), flamegraph_svg(&t, &cfg));
    }

    #[test]
    fn titles_escape_xml_metacharacters() {
        let t = tree(&[("a<b>&\"c\"", 10)]);
        let svg = flamegraph_svg(&t, &RenderConfig::wall("x < y & z"));
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(svg.contains("x &lt; y &amp; z"));
        assert!(!svg.contains("<b>"));
    }

    #[test]
    fn memory_palette_differs_from_wall() {
        let t = StageTree::from_path_totals("bytes", [("k".to_string(), 1u64 << 20)]);
        let wall = flamegraph_svg(&t, &RenderConfig::wall("t"));
        let mem = flamegraph_svg(&t, &RenderConfig::memory("t"));
        assert_ne!(wall, mem);
        assert!(mem.contains("MiB"), "svg:\n{mem}");
    }

    #[test]
    fn differential_svg_marks_statuses_and_direction() {
        let base = tree(&[
            ("k", 100_000_000),
            ("k;old", 20_000_000),
            ("k;dp", 50_000_000),
        ]);
        let cand = tree(&[
            ("k", 130_000_000),
            ("k;new", 20_000_000),
            ("k;dp", 80_000_000),
        ]);
        let d = TreeDiff::between(&base, &cand);
        let svg = differential_svg(&d, &RenderConfig::wall("k diff"));
        assert!(svg.contains("data-status=\"added\""));
        assert!(svg.contains("data-status=\"removed\""));
        assert!(svg.contains("data-status=\"matched\""));
        // The worst regressor (k;dp, +30ms self) renders saturated red.
        assert!(svg.contains("rgb(220,50,47)"), "svg:\n{svg}");
        assert_eq!(svg.matches("<g class=\"f\"").count(), d.rows().len());
        assert!(!svg.contains("href"));
    }

    #[test]
    fn value_formatting_is_adaptive() {
        assert_eq!(format_value("ns", 950), "950 ns");
        assert_eq!(format_value("ns", 12_500), "12.5 us");
        assert_eq!(format_value("ns", 9_800_000), "9.8 ms");
        assert_eq!(format_value("ns", 2_500_000_000), "2.50 s");
        assert_eq!(format_value("bytes", 512), "512 B");
        assert_eq!(format_value("bytes", 5 << 20), "5.0 MiB");
        assert_eq!(format_value("cells", 7), "7 cells");
        assert_eq!(format_delta("ns", 9_800_000), "+9.8 ms");
        assert_eq!(format_delta("ns", -9_800_000), "-9.8 ms");
        assert_eq!(format_delta("ns", 0), "0 ns");
    }
}
