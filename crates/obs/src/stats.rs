//! Aggregated execution statistics: per-task latency percentiles and
//! per-worker utilization, the summaries the `profile` subcommand and
//! the Fig. 7 report print.

use crate::hist::LogHistogram;
use crate::mem::PoolMemStats;
use serde::{Deserialize, Serialize};

/// One worker's share of an instrumented run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Time spent inside tasks, nanoseconds.
    pub busy_ns: u64,
    /// Wall time minus busy time, nanoseconds.
    pub idle_ns: u64,
}

impl WorkerStats {
    /// Fraction of wall time this worker spent inside tasks.
    pub fn utilization(&self) -> f64 {
        let wall = self.busy_ns + self.idle_ns;
        if wall == 0 {
            0.0
        } else {
            self.busy_ns as f64 / wall as f64
        }
    }
}

/// Per-task latency distribution and worker utilization of one
/// instrumented run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Tasks executed.
    pub count: u64,
    /// Mean task latency, nanoseconds.
    pub mean_ns: u64,
    /// Median task latency (log-bucketed, ≤3% above true).
    pub p50_ns: u64,
    /// 90th-percentile task latency.
    pub p90_ns: u64,
    /// 99th-percentile task latency.
    pub p99_ns: u64,
    /// Maximum task latency (exact).
    pub max_ns: u64,
    /// Mean worker utilization: total busy time over `workers x wall`.
    pub utilization: f64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
    /// Per-task heap attribution folded across the pool's workers.
    ///
    /// `None` unless the run was instrumented under the `mem-profile`
    /// feature.
    pub memory: Option<PoolMemStats>,
}

impl TaskStats {
    /// Builds the summary from a merged latency histogram, the
    /// per-worker breakdown, and the run's wall time.
    pub fn from_parts(hist: &LogHistogram, workers: Vec<WorkerStats>, wall_ns: u64) -> TaskStats {
        let busy: u64 = workers.iter().map(|w| w.busy_ns).sum();
        let denom = workers.len() as f64 * wall_ns as f64;
        TaskStats {
            count: hist.count(),
            mean_ns: hist.mean() as u64,
            p50_ns: hist.p50(),
            p90_ns: hist.p90(),
            p99_ns: hist.p99(),
            max_ns: hist.max(),
            utilization: if denom > 0.0 {
                (busy as f64 / denom).min(1.0)
            } else {
                0.0
            },
            workers,
            memory: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_from_parts() {
        let mut h = LogHistogram::new();
        h.record(100);
        h.record(300);
        let workers = vec![
            WorkerStats {
                worker: 0,
                tasks: 1,
                busy_ns: 100,
                idle_ns: 300,
            },
            WorkerStats {
                worker: 1,
                tasks: 1,
                busy_ns: 300,
                idle_ns: 100,
            },
        ];
        let s = TaskStats::from_parts(&h, workers, 400);
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, 300);
        // (100 + 300) / (2 workers x 400 wall) = 0.5
        assert!((s.utilization - 0.5).abs() < 1e-12);
        assert!((s.workers[0].utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_utilization() {
        let s = TaskStats::from_parts(&LogHistogram::new(), Vec::new(), 0);
        assert_eq!(s.count, 0);
        assert_eq!(s.utilization, 0.0);
    }
}
