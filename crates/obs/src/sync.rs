//! Synchronization facade: `std::sync` in normal builds, the
//! [`gb_loom`] model-checked shims under `--cfg loom`.
//!
//! Every concurrency-bearing primitive in this crate (the [`crate::mem`]
//! slot registry, the [`crate::pool`] task cursor) imports its atomics
//! from here instead of `std::sync` directly. A normal build re-exports
//! `std::sync` verbatim — zero cost, bit-identical behaviour — while
//! `RUSTFLAGS="--cfg loom"` swaps in instrumented types whose every
//! operation is a scheduling point, letting
//! `cargo test -p gb-obs --test loom_mem --test loom_pool` exhaustively
//! model-check the lock-free protocols (see DESIGN.md, "Concurrency &
//! safety invariants").

#[cfg(not(loom))]
pub use std::sync::{atomic, Arc};

#[cfg(loom)]
pub use gb_loom::sync::{atomic, Arc};

/// Thread shims: `std::thread` normally, scheduler-aware spawns under
/// loom.
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(loom)]
    pub use gb_loom::thread::{spawn, yield_now, JoinHandle};
}
