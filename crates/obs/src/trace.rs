//! Chrome trace-event export.
//!
//! [`TraceBuffer::to_json_string`] emits the JSON-array flavour of the
//! Chrome trace-event format — loadable by Perfetto (ui.perfetto.dev) and
//! `chrome://tracing`. Only complete (`"X"`) and instant (`"i"`) events
//! are used; timestamps are microseconds with nanosecond precision kept
//! as three decimals. The writer is hand-rolled so the exact on-disk
//! shape is independent of any serializer.

/// One trace event (timestamps relative to the recorder's epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span or instant label).
    pub name: String,
    /// Category, e.g. `"task"` or `"stage"`.
    pub cat: String,
    /// Phase: `'X'` (complete) or `'i'` (instant).
    pub ph: char,
    /// Start time in nanoseconds since the epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Track (rendered as a thread lane in Perfetto).
    pub tid: u32,
}

/// An ordered collection of trace events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    /// The events, in recording order.
    pub events: Vec<TraceEvent>,
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_us(out: &mut String, ns: u64) {
    // Microseconds with the sub-microsecond part as three decimals —
    // formatted from integers so no float rounding creeps in.
    out.push_str(&format!("{}.{:03}", ns / 1000, ns % 1000));
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to the Chrome trace-event JSON-array format.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str("{\"name\":\"");
            push_escaped(&mut out, &e.name);
            out.push_str("\",\"cat\":\"");
            push_escaped(&mut out, &e.cat);
            out.push_str("\",\"ph\":\"");
            out.push(e.ph);
            out.push_str("\",\"ts\":");
            push_us(&mut out, e.ts_ns);
            if e.ph == 'X' {
                out.push_str(",\"dur\":");
                push_us(&mut out, e.dur_ns);
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push('}');
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }

    /// Writes [`Self::to_json_string`] to `path`.
    pub fn write_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_and_consistent() {
        let buf = TraceBuffer {
            events: vec![
                TraceEvent {
                    name: "bsw".into(),
                    cat: "task".into(),
                    ph: 'X',
                    ts_ns: 1_234_567,
                    dur_ns: 890,
                    tid: 0,
                },
                TraceEvent {
                    name: "done \"quoted\"".into(),
                    cat: "stage".into(),
                    ph: 'i',
                    ts_ns: 2_000_000,
                    dur_ns: 0,
                    tid: 3,
                },
            ],
        };
        let s = buf.to_json_string();
        let v: serde_json::Value = serde_json::from_str(&s).expect("valid JSON");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(arr[0].get("ts").and_then(|t| t.as_f64()), Some(1234.567));
        assert_eq!(arr[0].get("dur").and_then(|t| t.as_f64()), Some(0.890));
        assert_eq!(arr[1].get("ph").and_then(|p| p.as_str()), Some("i"));
        assert_eq!(arr[1].get("tid").and_then(|t| t.as_u64()), Some(3));
    }

    #[test]
    fn empty_buffer_is_valid_json() {
        let s = TraceBuffer::new().to_json_string();
        let v: serde_json::Value = serde_json::from_str(&s).expect("valid JSON");
        assert_eq!(v.as_array().map(Vec::len), Some(0));
    }
}
