//! `genomicsbench trend`: per-kernel time series over N run manifests.
//!
//! Where [`compare`](crate::compare) gates one candidate against one
//! baseline, `trend` looks at *history*: every 1.x manifest it is given
//! is grouped into a **context** — the `(tier, threads, dp_engine)`
//! triple within which wall times are comparable — and runs inside a
//! context are ordered by `(created_unix_s, git_rev, …)` into a series.
//! Per kernel it renders a unicode sparkline of wall time across the
//! series and classifies the **latest** run against the **best earlier**
//! run with the same noise-aware machinery `compare` uses (relative
//! tolerance + min-runtime floor + absolute slack), so a slow drift that
//! each adjacent compare would wave through still trips the gate once it
//! accumulates.
//!
//! Runs from different contexts are never compared against each other —
//! a tiny-tier point is not a baseline for a small-tier point, nor a
//! scalar-engine point for a simd one. Cross-context manifests simply
//! render as separate series in one report.
//!
//! Ordering is deliberately input-order independent (ties broken by the
//! full serialized manifest), so shuffling the manifest arguments cannot
//! change the report — a property under proptest in
//! `tests/trend_properties.rs`.
//!
//! Panic audit (2026-08): every `unwrap`/`expect` in this module sits
//! inside `#[cfg(test)]` code; the production paths return `Result`s or
//! render placeholders for missing samples. Malformed manifest files
//! never reach this module — the CLI's loader rejects them first and
//! exits 2 (covered end-to-end by
//! `crates/suite/tests/cli_corrupt_manifest.rs`).

use crate::compare::{classify, CompareConfig, Direction, StageAttribution, Verdict};
use crate::diff::TreeDiff;
use crate::manifest::RunManifest;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// The eight-level bar alphabet used by [`sparkline`].
pub const SPARK_BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Placeholder for runs where a kernel has no sample.
pub const SPARK_GAP: char = '·';

/// Renders `values` as a unicode sparkline, scaling min..max across the
/// eight bar heights; `None` entries render as [`SPARK_GAP`]. A flat
/// (or single-point) series renders at mid height.
pub fn sparkline(values: &[Option<u64>]) -> String {
    let present: Vec<u64> = values.iter().flatten().copied().collect();
    let (min, max) = (
        present.iter().copied().min().unwrap_or(0),
        present.iter().copied().max().unwrap_or(0),
    );
    values
        .iter()
        .map(|v| match v {
            None => SPARK_GAP,
            Some(_) if max == min => SPARK_BARS[3],
            Some(v) => {
                let idx = ((v - min) as u128 * (SPARK_BARS.len() as u128 - 1)
                    + (max - min) as u128 / 2)
                    / (max - min) as u128;
                SPARK_BARS[idx as usize]
            }
        })
        .collect()
}

/// The comparability key: runs only form a series within one context.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TrendContext {
    /// Dataset tier.
    pub tier: String,
    /// Worker threads.
    pub threads: usize,
    /// DP execution engine, when the producing command had one.
    pub dp_engine: Option<String>,
}

impl std::fmt::Display for TrendContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} tier · {} threads", self.tier, self.threads)?;
        if let Some(e) = &self.dp_engine {
            write!(f, " · {e} engine")?;
        }
        Ok(())
    }
}

/// One run (time-axis point) within a context's series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRun {
    /// Git revision of the run, when the manifest recorded one.
    pub git_rev: Option<String>,
    /// Manifest creation time (unix seconds), when recorded.
    pub created_unix_s: Option<u64>,
    /// Producing subcommand (`run`, `profile`, `report`).
    pub command: String,
    /// Per-kernel wall time for this run.
    pub wall_ns: BTreeMap<String, u64>,
}

impl TrendRun {
    /// Short label for tables: abbreviated git rev, or `?`.
    pub fn label(&self) -> String {
        match &self.git_rev {
            Some(r) if r.len() > 9 => r[..9].to_string(),
            Some(r) => r.clone(),
            None => "?".to_string(),
        }
    }
}

/// One kernel's series within a context, plus its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrend {
    /// Kernel name.
    pub kernel: String,
    /// Wall time per run, in series order (`None` where the run did not
    /// execute this kernel).
    pub wall_ns: Vec<Option<u64>>,
    /// [`sparkline`] over `wall_ns`.
    pub sparkline: String,
    /// Best (minimum) wall among runs before the latest sample.
    pub best_prev_ns: Option<u64>,
    /// Series index of the best earlier run (earliest on ties) — which
    /// run `best_prev_ns` came from, so callers can recover that run's
    /// stage tree for differential rendering.
    pub best_prev_idx: Option<usize>,
    /// The latest sample.
    pub latest_ns: Option<u64>,
    /// Series index of the latest sample.
    pub latest_idx: Option<usize>,
    /// `(latest - best_prev) / best_prev` (0 when undefined).
    pub rel_change: f64,
    /// Latest-vs-best-previous classification under the compare
    /// tolerances; [`Verdict::New`] when the series has fewer than two
    /// samples.
    pub verdict: Verdict,
    /// Stage attribution of a [`Verdict::Regressed`] latest run against
    /// the best earlier run, when both manifests carry stage data for
    /// this kernel (schema ≥ 1.3).
    pub attribution: Option<StageAttribution>,
}

/// All kernels' series for one context.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendGroup {
    /// The comparability key.
    pub context: TrendContext,
    /// The runs, in series (time) order.
    pub runs: Vec<TrendRun>,
    /// Per-kernel series, sorted by kernel name.
    pub kernels: Vec<KernelTrend>,
}

/// Everything [`trend`] found, one group per context.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrendReport {
    /// The context groups, sorted by context.
    pub groups: Vec<TrendGroup>,
}

impl TrendReport {
    /// The regressed kernel series across all groups.
    pub fn regressions(&self) -> impl Iterator<Item = (&TrendContext, &KernelTrend)> {
        self.groups.iter().flat_map(|g| {
            g.kernels
                .iter()
                .filter(|k| k.verdict == Verdict::Regressed)
                .map(move |k| (&g.context, k))
        })
    }

    /// Whether any kernel's latest run regressed against its best
    /// earlier run (the CI gate).
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Machine-readable form for `trend --json`.
    pub fn to_json(&self) -> Value {
        json!({
            "kind": "trend",
            "regressions": self.regressions().count(),
            "groups": self.groups.iter().map(|g| json!({
                "tier": g.context.tier,
                "threads": g.context.threads,
                "dp_engine": g.context.dp_engine,
                "runs": g.runs.iter().map(|r| json!({
                    "git_rev": r.git_rev,
                    "created_unix_s": r.created_unix_s,
                    "command": r.command,
                })).collect::<Vec<_>>(),
                "kernels": g.kernels.iter().map(|k| json!({
                    "kernel": k.kernel,
                    "wall_ns": k.wall_ns,
                    "sparkline": k.sparkline,
                    "best_prev_ns": k.best_prev_ns,
                    "best_prev_idx": k.best_prev_idx,
                    "latest_ns": k.latest_ns,
                    "latest_idx": k.latest_idx,
                    "rel_change": k.rel_change,
                    "verdict": k.verdict.label(),
                    "attribution": k.attribution.as_ref().map(|a| json!({
                        "root_delta_ns": a.root_delta_ns,
                        "stages": a.rows.iter().map(|r| json!({
                            "path": r.path,
                            "status": r.status.label(),
                            "self_delta_ns": r.self_delta,
                            "total_delta_ns": r.total_delta,
                        })).collect::<Vec<_>>(),
                    })),
                })).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
        })
    }
}

/// Series order within a context: creation time, then git rev, then (for
/// full determinism under shuffled input) the serialized manifest.
fn series_key(m: &RunManifest) -> (u64, String, String) {
    (
        m.created_unix_s.unwrap_or(0),
        m.git_rev.clone().unwrap_or_default(),
        m.to_json_string(),
    )
}

/// Builds the trend report over `manifests` under `cfg`; see the module
/// docs for grouping, ordering, and gating semantics.
pub fn trend(manifests: &[RunManifest], cfg: &CompareConfig) -> TrendReport {
    let mut by_context: BTreeMap<TrendContext, Vec<&RunManifest>> = BTreeMap::new();
    for m in manifests {
        let ctx = TrendContext {
            tier: m.tier.clone(),
            threads: m.threads,
            dp_engine: m.dp_engine.clone(),
        };
        by_context.entry(ctx).or_default().push(m);
    }

    let mut report = TrendReport::default();
    for (context, mut ms) in by_context {
        ms.sort_by_cached_key(|m| series_key(m));
        let runs: Vec<TrendRun> = ms
            .iter()
            .map(|m| TrendRun {
                git_rev: m.git_rev.clone(),
                created_unix_s: m.created_unix_s,
                command: m.command.clone(),
                wall_ns: m
                    .kernels
                    .iter()
                    .map(|(k, r)| (k.clone(), r.wall_ns))
                    .collect(),
            })
            .collect();

        let mut kernel_names: Vec<String> = runs
            .iter()
            .flat_map(|r| r.wall_ns.keys().cloned())
            .collect();
        kernel_names.sort();
        kernel_names.dedup();

        let kernels = kernel_names
            .into_iter()
            .map(|kernel| {
                let wall_ns: Vec<Option<u64>> = runs
                    .iter()
                    .map(|r| r.wall_ns.get(&kernel).copied())
                    .collect();
                let latest_idx = wall_ns.iter().rposition(Option::is_some);
                let latest_ns = latest_idx.and_then(|i| wall_ns[i]);
                // Argmin, not just min: the *which run* matters for
                // attribution. Ties pick the earliest run, matching the
                // value `min()` alone would have produced.
                let best_prev = latest_idx.and_then(|i| {
                    wall_ns[..i]
                        .iter()
                        .enumerate()
                        .filter_map(|(j, v)| v.map(|v| (v, j)))
                        .min()
                });
                let best_prev_ns = best_prev.map(|(v, _)| v);
                let best_prev_idx = best_prev.map(|(_, j)| j);
                let (rel_change, verdict) = match (best_prev_ns, latest_ns) {
                    (Some(best), Some(latest)) => {
                        let gated = best.max(latest) >= cfg.min_wall_ns;
                        let abs_ok = best.abs_diff(latest) >= cfg.min_abs_wall_ns;
                        classify(
                            best as f64,
                            latest as f64,
                            Direction::LowerIsBetter,
                            cfg.rel_tolerance,
                            gated,
                            abs_ok,
                        )
                    }
                    // A single sample has no history to drift from.
                    _ => (0.0, Verdict::New),
                };
                // Same contract as `compare`: a gating regression with
                // stage trees on both sides gets a ranked attribution.
                let attribution = match (verdict, best_prev_idx, latest_idx) {
                    (Verdict::Regressed, Some(bi), Some(li)) => {
                        let tree_of =
                            |i: usize| ms[i].kernels.get(&kernel).and_then(|r| r.stage_tree());
                        match (tree_of(bi), tree_of(li)) {
                            (Some(bt), Some(ct)) => {
                                let diff = TreeDiff::between(&bt, &ct);
                                Some(StageAttribution {
                                    kernel: kernel.clone(),
                                    root_delta_ns: diff.root_delta(),
                                    rows: diff.ranked(),
                                })
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                };
                KernelTrend {
                    sparkline: sparkline(&wall_ns),
                    kernel,
                    wall_ns,
                    best_prev_ns,
                    best_prev_idx,
                    latest_ns,
                    latest_idx,
                    rel_change,
                    verdict,
                    attribution,
                }
            })
            .collect();

        report.groups.push(TrendGroup {
            context,
            runs,
            kernels,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::KernelRecord;

    fn manifest(
        tier: &str,
        threads: usize,
        created: u64,
        rev: &str,
        kernels: &[(&str, u64)],
    ) -> RunManifest {
        let mut m = RunManifest::new("run", tier, threads);
        m.created_unix_s = Some(created);
        m.git_rev = Some(rev.to_string());
        for (name, wall_ns) in kernels {
            m.add_kernel(
                name,
                KernelRecord {
                    wall_ns: *wall_ns,
                    tasks: 10,
                    checksum: 1,
                    work_unit: "cells".into(),
                    work_total: 1000,
                    throughput_per_s: 1e6,
                    latency: None,
                    utilization: None,
                    memory: None,
                    stages: None,
                    prepare_wall_ns: None,
                    cache_hit: None,
                },
            );
        }
        m
    }

    #[test]
    fn sparkline_spans_the_alphabet() {
        let s = sparkline(&[Some(0), Some(50), None, Some(100)]);
        assert_eq!(s.chars().count(), 4);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().nth(2), Some('·'));
        assert_eq!(s.chars().nth(3), Some('█'));
        assert_eq!(sparkline(&[Some(7), Some(7)]), "▄▄");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn latest_regression_vs_best_previous_gates() {
        let ms = vec![
            manifest("tiny", 2, 100, "aaa", &[("bsw", 50_000_000)]),
            manifest("tiny", 2, 200, "bbb", &[("bsw", 52_000_000)]),
            manifest("tiny", 2, 300, "ccc", &[("bsw", 90_000_000)]),
        ];
        let r = trend(&ms, &CompareConfig::default());
        assert!(r.has_regressions());
        let k = &r.groups[0].kernels[0];
        assert_eq!(k.verdict, Verdict::Regressed);
        assert_eq!(k.best_prev_ns, Some(50_000_000));
        assert_eq!(k.latest_ns, Some(90_000_000));
    }

    #[test]
    fn slow_drift_gates_even_when_adjacent_steps_are_in_tolerance() {
        // +8% per step never trips a pairwise compare at 10% tolerance,
        // but 50 → 68 ms versus the best point does.
        let ms = vec![
            manifest("tiny", 2, 100, "aaa", &[("phmm", 50_000_000)]),
            manifest("tiny", 2, 200, "bbb", &[("phmm", 54_000_000)]),
            manifest("tiny", 2, 300, "ccc", &[("phmm", 58_300_000)]),
            manifest("tiny", 2, 400, "ddd", &[("phmm", 63_000_000)]),
            manifest("tiny", 2, 500, "eee", &[("phmm", 68_000_000)]),
        ];
        let r = trend(&ms, &CompareConfig::default());
        assert!(r.has_regressions());
    }

    #[test]
    fn different_contexts_never_cross_compare() {
        // A "regression" from tiny to small tier is just a bigger input.
        let ms = vec![
            manifest("tiny", 2, 100, "aaa", &[("bsw", 50_000_000)]),
            manifest("small", 2, 200, "bbb", &[("bsw", 500_000_000)]),
        ];
        let r = trend(&ms, &CompareConfig::default());
        assert_eq!(r.groups.len(), 2);
        assert!(!r.has_regressions());
        for g in &r.groups {
            assert_eq!(g.kernels[0].verdict, Verdict::New);
        }
    }

    #[test]
    fn below_floor_series_never_gate() {
        let ms = vec![
            manifest("tiny", 2, 100, "aaa", &[("fmi", 2_000_000)]),
            manifest("tiny", 2, 200, "bbb", &[("fmi", 4_000_000)]),
        ];
        let r = trend(&ms, &CompareConfig::default());
        assert!(!r.has_regressions());
        assert_eq!(r.groups[0].kernels[0].verdict, Verdict::BelowFloor);
    }

    #[test]
    fn improvement_is_reported_not_gated() {
        let ms = vec![
            manifest("tiny", 2, 100, "aaa", &[("dbg", 90_000_000)]),
            manifest("tiny", 2, 200, "bbb", &[("dbg", 50_000_000)]),
        ];
        let r = trend(&ms, &CompareConfig::default());
        assert!(!r.has_regressions());
        assert_eq!(r.groups[0].kernels[0].verdict, Verdict::Improved);
    }

    #[test]
    fn shuffled_input_produces_identical_reports() {
        let a = manifest("tiny", 2, 100, "aaa", &[("bsw", 50_000_000)]);
        let b = manifest("tiny", 2, 200, "bbb", &[("bsw", 52_000_000)]);
        let c = manifest("tiny", 4, 150, "ccc", &[("bsw", 30_000_000)]);
        let fwd = trend(
            &[a.clone(), b.clone(), c.clone()],
            &CompareConfig::default(),
        );
        let rev = trend(&[c, b, a], &CompareConfig::default());
        assert_eq!(fwd, rev);
    }

    fn with_stages(m: &mut RunManifest, kernel: &str, stages: &[(&str, u64)]) {
        m.kernels.get_mut(kernel).unwrap().stages = Some(
            stages
                .iter()
                .map(|(p, t)| crate::manifest::StageTotal {
                    path: p.to_string(),
                    total_ns: *t,
                })
                .collect(),
        );
    }

    #[test]
    fn regressed_series_attributes_against_the_best_run_not_the_previous_one() {
        // Best run is the FIRST (50 ms); the middle run is slower. The
        // attribution must diff latest against run 0, not run 1.
        let mut first = manifest("tiny", 2, 100, "aaa", &[("bsw", 50_000_000)]);
        with_stages(
            &mut first,
            "bsw",
            &[("bsw", 50_000_000), ("bsw;tasks", 40_000_000)],
        );
        let mut mid = manifest("tiny", 2, 200, "bbb", &[("bsw", 55_000_000)]);
        with_stages(
            &mut mid,
            "bsw",
            &[("bsw", 55_000_000), ("bsw;tasks", 44_000_000)],
        );
        let mut last = manifest("tiny", 2, 300, "ccc", &[("bsw", 90_000_000)]);
        with_stages(
            &mut last,
            "bsw",
            &[("bsw", 90_000_000), ("bsw;tasks", 78_000_000)],
        );
        let r = trend(&[first, mid, last], &CompareConfig::default());
        let k = &r.groups[0].kernels[0];
        assert_eq!(k.verdict, Verdict::Regressed);
        assert_eq!(k.best_prev_idx, Some(0));
        assert_eq!(k.latest_idx, Some(2));
        let a = k.attribution.as_ref().expect("attribution computed");
        assert_eq!(a.root_delta_ns, 40_000_000);
        assert_eq!(a.rows[0].path, "bsw;tasks");
        assert_eq!(a.rows[0].self_delta, 38_000_000);
    }

    #[test]
    fn regression_without_stage_data_has_no_attribution() {
        let ms = vec![
            manifest("tiny", 2, 100, "aaa", &[("bsw", 50_000_000)]),
            manifest("tiny", 2, 300, "ccc", &[("bsw", 90_000_000)]),
        ];
        let r = trend(&ms, &CompareConfig::default());
        let k = &r.groups[0].kernels[0];
        assert_eq!(k.verdict, Verdict::Regressed);
        assert!(k.attribution.is_none());
    }

    #[test]
    fn json_envelope_has_groups_and_regression_count() {
        let ms = vec![
            manifest("tiny", 2, 100, "aaa", &[("bsw", 50_000_000)]),
            manifest("tiny", 2, 200, "bbb", &[("bsw", 90_000_000)]),
        ];
        let j = trend(&ms, &CompareConfig::default()).to_json();
        assert_eq!(j["kind"], "trend");
        assert_eq!(j["regressions"], 1);
        assert_eq!(j["groups"][0]["kernels"][0]["kernel"], "bsw");
        assert_eq!(j["groups"][0]["kernels"][0]["verdict"], "REGRESSED");
        assert_eq!(j["groups"][0]["runs"].as_array().unwrap().len(), 2);
    }
}
