//! Property tests for the stage-tree fold: over arbitrary *well-formed*
//! traces (spans on one track either nest fully or are disjoint — what
//! the pool and the pipeline stage helpers emit by construction), the
//! collapsed-stack output at `div = 1` conserves time exactly: summing
//! every emitted self value reproduces the sum of the top-level span
//! durations. No nanosecond is double-counted by nesting or lost by
//! merging frames across tracks.

use gb_obs::{StageTree, TraceBuffer, TraceEvent};
use proptest::prelude::*;

fn span(name: &str, tid: u32, ts_ns: u64, dur_ns: u64) -> TraceEvent {
    TraceEvent {
        name: name.into(),
        cat: "stage".into(),
        ph: 'X',
        ts_ns,
        dur_ns,
        tid,
    }
}

/// One track's worth of well-formed spans built from flat random
/// parameters: a root span covering the whole track, sequential child
/// segments inside it, and (where the parameters allow) one grandchild
/// fully contained in its segment. Returns the events plus the track's
/// top-level (root) duration.
///
/// `segments` is `(name_idx, dur, gap, grandchild_frac_pct)` per child.
fn build_track(tid: u32, segments: &[(u8, u64, u64, u8)]) -> (Vec<TraceEvent>, u64) {
    let mut events = Vec::new();
    let mut cursor: u64 = 1;
    for (name_idx, dur, gap, gc_pct) in segments {
        let start = cursor + gap;
        let name = format!("stage{}", name_idx % 5);
        events.push(span(&name, tid, start, *dur));
        // Grandchild: strictly inside the segment when there is room.
        let gc_dur = dur * u64::from(*gc_pct % 100) / 100;
        if gc_dur > 0 && gc_dur < *dur {
            events.push(span("inner", tid, start, gc_dur));
        }
        cursor = start + dur;
    }
    let root_dur = cursor + 1;
    // Pushed last on purpose: from_trace sorts by start time, so the
    // event order in the buffer must not matter.
    events.push(span("root", tid, 0, root_dur));
    (events, root_dur)
}

fn collapsed_sum(folded: &str) -> u64 {
    folded
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn collapsed_output_conserves_top_level_durations(
        tracks in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..5, 1u64..100_000, 0u64..1_000, 0u8..120),
                1..6,
            ),
            1..4,
        ),
    ) {
        let mut events = Vec::new();
        let mut top_level_total = 0u64;
        for (tid, segs) in tracks.iter().enumerate() {
            let (evs, root_dur) = build_track(tid as u32, segs);
            events.extend(evs);
            top_level_total += root_dur;
        }
        let trace = TraceBuffer { events };
        let tree = StageTree::from_trace(&trace, "ns");

        // Conservation: every line of the collapsed output (self
        // values, div = 1) sums back to the top-level durations.
        let folded = tree.to_collapsed(1);
        prop_assert_eq!(collapsed_sum(&folded), top_level_total);

        // total() agrees — it is defined as the same quantity from the
        // inclusive side.
        prop_assert_eq!(tree.total(), top_level_total);

        // The same invariant holds per row: self = total − children.
        for row in tree.rows() {
            prop_assert!(row.self_value <= row.total);
        }
    }

    #[test]
    fn rooting_preserves_conservation_at_the_new_root(
        durs in proptest::collection::vec(1u64..1_000_000, 1..8),
        floor in 0u64..10_000_000,
    ) {
        // Disjoint task spans (one per track, like the pool emits) under
        // a synthetic kernel root pinned at max(floor, busy).
        let events = durs
            .iter()
            .enumerate()
            .map(|(i, d)| span("kern", i as u32, 0, *d))
            .collect();
        let busy: u64 = durs.iter().sum();
        let tree = StageTree::from_trace(&TraceBuffer { events }, "ns")
            .into_rooted("kern", floor);
        let folded = tree.to_collapsed(1);
        prop_assert_eq!(collapsed_sum(&folded), floor.max(busy));
        prop_assert_eq!(tree.total(), floor.max(busy));
    }
}
