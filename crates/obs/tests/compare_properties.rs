//! Property tests for the regression gate: comparing a manifest against
//! itself never gates, and a genuine +20% wall-time regression on a
//! kernel above the noise floor always gates.

use gb_obs::compare::{compare, CompareConfig};
use gb_obs::manifest::{KernelRecord, RunManifest};
use proptest::prelude::*;

fn manifest_from(walls: &[(String, u64, u64)]) -> RunManifest {
    let mut m = RunManifest::new("run", "tiny", 1);
    for (name, wall_ns, work) in walls {
        let secs = (*wall_ns as f64 / 1e9).max(1e-12);
        m.add_kernel(
            name,
            KernelRecord {
                wall_ns: *wall_ns,
                tasks: 7,
                checksum: 42,
                work_unit: "cells".into(),
                work_total: *work,
                throughput_per_s: *work as f64 / secs,
                latency: None,
                utilization: None,
                memory: None,
                stages: None,
                prepare_wall_ns: None,
                cache_hit: None,
            },
        );
    }
    m
}

/// Arbitrary kernel sets: indexed names, walls from 0 to 10 s.
fn kernels_strategy() -> impl Strategy<Value = Vec<(String, u64, u64)>> {
    proptest::collection::vec((0u64..10_000_000_000, 1u64..1_000_000_000), 1..8).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (w, t))| (format!("k{i}"), w, t))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A vs A is always clean, whatever the walls and thresholds.
    #[test]
    fn self_compare_is_symmetric_safe(
        kernels in kernels_strategy(),
        tol in 0.01f64..0.5,
        floor_ms in 0u64..100,
    ) {
        let m = manifest_from(&kernels);
        let cfg = CompareConfig {
            rel_tolerance: tol,
            min_wall_ns: floor_ms * 1_000_000,
            ..CompareConfig::default()
        };
        let r = compare(&m, &m, &cfg);
        prop_assert!(!r.has_regressions(), "self-compare regressed: {:?}", r);
        prop_assert!(r.only_in_baseline.is_empty());
        prop_assert!(r.only_in_candidate.is_empty());
    }

    /// Injecting +20% wall time into a kernel that clears both noise
    /// guards always flags that kernel, under the default config.
    #[test]
    fn injected_twenty_percent_always_flags(
        kernels in kernels_strategy(),
        victim_wall_ms in 50u64..5_000,
    ) {
        let cfg = CompareConfig::default();
        let mut base_kernels = kernels.clone();
        // The victim's wall clears the floor, and +20% of it clears the
        // absolute slack (50 ms -> 10 ms delta > 5 ms slack).
        base_kernels.push(("victim".to_string(), victim_wall_ms * 1_000_000, 1_000_000));
        let base = manifest_from(&base_kernels);

        let mut cand = base.clone();
        {
            let k = cand.kernels.get_mut("victim").unwrap();
            k.wall_ns = k.wall_ns + k.wall_ns / 5; // +20%
            k.throughput_per_s =
                k.work_total as f64 / (k.wall_ns as f64 / 1e9);
        }
        let r = compare(&base, &cand, &cfg);
        prop_assert!(
            r.regressions().any(|d| d.kernel == "victim" && d.metric == "wall_time"),
            "missed injected regression: {:?}",
            r.deltas.iter().filter(|d| d.kernel == "victim").collect::<Vec<_>>()
        );
        // Direction awareness: no *other* kernel regresses (their values
        // are identical in both manifests).
        prop_assert!(r.regressions().all(|d| d.kernel == "victim"));
    }

    /// Uniform speedups never gate: improvements are not regressions.
    #[test]
    fn speedups_never_gate(
        kernels in kernels_strategy(),
        speedup_pct in 1u64..80,
    ) {
        let base = manifest_from(&kernels);
        let mut cand = base.clone();
        for k in cand.kernels.values_mut() {
            k.wall_ns -= k.wall_ns * speedup_pct / 100;
            let secs = (k.wall_ns as f64 / 1e9).max(1e-12);
            k.throughput_per_s = k.work_total as f64 / secs;
        }
        let r = compare(&base, &cand, &CompareConfig::default());
        prop_assert!(!r.has_regressions(), "speedup gated: {:?}", r);
    }
}
