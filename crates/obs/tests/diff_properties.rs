//! Property tests for the structural stage-tree diff.
//!
//! The two load-bearing theorems:
//!
//! * **Conservation** — over *arbitrary* pairs of trees (including
//!   pathological ones where a child's total exceeds its parent's, or
//!   frames exist on only one side), the sum of every frame's signed
//!   self delta is identically the root delta. This is what lets the
//!   attribution table claim "these stages account for the whole
//!   regression" without an error term.
//! * **Antisymmetry** — `diff(a, b)` is `diff(b, a)` with every delta
//!   negated, the two sides' totals swapped, and Added ↔ Removed
//!   statuses exchanged. Nothing about the diff privileges one
//!   argument beyond direction.

use gb_obs::{FrameStatus, StageTree, TreeDiff};
use proptest::prelude::*;

/// A random stage tree over a small shared segment alphabet, so two
/// independently drawn trees overlap on some paths (matched frames)
/// and disagree on others (added/removed frames). Totals are set per
/// path with no parent/child consistency on purpose — the diff must
/// conserve even on malformed inputs.
fn tree_strategy() -> impl Strategy<Value = StageTree> {
    let segment = 0u8..4;
    let path = proptest::collection::vec(segment, 1..4).prop_map(|segs| {
        segs.iter()
            .map(|s| format!("s{s}"))
            .collect::<Vec<_>>()
            .join(";")
    });
    proptest::collection::vec((path, 0u64..1_000_000), 0..12)
        .prop_map(|entries| StageTree::from_path_totals("ns", entries))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn self_deltas_conserve_the_root_delta(
        a in tree_strategy(),
        b in tree_strategy(),
    ) {
        let d = TreeDiff::between(&a, &b);
        prop_assert_eq!(d.self_delta_sum(), d.root_delta());
        // And explicitly from the rows, the way consumers sum them.
        let row_sum: i64 = d.rows().iter().map(|r| r.self_delta).sum();
        prop_assert_eq!(row_sum, d.root_delta());
    }

    #[test]
    fn diffing_in_reverse_negates_everything(
        a in tree_strategy(),
        b in tree_strategy(),
    ) {
        let fwd = TreeDiff::between(&a, &b).rows();
        let rev = TreeDiff::between(&b, &a).rows();
        prop_assert_eq!(fwd.len(), rev.len());
        for (f, r) in fwd.iter().zip(&rev) {
            prop_assert_eq!(&f.path, &r.path);
            prop_assert_eq!(f.depth, r.depth);
            prop_assert_eq!(f.self_delta, -r.self_delta);
            prop_assert_eq!(f.total_delta, -r.total_delta);
            prop_assert_eq!(f.base_total, r.cand_total);
            prop_assert_eq!(f.cand_total, r.base_total);
            prop_assert_eq!(f.base_self, r.cand_self);
            prop_assert_eq!(f.cand_self, r.base_self);
            let mirrored = match f.status {
                FrameStatus::Added => FrameStatus::Removed,
                FrameStatus::Removed => FrameStatus::Added,
                FrameStatus::Matched => FrameStatus::Matched,
            };
            prop_assert_eq!(mirrored, r.status);
        }
    }

    #[test]
    fn ranked_is_a_permutation_sorted_by_self_delta(
        a in tree_strategy(),
        b in tree_strategy(),
    ) {
        let d = TreeDiff::between(&a, &b);
        let ranked = d.ranked();
        prop_assert_eq!(ranked.len(), d.rows().len());
        for pair in ranked.windows(2) {
            prop_assert!(pair[0].self_delta >= pair[1].self_delta);
        }
        let mut ranked_paths: Vec<&str> = ranked.iter().map(|r| r.path.as_str()).collect();
        let rows = d.rows();
        let mut row_paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        ranked_paths.sort_unstable();
        row_paths.sort_unstable();
        prop_assert_eq!(ranked_paths, row_paths);
    }

    #[test]
    fn diffing_a_tree_against_itself_is_all_zeros(a in tree_strategy()) {
        let d = TreeDiff::between(&a, &a);
        prop_assert_eq!(d.root_delta(), 0);
        for row in d.rows() {
            prop_assert_eq!(row.status, FrameStatus::Matched);
            prop_assert_eq!(row.self_delta, 0);
            prop_assert_eq!(row.total_delta, 0);
        }
    }
}
