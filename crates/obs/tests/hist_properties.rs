//! Property tests for the log-bucketed histogram: quantiles against a
//! sorted-vector reference, and merge associativity/commutativity.

use gb_obs::hist::{LogHistogram, SUB_BUCKETS};
use proptest::prelude::*;

fn build(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #[test]
    fn quantile_within_bucket_error_of_sorted_reference(
        samples in prop::collection::vec(0u64..1_000_000_000_000, 1..400),
        q in 0.0f64..1.0,
    ) {
        let h = build(&samples);
        let mut sorted = samples;
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.value_at_quantile(q);
        // Quantiles report the bucket upper bound: never below the true
        // value, at most 1/SUB_BUCKETS above it.
        prop_assert!(est >= truth, "est {} < truth {}", est, truth);
        let bound = truth + truth / SUB_BUCKETS + 1;
        prop_assert!(est <= bound, "est {} > bound {}", est, bound);
    }

    #[test]
    fn count_min_max_mean_are_exact(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let h = build(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        let mean = samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - mean).abs() <= mean.abs() * 1e-12 + 1e-9);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
        c in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        // (a + b) + c
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        // a + (b + c)
        let mut bc = build(&b);
        bc.merge(&build(&c));
        let mut right = build(&a);
        right.merge(&bc);
        // c + b + a
        let mut rev = build(&c);
        rev.merge(&build(&b));
        rev.merge(&build(&a));
        // All orderings agree with recording everything into one.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        let bulk = build(&all);
        for h in [&left, &right, &rev] {
            prop_assert_eq!(h.count(), bulk.count());
            prop_assert_eq!(h.min(), bulk.min());
            prop_assert_eq!(h.max(), bulk.max());
            for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(h.value_at_quantile(q), bulk.value_at_quantile(q));
            }
        }
    }
}
