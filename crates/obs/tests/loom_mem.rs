//! Exhaustive model checking of the [`gb_obs::mem`] slot-registry
//! protocol under `RUSTFLAGS="--cfg loom"`.
//!
//! Each test wraps a small [`SlotRegistry`] in [`gb_loom::model`],
//! which re-executes the closure under **every** sequentially-consistent
//! interleaving within the preemption bound (see `crates/loom`). The
//! registry's atomics route through the `gb_obs::sync` facade, so under
//! `--cfg loom` every load/store/RMW is a scheduling point.
//!
//! The named invariants (DESIGN.md, "Concurrency & safety invariants"):
//!
//! 1. **claim-exclusivity** — a slot is owned by at most one thread at
//!    a time, across claim/release/re-claim races.
//! 2. **no-cross-talk** — a span on one thread's slot never observes
//!    another thread's allocations.
//! 3. **no-lost-allocation** — monotone totals survive owner turnover
//!    (slot recycling) and orphan-slot fallback; process-wide
//!    alloc/free tallies always balance.
//! 4. **epoch-nesting** — an inner span's peak folds into the
//!    enclosing span as `max(outer, inner)` even while other threads
//!    mutate their own slots.
//! 5. **no-double-fold** — folding per-worker tallies counts every
//!    task-span record exactly once.
//!
//! Without `--cfg loom` this file compiles to nothing: the facade would
//! re-export plain `std` atomics and the model would explore a single
//! schedule, proving nothing.
#![cfg(loom)]

use gb_loom::model;
use gb_obs::mem::{PoolMemStats, SlotRegistry, WorkerMemTally, UNREGISTERED};
use std::sync::Arc;

/// Invariant 1 (claim-exclusivity), claim/claim race: with one free
/// slot and two claimants, exactly one wins in every interleaving.
#[test]
fn claim_exclusivity_single_slot() {
    model(|| {
        let reg = Arc::new(SlotRegistry::<1>::new());
        let r2 = Arc::clone(&reg);
        let t = gb_loom::thread::spawn(move || r2.claim());
        let mine = reg.claim();
        let theirs = t.join().unwrap();
        match (mine, theirs) {
            (Some(0), None) | (None, Some(0)) => {}
            other => panic!("claim not exclusive: {other:?}"),
        }
    });
}

/// Invariant 1 (claim-exclusivity), release/claim race: a re-claimant
/// racing the owner's release either gets the recycled slot or nothing;
/// it never co-owns, and the release is never lost.
#[test]
fn claim_exclusivity_across_release() {
    model(|| {
        let reg = Arc::new(SlotRegistry::<1>::new());
        let owner = reg.claim().expect("uncontended claim");
        let r2 = Arc::clone(&reg);
        let t = gb_loom::thread::spawn(move || r2.claim());
        reg.release(owner);
        let theirs = t.join().unwrap();
        match theirs {
            // The claimant ran after the release.
            Some(idx) => assert_eq!(idx, 0),
            // The claimant ran before the release; the slot must be
            // claimable now that the release has happened.
            None => assert_eq!(reg.claim(), Some(0), "release lost"),
        }
    });
}

/// Invariant 2 (no-cross-talk): each thread records into its own slot;
/// a span over one slot reports exactly that thread's bytes in every
/// interleaving of the two threads' counter updates.
#[test]
fn spans_do_not_cross_talk() {
    model(|| {
        let reg = Arc::new(SlotRegistry::<2>::new());
        let a = reg.claim().unwrap();
        let b = reg.claim().unwrap();
        let r2 = Arc::clone(&reg);
        let t = gb_loom::thread::spawn(move || {
            let span = r2.span_enter(b);
            r2.record_alloc(b, 37);
            r2.span_exit(span)
        });
        let span = reg.span_enter(a);
        reg.record_alloc(a, 100);
        reg.record_free(a, 100);
        let mine = reg.span_exit(span);
        let theirs = t.join().unwrap();
        assert_eq!(mine.peak_bytes, 100, "cross-talk into span A");
        assert_eq!(mine.net_bytes, 0);
        assert_eq!((mine.allocs, mine.frees), (1, 1));
        assert_eq!(theirs.peak_bytes, 37, "cross-talk into span B");
        assert_eq!(theirs.net_bytes, 37);
    });
}

/// Invariant 3 (no-lost-allocation): one thread's allocation survives
/// its death (slot release) and a concurrent orphan-routed free; the
/// registry totals balance in every interleaving — including those
/// where the main thread re-claims the recycled slot mid-flight.
#[test]
fn totals_survive_owner_turnover_and_orphan_fallback() {
    model(|| {
        let reg = Arc::new(SlotRegistry::<1>::new());
        let r2 = Arc::clone(&reg);
        // Worker: claim (may race main's claim), allocate, die.
        let t = gb_loom::thread::spawn(move || {
            let idx = r2.claim().unwrap_or(UNREGISTERED);
            r2.record_alloc(idx, 64);
            if idx != UNREGISTERED {
                r2.release(idx);
            }
        });
        // Main: free those 64 bytes from wherever it stands — a slot if
        // one is free, the orphan otherwise (the dead-thread-free path).
        let idx = reg.claim().unwrap_or(UNREGISTERED);
        reg.record_free(idx, 64);
        t.join().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.allocs, 1, "allocation event lost");
        assert_eq!(snap.frees, 1, "free event lost");
        assert_eq!(snap.current_bytes, 0, "net bytes lost in turnover");
    });
}

/// Invariant 4 (epoch-nesting): outer/inner span nesting on one thread
/// restores `max(outer, inner)` while a second thread concurrently
/// exercises its own slot's epoch machinery.
#[test]
fn epoch_nesting_is_immune_to_concurrent_epochs() {
    model(|| {
        let reg = Arc::new(SlotRegistry::<2>::new());
        let a = reg.claim().unwrap();
        let b = reg.claim().unwrap();
        let r2 = Arc::clone(&reg);
        let t = gb_loom::thread::spawn(move || {
            // Concurrent epoch churn on the *other* slot.
            let span = r2.span_enter(b);
            r2.record_alloc(b, 500);
            r2.record_free(b, 500);
            r2.span_exit(span)
        });
        let outer = reg.span_enter(a);
        reg.record_alloc(a, 100);
        let inner = reg.span_enter(a);
        reg.record_alloc(a, 300);
        reg.record_free(a, 300);
        let ir = reg.span_exit(inner);
        reg.record_free(a, 100);
        let or = reg.span_exit(outer);
        t.join().unwrap();
        assert_eq!(ir.peak_bytes, 300, "inner epoch polluted");
        assert_eq!(or.peak_bytes, 400, "outer lost the inner peak");
        assert_eq!(or.net_bytes, 0);
    });
}

/// Invariant 5 (no-double-fold): per-worker tallies collected from
/// concurrent spans fold into totals that count each record exactly
/// once, and the concurrent-peak bound dominates every worker's actual
/// footprint in every interleaving.
#[test]
fn fold_counts_each_worker_record_exactly_once() {
    model(|| {
        let reg = Arc::new(SlotRegistry::<2>::new());
        let a = reg.claim().unwrap();
        let b = reg.claim().unwrap();
        let r2 = Arc::clone(&reg);
        let t = gb_loom::thread::spawn(move || {
            let mut tally = WorkerMemTally::default();
            let span = r2.span_enter(b);
            r2.record_alloc(b, 50);
            tally.add(r2.span_exit(span));
            tally
        });
        let mut mine = WorkerMemTally::default();
        let span = reg.span_enter(a);
        reg.record_alloc(a, 30);
        reg.record_free(a, 10);
        mine.add(reg.span_exit(span));
        let theirs = t.join().unwrap();
        let pool = PoolMemStats::fold(0, false, [&mine, &theirs]);
        assert_eq!(pool.tasks, 2, "task record dropped or double-folded");
        assert_eq!(pool.allocs, 2);
        assert_eq!(pool.frees, 1);
        assert_eq!(pool.net_bytes, 70, "net double-folded");
        assert_eq!(pool.task_peak_max_bytes, 50);
        // The bound must dominate the true combined footprint (70):
        // Σ_worker (retained⁺ + peak) = (20 + 30) + (50 + 50).
        assert!(pool.concurrent_peak_bound >= 70);
        assert_eq!(pool.concurrent_peak_bound, 150);
    });
}
