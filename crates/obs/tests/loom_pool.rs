//! Exhaustive model checking of the [`gb_obs::pool::TaskCursor`]
//! claim/close protocol under `RUSTFLAGS="--cfg loom"`.
//!
//! Named invariants (DESIGN.md, "Concurrency & safety invariants"):
//!
//! 6. **exactly-once claim** — each task index in `0..limit` is handed
//!    to exactly one claimant, in every interleaving.
//! 7. **no-lost-task** — when workers drain the cursor to exhaustion,
//!    the union of their claims is the full range.
//! 8. **shutdown monotonicity** — `close()` is idempotent, sticky
//!    (claims never resume), and racing closers/claimants never
//!    duplicate or resurrect an index.
#![cfg(loom)]

use gb_loom::model;
use gb_obs::pool::TaskCursor;
use std::sync::Arc;

/// Invariants 6 + 7: two workers drain a 3-task cursor; their claims
/// partition `{0,1,2}` in every interleaving.
#[test]
fn concurrent_claims_partition_the_range() {
    model(|| {
        let cursor = Arc::new(TaskCursor::new(3));
        let c2 = Arc::clone(&cursor);
        let t = gb_loom::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(i) = c2.claim() {
                got.push(i);
            }
            got
        });
        let mut mine = Vec::new();
        while let Some(i) = cursor.claim() {
            mine.push(i);
        }
        let theirs = t.join().unwrap();
        let mut all = mine;
        all.extend(theirs);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "claims lost or duplicated");
        assert!(cursor.is_exhausted());
        assert_eq!(cursor.claim(), None, "exhaustion not sticky");
    });
}

/// Invariant 8: a closer racing a claimant. The claimant sees a prefix
/// of the range (never a duplicate, never an index past the limit), and
/// after both finish the cursor stays closed.
#[test]
fn close_racing_claim_is_monotone() {
    model(|| {
        let cursor = Arc::new(TaskCursor::new(2));
        let c2 = Arc::clone(&cursor);
        let t = gb_loom::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(i) = c2.claim() {
                got.push(i);
            }
            got
        });
        cursor.close();
        let theirs = t.join().unwrap();
        // Whatever interleaved, claims are distinct, in-range, and in
        // claim order (the cursor only moves forward).
        for w in theirs.windows(2) {
            assert!(w[0] < w[1], "claims out of order: {theirs:?}");
        }
        assert!(theirs.iter().all(|&i| i < 2), "claim past limit");
        assert_eq!(cursor.claim(), None, "cursor reopened after close");
        assert!(cursor.is_exhausted());
    });
}

/// Invariant 8, closer/closer race: concurrent closes are idempotent —
/// the cursor ends closed, claims end `None`, nothing panics.
#[test]
fn concurrent_closes_are_idempotent() {
    model(|| {
        let cursor = Arc::new(TaskCursor::new(5));
        let c2 = Arc::clone(&cursor);
        let t = gb_loom::thread::spawn(move || {
            c2.close();
            c2.claim()
        });
        cursor.close();
        let theirs = t.join().unwrap();
        assert_eq!(theirs, None, "claim succeeded after that thread closed");
        assert_eq!(cursor.claim(), None);
        assert!(cursor.is_exhausted());
    });
}

/// Invariant 6 on the exhaustion edge: with more workers than tasks,
/// the single task goes to exactly one of them in every interleaving.
#[test]
fn one_task_two_workers_single_winner() {
    model(|| {
        let cursor = Arc::new(TaskCursor::new(1));
        let c2 = Arc::clone(&cursor);
        let t = gb_loom::thread::spawn(move || c2.claim());
        let mine = cursor.claim();
        let theirs = t.join().unwrap();
        match (mine, theirs) {
            (Some(0), None) | (None, Some(0)) => {}
            other => panic!("task 0 not claimed exactly once: {other:?}"),
        }
        assert!(cursor.is_exhausted());
    });
}
