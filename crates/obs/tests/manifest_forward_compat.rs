//! Golden forward-compatibility test: a manifest stamped with a *later*
//! 1.x minor version and carrying fields this build has never heard of
//! must load cleanly — the schema only grows within a major, so readers
//! skip unknown fields instead of erroring. A `2.0` stamp, by contrast,
//! must be rejected with the version error, not a parse error.

use gb_obs::manifest::{ManifestError, RunManifest};

/// A synthetic schema-1.99 manifest: valid 1.x skeleton plus unknown
/// extra fields at the root, kernel, latency, and memory levels.
const FUTURE_MANIFEST: &str = r#"{
  "schema_version": "1.99",
  "command": "profile",
  "suite_version": "9.9.9",
  "git_rev": "feedc0ffee42",
  "created_unix_s": 1786200000,
  "tier": "tiny",
  "threads": 4,
  "dp_engine": "simd",
  "hostname": "future-box",
  "cpu_model": "Imaginary 9000X",
  "flux_capacitor": {"charged": true, "jigawatts": 1.21},
  "kernels": {
    "bsw": {
      "wall_ns": 123456789,
      "tasks": 20,
      "checksum": 987654321,
      "work_unit": "cells",
      "work_total": 1000000,
      "throughput_per_s": 8.1e9,
      "energy_joules": 0.25,
      "simd_width_used": 256,
      "latency": {
        "count": 20,
        "mean": 61728.3,
        "p50": 60000,
        "p90": 90000,
        "p99": 120000,
        "max": 123000,
        "p99_9": 122500
      },
      "utilization": 0.93,
      "memory": {
        "peak_bytes": 1048576,
        "end_bytes": 0,
        "allocs": 400,
        "frees": 400,
        "task_peak_max_bytes": 65536,
        "numa_spill_bytes": 0
      }
    }
  },
  "metrics": null,
  "provenance": ["ci", "nightly"]
}"#;

#[test]
fn newer_minor_version_with_unknown_fields_loads() {
    let dir = std::env::temp_dir().join(format!("gb_fwd_compat_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("future.json");
    std::fs::write(&path, FUTURE_MANIFEST).unwrap();

    let m = RunManifest::load(&path).expect("1.99 manifest must load on a 1.x reader");
    std::fs::remove_dir_all(&dir).ok();

    // The stamped version is preserved, not rewritten to ours.
    assert_eq!(m.schema_version, "1.99");
    assert_eq!(m.tier, "tiny");
    assert_eq!(m.threads, 4);
    assert_eq!(m.dp_engine.as_deref(), Some("simd"));

    // Known kernel fields came through; unknown ones were skipped.
    let bsw = &m.kernels["bsw"];
    assert_eq!(bsw.wall_ns, 123_456_789);
    assert_eq!(bsw.latency.as_ref().unwrap().p99, 120_000);
    assert_eq!(bsw.memory.as_ref().unwrap().peak_bytes, 1_048_576);

    // And the loaded manifest round-trips through the current writer.
    let rt = RunManifest::from_json(&m.to_json()).unwrap();
    assert_eq!(rt.kernels["bsw"], m.kernels["bsw"]);
}

#[test]
fn next_major_version_is_rejected_as_version_skew() {
    let body = FUTURE_MANIFEST.replace("\"1.99\"", "\"2.0\"");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    match RunManifest::from_json(&v) {
        Err(ManifestError::Version { found }) => assert_eq!(found, "2.0"),
        other => panic!("expected version error, got {other:?}"),
    }
}
