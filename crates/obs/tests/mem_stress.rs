//! Concurrency stress for the thread-local allocation registry: N
//! concurrent spans over disjoint allocations must report disjoint,
//! non-negative peaks whose sum bounds the global live-byte growth —
//! the no-cross-talk invariant the registry exists to provide (the old
//! global-counter tracker conflated every concurrent span).
//!
//! Run with `cargo test -p gb-obs --features mem-profile`.
#![cfg(feature = "mem-profile")]

use gb_obs::mem::{self, TaskSpan, TrackingAllocator};
use proptest::prelude::*;
use std::sync::{Barrier, Mutex};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Serializes the tests in this binary: per-span peaks are immune to
/// outside allocations, but the global live-byte growth measured by
/// [`concurrent_spans`] is not.
static SERIAL: Mutex<()> = Mutex::new(());

/// An allocation the optimizer cannot elide.
fn ballast(bytes: usize) -> Vec<u8> {
    std::hint::black_box(vec![0x5Au8; bytes])
}

/// Per-thread slack for incidentals (thread spawn, TLS registration).
/// Ballast is a single exact-size allocation, so the tolerance is tight.
const SLACK: u64 = 256 << 10;

/// Runs one span per size on its own thread, all ballast live
/// simultaneously (barrier-synchronized), and returns the per-span
/// records plus the global live-byte growth observed at the rendezvous.
fn concurrent_spans(sizes: &[usize]) -> (Vec<mem::TaskMemRecord>, u64) {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let base = mem::snapshot().current_bytes;
    let barrier = Barrier::new(sizes.len());
    let (records, mid) = std::thread::scope(|s| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&bytes| {
                let barrier = &barrier;
                s.spawn(move || {
                    let span = TaskSpan::enter();
                    let buf = ballast(bytes);
                    // Every thread's ballast is live here.
                    let leader = barrier.wait().is_leader();
                    let mid = leader.then(|| mem::snapshot().current_bytes);
                    drop(buf);
                    (span.exit(), mid)
                })
            })
            .collect();
        let mut records = Vec::new();
        let mut mid = 0;
        for h in handles {
            let (r, m) = h.join().unwrap();
            records.push(r);
            if let Some(m) = m {
                mid = m;
            }
        }
        (records, mid)
    });
    (records, mid.saturating_sub(base))
}

fn assert_no_cross_talk(sizes: &[usize], records: &[mem::TaskMemRecord], global_growth: u64) {
    for (r, &bytes) in records.iter().zip(sizes) {
        let bytes = bytes as u64;
        assert!(
            r.peak_bytes >= bytes,
            "peak {} below own ballast {bytes}",
            r.peak_bytes
        );
        assert!(
            r.peak_bytes <= bytes + SLACK,
            "peak {} absorbed another span's allocations (own ballast {bytes})",
            r.peak_bytes
        );
        // Ballast freed before exit; only incidentals may remain.
        assert!(
            r.net_bytes.unsigned_abs() <= SLACK,
            "retained {} bytes",
            r.net_bytes
        );
    }
    // At the rendezvous every span's ballast was live at once, so the
    // per-span peaks must jointly account for the global growth — minus
    // out-of-span incidentals (thread-spawn bookkeeping allocated on
    // the launching thread), budgeted at one SLACK per thread + one for
    // the launcher.
    let peak_sum: u64 = records.iter().map(|r| r.peak_bytes).sum();
    let slack_budget = SLACK * (records.len() as u64 + 1);
    assert!(
        peak_sum + slack_budget >= global_growth,
        "span peaks sum to {peak_sum} but global live bytes grew {global_growth}"
    );
}

#[test]
fn concurrent_spans_report_disjoint_peaks() {
    // Well-separated sizes: any cross-talk shifts a peak past its bound.
    let sizes: Vec<usize> = (0..8).map(|i| (i + 1) << 20).collect();
    let (records, global_growth) = concurrent_spans(&sizes);
    assert_no_cross_talk(&sizes, &records, global_growth);
}

#[test]
fn repeated_thread_churn_recycles_slots() {
    // Far more short-lived measured threads than registry slots: slot
    // recycling must keep attribution working (no exhaustion, no leaks
    // into other spans).
    for round in 0..64 {
        let sizes = [(round % 4 + 1) << 20, 1 << 20];
        let (records, _) = concurrent_spans(&sizes);
        for (r, &bytes) in records.iter().zip(&sizes) {
            assert!(r.peak_bytes >= bytes as u64, "round {round}");
            assert!(r.peak_bytes <= bytes as u64 + SLACK, "round {round}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The invariant holds for arbitrary disjoint allocation sizes and
    /// span counts, not just the hand-picked layout above.
    #[test]
    fn prop_disjoint_spans_never_cross_talk(
        sizes in prop::collection::vec((64usize << 10)..(4 << 20), 2..8)
    ) {
        let (records, global_growth) = concurrent_spans(&sizes);
        assert_no_cross_talk(&sizes, &records, global_growth);
    }
}
