//! TrackingAllocator behaviour with the allocator actually registered.
//! Only meaningful under `--features mem-profile`; without the feature
//! the whole file compiles to nothing (registering the tracker would
//! not compile, and the counters would read zero anyway).
//!
//! Span peaks are **span-relative**: a span reports bytes held live
//! above its own entry point, attributed to its own thread(s) — not the
//! process-wide absolute peak the first version of `gb_obs::mem`
//! reported (which conflated concurrent spans).
#![cfg(feature = "mem-profile")]

use gb_obs::mem::{self, MemSpan, TaskSpan, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// An allocation the optimizer cannot elide.
fn ballast(bytes: usize) -> Vec<u8> {
    std::hint::black_box(vec![0xA5u8; bytes])
}

#[test]
fn tracking_allocator_counts_and_spans_nest() {
    // --- process-wide counters move with allocations ---
    let before = mem::snapshot();
    let keep = ballast(1 << 20);
    let after = mem::snapshot();
    assert!(after.allocs > before.allocs, "alloc not counted");
    assert!(
        after.current_bytes >= before.current_bytes + (1 << 20),
        "live bytes did not grow by the allocation"
    );
    // Peak is a high-water mark: never below the live total.
    assert!(after.peak_bytes >= after.current_bytes);
    drop(keep);
    let freed = mem::snapshot();
    assert!(freed.frees > after.frees, "free not counted");

    // --- span peaks are relative to their own entry point ---
    let outer = MemSpan::enter();
    let held = ballast(4 << 20); // 4 MiB live across the inner span
    let inner = MemSpan::enter();
    let transient = ballast(8 << 20); // 8 MiB, freed before inner exits
    drop(transient);
    let inner_report = inner.exit();
    // The inner span saw the 8 MiB transient but NOT the 4 MiB held
    // buffer (allocated before it opened).
    assert!(
        inner_report.peak_bytes >= 8 << 20,
        "inner peak {} missed its transient",
        inner_report.peak_bytes
    );
    assert!(
        inner_report.peak_bytes < 12 << 20,
        "inner peak {} absorbed the enclosing span's ballast",
        inner_report.peak_bytes
    );
    assert!(inner_report.allocs >= 1);
    assert!(inner_report.frees >= 1);
    // The transient was freed inside the span, so little is retained.
    assert!(inner_report.end_bytes < 1 << 20);

    let outer_report = outer.exit();
    // Nesting restores peak accounting: the outer span held 4 MiB while
    // the inner span peaked 8 MiB above that.
    assert!(
        outer_report.peak_bytes >= 12 << 20,
        "outer peak {} lost the nested peak",
        outer_report.peak_bytes
    );
    assert!(outer_report.peak_bytes >= outer_report.end_bytes);
    // `held` is still live at exit: the span retained it.
    assert!(outer_report.end_bytes >= 4 << 20);
    drop(held);
}

#[test]
fn task_spans_report_their_own_thread_only() {
    let span = TaskSpan::enter();
    let buf = ballast(2 << 20);
    // A concurrent thread allocating must not leak into this epoch.
    std::thread::spawn(|| {
        let other = ballast(16 << 20);
        std::hint::black_box(other.len())
    })
    .join()
    .unwrap();
    drop(buf);
    let r = span.exit();
    assert!(r.peak_bytes >= 2 << 20, "own allocation missed");
    assert!(
        r.peak_bytes < 10 << 20,
        "peak {} absorbed another thread's 16 MiB",
        r.peak_bytes
    );
    // The 2 MiB ballast was freed here; only thread-spawn incidentals
    // (packets freed on the other thread, and vice versa) remain.
    assert!(
        r.net_bytes.abs() < 1 << 20,
        "unexpected retained bytes: {}",
        r.net_bytes
    );
}

#[test]
fn enabled_reflects_the_feature() {
    assert!(mem::enabled());
}

#[test]
fn dead_thread_allocation_freed_elsewhere_balances() {
    // Deterministic orphan/recycling scenario: a worker thread
    // allocates a buffer, hands it back, and exits — releasing its
    // registry slot. The main thread then frees the buffer. The free
    // lands on a *different* slot (main's own, or the orphan slot if
    // TLS is torn down), yet the process-wide tally must balance: the
    // worker's monotone alloc counters survive slot recycling, so
    // current_bytes returns to (at most) its pre-test level.
    const BYTES: usize = 3 << 20;
    let before = mem::snapshot();
    let buf = std::thread::spawn(|| {
        // Open a span so the thread claims a slot (and releases it on
        // exit via the TLS handle's Drop) rather than orphan-routing.
        let span = TaskSpan::enter();
        let buf = ballast(BYTES);
        let r = span.exit();
        assert!(
            r.net_bytes >= BYTES as i64,
            "worker span missed its own allocation: {}",
            r.net_bytes
        );
        buf
    })
    .join()
    .expect("worker");
    let held = mem::snapshot();
    assert!(
        held.current_bytes >= before.current_bytes + BYTES as u64,
        "dead thread's allocation lost from the process tally \
         (before {} held {})",
        before.current_bytes,
        held.current_bytes
    );
    drop(buf);
    let after = mem::snapshot();
    assert!(
        after.current_bytes <= held.current_bytes - BYTES as u64,
        "cross-slot free not accounted (held {} after {})",
        held.current_bytes,
        after.current_bytes
    );
    assert!(after.frees > held.frees, "free event lost");
    // Alloc/free *event* totals stay monotone and balanced: everything
    // this test allocated it also freed.
    assert!(after.allocs >= before.allocs + 1);
}
