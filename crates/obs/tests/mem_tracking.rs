//! TrackingAllocator behaviour with the allocator actually registered.
//! Only meaningful under `--features mem-profile`; without the feature
//! the whole file compiles to nothing (registering the tracker would
//! not compile, and the counters would read zero anyway).
#![cfg(feature = "mem-profile")]

use gb_obs::mem::{self, MemSpan, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// An allocation the optimizer cannot elide.
fn ballast(bytes: usize) -> Vec<u8> {
    std::hint::black_box(vec![0xA5u8; bytes])
}

#[test]
fn tracking_allocator_counts_and_spans_nest() {
    // --- counters move with allocations ---
    let before = mem::snapshot();
    let keep = ballast(1 << 20);
    let after = mem::snapshot();
    assert!(after.allocs > before.allocs, "alloc not counted");
    assert!(
        after.current_bytes >= before.current_bytes + (1 << 20),
        "live bytes did not grow by the allocation"
    );
    // Peak is a high-water mark: never below the live total.
    assert!(after.peak_bytes >= after.current_bytes);
    drop(keep);
    let freed = mem::snapshot();
    assert!(freed.frees > after.frees, "free not counted");
    assert!(freed.current_bytes < after.current_bytes);

    // --- span peaks cover what happened inside them ---
    let outer = MemSpan::enter();
    let held = ballast(4 << 20); // 4 MiB live across the inner span
    let inner = MemSpan::enter();
    let transient = ballast(8 << 20); // 8 MiB, freed before inner exits
    let inner_floor = mem::snapshot().current_bytes;
    drop(transient);
    let inner_report = inner.exit();
    assert!(
        inner_report.peak_bytes >= inner_floor,
        "inner peak {} below its own live total {}",
        inner_report.peak_bytes,
        inner_floor
    );
    assert!(inner_report.allocs >= 1);
    assert!(inner_report.frees >= 1);
    // peak >= bytes still live when the span closed.
    assert!(inner_report.peak_bytes >= inner_report.end_bytes);

    drop(held);
    let outer_report = outer.exit();
    // Nesting restores totals: the outer span's peak must cover the
    // inner span's peak even though the inner span reset the tracker.
    assert!(
        outer_report.peak_bytes >= inner_report.peak_bytes,
        "outer peak {} lost the inner peak {}",
        outer_report.peak_bytes,
        inner_report.peak_bytes
    );
    assert!(outer_report.peak_bytes >= outer_report.end_bytes);
    // And the global high-water mark survives span exit.
    assert!(mem::snapshot().peak_bytes >= inner_report.peak_bytes);
}

#[test]
fn enabled_reflects_the_feature() {
    assert!(mem::enabled());
}
