//! Structural golden tests for the SVG flamegraph renderer: instead of
//! pixel snapshots (which would pin incidental styling), they parse the
//! machine-readable `data-*` attributes and rect geometry back out of
//! the document and check the properties that make a flamegraph a
//! flamegraph — one `<g>` per tree frame, children nested inside their
//! parent's x-extent on the next row down, and widths proportional to
//! inclusive totals. Styling can change freely; the structure cannot.

use gb_obs::{differential_svg, flamegraph_svg, FrameStatus, RenderConfig, StageTree, TreeDiff};

/// One frame recovered from the SVG text.
#[derive(Debug, Clone)]
struct Frame {
    path: String,
    depth: usize,
    total: u64,
    status: Option<String>,
    x: f64,
    y: f64,
    w: f64,
}

fn attr(chunk: &str, key: &str) -> Option<String> {
    let pat = format!("{key}=\"");
    let start = chunk.find(&pat)? + pat.len();
    let end = chunk[start..].find('"')? + start;
    Some(chunk[start..end].to_string())
}

/// Parses every `<g class="f" …>` frame group out of `svg`.
fn parse_frames(svg: &str) -> Vec<Frame> {
    svg.split("<g class=\"f\" ")
        .skip(1)
        .map(|chunk| {
            let rect_at = chunk.find("<rect ").expect("frame group carries a rect");
            let rect = &chunk[rect_at..];
            Frame {
                path: attr(chunk, "data-path").expect("data-path"),
                depth: attr(chunk, "data-depth")
                    .expect("data-depth")
                    .parse()
                    .unwrap(),
                total: attr(chunk, "data-total")
                    .map(|t| t.parse().unwrap())
                    .unwrap_or(0),
                status: attr(chunk, "data-status"),
                x: attr(rect, "x").expect("rect x").parse().unwrap(),
                y: attr(rect, "y").expect("rect y").parse().unwrap(),
                w: attr(rect, "width").expect("rect width").parse().unwrap(),
            }
        })
        .collect()
}

fn tree(entries: &[(&str, u64)]) -> StageTree {
    StageTree::from_path_totals("ns", entries.iter().map(|(p, v)| (p.to_string(), *v)))
}

/// The two-root, three-level fixture the structural assertions run on.
/// Totals are chosen so every child strictly fits its parent and the
/// proportionality math has no rounding ambiguity.
fn golden_tree() -> StageTree {
    tree(&[
        ("bsw", 1_000_000),
        ("bsw;dp", 600_000),
        ("bsw;dp;inner", 200_000),
        ("bsw;io", 250_000),
        ("chain", 500_000),
    ])
}

/// Geometry tolerance: coordinates serialize at two decimals.
const EPS: f64 = 0.06;

#[test]
fn every_tree_frame_renders_exactly_once() {
    let t = golden_tree();
    let svg = flamegraph_svg(&t, &RenderConfig::wall("golden"));
    let frames = parse_frames(&svg);
    assert_eq!(frames.len(), t.rows().len());

    let mut rendered: Vec<&str> = frames.iter().map(|f| f.path.as_str()).collect();
    let mut expected: Vec<String> = t.path_totals().into_iter().map(|(p, _)| p).collect();
    rendered.sort_unstable();
    expected.sort();
    assert_eq!(rendered, expected);

    // data-depth is the path's nesting depth.
    for f in &frames {
        assert_eq!(f.depth, f.path.matches(';').count(), "frame {}", f.path);
    }
}

#[test]
fn widths_are_proportional_to_inclusive_totals() {
    let t = golden_tree();
    let cfg = RenderConfig::wall("golden");
    let svg = flamegraph_svg(&t, &cfg);
    let frames = parse_frames(&svg);

    let grand: u64 = t.total();
    // The drawable span is whatever the two top-level frames add up to;
    // deriving it from the document keeps the test independent of the
    // renderer's margin constants.
    let drawable: f64 = frames.iter().filter(|f| f.depth == 0).map(|f| f.w).sum();
    assert!(drawable > 0.0);
    for f in &frames {
        let expected = drawable * f.total as f64 / grand as f64;
        assert!(
            (f.w - expected).abs() < EPS,
            "frame {} width {} != proportional {expected}",
            f.path,
            f.w
        );
    }
}

#[test]
fn children_nest_inside_their_parent_row_by_row() {
    let t = golden_tree();
    let svg = flamegraph_svg(&t, &RenderConfig::wall("golden"));
    let frames = parse_frames(&svg);

    // All frames of one depth share a row; rows descend with depth.
    let row_y = |d: usize| -> f64 {
        let ys: Vec<f64> = frames
            .iter()
            .filter(|f| f.depth == d)
            .map(|f| f.y)
            .collect();
        assert!(
            ys.windows(2).all(|w| (w[0] - w[1]).abs() < EPS),
            "depth {d}"
        );
        ys[0]
    };
    assert!(row_y(0) < row_y(1) && row_y(1) < row_y(2));

    // Each child's x-extent sits inside its parent's.
    let by_path: std::collections::BTreeMap<&str, &Frame> =
        frames.iter().map(|f| (f.path.as_str(), f)).collect();
    for f in &frames {
        let Some((parent_path, _)) = f.path.rsplit_once(';') else {
            continue;
        };
        let p = by_path[parent_path];
        assert!(f.x >= p.x - EPS, "{} starts left of {}", f.path, p.path);
        assert!(
            f.x + f.w <= p.x + p.w + EPS,
            "{} overflows {}",
            f.path,
            p.path
        );
    }

    // Siblings must not overlap: sorted by x, each starts at or after
    // the previous one's end.
    let mut top: Vec<&Frame> = frames.iter().filter(|f| f.depth == 1).collect();
    top.sort_by(|a, b| a.x.total_cmp(&b.x));
    for pair in top.windows(2) {
        assert!(pair[1].x >= pair[0].x + pair[0].w - EPS);
    }
}

#[test]
fn the_document_is_self_contained() {
    for svg in [
        flamegraph_svg(&golden_tree(), &RenderConfig::wall("w")),
        flamegraph_svg(&golden_tree(), &RenderConfig::memory("m")),
        differential_svg(
            &TreeDiff::between(&golden_tree(), &tree(&[("bsw", 900_000)])),
            &RenderConfig::wall("d"),
        ),
    ] {
        assert!(svg.starts_with("<?xml"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(!svg.contains("href"), "external reference");
        assert!(!svg.contains("url("), "external reference");
        assert!(!svg.contains("<script"), "script in artifact");
        // The only URL is the mandatory SVG namespace.
        assert_eq!(svg.matches("http").count(), 1);
        // Well-formed enough to count: every <g opens and closes.
        assert_eq!(svg.matches("<g ").count(), svg.matches("</g>").count());
    }
}

#[test]
fn differential_frames_cover_the_union_and_carry_statuses() {
    let base = tree(&[
        ("bsw", 1_000_000),
        ("bsw;dp", 600_000),
        ("bsw;old", 100_000),
    ]);
    let cand = tree(&[
        ("bsw", 1_400_000),
        ("bsw;dp", 980_000),
        ("bsw;new", 100_000),
    ]);
    let d = TreeDiff::between(&base, &cand);
    let svg = differential_svg(&d, &RenderConfig::wall("bsw diff"));
    let frames = parse_frames(&svg);

    assert_eq!(frames.len(), d.rows().len());
    let status_of = |path: &str| -> String {
        frames
            .iter()
            .find(|f| f.path == path)
            .unwrap_or_else(|| panic!("frame {path} missing"))
            .status
            .clone()
            .expect("diff frames carry data-status")
    };
    assert_eq!(status_of("bsw;old"), FrameStatus::Removed.label());
    assert_eq!(status_of("bsw;new"), FrameStatus::Added.label());
    assert_eq!(status_of("bsw;dp"), FrameStatus::Matched.label());

    // Nesting holds in the differential layout too.
    let root = frames.iter().find(|f| f.path == "bsw").unwrap();
    for f in frames.iter().filter(|f| f.depth == 1) {
        assert!(f.x >= root.x - EPS && f.x + f.w <= root.x + root.w + EPS);
    }
}
