//! Property tests for the trend report: the report is a pure function
//! of the manifest *set* (input order never matters), and a genuinely
//! seeded regression — latest sample past both the relative tolerance
//! and the absolute slack against the best earlier sample, above the
//! noise floor — always gates.

use gb_obs::compare::CompareConfig;
use gb_obs::manifest::{KernelRecord, RunManifest};
use gb_obs::trend::trend;
use proptest::prelude::*;

fn manifest(
    tier: &str,
    threads: usize,
    created: u64,
    rev: u64,
    walls: &[(String, u64)],
) -> RunManifest {
    let mut m = RunManifest::new("run", tier, threads);
    m.created_unix_s = Some(created);
    m.git_rev = Some(format!("{rev:012x}"));
    for (name, wall_ns) in walls {
        let secs = (*wall_ns as f64 / 1e9).max(1e-12);
        m.add_kernel(
            name,
            KernelRecord {
                wall_ns: *wall_ns,
                tasks: 3,
                checksum: 9,
                work_unit: "cells".into(),
                work_total: 100,
                throughput_per_s: 100.0 / secs,
                latency: None,
                utilization: None,
                memory: None,
                stages: None,
                prepare_wall_ns: None,
                cache_hit: None,
            },
        );
    }
    m
}

/// Deterministic Fisher–Yates over `items` driven by `seed` (SplitMix64
/// step), so proptest explores many permutations without a shuffle
/// strategy.
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.swap(i, (z % (i as u64 + 1)) as usize);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn report_is_input_order_independent(
        runs in proptest::collection::vec(
            (0u64..1_000_000, 10_000_000u64..1_000_000_000), 2..8),
        threads_split in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
    ) {
        // Distinct creation times so the series order is unambiguous;
        // optionally split runs across two contexts.
        let ms: Vec<RunManifest> = runs
            .iter()
            .enumerate()
            .map(|(i, (created, wall))| {
                let threads = if threads_split && i % 2 == 0 { 4 } else { 1 };
                manifest(
                    "tiny",
                    threads,
                    *created * 8 + i as u64, // distinct per index
                    i as u64,
                    &[("bsw".to_string(), *wall)],
                )
            })
            .collect();
        let cfg = CompareConfig::default();
        let base = trend(&ms, &cfg);
        let shuf = trend(&shuffled(&ms, seed), &cfg);
        prop_assert_eq!(&base, &shuf);

        // Series lengths and run counts survive the permutation too
        // (paranoia beyond PartialEq: the JSON envelope agrees).
        prop_assert_eq!(base.to_json(), shuf.to_json());
    }

    #[test]
    fn seeded_regression_always_gates(
        base_wall in 20_000_000u64..500_000_000,
        steady in proptest::collection::vec(0u64..1_000_000, 0..4),
        factor_pct in 150u64..400,
    ) {
        let cfg = CompareConfig::default();
        // History: the base point plus jittered points that stay within
        // a +1 ms band (far inside tolerance at these magnitudes).
        let mut ms: Vec<RunManifest> = Vec::new();
        ms.push(manifest("tiny", 2, 100, 0, &[("phmm".to_string(), base_wall)]));
        for (i, j) in steady.iter().enumerate() {
            ms.push(manifest(
                "tiny", 2, 200 + i as u64, 1 + i as u64,
                &[("phmm".to_string(), base_wall + j)],
            ));
        }
        // The seeded regression: ≥ 1.5× the best point, which clears the
        // 10% tolerance and the absolute slack at every generated wall.
        let regressed = base_wall * factor_pct / 100;
        ms.push(manifest(
            "tiny", 2, 9_999_999, 77,
            &[("phmm".to_string(), regressed)],
        ));
        let r = trend(&ms, &cfg);
        prop_assert!(r.has_regressions(), "walls {base_wall} -> {regressed}");

        // And without the seeded point, the steady series never gates.
        ms.pop();
        prop_assert!(!trend(&ms, &cfg).has_regressions());
    }
}
