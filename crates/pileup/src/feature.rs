//! Clair-style feature tensors: the bridge from pileup counts to the
//! **nn-variant** kernel.
//!
//! Clair consumes a `33 x 8 x 4` tensor per candidate site: 33 reference
//! positions (16 flanking each side), 8 channels (4 bases x 2 strands)
//! and 4 encodings — raw pileup counts, insertion support, deletion
//! support, and alternative-allele support relative to the reference.

use crate::pileup::Pileup;
use gb_core::seq::DnaSeq;

/// Window half-width: 16 flanking positions each side of the candidate.
pub const FLANK: usize = 16;
/// Window width (33).
pub const WINDOW: usize = 2 * FLANK + 1;
/// Channels: 4 bases x 2 strands.
pub const CHANNELS: usize = 8;
/// Encodings per channel.
pub const ENCODINGS: usize = 4;
/// Flattened tensor length (33 * 8 * 4 = 1056).
pub const TENSOR_LEN: usize = WINDOW * CHANNELS * ENCODINGS;

/// A flattened `33 x 8 x 4` input tensor, indexed
/// `[position][channel][encoding]` row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct ClairTensor {
    /// Candidate reference position at the window center.
    pub center: usize,
    /// The flattened features.
    pub data: Vec<f32>,
}

impl ClairTensor {
    /// The feature at `(position, channel, encoding)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    // PANIC-FREE: documented `# Panics` precondition over compile-time
    // tensor dimensions.
    pub fn get(&self, pos: usize, channel: usize, encoding: usize) -> f32 {
        assert!(pos < WINDOW && channel < CHANNELS && encoding < ENCODINGS);
        self.data[(pos * CHANNELS + channel) * ENCODINGS + encoding]
    }
}

/// Builds the tensor for candidate position `center` (absolute reference
/// coordinate) from a pileup and the reference sequence of the same
/// region.
///
/// Positions outside the pileup's region contribute zeros, as Clair pads
/// contig edges.
///
/// # Panics
///
/// Panics if `ref_seq.len() != pileup.region.len()`.
pub fn clair_tensor(pileup: &Pileup, ref_seq: &DnaSeq, center: usize) -> ClairTensor {
    assert_eq!(
        ref_seq.len(),
        pileup.region.len(),
        "reference must cover the pileup region"
    );
    let mut data = vec![0.0f32; TENSOR_LEN];
    for (wi, slot) in data.chunks_mut(CHANNELS * ENCODINGS).enumerate() {
        let pos = match (center + wi).checked_sub(FLANK) {
            Some(p) => p,
            None => continue,
        };
        let Some(counts) = pileup.at(pos) else {
            continue;
        };
        let depth = counts.depth().max(1) as f32;
        let ref_base = ref_seq.code_at(pos - pileup.region.start);
        for base in 0..4usize {
            for (strand, (base_counts, ins, del)) in [
                (0usize, (&counts.base_fwd, counts.ins_fwd, counts.del_fwd)),
                (1usize, (&counts.base_rev, counts.ins_rev, counts.del_rev)),
            ] {
                let ch = base * 2 + strand;
                let raw = base_counts[base] as f32 / depth;
                let off = ch * ENCODINGS;
                slot[off] = raw;
                slot[off + 1] = ins as f32 / depth;
                slot[off + 2] = del as f32 / depth;
                // Alternative support: non-reference base fraction.
                slot[off + 3] = if base as u8 == ref_base { 0.0 } else { raw };
            }
        }
    }
    ClairTensor { center, data }
}

/// Builds tensors for a batch of candidate positions — the nn-variant
/// pre-processing workload.
pub fn clair_tensor_batch(
    pileup: &Pileup,
    ref_seq: &DnaSeq,
    centers: &[usize],
) -> Vec<ClairTensor> {
    centers
        .iter()
        .map(|&c| clair_tensor(pileup, ref_seq, c))
        .collect()
}

impl gb_substrate::Codec for ClairTensor {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        e.put_usize(self.center);
        gb_substrate::Codec::encode(&self.data, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<ClairTensor> {
        let center = d.get_usize()?;
        let data: Vec<f32> = gb_substrate::Codec::decode(d)?;
        (data.len() == TENSOR_LEN).then_some(ClairTensor { center, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pileup::count_pileup;
    use gb_core::cigar::Cigar;
    use gb_core::quality::Phred;
    use gb_core::record::{AlignmentRecord, ReadRecord, Strand};
    use gb_core::region::{Region, RegionTask};

    fn simple_task() -> (RegionTask, DnaSeq) {
        // Reference of 100 A's; 10 reads of C at positions 40..60 -> every
        // covered position is an alt site.
        let ref_seq = DnaSeq::from_codes_unchecked(vec![0u8; 100]);
        let reads: Vec<AlignmentRecord> = (0..10)
            .map(|i| {
                let read = ReadRecord::with_uniform_quality(
                    format!("r{i}"),
                    DnaSeq::from_codes_unchecked(vec![1u8; 20]),
                    Phred::new(30),
                );
                let cig: Cigar = "20M".parse().unwrap();
                AlignmentRecord::new(read, 0, 40, cig, 60, Strand::Forward).unwrap()
            })
            .collect();
        (
            RegionTask {
                region: Region::new(0, 0, 100),
                ref_seq: ref_seq.clone(),
                reads,
            },
            ref_seq,
        )
    }

    #[test]
    fn tensor_shape_and_center() {
        let (task, ref_seq) = simple_task();
        let p = count_pileup(&task);
        let t = clair_tensor(&p, &ref_seq, 50);
        assert_eq!(t.data.len(), TENSOR_LEN);
        // Center (window index 16): all reads say C on forward strand.
        let c_fwd = t.get(FLANK, 2, 0);
        assert!((c_fwd - 1.0).abs() < 1e-6, "C fraction {c_fwd}");
        // Alt encoding mirrors raw for non-reference base.
        assert_eq!(t.get(FLANK, 2, 3), c_fwd);
        // Reference base A has no support and no alt.
        assert_eq!(t.get(FLANK, 0, 0), 0.0);
        assert_eq!(t.get(FLANK, 0, 3), 0.0);
    }

    #[test]
    fn window_edges_are_padded() {
        let (task, ref_seq) = simple_task();
        let p = count_pileup(&task);
        let t = clair_tensor(&p, &ref_seq, 5); // window extends below 0
        for wi in 0..11 {
            for ch in 0..CHANNELS {
                for e in 0..ENCODINGS {
                    if wi + 5 < FLANK {
                        assert_eq!(t.get(wi, ch, e), 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn uncovered_positions_are_zero() {
        let (task, ref_seq) = simple_task();
        let p = count_pileup(&task);
        let t = clair_tensor(&p, &ref_seq, 10); // coverage starts at 40
        assert!(t.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn batch_matches_singles() {
        let (task, ref_seq) = simple_task();
        let p = count_pileup(&task);
        let batch = clair_tensor_batch(&p, &ref_seq, &[45, 50, 55]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[1], clair_tensor(&p, &ref_seq, 50));
    }

    #[test]
    fn reference_support_is_not_alt() {
        // Reads agreeing with the reference: encoding 3 stays zero.
        let ref_seq = DnaSeq::from_codes_unchecked(vec![2u8; 60]);
        let read = ReadRecord::with_uniform_quality(
            "r",
            DnaSeq::from_codes_unchecked(vec![2u8; 30]),
            Phred::new(30),
        );
        let cig: Cigar = "30M".parse().unwrap();
        let aln = AlignmentRecord::new(read, 0, 10, cig, 60, Strand::Forward).unwrap();
        let task = RegionTask {
            region: Region::new(0, 0, 60),
            ref_seq: ref_seq.clone(),
            reads: vec![aln],
        };
        let p = count_pileup(&task);
        let t = clair_tensor(&p, &ref_seq, 20);
        assert!((t.get(FLANK, 2 * 2, 0) - 1.0).abs() < 1e-6);
        assert_eq!(t.get(FLANK, 2 * 2, 3), 0.0);
    }
}
