//! # gb-pileup
//!
//! Pileup counting (the **pileup** kernel, Medaka's pre-processing) and
//! Clair-style feature-tensor generation (the front-end of the
//! **nn-variant** kernel).
//!
//! # Examples
//!
//! ```
//! use gb_core::{cigar::Cigar, quality::Phred, record::*, region::*, seq::DnaSeq};
//! use gb_pileup::pileup::count_pileup;
//! let ref_seq: DnaSeq = "ACGTACGT".parse()?;
//! let read = ReadRecord::with_uniform_quality("r", "ACGT".parse()?, Phred::new(30));
//! let aln = AlignmentRecord::new(read, 0, 0, "4M".parse()?, 60, Strand::Forward)?;
//! let task = RegionTask { region: Region::new(0, 0, 8), ref_seq, reads: vec![aln] };
//! assert_eq!(count_pileup(&task).at(0).unwrap().depth(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feature;
pub mod pileup;

pub use feature::{clair_tensor, clair_tensor_batch, ClairTensor};
pub use pileup::{count_pileup, Pileup, PosCounts};
