//! Pileup counting — the **pileup** kernel.
//!
//! Medaka-style neural variant calling starts by parsing every alignment
//! overlapping a reference region and tallying, per reference position,
//! the support for each base on each strand plus insertion/deletion
//! support. The work is CIGAR-walking with random accesses into both the
//! alignment records and the counts array — the source of the kernel's
//! memory stalls in the paper's Fig. 9.

use gb_core::cigar::CigarOp;
use gb_core::record::{AlignmentRecord, Strand};
use gb_core::region::{Region, RegionTask};
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Per-position pileup counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PosCounts {
    /// Base support per 2-bit code, forward strand.
    pub base_fwd: [u32; 4],
    /// Base support per 2-bit code, reverse strand.
    pub base_rev: [u32; 4],
    /// Insertions starting after this position (forward strand).
    pub ins_fwd: u32,
    /// Insertions starting after this position (reverse strand).
    pub ins_rev: u32,
    /// Deletions covering this position (forward strand).
    pub del_fwd: u32,
    /// Deletions covering this position (reverse strand).
    pub del_rev: u32,
}

impl PosCounts {
    /// Total read depth (aligned bases + deletions) at this position.
    pub fn depth(&self) -> u32 {
        self.base_fwd.iter().sum::<u32>()
            + self.base_rev.iter().sum::<u32>()
            + self.del_fwd
            + self.del_rev
    }

    /// Combined support for base `code` across strands.
    pub fn base_total(&self, code: u8) -> u32 {
        self.base_fwd[code as usize] + self.base_rev[code as usize]
    }
}

/// The pileup of one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pileup {
    /// The region these counts cover.
    pub region: Region,
    /// One counter block per reference position in the region.
    pub counts: Vec<PosCounts>,
    /// CIGAR operations walked (the kernel's work measure).
    pub ops_walked: u64,
}

impl Pileup {
    /// Counts at reference position `pos`, or `None` outside the region.
    pub fn at(&self, pos: usize) -> Option<&PosCounts> {
        if self.region.contains(pos) {
            self.counts.get(pos - self.region.start)
        } else {
            None
        }
    }
}

/// Builds the pileup for one region task.
///
/// # Examples
///
/// ```
/// use gb_core::{cigar::Cigar, quality::Phred, record::*, region::*, seq::DnaSeq};
/// use gb_pileup::pileup::count_pileup;
/// let ref_seq: DnaSeq = "ACGTACGT".parse()?;
/// let read = ReadRecord::with_uniform_quality("r", "CGTA".parse()?, Phred::new(30));
/// let aln = AlignmentRecord::new(read, 0, 1, "4M".parse()?, 60, Strand::Forward)?;
/// let task = RegionTask { region: Region::new(0, 0, 8), ref_seq, reads: vec![aln] };
/// let p = count_pileup(&task);
/// assert_eq!(p.at(1).unwrap().base_total(1), 1); // C at position 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn count_pileup(task: &RegionTask) -> Pileup {
    count_pileup_probed(task, &mut NullProbe)
}

/// [`count_pileup`] with instrumentation.
pub fn count_pileup_probed<P: Probe>(task: &RegionTask, probe: &mut P) -> Pileup {
    let region = task.region;
    let mut counts = vec![PosCounts::default(); region.len()];
    let mut ops_walked = 0u64;
    for rec in &task.reads {
        if !rec.overlaps(region.start, region.end) {
            continue;
        }
        walk_alignment(rec, &region, &mut counts, &mut ops_walked, probe);
    }
    Pileup {
        region,
        counts,
        ops_walked,
    }
}

// PANIC-FREE: `codes[step.query_off]` is in range because CIGAR walks are
// validated against the read length at record construction, and
// `counts[idx]` is guarded by the `region.contains` check above it.
fn walk_alignment<P: Probe>(
    rec: &AlignmentRecord,
    region: &Region,
    counts: &mut [PosCounts],
    ops_walked: &mut u64,
    probe: &mut P,
) {
    let fwd = rec.strand == Strand::Forward;
    let codes = rec.read.seq.as_codes();
    probe.load(addr_of(rec), 32);
    for step in rec.cigar.walk() {
        *ops_walked += 1;
        probe.int_ops(3);
        let ref_pos = rec.pos + step.ref_off;
        if !region.contains(ref_pos) {
            // Insertions anchor to the previous reference position; all
            // other ops simply fall outside.
            probe.branch(false);
            if step.op != CigarOp::Ins || ref_pos != region.end {
                continue;
            }
        }
        probe.branch(true);
        match step.op {
            CigarOp::Match => {
                let base = codes[step.query_off];
                probe.load(addr_of(&codes[step.query_off]), 1);
                let idx = ref_pos - region.start;
                let slot = &mut counts[idx];
                if fwd {
                    slot.base_fwd[base as usize] += 1;
                } else {
                    slot.base_rev[base as usize] += 1;
                }
                probe.store(addr_of(slot), 4);
            }
            CigarOp::Ins => {
                // Anchor at the preceding reference position.
                let anchor = ref_pos.saturating_sub(1);
                if region.contains(anchor) {
                    let slot = &mut counts[anchor - region.start];
                    if fwd {
                        slot.ins_fwd += 1;
                    } else {
                        slot.ins_rev += 1;
                    }
                    probe.store(addr_of(slot), 4);
                }
            }
            CigarOp::Del => {
                let slot = &mut counts[ref_pos - region.start];
                if fwd {
                    slot.del_fwd += 1;
                } else {
                    slot.del_rev += 1;
                }
                probe.store(addr_of(slot), 4);
            }
            CigarOp::SoftClip => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_core::cigar::Cigar;
    use gb_core::quality::Phred;
    use gb_core::record::ReadRecord;
    use gb_core::seq::DnaSeq;

    fn aln(seq: &str, pos: usize, cigar: &str, strand: Strand) -> AlignmentRecord {
        let read =
            ReadRecord::with_uniform_quality("r", seq.parse::<DnaSeq>().unwrap(), Phred::new(30));
        let cig: Cigar = cigar.parse().unwrap();
        AlignmentRecord::new(read, 0, pos, cig, 60, strand).unwrap()
    }

    fn task(reads: Vec<AlignmentRecord>, start: usize, end: usize) -> RegionTask {
        let ref_seq = DnaSeq::from_codes_unchecked(vec![0; end - start]);
        RegionTask {
            region: Region::new(0, start, end),
            ref_seq,
            reads,
        }
    }

    #[test]
    fn simple_match_counts() {
        let t = task(vec![aln("ACGT", 2, "4M", Strand::Forward)], 0, 10);
        let p = count_pileup(&t);
        assert_eq!(p.at(2).unwrap().base_fwd, [1, 0, 0, 0]);
        assert_eq!(p.at(3).unwrap().base_fwd, [0, 1, 0, 0]);
        assert_eq!(p.at(5).unwrap().base_fwd, [0, 0, 0, 1]);
        assert_eq!(p.at(6).unwrap().depth(), 0);
        assert_eq!(p.ops_walked, 4);
    }

    #[test]
    fn strands_tally_separately() {
        let t = task(
            vec![
                aln("AAAA", 0, "4M", Strand::Forward),
                aln("AAAA", 0, "4M", Strand::Reverse),
            ],
            0,
            4,
        );
        let p = count_pileup(&t);
        assert_eq!(p.at(0).unwrap().base_fwd[0], 1);
        assert_eq!(p.at(0).unwrap().base_rev[0], 1);
        assert_eq!(p.at(0).unwrap().depth(), 2);
    }

    #[test]
    fn insertion_anchors_to_previous_position() {
        // 2M 2I 2M: insertion after reference position 4+1 = offset 1.
        let t = task(vec![aln("AACCGG", 4, "2M2I2M", Strand::Forward)], 0, 10);
        let p = count_pileup(&t);
        assert_eq!(p.at(5).unwrap().ins_fwd, 2);
        assert_eq!(p.at(6).unwrap().base_fwd[2], 1); // G after insertion
    }

    #[test]
    fn deletion_covers_positions() {
        let t = task(vec![aln("AAAA", 0, "2M3D2M", Strand::Forward)], 0, 10);
        let p = count_pileup(&t);
        for pos in 2..5 {
            assert_eq!(p.at(pos).unwrap().del_fwd, 1, "pos {pos}");
            assert_eq!(p.at(pos).unwrap().depth(), 1);
        }
        assert_eq!(p.at(5).unwrap().base_fwd[0], 1);
    }

    #[test]
    fn soft_clips_are_skipped() {
        let t = task(vec![aln("CCAAAACC", 3, "2S4M2S", Strand::Forward)], 0, 10);
        let p = count_pileup(&t);
        assert_eq!(p.at(3).unwrap().base_fwd[0], 1);
        assert_eq!(p.at(2).unwrap().depth(), 0);
        assert_eq!(p.at(7).unwrap().depth(), 0);
    }

    #[test]
    fn region_boundary_clips_counts() {
        // Read spans positions 8..16 but region is [10, 14).
        let t = task(vec![aln("AAAAAAAA", 8, "8M", Strand::Forward)], 10, 14);
        let p = count_pileup(&t);
        assert_eq!(p.counts.iter().map(PosCounts::depth).sum::<u32>(), 4);
        assert!(p.at(9).is_none());
        assert!(p.at(14).is_none());
    }

    #[test]
    fn non_overlapping_reads_skipped_entirely() {
        let t = task(vec![aln("AAAA", 50, "4M", Strand::Forward)], 0, 10);
        let p = count_pileup(&t);
        assert_eq!(p.ops_walked, 0);
    }

    #[test]
    fn depth_matches_coverage_on_simulated_data() {
        use gb_datagen::genome::{Genome, GenomeConfig};
        use gb_datagen::reads::{simulate_reads, ReadSimConfig};
        let g = Genome::generate(
            &GenomeConfig {
                length: 5000,
                ..Default::default()
            },
            31,
        );
        let cfg = ReadSimConfig::short(300);
        let reads: Vec<AlignmentRecord> = simulate_reads(&g, &cfg, 32)
            .iter()
            .map(|r| r.to_alignment())
            .collect();
        let t = RegionTask {
            region: Region::new(0, 1000, 3000),
            ref_seq: g.contig(0).slice(1000, 3000),
            reads,
        };
        let p = count_pileup(&t);
        let mean_depth: f64 = p.counts.iter().map(|c| f64::from(c.depth())).sum::<f64>() / 2000.0;
        // 300 reads x 151 bp over 5 kb = ~9x coverage.
        assert!(
            mean_depth > 5.0 && mean_depth < 13.0,
            "mean depth {mean_depth}"
        );
    }
}
