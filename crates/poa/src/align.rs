//! Sequence-to-graph alignment and graph update — the heart of the
//! **spoa** kernel.
//!
//! Aligning a read to the partial-order graph is a dynamic program over
//! `(topologically ordered nodes) x (read positions)`; unlike
//! Smith-Waterman, the "previous row" of a cell is the set of graph
//! predecessors of its node, so the data dependencies are input-dependent
//! (complexity `O((2·n_p + 1)·n·|V|)`, paper §III).

use crate::graph::{NodeId, PoaGraph};
use gb_core::seq::DnaSeq;
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Scoring for graph alignment (SPOA/Racon defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoaParams {
    /// Match score (positive).
    pub match_score: i32,
    /// Mismatch penalty (positive).
    pub mismatch: i32,
    /// Linear gap penalty (positive).
    pub gap: i32,
}

impl Default for PoaParams {
    fn default() -> PoaParams {
        PoaParams {
            match_score: 5,
            mismatch: 4,
            gap: 8,
        }
    }
}

/// One step of a graph alignment path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignStep {
    /// Read base `pos` aligned to graph node `node` (match or mismatch).
    Aligned {
        /// The graph node.
        node: NodeId,
        /// The read offset.
        pos: usize,
    },
    /// Read base `pos` inserted relative to the graph.
    Insert {
        /// The read offset.
        pos: usize,
    },
    /// Graph node `node` skipped by the read (deletion).
    Delete {
        /// The graph node.
        node: NodeId,
    },
}

/// Result of aligning one sequence to the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphAlignment {
    /// Global alignment score.
    pub score: i32,
    /// The path, in read/graph order.
    pub steps: Vec<AlignStep>,
    /// DP cells computed (`|V| * n`).
    pub cells: u64,
}

/// Aligns `seq` to `graph` (global in the sequence, source-to-sink in the
/// graph).
///
/// # Panics
///
/// Panics if the graph is empty or the sequence is empty.
pub fn align_to_graph(graph: &PoaGraph, seq: &DnaSeq, params: &PoaParams) -> GraphAlignment {
    align_to_graph_probed(graph, seq, params, &mut NullProbe)
}

/// [`align_to_graph`] with instrumentation.
// PANIC-FREE: the emptiness asserts are the documented API contract; DP
// indices are bounded by `(v + 1) * width` with rows from `rank_of`
// (always `<= v`) and columns `<= n`.
pub fn align_to_graph_probed<P: Probe>(
    graph: &PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
    probe: &mut P,
) -> GraphAlignment {
    assert!(!graph.is_empty(), "cannot align to an empty graph");
    assert!(!seq.is_empty(), "cannot align an empty sequence");
    let order = graph.topo_order();
    let n = seq.len();
    let v = order.len();
    let s = seq.as_codes();

    // rank_of[node] = row index (1-based; row 0 is the virtual start).
    let mut rank_of = vec![0usize; graph.num_nodes()];
    for (r, &id) in order.iter().enumerate() {
        rank_of[id] = r + 1;
    }

    let width = n + 1;
    let neg = i32::MIN / 4;
    let mut h = vec![neg; (v + 1) * width];
    // Trace: (predecessor row, kind). Kind: 0 = diag, 1 = up (delete),
    // 2 = left (insert), 3 = none (row start / origin).
    let mut trace = vec![(0u32, 3u8); (v + 1) * width];

    // Virtual start row: leading insertions.
    for j in 0..=n {
        h[j] = -(j as i32) * params.gap;
        if j > 0 {
            trace[j] = (0, 2);
        }
    }

    let mut cells = 0u64;
    // Predecessor-row scratch, hoisted out of the row loop and refilled
    // per node (same idiom as the SIMD engine's `align_i16`).
    let mut pred_rows: Vec<usize> = Vec::new();
    for (r0, &id) in order.iter().enumerate() {
        let row = r0 + 1;
        let node = graph.node(id);
        let base = node.base;
        // Predecessor rows: graph predecessors, or the virtual start.
        pred_rows.clear();
        if node.in_edges.is_empty() {
            pred_rows.push(0);
        } else {
            pred_rows.extend(node.in_edges.iter().map(|&(p, _)| rank_of[p]));
        }
        // Column 0: graph-only path (all deletions).
        let mut best0 = neg;
        let mut best0_pred = 0usize;
        for &pr in &pred_rows {
            if h[pr * width] - params.gap > best0 {
                best0 = h[pr * width] - params.gap;
                best0_pred = pr;
            }
        }
        h[row * width] = best0;
        trace[row * width] = (best0_pred as u32, 1);
        for j in 1..=n {
            cells += 1;
            let sub = if base == s[j - 1] {
                params.match_score
            } else {
                -params.mismatch
            };
            let mut best = neg;
            let mut tr = (0u32, 3u8);
            for &pr in &pred_rows {
                probe.load(addr_of(&h[pr * width + j - 1]), 4);
                probe.load(addr_of(&h[pr * width + j]), 4);
                let diag = h[pr * width + j - 1] + sub;
                if diag > best {
                    best = diag;
                    tr = (pr as u32, 0);
                }
                let up = h[pr * width + j] - params.gap;
                if up > best {
                    best = up;
                    tr = (pr as u32, 1);
                }
                probe.int_ops(4);
            }
            let left = h[row * width + j - 1] - params.gap;
            probe.branch(left > best);
            if left > best {
                best = left;
                tr = (row as u32, 2);
            }
            h[row * width + j] = best;
            trace[row * width + j] = tr;
            probe.store(addr_of(&h[row * width + j]), 4);
            probe.simd_ops(1); // SPOA's SIMD lane work per cell
        }
    }

    // Best sink at full sequence consumption.
    let mut best_row = 0usize;
    for (r0, &id) in order.iter().enumerate() {
        if graph.node(id).out_edges.is_empty() {
            let row = r0 + 1;
            if best_row == 0 || h[row * width + n] > h[best_row * width + n] {
                best_row = row;
            }
        }
    }
    let best_score = h[best_row * width + n];

    // Traceback.
    let mut steps = Vec::new();
    let (mut row, mut j) = (best_row, n);
    while row != 0 || j != 0 {
        let (pr, kind) = trace[row * width + j];
        match kind {
            0 => {
                steps.push(AlignStep::Aligned {
                    node: order[row - 1],
                    pos: j - 1,
                });
                row = pr as usize;
                j -= 1;
            }
            1 => {
                steps.push(AlignStep::Delete {
                    node: order[row - 1],
                });
                row = pr as usize;
            }
            2 => {
                steps.push(AlignStep::Insert { pos: j - 1 });
                j -= 1;
            }
            _ => break,
        }
    }
    steps.reverse();
    GraphAlignment {
        score: best_score,
        steps,
        cells,
    }
}

/// Aligns `seq` and merges it into the graph, updating edge weights and
/// creating nodes for mismatches/insertions. Returns the alignment.
///
/// An empty graph is seeded with the sequence as a backbone chain.
pub fn add_sequence(graph: &mut PoaGraph, seq: &DnaSeq, params: &PoaParams) -> GraphAlignment {
    add_sequence_probed(graph, seq, params, &mut NullProbe)
}

/// Quality-weighted merge (Racon's scheme): each traversed edge gains the
/// read's Phred quality at that base instead of a flat 1, so confident
/// reads dominate the heaviest-bundle consensus.
///
/// # Panics
///
/// Panics (in the underlying record) only if qualities and sequence
/// lengths disagree, which [`gb_core::record::ReadRecord`] prevents.
pub fn add_read_weighted(
    graph: &mut PoaGraph,
    read: &gb_core::record::ReadRecord,
    params: &PoaParams,
) -> GraphAlignment {
    let weight_of = |pos: usize| u32::from(read.quals()[pos].value().max(1));
    if graph.is_empty() {
        let alignment = add_sequence(graph, &read.seq, params);
        // Re-weight the fresh backbone edges by quality.
        for pos in 1..read.seq.len() {
            graph.add_edge(pos - 1, pos, weight_of(pos).saturating_sub(1));
        }
        return alignment;
    }
    graph.ensure_topo();
    let alignment = align_to_graph_probed(graph, &read.seq, params, &mut NullProbe);
    merge_alignment(graph, &read.seq, &alignment, &weight_of);
    graph.ensure_topo();
    alignment
}

/// [`add_sequence`] with instrumentation.
pub fn add_sequence_probed<P: Probe>(
    graph: &mut PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
    probe: &mut P,
) -> GraphAlignment {
    if graph.is_empty() {
        *graph = PoaGraph::from_seq(seq);
        return GraphAlignment {
            score: seq.len() as i32 * params.match_score,
            steps: (0..seq.len())
                .map(|pos| AlignStep::Aligned { node: pos, pos })
                .collect(),
            cells: 0,
        };
    }
    graph.ensure_topo();
    let alignment = align_to_graph_probed(graph, seq, params, probe);
    merge_alignment(graph, seq, &alignment, &|_| 1);
    graph.ensure_topo();
    alignment
}

/// Threads an alignment's path into the graph, weighting each traversed
/// edge by `weight_of(read position)`.
// PANIC-FREE: `s[pos]` uses positions produced by the aligner for this
// very sequence, which are `< seq.len()` by construction.
pub(crate) fn merge_alignment(
    graph: &mut PoaGraph,
    seq: &DnaSeq,
    alignment: &GraphAlignment,
    weight_of: &dyn Fn(usize) -> u32,
) {
    let s = seq.as_codes();
    let mut prev: Option<NodeId> = None;
    for step in &alignment.steps {
        let (target, wpos) = match *step {
            AlignStep::Aligned { node, pos } => {
                let base = s[pos];
                let t = if graph.node(node).base == base {
                    node
                } else {
                    // Reuse an aligned alternative with this base, or mint
                    // one and link it into the column family.
                    let family = graph.aligned_family(node);
                    match family.iter().copied().find(|&f| graph.node(f).base == base) {
                        Some(alt) => alt,
                        None => {
                            let fresh = graph.add_node(base);
                            for f in family {
                                graph.link_aligned(fresh, f);
                            }
                            fresh
                        }
                    }
                };
                (Some(t), pos)
            }
            AlignStep::Insert { pos } => (Some(graph.add_node(s[pos])), pos),
            AlignStep::Delete { .. } => (None, 0),
        };
        if let Some(t) = target {
            if let Some(p) = prev {
                if p != t {
                    graph.add_edge(p, t, weight_of(wpos));
                }
            }
            prev = Some(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    /// Plain Needleman-Wunsch with the same scoring, for chain graphs.
    fn nw(a: &[u8], b: &[u8], p: &PoaParams) -> i32 {
        let (m, n) = (a.len(), b.len());
        let mut h = vec![vec![0i32; n + 1]; m + 1];
        for (i, row) in h.iter_mut().enumerate() {
            row[0] = -(i as i32) * p.gap;
        }
        for (j, cell) in h[0].iter_mut().enumerate() {
            *cell = -(j as i32) * p.gap;
        }
        for i in 1..=m {
            for j in 1..=n {
                let sub = if a[i - 1] == b[j - 1] {
                    p.match_score
                } else {
                    -p.mismatch
                };
                h[i][j] = (h[i - 1][j - 1] + sub)
                    .max(h[i - 1][j] - p.gap)
                    .max(h[i][j - 1] - p.gap);
            }
        }
        h[m][n]
    }

    #[test]
    fn chain_graph_alignment_equals_nw() {
        let p = PoaParams::default();
        let cases = [
            ("ACGTACGT", "ACGTACGT"),
            ("ACGTACGT", "ACGTCGT"),
            ("ACGTACGT", "ACCTACGA"),
            ("AAAA", "TTTT"),
            ("ACGGTTACA", "ACGGGTTACA"),
        ];
        for (g, q) in cases {
            let graph = PoaGraph::from_seq(&seq(g));
            let r = align_to_graph(&graph, &seq(q), &p);
            assert_eq!(
                r.score,
                nw(seq(g).as_codes(), seq(q).as_codes(), &p),
                "{g} vs {q}"
            );
        }
    }

    #[test]
    fn identical_sequence_reuses_all_nodes() {
        let p = PoaParams::default();
        let mut g = PoaGraph::from_seq(&seq("ACGTACGT"));
        let before = g.num_nodes();
        let r = add_sequence(&mut g, &seq("ACGTACGT"), &p);
        assert_eq!(g.num_nodes(), before);
        assert_eq!(r.score, 8 * p.match_score);
        // Every backbone edge now has weight 2.
        assert_eq!(g.total_edge_weight(), 14);
    }

    #[test]
    fn mismatch_creates_aligned_alternative() {
        let p = PoaParams::default();
        let mut g = PoaGraph::from_seq(&seq("ACGTACGT"));
        add_sequence(&mut g, &seq("ACCTACGT"), &p);
        assert_eq!(g.num_nodes(), 9);
        // A third read with the same mismatch reuses the alternative.
        add_sequence(&mut g, &seq("ACCTACGT"), &p);
        assert_eq!(g.num_nodes(), 9);
    }

    #[test]
    fn insertion_creates_branch_node() {
        let p = PoaParams::default();
        let mut g = PoaGraph::from_seq(&seq("ACGT"));
        add_sequence(&mut g, &seq("ACGGT"), &p);
        assert!(g.num_nodes() >= 5);
        // Graph stays acyclic.
        g.refresh_topo();
    }

    #[test]
    fn deletion_keeps_graph_unchanged_in_size() {
        let p = PoaParams::default();
        let mut g = PoaGraph::from_seq(&seq("ACGTACGT"));
        add_sequence(&mut g, &seq("ACGACGT"), &p);
        assert_eq!(g.num_nodes(), 8);
    }

    #[test]
    fn alignment_steps_are_consistent() {
        let p = PoaParams::default();
        let g = PoaGraph::from_seq(&seq("ACGTACGT"));
        let q = seq("ACGTTACG");
        let r = align_to_graph(&g, &q, &p);
        // Every read position appears exactly once across Aligned/Insert.
        let mut seen = vec![0u32; q.len()];
        for st in &r.steps {
            match *st {
                AlignStep::Aligned { pos, .. } | AlignStep::Insert { pos } => seen[pos] += 1,
                AlignStep::Delete { .. } => {}
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        assert_eq!(r.cells, 64);
    }

    #[test]
    fn quality_weighting_lets_confident_reads_win() {
        use gb_core::quality::Phred;
        use gb_core::record::ReadRecord;
        let p = PoaParams::default();
        let truth = seq("ACGTACGGTTACGTAGGCAT");
        let mut err_codes = truth.clone().into_codes();
        err_codes[8] = (err_codes[8] + 1) % 4;
        let err = DnaSeq::from_codes_unchecked(err_codes);
        // Two low-quality erroneous reads vs one high-quality correct
        // read: unweighted majority would pick the error; quality
        // weighting must pick the truth.
        let reads = [
            ReadRecord::with_uniform_quality("good", truth.clone(), Phred::new(40)),
            ReadRecord::with_uniform_quality("bad1", err.clone(), Phred::new(8)),
            ReadRecord::with_uniform_quality("bad2", err, Phred::new(8)),
        ];
        let mut g = PoaGraph::new();
        for r in &reads {
            add_read_weighted(&mut g, r, &p);
        }
        let consensus = crate::consensus::consensus(&mut g);
        assert_eq!(consensus, truth);
        // Control: flat weights let the two erroneous reads win.
        let mut g2 = PoaGraph::new();
        for r in &reads {
            add_sequence(&mut g2, &r.seq, &p);
        }
        let flat = crate::consensus::consensus(&mut g2);
        assert_ne!(flat, truth, "flat majority should pick the 2-vote error");
    }

    #[test]
    fn empty_graph_is_seeded() {
        let p = PoaParams::default();
        let mut g = PoaGraph::new();
        add_sequence(&mut g, &seq("ACGT"), &p);
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn probe_records_simd_per_cell() {
        use gb_uarch::mix::MixProbe;
        let p = PoaParams::default();
        let g = PoaGraph::from_seq(&seq("ACGTACGT"));
        let mut probe = MixProbe::new();
        let r = align_to_graph_probed(&g, &seq("ACGTACGT"), &p, &mut probe);
        assert_eq!(probe.mix().simd_ops, r.cells);
    }
}
