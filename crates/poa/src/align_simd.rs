//! The i16 row-sweep SIMD engine for sequence-to-graph alignment —
//! spoa's port onto the `gb_dp::lockstep` engine layer.
//!
//! The scalar aligner ([`crate::align::align_to_graph`]) walks the
//! `(graph rows) x (read positions)` matrix cell by cell, scanning each
//! cell's graph predecessors inline. The data dependency between rows is
//! graph-shaped, so unlike `bsw` the kernel cannot batch *independent*
//! alignments into lockstep lanes without per-cell gathers across lanes
//! whose predecessor rows differ (which benchmarks slower than scalar).
//! Instead this engine vectorizes *within* one alignment, over the read
//! dimension `j` — the same choice production SPOA makes with its SSE/AVX
//! row kernels:
//!
//! - the per-cell predecessor scan is restructured into full-row passes
//!   (one fused diagonal + vertical max sweep per predecessor), each a
//!   branchless unit-stride i16 sweep LLVM autovectorizes; the fill is
//!   *value-only* — no trace matrices — because the traceback can replay
//!   the scalar candidate scan against stored values (the scan's winner
//!   is always the first candidate attaining the cell's final value);
//! - the row is finished by the inherently sequential left-gap scan;
//! - scores are narrowed to saturating i16 under the lockstep precision
//!   ladder ([`gb_dp::lockstep::MAX_I16_PARAM`] bounds the per-update
//!   movement, a per-row watch against
//!   [`gb_dp::lockstep::RETIRE_LIMIT`] fires *before* any wraparound),
//!   and an alignment whose watch fires is retired wholesale to the exact
//!   i32 scalar engine.
//!
//! **Bit-identity.** For every cell the candidate comparison order is
//! exactly the scalar engine's (`pred1`-diag, `pred1`-up, `pred2`-diag,
//! …, left; all strict `>`), the first diagonal candidate always beats
//! the initialization sentinel on both engines, and all i16 arithmetic is
//! exact below the retire watch — so scores, traceback steps and cell
//! counts are identical to the scalar engine on every input (enforced by
//! `tests/poa_engines_diff.rs`).

use crate::align::{align_to_graph_probed, AlignStep, GraphAlignment, PoaParams};
use crate::graph::PoaGraph;
use gb_core::seq::DnaSeq;
use gb_dp::lockstep::{fits_i16, BatchReport, LANES, RETIRE_LIMIT};
use gb_dp::DpEngine;
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Aligns `seq` to `graph` on the requested engine. The [`BatchReport`]
/// carries the SIMD engine's slot accounting (row padding waste and
/// ladder retirements); the scalar engine returns an empty report.
pub fn align_to_graph_engine(
    graph: &PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
    engine: DpEngine,
) -> (GraphAlignment, BatchReport) {
    align_to_graph_engine_probed(graph, seq, params, engine, &mut NullProbe)
}

/// [`align_to_graph_engine`] with instrumentation.
pub fn align_to_graph_engine_probed<P: Probe>(
    graph: &PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
    engine: DpEngine,
    probe: &mut P,
) -> (GraphAlignment, BatchReport) {
    match engine {
        DpEngine::Scalar => (
            align_to_graph_probed(graph, seq, params, probe),
            BatchReport::default(),
        ),
        DpEngine::Simd => align_to_graph_simd_probed(graph, seq, params, probe),
    }
}

/// The i16 row-sweep SIMD aligner: bit-identical to
/// [`crate::align::align_to_graph`], retiring to it when the precision
/// ladder fires.
///
/// # Panics
///
/// Panics if the graph is empty or the sequence is empty (as the scalar
/// engine does).
pub fn align_to_graph_simd(
    graph: &PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
) -> (GraphAlignment, BatchReport) {
    align_to_graph_simd_probed(graph, seq, params, &mut NullProbe)
}

/// [`align_to_graph_simd`] with instrumentation (per-row vector-op and
/// row-traffic records, matching the lockstep engines' convention).
// PANIC-FREE: the emptiness asserts are the documented API contract
// (same as the scalar engine).
pub fn align_to_graph_simd_probed<P: Probe>(
    graph: &PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
    probe: &mut P,
) -> (GraphAlignment, BatchReport) {
    assert!(!graph.is_empty(), "cannot align to an empty graph");
    assert!(!seq.is_empty(), "cannot align an empty sequence");
    let n = seq.len();
    let v = graph.topo_order().len();
    let lane_cols = n.div_ceil(LANES) * LANES;

    // Whole-alignment i32 fallback: parameters outside the ladder
    // contract, or a leading-gap row that is born past the watch.
    if !fits_i16(&[params.match_score, params.mismatch, params.gap])
        || (n as i32) * params.gap >= i32::from(RETIRE_LIMIT)
    {
        let r = align_to_graph_probed(graph, seq, params, probe);
        let report = BatchReport {
            scalar_cells: r.cells,
            vector_cells: r.cells,
            batches: 1,
            retired_lanes: 1,
        };
        return (r, report);
    }

    match align_i16(graph, seq, params, probe) {
        Some(r) => {
            let report = BatchReport {
                scalar_cells: r.cells,
                vector_cells: (v * lane_cols) as u64,
                batches: 1,
                retired_lanes: 0,
            };
            (r, report)
        }
        None => {
            // Watch fired: retire the whole alignment to the exact i32
            // engine. The vector slots spent before abandoning are
            // charged to the report.
            let r = align_to_graph_probed(graph, seq, params, probe);
            let report = BatchReport {
                scalar_cells: r.cells,
                vector_cells: (v * lane_cols) as u64,
                batches: 1,
                retired_lanes: 1,
            };
            (r, report)
        }
    }
}

/// The i16 matrix fill + traceback. Returns `None` when the retire watch
/// fires (a stored magnitude reached [`RETIRE_LIMIT`]).
// PANIC-FREE: row/lane indices are bounded by `lane_cols` (a multiple of
// LANES covering `n`) and `rank_of` rows `<= v`, as in the scalar engine.
fn align_i16<P: Probe>(
    graph: &PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
    probe: &mut P,
) -> Option<GraphAlignment> {
    let order = graph.topo_order();
    let n = seq.len();
    let v = order.len();
    let s = seq.as_codes();

    let mut rank_of = vec![0usize; graph.num_nodes()];
    for (r, &id) in order.iter().enumerate() {
        rank_of[id] = r + 1;
    }

    let width = n + 1;
    let m16 = params.match_score as i16;
    let neg_mm16 = -(params.mismatch as i16);
    let g16 = params.gap as i16;

    // Value-only fill: no trace arrays. The scalar scan's winner is
    // always the *first* candidate (in scan order) that attains the
    // cell's final value — every earlier candidate is strictly smaller —
    // so the traceback below re-derives each visited cell's move by
    // replaying the candidate scan against stored values. That keeps the
    // row passes pure i16 max sweeps (2 bytes/cell of write traffic per
    // predecessor instead of value + pred + kind) and drops two
    // matrix-sized allocations.
    let mut h = vec![0i16; (v + 1) * width];

    // Virtual start row: leading insertions. `n * gap` is below the
    // watch (pre-checked by the caller), so these fit exactly.
    for (j, cell) in h[..width].iter_mut().enumerate() {
        *cell = -((j as i32) * params.gap) as i16;
    }

    let lane_steps = (n.div_ceil(LANES)) as u64;
    let mut pred_rows: Vec<usize> = Vec::new();
    // Per-row substitution scores, hoisted out of the predecessor passes
    // so those are pure i16 sweeps (the u8 base compare would otherwise
    // keep LLVM from emitting `paddsw`/`psubsw`/`pmaxsw` for them).
    let mut sub_row = vec![0i16; n];
    // Decay ramp for the left-gap carry pass: ramp[l] = (l + 1) * gap.
    // Entries actually read satisfy l + 1 <= min(LANES, n), so they are
    // exact (`n * gap < RETIRE_LIMIT`); the clamp only touches unread
    // tail entries when `n < LANES`.
    let ramp: Vec<i16> = (0..LANES)
        .map(|l| ((l as i32 + 1) * params.gap).min(i32::from(i16::MAX)) as i16)
        .collect();
    for (r0, &id) in order.iter().enumerate() {
        let row = r0 + 1;
        let node = graph.node(id);
        let base = node.base;
        pred_rows.clear();
        if node.in_edges.is_empty() {
            pred_rows.push(0);
        } else {
            pred_rows.extend(node.in_edges.iter().map(|&(p, _)| rank_of[p]));
        }
        for (sb, &code) in sub_row.iter_mut().zip(s.iter()) {
            *sb = if base == code { m16 } else { neg_mm16 };
        }

        let (done, cur_all) = h.split_at_mut(row * width);
        let cur = &mut cur_all[..width];

        // Column 0: graph-only path. The first candidate always beats the
        // sentinel (every stored value is above the watch floor), exactly
        // as the scalar engine's first compare against `i32::MIN / 4`.
        let mut best0 = i16::MIN;
        for &pr in &pred_rows {
            let cand = done[pr * width].saturating_sub(g16);
            if cand > best0 {
                best0 = cand;
            }
        }
        cur[0] = best0;

        // Row passes — one fused max sweep per predecessor. Values only:
        // max is order-insensitive, and the traceback recovers the scalar
        // scan's winner (pred[0] diag, pred[0] up, pred[1] diag, …, left)
        // as the first candidate equal to the stored value. The first
        // diagonal seeds the row unconditionally — on both engines it
        // always beats the initialization sentinel.
        let p0 = pred_rows[0];
        let p0_row = &done[p0 * width..p0 * width + width];
        probe.load(addr_of(&p0_row[0]), 2);
        for (((c, &a), &b), &sb) in cur[1..=n]
            .iter_mut()
            .zip(p0_row[..n].iter())
            .zip(p0_row[1..=n].iter())
            .zip(sub_row.iter())
        {
            *c = a.saturating_add(sb).max(b.saturating_sub(g16));
        }
        for &pr in &pred_rows[1..] {
            let pr_row = &done[pr * width..pr * width + width];
            probe.load(addr_of(&pr_row[0]), 2);
            for (((c, &a), &b), &sb) in cur[1..=n]
                .iter_mut()
                .zip(pr_row[..n].iter())
                .zip(pr_row[1..=n].iter())
                .zip(sub_row.iter())
            {
                *c = (*c).max(a.saturating_add(sb)).max(b.saturating_sub(g16));
            }
        }
        probe.simd_ops(pred_rows.len() as u64 * lane_steps);

        // Left-gap propagation: f[j] = max(b[j], f[j-1] - gap), split
        // into a block scan. First a sequential scan *within* each
        // LANES-wide block (short independent dependency chains the CPU
        // overlaps), then one carry pass that injects each block's
        // incoming prefix with a precomputed decay ramp — a branchless
        // splat-sub-max sweep per block. Exact and equal to the plain
        // sequential scan: the caller pre-checked
        // `n * gap < RETIRE_LIMIT`, so every ramp decay fits i16, every
        // stored value is >= -32766 (watch-bounded source minus one
        // ladder param), and a candidate that saturates at the i16 rail
        // is therefore strictly below every stored value and can never
        // change a max.
        for block in cur[1..=n].chunks_mut(LANES) {
            for j in 1..block.len() {
                block[j] = block[j].max(block[j - 1].saturating_sub(g16));
            }
        }
        let mut carry = cur[0];
        for block in cur[1..=n].chunks_mut(LANES) {
            for (cell, &dec) in block.iter_mut().zip(ramp.iter()) {
                *cell = (*cell).max(carry.saturating_sub(dec));
            }
            carry = block[block.len() - 1];
        }
        probe.simd_ops(2 * lane_steps);

        // Retire watch over the finished row, as a vector max/min
        // reduction. Any stored magnitude at or past the watch is still
        // exact (one update moves a value by at most `MAX_I16_PARAM` from
        // a checked source), but the *next* row could wrap — so the whole
        // alignment retires now.
        let mut row_max = i16::MIN;
        let mut row_min = i16::MAX;
        for &cell in cur.iter() {
            row_max = row_max.max(cell);
            row_min = row_min.min(cell);
        }
        let hot = row_max >= RETIRE_LIMIT || row_min <= -RETIRE_LIMIT;
        probe.store(addr_of(&cur[n]), 2);
        probe.branch(hot);
        if hot {
            return None;
        }
    }

    // Best sink at full sequence consumption — same first-best tie rule
    // as the scalar engine.
    let mut best_row = 0usize;
    for (r0, &id) in order.iter().enumerate() {
        if graph.node(id).out_edges.is_empty() {
            let row = r0 + 1;
            if best_row == 0 || h[row * width + n] > h[best_row * width + n] {
                best_row = row;
            }
        }
    }
    let best_score = i32::from(h[best_row * width + n]);

    // Traceback by candidate replay: at each visited cell, rerun the
    // scalar engine's candidate scan (pred[0] diag, pred[0] up, pred[1]
    // diag, …, left) against the stored values and take the *first*
    // candidate equal to the cell's value — every candidate before the
    // scan's winner is strictly smaller, so this is exactly the move the
    // strict-`>` scan recorded. All arithmetic repeats the fill's i16
    // saturating ops, so the replay is exact even at the i16 rails.
    let mut steps = Vec::new();
    let (mut row, mut j) = (best_row, n);
    'cell: while row != 0 || j != 0 {
        if row == 0 {
            // Virtual start row: only leading insertions remain.
            steps.push(AlignStep::Insert { pos: j - 1 });
            j -= 1;
            continue;
        }
        let id = order[row - 1];
        let node = graph.node(id);
        let base = node.base;
        pred_rows.clear();
        if node.in_edges.is_empty() {
            pred_rows.push(0);
        } else {
            pred_rows.extend(node.in_edges.iter().map(|&(p, _)| rank_of[p]));
        }
        let val = h[row * width + j];
        for &pr in &pred_rows {
            if j > 0 {
                let sub = if base == s[j - 1] { m16 } else { neg_mm16 };
                if h[pr * width + j - 1].saturating_add(sub) == val {
                    steps.push(AlignStep::Aligned {
                        node: id,
                        pos: j - 1,
                    });
                    row = pr;
                    j -= 1;
                    continue 'cell;
                }
            }
            if h[pr * width + j].saturating_sub(g16) == val {
                steps.push(AlignStep::Delete { node: id });
                row = pr;
                continue 'cell;
            }
        }
        // No graph candidate attained the value, so the left gap won (at
        // `j == 0` some predecessor always matches — column 0 is filled
        // from exactly these candidates).
        steps.push(AlignStep::Insert { pos: j - 1 });
        j -= 1;
    }
    steps.reverse();
    Some(GraphAlignment {
        score: best_score,
        steps,
        cells: (v * n) as u64,
    })
}

/// Engine-dispatched [`crate::align::add_sequence`]: aligns on the
/// requested engine, merges the alignment into the graph, and folds the
/// engine's slot accounting into `report`.
pub fn add_sequence_engine(
    graph: &mut PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
    engine: DpEngine,
    report: &mut BatchReport,
) -> GraphAlignment {
    add_sequence_engine_probed(graph, seq, params, engine, report, &mut NullProbe)
}

/// [`add_sequence_engine`] with instrumentation.
pub fn add_sequence_engine_probed<P: Probe>(
    graph: &mut PoaGraph,
    seq: &DnaSeq,
    params: &PoaParams,
    engine: DpEngine,
    report: &mut BatchReport,
    probe: &mut P,
) -> GraphAlignment {
    if graph.is_empty() {
        *graph = PoaGraph::from_seq(seq);
        return GraphAlignment {
            score: seq.len() as i32 * params.match_score,
            steps: (0..seq.len())
                .map(|pos| AlignStep::Aligned { node: pos, pos })
                .collect(),
            cells: 0,
        };
    }
    graph.ensure_topo();
    let (alignment, r) = align_to_graph_engine_probed(graph, seq, params, engine, probe);
    report.merge(&r);
    crate::align::merge_alignment(graph, seq, &alignment, &|_| 1);
    graph.ensure_topo();
    alignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::add_sequence;
    use gb_dp::lockstep::MAX_I16_PARAM;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn assert_bit_identical(a: &GraphAlignment, b: &GraphAlignment) {
        assert_eq!(a.score, b.score);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.cells, b.cells);
    }

    /// A branchy graph: backbone plus variant reads merged in.
    fn branchy_graph() -> PoaGraph {
        let p = PoaParams::default();
        let mut g = PoaGraph::from_seq(&seq("ACGTACGGTTACGTAGGCAT"));
        for r in [
            "ACCTACGGTTACGTAGGCAT",
            "ACGTACGGTACGTAGGCAT",
            "ACGTACGGTTTACGTAGCAT",
        ] {
            add_sequence(&mut g, &seq(r), &p);
        }
        g
    }

    #[test]
    fn simd_matches_scalar_on_chain_and_branchy_graphs() {
        let p = PoaParams::default();
        let chain = PoaGraph::from_seq(&seq("ACGTACGT"));
        let branchy = branchy_graph();
        for g in [&chain, &branchy] {
            for q in [
                "ACGTACGT",
                "ACGTCGT",
                "ACCTACGA",
                "TTTT",
                "ACGTACGGTTACGTAGGCAT",
            ] {
                let scalar = crate::align::align_to_graph(g, &seq(q), &p);
                let (simd, report) = align_to_graph_simd(g, &seq(q), &p);
                assert_bit_identical(&scalar, &simd);
                assert_eq!(report.retired_lanes, 0, "{q}");
                assert_eq!(report.scalar_cells, scalar.cells);
                assert!(report.vector_cells >= report.scalar_cells);
            }
        }
    }

    #[test]
    fn forced_overflow_retires_to_scalar() {
        // match_score at the ladder bound: three consecutive matches push
        // the score past RETIRE_LIMIT, so the watch must fire and the
        // retired rerun must still be bit-identical.
        let p = PoaParams {
            match_score: MAX_I16_PARAM,
            mismatch: 4,
            gap: 8,
        };
        let g = PoaGraph::from_seq(&seq("ACGTACGT"));
        let q = seq("ACGTACGT");
        let scalar = crate::align::align_to_graph(&g, &q, &p);
        assert!(scalar.score >= i32::from(RETIRE_LIMIT));
        let (simd, report) = align_to_graph_simd(&g, &q, &p);
        assert_bit_identical(&scalar, &simd);
        assert_eq!(report.retired_lanes, 1);
    }

    #[test]
    fn oversized_params_fall_back_to_scalar() {
        let p = PoaParams {
            match_score: MAX_I16_PARAM + 1,
            mismatch: 4,
            gap: 8,
        };
        let g = PoaGraph::from_seq(&seq("ACGTACGT"));
        let q = seq("ACGTCGT");
        let scalar = crate::align::align_to_graph(&g, &q, &p);
        let (simd, report) = align_to_graph_simd(&g, &q, &p);
        assert_bit_identical(&scalar, &simd);
        assert_eq!(report.retired_lanes, 1);
        assert_eq!(report.vector_cells, report.scalar_cells);
    }

    #[test]
    fn deep_leading_gap_is_born_retired() {
        // n * gap past the watch: the virtual start row itself would
        // overflow i16, so the engine must pre-route to scalar.
        let p = PoaParams {
            match_score: 5,
            mismatch: 4,
            gap: 8_000,
        };
        let g = PoaGraph::from_seq(&seq("ACGT"));
        let q = seq("ACGTACGT"); // 8 * 8000 > RETIRE_LIMIT
        let scalar = crate::align::align_to_graph(&g, &q, &p);
        let (simd, report) = align_to_graph_simd(&g, &q, &p);
        assert_bit_identical(&scalar, &simd);
        assert_eq!(report.retired_lanes, 1);
    }

    #[test]
    fn engine_dispatch_builds_identical_graphs() {
        let p = PoaParams::default();
        let reads = [
            "ACGTACGGTTACGTAGGCAT",
            "ACCTACGGTTACGTAGGCAT",
            "ACGTACGGTACGTAGGCAT",
        ];
        let mut g_scalar = PoaGraph::new();
        let mut g_simd = PoaGraph::new();
        let mut rep_scalar = BatchReport::default();
        let mut rep_simd = BatchReport::default();
        for r in reads {
            let a = add_sequence_engine(
                &mut g_scalar,
                &seq(r),
                &p,
                DpEngine::Scalar,
                &mut rep_scalar,
            );
            let b = add_sequence_engine(&mut g_simd, &seq(r), &p, DpEngine::Simd, &mut rep_simd);
            assert_bit_identical(&a, &b);
        }
        assert_eq!(g_scalar.num_nodes(), g_simd.num_nodes());
        assert_eq!(g_scalar.total_edge_weight(), g_simd.total_edge_weight());
        assert_eq!(rep_scalar, BatchReport::default());
        assert_eq!(rep_simd.batches, 2); // first read seeds the graph
        assert_eq!(rep_simd.retired_lanes, 0);
    }

    #[test]
    fn probe_records_vector_ops() {
        use gb_uarch::mix::MixProbe;
        let p = PoaParams::default();
        let g = PoaGraph::from_seq(&seq("ACGTACGT"));
        let mut probe = MixProbe::new();
        let (r, _) = align_to_graph_simd_probed(&g, &seq("ACGTACGT"), &p, &mut probe);
        assert!(probe.mix().simd_ops > 0);
        assert!(
            probe.mix().simd_ops < r.cells,
            "vector ops must be fewer than cells"
        );
    }
}
