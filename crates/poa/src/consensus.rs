//! Consensus generation from the partial-order graph (the heaviest-bundle
//! algorithm) and the Racon-style windowed polishing driver.

use crate::align::PoaParams;
use crate::align_simd::add_sequence_engine_probed;
use crate::graph::PoaGraph;
use gb_core::seq::DnaSeq;
use gb_dp::lockstep::BatchReport;
use gb_dp::DpEngine;
use gb_uarch::probe::{NullProbe, Probe};

/// Extracts the consensus sequence: the heaviest source-to-sink bundle.
///
/// For each node in topological order the best-supported incoming edge is
/// chosen (maximum weight, ties broken by predecessor score); the
/// consensus is the backtracked path from the best-scoring node.
///
/// Returns an empty sequence for an empty graph.
///
/// # Examples
///
/// ```
/// use gb_core::seq::DnaSeq;
/// use gb_poa::{consensus::consensus, graph::PoaGraph};
/// let seq: DnaSeq = "ACGTACGT".parse()?;
/// let mut g = PoaGraph::from_seq(&seq);
/// assert_eq!(consensus(&mut g), seq);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
// PANIC-FREE: `score`/`pred` are sized `num_nodes()` and every index is a
// node id from the graph's own topological order.
pub fn consensus(graph: &mut PoaGraph) -> DnaSeq {
    if graph.is_empty() {
        return DnaSeq::new();
    }
    graph.ensure_topo();
    let order = graph.topo_order().to_vec();
    let n = graph.num_nodes();
    // score[v] = accumulated weight of the heaviest bundle ending at v.
    let mut score = vec![0u64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for &v in &order {
        let mut best: Option<(u64, u64, usize)> = None; // (weight, pred score, pred)
        for &(p, w) in &graph.node(v).in_edges {
            let cand = (u64::from(w), score[p], p);
            if best.is_none_or(|b| (cand.0, cand.1) > (b.0, b.1)) {
                best = Some(cand);
            }
        }
        if let Some((w, ps, p)) = best {
            score[v] = w + ps;
            pred[v] = Some(p);
        }
    }
    // Start from the best-scoring node; prefer sinks on ties so the
    // consensus reaches the end of the window.
    let mut best_v = order[0];
    for &v in &order {
        let better = (score[v], graph.node(v).out_edges.is_empty())
            > (score[best_v], graph.node(best_v).out_edges.is_empty());
        if better {
            best_v = v;
        }
    }
    let mut path = vec![best_v];
    let mut cur = best_v;
    while let Some(p) = pred[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    path.into_iter().map(|v| graph.node(v).base).collect()
}

/// Statistics of one consensus task (a Racon window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// DP cells computed across all reads of the window.
    pub cells: u64,
    /// Final graph size.
    pub nodes: usize,
    /// Reads aligned into the window.
    pub reads: usize,
}

/// Builds the consensus of one window: backbone + supporting reads — the
/// complete **spoa** kernel task.
///
/// The first sequence (the draft-assembly backbone in Racon) seeds the
/// graph; every further read is aligned and merged; the heaviest bundle is
/// the polished window.
pub fn window_consensus(reads: &[DnaSeq], params: &PoaParams) -> (DnaSeq, WindowStats) {
    window_consensus_probed(reads, params, &mut NullProbe)
}

/// [`window_consensus`] with instrumentation.
pub fn window_consensus_probed<P: Probe>(
    reads: &[DnaSeq],
    params: &PoaParams,
    probe: &mut P,
) -> (DnaSeq, WindowStats) {
    let (c, stats, _) = window_consensus_engine_probed(reads, params, DpEngine::Scalar, probe);
    (c, stats)
}

/// [`window_consensus`] on an explicit [`DpEngine`]. The returned
/// [`BatchReport`] carries the SIMD engine's slot accounting (padding
/// waste, ladder retirements) summed over the window's alignments; the
/// scalar engine returns an empty report. Consensus and stats are
/// engine-independent (the SIMD aligner is bit-identical).
pub fn window_consensus_engine(
    reads: &[DnaSeq],
    params: &PoaParams,
    engine: DpEngine,
) -> (DnaSeq, WindowStats, BatchReport) {
    window_consensus_engine_probed(reads, params, engine, &mut NullProbe)
}

/// [`window_consensus_engine`] with instrumentation.
pub fn window_consensus_engine_probed<P: Probe>(
    reads: &[DnaSeq],
    params: &PoaParams,
    engine: DpEngine,
    probe: &mut P,
) -> (DnaSeq, WindowStats, BatchReport) {
    let mut graph = PoaGraph::new();
    let mut stats = WindowStats::default();
    let mut report = BatchReport::default();
    for read in reads {
        if read.is_empty() {
            continue;
        }
        let a = add_sequence_engine_probed(&mut graph, read, params, engine, &mut report, probe);
        stats.cells += a.cells;
        stats.reads += 1;
    }
    stats.nodes = graph.num_nodes();
    (consensus(&mut graph), stats, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn single_read_consensus_is_itself() {
        let (c, st) = window_consensus(&[seq("ACGGTTACA")], &PoaParams::default());
        assert_eq!(c, seq("ACGGTTACA"));
        assert_eq!(st.reads, 1);
        assert_eq!(st.nodes, 9);
    }

    #[test]
    fn majority_substitution_wins() {
        let truth = seq("ACGTACGGTTACGTAGGCAT");
        let mut err = truth.clone().into_codes();
        err[7] = (err[7] + 2) % 4;
        let err = DnaSeq::from_codes_unchecked(err);
        // 4 correct reads vs 2 erroneous.
        let reads = vec![
            truth.clone(),
            err.clone(),
            truth.clone(),
            truth.clone(),
            err,
            truth.clone(),
        ];
        let (c, _) = window_consensus(&reads, &PoaParams::default());
        assert_eq!(c, truth);
    }

    #[test]
    fn deletions_are_repaired_by_coverage() {
        let truth = seq("ACGTACGGTTACGTAGGCATTACGGA");
        let mut reads = vec![truth.clone()];
        // Each read drops one distinct base.
        for i in [3usize, 9, 15, 21] {
            let mut codes = truth.clone().into_codes();
            codes.remove(i);
            reads.push(DnaSeq::from_codes_unchecked(codes));
        }
        // Majority still carries every base (4 of 5 reads have each).
        let (c, _) = window_consensus(&reads, &PoaParams::default());
        assert_eq!(c, truth);
    }

    #[test]
    fn noisy_long_read_window_polishes_to_truth() {
        use gb_datagen::genome::{Genome, GenomeConfig};
        use gb_datagen::reads::{simulate_reads, ReadSimConfig};
        let g = Genome::generate(
            &GenomeConfig {
                length: 200,
                repeat_fraction: 0.0,
                ..Default::default()
            },
            21,
        );
        let truth = g.contig(0).clone();
        // 30 noisy full-window reads at ONT-like error rates.
        let cfg = ReadSimConfig {
            num_reads: 30,
            read_len: 200,
            length_jitter: 0.0,
            errors: gb_datagen::reads::ErrorProfile::nanopore(),
            revcomp_prob: 0.0,
        };
        let reads: Vec<DnaSeq> = simulate_reads(&g, &cfg, 22)
            .into_iter()
            .map(|r| r.record.seq)
            .collect();
        let mut window = vec![truth.clone()]; // backbone first, as in Racon
        window.extend(reads);
        let (c, st) = window_consensus(&window, &PoaParams::default());
        // Consensus should be much closer to the truth than any single
        // read: allow a few residual errors.
        let dist = edit_distance(c.as_codes(), truth.as_codes());
        assert!(dist <= 4, "consensus edit distance {dist}");
        assert!(st.cells > 0);
    }

    fn edit_distance(a: &[u8], b: &[u8]) -> usize {
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        for (i, &x) in a.iter().enumerate() {
            let mut cur = vec![i + 1];
            for (j, &y) in b.iter().enumerate() {
                let sub = prev[j] + usize::from(x != y);
                cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
            }
            prev = cur;
        }
        prev[b.len()]
    }

    #[test]
    fn empty_window_is_empty() {
        let (c, st) = window_consensus(&[], &PoaParams::default());
        assert!(c.is_empty());
        assert_eq!(st.reads, 0);
    }

    #[test]
    fn consensus_of_empty_graph() {
        let mut g = PoaGraph::new();
        assert!(consensus(&mut g).is_empty());
    }
}
