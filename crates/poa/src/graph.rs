//! The partial-order graph.
//!
//! Each node holds one base; weighted edges record how many reads support
//! each base-to-base transition. Nodes produced by mismatches at the same
//! alignment column are linked into an "aligned family" so later reads can
//! reuse them instead of growing the graph unboundedly (SPOA's
//! `aligned_nodes` mechanism).

/// Node identifier within a [`PoaGraph`].
pub type NodeId = usize;

/// One graph node: a base plus its adjacency.
#[derive(Debug, Clone, Default)]
pub struct Node {
    /// The base (2-bit code) this node represents.
    pub base: u8,
    /// Incoming edges as `(predecessor, weight)`.
    pub in_edges: Vec<(NodeId, u32)>,
    /// Outgoing edges as `(successor, weight)`.
    pub out_edges: Vec<(NodeId, u32)>,
    /// Other nodes occupying the same alignment column (different bases).
    pub aligned: Vec<NodeId>,
}

/// A partial-order alignment graph.
///
/// # Examples
///
/// ```
/// use gb_poa::graph::PoaGraph;
/// use gb_core::seq::DnaSeq;
/// let seq: DnaSeq = "ACGT".parse()?;
/// let g = PoaGraph::from_seq(&seq);
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.topo_order().len(), 4);
/// # Ok::<(), gb_core::error::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PoaGraph {
    nodes: Vec<Node>,
    topo: Vec<NodeId>,
    topo_dirty: bool,
}

impl PoaGraph {
    /// Creates an empty graph.
    pub fn new() -> PoaGraph {
        PoaGraph::default()
    }

    /// Creates a chain graph from a single sequence (how Racon seeds each
    /// window with its backbone).
    pub fn from_seq(seq: &gb_core::seq::DnaSeq) -> PoaGraph {
        let mut g = PoaGraph::new();
        let mut prev: Option<NodeId> = None;
        for &c in seq.as_codes() {
            let id = g.add_node(c);
            if let Some(p) = prev {
                g.add_edge(p, id, 1);
            }
            prev = Some(id);
        }
        g.refresh_topo();
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    // PANIC-FREE: documented `# Panics` precondition; callers pass ids the
    // graph itself handed out.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Adds a node and returns its id. Marks the topological order stale.
    pub fn add_node(&mut self, base: u8) -> NodeId {
        debug_assert!(base < 4);
        self.nodes.push(Node {
            base,
            ..Node::default()
        });
        self.topo_dirty = true;
        self.nodes.len() - 1
    }

    /// Adds `weight` to the edge `from -> to`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or `from == to`.
    // PANIC-FREE: documented `# Panics` preconditions; ids come from
    // `add_node` on this graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: u32) {
        assert!(from != to, "self edge");
        assert!(from < self.nodes.len() && to < self.nodes.len());
        match self.nodes[from]
            .out_edges
            .iter_mut()
            .find(|(t, _)| *t == to)
        {
            Some((_, w)) => *w += weight,
            None => {
                self.nodes[from].out_edges.push((to, weight));
                self.topo_dirty = true;
            }
        }
        match self.nodes[to].in_edges.iter_mut().find(|(f, _)| *f == from) {
            Some((_, w)) => *w += weight,
            None => self.nodes[to].in_edges.push((from, weight)),
        }
    }

    /// Links `a` and `b` as alternatives in the same alignment column.
    // PANIC-FREE: ids come from `add_node`/`aligned_family` on this graph.
    pub fn link_aligned(&mut self, a: NodeId, b: NodeId) {
        if !self.nodes[a].aligned.contains(&b) {
            self.nodes[a].aligned.push(b);
        }
        if !self.nodes[b].aligned.contains(&a) {
            self.nodes[b].aligned.push(a);
        }
    }

    /// The aligned family of `id` (itself plus all transitively aligned
    /// alternatives).
    // PANIC-FREE: `fam` only ever holds node ids stored in the graph's
    // aligned lists, and `i < fam.len()` is the loop condition.
    pub fn aligned_family(&self, id: NodeId) -> Vec<NodeId> {
        let mut fam = vec![id];
        let mut i = 0;
        while i < fam.len() {
            for &a in &self.nodes[fam[i]].aligned {
                if !fam.contains(&a) {
                    fam.push(a);
                }
            }
            i += 1;
        }
        fam
    }

    /// Recomputes the topological order (Kahn's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (impossible via the public
    /// alignment API, which only adds forward edges).
    // PANIC-FREE: Kahn's algorithm over ids `< n`; the completeness assert
    // is documented (cycles are unreachable via the public API).
    pub fn refresh_topo(&mut self) {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self.nodes.iter().map(|nd| nd.in_edges.len()).collect();
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &(t, _) in &self.nodes[v].out_edges {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        assert_eq!(order.len(), n, "partial-order graph acquired a cycle");
        self.topo = order;
        self.topo_dirty = false;
    }

    /// The current topological order (refreshing it if stale).
    // PANIC-FREE: the staleness assert is the documented usage contract
    // (`ensure_topo` before reading), a programming error not a data path.
    pub fn topo_order(&self) -> &[NodeId] {
        assert!(
            !self.topo_dirty,
            "call refresh_topo() after mutating the graph"
        );
        &self.topo
    }

    /// Ensures the topological order is fresh, recomputing if needed.
    pub fn ensure_topo(&mut self) {
        if self.topo_dirty {
            self.refresh_topo();
        }
    }

    /// Total edge weight (diagnostics).
    pub fn total_edge_weight(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| n.out_edges.iter())
            .map(|&(_, w)| u64::from(w))
            .sum()
    }

    /// Average in-degree — the `n_p` in the kernel's
    /// `O((2·n_p + 1)·n·|V|)` complexity.
    pub fn avg_in_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let edges: usize = self.nodes.iter().map(|n| n.in_edges.len()).sum();
        edges as f64 / self.nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_core::seq::DnaSeq;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn chain_graph_shape() {
        let g = PoaGraph::from_seq(&seq("ACGTT"));
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.node(0).out_edges, vec![(1, 1)]);
        assert_eq!(g.node(4).in_edges, vec![(3, 1)]);
        assert!(g.node(0).in_edges.is_empty());
        assert_eq!(g.avg_in_degree(), 0.8);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut g = PoaGraph::from_seq(&seq("ACGT"));
        let alt = g.add_node(2);
        g.add_edge(0, alt, 1);
        g.add_edge(alt, 2, 1);
        g.refresh_topo();
        let pos: Vec<usize> = {
            let order = g.topo_order();
            let mut pos = vec![0; g.num_nodes()];
            for (rank, &id) in order.iter().enumerate() {
                pos[id] = rank;
            }
            pos
        };
        for id in 0..g.num_nodes() {
            for &(t, _) in &g.node(id).out_edges {
                assert!(pos[id] < pos[t], "edge {id}->{t} violates topo order");
            }
        }
    }

    #[test]
    fn add_edge_accumulates_weight() {
        let mut g = PoaGraph::from_seq(&seq("AC"));
        g.add_edge(0, 1, 3);
        assert_eq!(g.node(0).out_edges, vec![(1, 4)]);
        assert_eq!(g.total_edge_weight(), 4);
    }

    #[test]
    fn aligned_family_is_transitive() {
        let mut g = PoaGraph::from_seq(&seq("AAAA"));
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.link_aligned(1, b);
        g.link_aligned(b, c);
        let mut fam = g.aligned_family(1);
        fam.sort_unstable();
        assert_eq!(fam, vec![1, b, c]);
        let mut fam_c = g.aligned_family(c);
        fam_c.sort_unstable();
        assert_eq!(fam_c, vec![1, b, c]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detection_panics() {
        let mut g = PoaGraph::from_seq(&seq("AC"));
        g.add_edge(1, 0, 1);
        g.refresh_topo();
    }
}
