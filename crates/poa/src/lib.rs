//! # gb-poa
//!
//! Partial-order alignment — the **spoa** kernel of GenomicsBench-rs.
//!
//! Racon polishes a draft assembly by splitting it into windows, building
//! a partial-order graph per window from the reads aligned there, and
//! emitting the heaviest-bundle consensus. This crate implements the full
//! pipeline from scratch: the graph ([`graph`]), sequence-to-graph
//! alignment and merging ([`align`]), its i16 row-sweep SIMD engine on
//! the `gb_dp::lockstep` ladder ([`align_simd`]), and consensus
//! extraction plus the windowed driver ([`consensus`]). Engine selection
//! (scalar vs SIMD, bit-identical) follows [`gb_dp::DpEngine`].
//!
//! # Examples
//!
//! ```
//! use gb_core::seq::DnaSeq;
//! use gb_poa::{align::PoaParams, consensus::window_consensus};
//! let a: DnaSeq = "ACGGTTACA".parse()?;
//! let b: DnaSeq = "ACGGTTACA".parse()?;
//! let (cons, stats) = window_consensus(&[a, b.clone()], &PoaParams::default());
//! assert_eq!(cons, b);
//! assert_eq!(stats.reads, 2);
//! # Ok::<(), gb_core::error::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod align_simd;
pub mod consensus;
pub mod graph;

pub use align::{add_read_weighted, add_sequence, align_to_graph, PoaParams};
pub use align_simd::{add_sequence_engine, align_to_graph_engine, align_to_graph_simd};
pub use consensus::{consensus, window_consensus, window_consensus_engine, WindowStats};
pub use graph::PoaGraph;
