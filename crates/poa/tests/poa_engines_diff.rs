//! Differential proptests: the i16 row-sweep spoa engine vs the scalar
//! i32 kernel.
//!
//! The SIMD engine must be **bit-identical** to the scalar kernel —
//! scores, alignment paths, cell counts, and the graphs grown from them —
//! across random windows, random scoring parameters, forced i16 overflow
//! (huge match scores retire whole alignments to the exact i32 rerun) and
//! out-of-i16-range parameters (pre-checked fallback). These tests live
//! here rather than in `gb-dp`'s `dp_engines_diff.rs` because `gb-dp`
//! cannot depend on `gb-poa` (the dependency points the other way).

use gb_core::seq::DnaSeq;
use gb_dp::lockstep::{fits_i16, BatchReport, MAX_I16_PARAM, RETIRE_LIMIT};
use gb_dp::DpEngine;
use gb_poa::align::{add_sequence, align_to_graph, PoaParams};
use gb_poa::align_simd::{add_sequence_engine, align_to_graph_simd};
use gb_poa::consensus::window_consensus_engine;
use gb_poa::graph::PoaGraph;
use proptest::prelude::*;

fn codes(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, min..max)
}

/// A consensus window: a backbone plus noisy copies of it, derived
/// deterministically from per-read noise levels so shrinking stays
/// meaningful.
fn window(max_backbone: usize, max_reads: usize) -> impl Strategy<Value = Vec<DnaSeq>> {
    (
        codes(1, max_backbone),
        proptest::collection::vec(0u8..10, 1..max_reads),
    )
        .prop_map(|(backbone, noises)| {
            let mut reads = vec![DnaSeq::from_codes_unchecked(backbone.clone())];
            for (r, noise) in noises.iter().enumerate() {
                let mutated: Vec<u8> = backbone
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        if (i as u8)
                            .wrapping_mul(37)
                            .wrapping_add(r as u8)
                            .wrapping_mul(101)
                            % 100
                            < noise % 10
                        {
                            (c + 1) % 4
                        } else {
                            c
                        }
                    })
                    .collect();
                reads.push(DnaSeq::from_codes_unchecked(mutated));
            }
            reads
        })
}

fn poa_params() -> impl Strategy<Value = PoaParams> {
    (1i32..10, 0i32..10, 1i32..10).prop_map(|(match_score, mismatch, gap)| PoaParams {
        match_score,
        mismatch,
        gap,
    })
}

/// Grows one graph per engine from the same reads and asserts every
/// alignment — and the final consensus — is identical.
fn assert_spoa_identical(reads: &[DnaSeq], params: &PoaParams) {
    let mut scalar_graph = PoaGraph::new();
    let mut simd_graph = PoaGraph::new();
    let mut report = BatchReport::default();
    for read in reads {
        // Compare the raw aligner on the current (identical) graph state
        // before merging, so a divergence is caught at the first read.
        if !scalar_graph.is_empty() {
            let scalar = align_to_graph(&scalar_graph, read, params);
            let (simd, _) = align_to_graph_simd(&simd_graph, read, params);
            assert_eq!(scalar, simd, "alignment diverged");
        }
        let a = add_sequence(&mut scalar_graph, read, params);
        let b = add_sequence_engine(&mut simd_graph, read, params, DpEngine::Simd, &mut report);
        assert_eq!(a, b, "merged alignment diverged");
    }
    let (cons_scalar, stats_scalar, _) = window_consensus_engine(reads, params, DpEngine::Scalar);
    let (cons_simd, stats_simd, _) = window_consensus_engine(reads, params, DpEngine::Simd);
    assert_eq!(cons_scalar, cons_simd, "consensus diverged");
    assert_eq!(stats_scalar.cells, stats_simd.cells, "cell counts diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simd_spoa_bit_identical_default_params(reads in window(80, 8)) {
        assert_spoa_identical(&reads, &PoaParams::default());
    }

    #[test]
    fn simd_spoa_bit_identical_random_params(
        reads in window(48, 6),
        params in poa_params(),
    ) {
        prop_assert!(fits_i16(&[params.match_score, params.mismatch, params.gap]));
        assert_spoa_identical(&reads, &params);
    }

    #[test]
    fn simd_spoa_forced_overflow_retires_and_stays_exact(
        backbone in codes(120, 200),
        match_score in 500i32..MAX_I16_PARAM,
    ) {
        // A self-alignment at a huge match score crosses the i16 retire
        // watch partway down the graph (len x score >> RETIRE_LIMIT); the
        // whole alignment must rerun on the exact i32 engine and still be
        // bit-identical.
        let read = DnaSeq::from_codes_unchecked(backbone);
        let params = PoaParams {
            match_score,
            ..PoaParams::default()
        };
        let mut graph = PoaGraph::new();
        let mut report = BatchReport::default();
        add_sequence_engine(&mut graph, &read, &params, DpEngine::Simd, &mut report);
        let scalar = align_to_graph(&graph, &read, &params);
        prop_assert!(scalar.score >= i32::from(RETIRE_LIMIT), "workload too small to overflow");
        let (simd, rep) = align_to_graph_simd(&graph, &read, &params);
        prop_assert_eq!(&simd, &scalar);
        prop_assert_eq!(rep.retired_lanes, 1);
        // The retired rerun still pays the vector slots it burned.
        prop_assert!(rep.vector_cells >= rep.scalar_cells);
    }

    #[test]
    fn simd_spoa_out_of_range_params_fall_back_exactly(
        reads in window(40, 4),
        magnitude in (MAX_I16_PARAM + 1)..100_000,
    ) {
        // Parameters past the i16 ladder's headroom never enter the
        // vector path: every alignment falls back pre-emptively and must
        // still match the scalar engine exactly.
        let params = PoaParams {
            match_score: magnitude,
            mismatch: magnitude / 2,
            ..PoaParams::default()
        };
        prop_assert!(!fits_i16(&[params.match_score, params.mismatch, params.gap]));
        assert_spoa_identical(&reads, &params);
    }
}
