//! Property-based tests for partial-order alignment.

use gb_core::seq::DnaSeq;
use gb_poa::align::{add_sequence, align_to_graph, PoaParams};
use gb_poa::consensus::{consensus, window_consensus};
use gb_poa::graph::PoaGraph;
use proptest::prelude::*;

fn seq_strategy(min: usize, max: usize) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, min..max).prop_map(DnaSeq::from_codes_unchecked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn self_alignment_is_all_matches(s in seq_strategy(1, 80)) {
        let g = PoaGraph::from_seq(&s);
        let r = align_to_graph(&g, &s, &PoaParams::default());
        prop_assert_eq!(r.score, s.len() as i32 * PoaParams::default().match_score);
    }

    #[test]
    fn alignment_score_bounded_by_perfect(a in seq_strategy(1, 60), b in seq_strategy(1, 60)) {
        let g = PoaGraph::from_seq(&a);
        let r = align_to_graph(&g, &b, &PoaParams::default());
        prop_assert!(r.score <= b.len().min(a.len()) as i32 * PoaParams::default().match_score);
        prop_assert_eq!(r.cells, (a.len() * b.len()) as u64);
    }

    #[test]
    fn identical_reads_reuse_the_graph(s in seq_strategy(2, 60), n in 2usize..6) {
        let p = PoaParams::default();
        let mut g = PoaGraph::new();
        for _ in 0..n {
            add_sequence(&mut g, &s, &p);
        }
        prop_assert_eq!(g.num_nodes(), s.len());
        let c = consensus(&mut g);
        prop_assert_eq!(c, s);
    }

    #[test]
    fn consensus_of_unanimous_window(s in seq_strategy(5, 80), n in 1usize..6) {
        let reads = vec![s.clone(); n];
        let (c, stats) = window_consensus(&reads, &PoaParams::default());
        prop_assert_eq!(c, s);
        prop_assert_eq!(stats.reads, n);
    }

    #[test]
    fn graph_stays_acyclic_under_arbitrary_reads(
        reads in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 3..40), 1..8),
    ) {
        let p = PoaParams::default();
        let mut g = PoaGraph::new();
        for r in reads {
            add_sequence(&mut g, &DnaSeq::from_codes_unchecked(r), &p);
        }
        // refresh_topo panics on cycles; reaching here proves acyclicity.
        g.refresh_topo();
        prop_assert_eq!(g.topo_order().len(), g.num_nodes());
        let (c, _) = (consensus(&mut g), ());
        prop_assert!(!c.is_empty());
    }

    #[test]
    fn majority_base_wins(s in seq_strategy(10, 50), pos in 0usize..49, n_good in 3usize..6) {
        let pos = pos % s.len();
        let mut alt = s.clone().into_codes();
        alt[pos] = (alt[pos] + 1) % 4;
        let alt = DnaSeq::from_codes_unchecked(alt);
        let mut reads = vec![s.clone(); n_good];
        reads.push(alt); // single dissenter
        let (c, _) = window_consensus(&reads, &PoaParams::default());
        prop_assert_eq!(c, s);
    }
}
