//! Genomic Relationship Matrix — the **grm** kernel.
//!
//! PLINK2 computes the `N x N` matrix of average genetic similarity
//! between all pairs of individuals:
//!
//! ```text
//! G_ij = (1/S) * sum_s (x_is - 2 p_s)(x_js - 2 p_s) / (2 p_s (1 - p_s))
//! ```
//!
//! which is the dense product `Z Z^T / S` of the standardized genotype
//! matrix — the suite's only regular-compute, CPU-friendly kernel
//! (87.7% retiring slots in the paper's Fig. 9). The implementation
//! standardizes once, then runs a cache-blocked, optionally multithreaded
//! matrix product over the upper triangle.

use gb_core::matrix::Matrix;
use gb_datagen::genotypes::GenotypeMatrix;
use gb_uarch::probe::{addr_of, NullProbe, Probe};

/// Parameters of the GRM computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrmParams {
    /// Cache-block edge length in individuals.
    pub block: usize,
    /// Worker threads (1 = serial).
    pub threads: usize,
}

impl Default for GrmParams {
    fn default() -> GrmParams {
        GrmParams {
            block: 32,
            threads: 1,
        }
    }
}

/// Standardizes the genotype matrix: `z = (x - 2p) / sqrt(2p(1-p))`.
///
/// Markers with `p` extremely close to 0 or 1 are zero-weighted (PLINK
/// drops monomorphic sites).
pub fn standardize(geno: &GenotypeMatrix) -> Matrix {
    let (n, s) = (geno.num_individuals(), geno.num_markers());
    let mut z = Matrix::zeros(n, s);
    let scale: Vec<(f32, f32)> = geno
        .freqs()
        .iter()
        .map(|&p| {
            let denom = 2.0 * p * (1.0 - p);
            if denom < 1e-6 {
                (0.0, 0.0)
            } else {
                (2.0 * p, 1.0 / denom.sqrt())
            }
        })
        .collect();
    for i in 0..n {
        let row = geno.row(i);
        let zrow = z.row_mut(i);
        for (j, (&g, &(center, inv))) in row.iter().zip(&scale).enumerate() {
            zrow[j] = (f32::from(g) - center) * inv;
        }
    }
    z
}

/// Computes the GRM serially with cache blocking.
///
/// # Examples
///
/// ```
/// use gb_datagen::genotypes::GenotypeMatrix;
/// use gb_popgen::grm::{compute_grm, GrmParams};
/// let geno = GenotypeMatrix::generate(20, 100, 1);
/// let g = compute_grm(&geno, &GrmParams::default());
/// assert_eq!(g.shape(), (20, 20));
/// // Symmetric by construction.
/// assert!((g[(3, 7)] - g[(7, 3)]).abs() < 1e-5);
/// ```
pub fn compute_grm(geno: &GenotypeMatrix, params: &GrmParams) -> Matrix {
    compute_grm_probed(geno, params, &mut NullProbe)
}

/// [`compute_grm`] with instrumentation (the blocked inner product's
/// loads and fused multiply-add vector work).
pub fn compute_grm_probed<P: Probe>(
    geno: &GenotypeMatrix,
    params: &GrmParams,
    probe: &mut P,
) -> Matrix {
    let z = standardize(geno);
    if params.threads > 1 {
        grm_from_z_parallel(&z, params)
    } else {
        grm_from_z_probed(&z, params.block, probe)
    }
}

/// The blocked `Z Z^T / S` product (upper triangle mirrored).
pub fn grm_from_z_probed<P: Probe>(z: &Matrix, block: usize, probe: &mut P) -> Matrix {
    let (n, s) = z.shape();
    let block = block.max(1);
    let mut g = Matrix::zeros(n, n);
    let inv_s = 1.0 / s as f32;
    for ib in (0..n).step_by(block) {
        for jb in (ib..n).step_by(block) {
            let imax = (ib + block).min(n);
            let jmax = (jb + block).min(n);
            for i in ib..imax {
                let zi = z.row(i);
                probe.load(addr_of(&zi[0]), (s * 4) as u32);
                let jstart = jb.max(i);
                for j in jstart..jmax {
                    let zj = z.row(j);
                    probe.load(addr_of(&zj[0]), (s * 4) as u32);
                    let mut acc = 0.0f32;
                    for k in 0..s {
                        acc += zi[k] * zj[k];
                    }
                    // 8-lane FMA model: one vector op per 8 elements.
                    probe.simd_ops(s.div_ceil(8) as u64);
                    let v = acc * inv_s;
                    g[(i, j)] = v;
                    g[(j, i)] = v;
                    probe.store(addr_of(&g[(i, j)]), 8);
                    probe.int_ops(4);
                }
            }
        }
    }
    g
}

/// Multithreaded GRM: output row-blocks distributed over scoped threads.
fn grm_from_z_parallel(z: &Matrix, params: &GrmParams) -> Matrix {
    let (n, s) = z.shape();
    let inv_s = 1.0 / s as f32;
    let threads = params.threads.max(1);
    // Each worker produces complete rows i for its stripe (j >= i), which
    // are mirrored in a single pass afterwards.
    let rows: Vec<Vec<f32>> = crossbeam::thread::scope(|scope| {
        let chunk = n.div_ceil(threads);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let z = &z;
                scope.spawn(move |_| {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    let mut out = Vec::with_capacity(hi - lo);
                    for i in lo..hi {
                        let zi = z.row(i);
                        let mut row = vec![0.0f32; n];
                        for (j, slot) in row.iter_mut().enumerate().skip(i) {
                            let zj = z.row(j);
                            let mut acc = 0.0f32;
                            for k in 0..s {
                                acc += zi[k] * zj[k];
                            }
                            *slot = acc * inv_s;
                        }
                        out.push(row);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("grm worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    let mut g = Matrix::zeros(n, n);
    for (i, row) in rows.iter().enumerate() {
        for j in i..n {
            g[(i, j)] = row[j];
            g[(j, i)] = row[j];
        }
    }
    g
}

/// Naive per-element reference straight from the paper's equation.
pub fn naive_grm(geno: &GenotypeMatrix) -> Matrix {
    let (n, s) = (geno.num_individuals(), geno.num_markers());
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f64;
            for m in 0..s {
                let p = f64::from(geno.freqs()[m]);
                let denom = 2.0 * p * (1.0 - p);
                if denom < 1e-6 {
                    continue;
                }
                let xi = f64::from(geno.genotype(i, m)) - 2.0 * p;
                let xj = f64::from(geno.genotype(j, m)) - 2.0 * p;
                acc += xi * xj / denom;
            }
            g[(i, j)] = (acc / s as f64) as f32;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geno() -> GenotypeMatrix {
        GenotypeMatrix::generate(40, 300, 9)
    }

    #[test]
    fn blocked_matches_naive() {
        let g = geno();
        let blocked = compute_grm(
            &g,
            &GrmParams {
                block: 7,
                threads: 1,
            },
        );
        let naive = naive_grm(&g);
        assert!(
            blocked.max_abs_diff(&naive) < 1e-3,
            "diff {}",
            blocked.max_abs_diff(&naive)
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let g = geno();
        let serial = compute_grm(
            &g,
            &GrmParams {
                block: 16,
                threads: 1,
            },
        );
        for threads in [2, 3, 8] {
            let par = compute_grm(&g, &GrmParams { block: 16, threads });
            assert!(serial.max_abs_diff(&par) < 1e-5, "threads {threads}");
        }
    }

    #[test]
    fn grm_is_symmetric() {
        let m = compute_grm(&geno(), &GrmParams::default());
        let (n, _) = m.shape();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
    }

    #[test]
    fn diagonal_near_one_under_hwe() {
        // Under Hardy-Weinberg, E[(x - 2p)^2] = 2p(1-p), so diagonal
        // entries average ~1.
        let g = GenotypeMatrix::generate(60, 4000, 11);
        let m = compute_grm(&g, &GrmParams::default());
        let mean_diag: f32 = (0..60).map(|i| m[(i, i)]).sum::<f32>() / 60.0;
        assert!((mean_diag - 1.0).abs() < 0.1, "mean diagonal {mean_diag}");
    }

    #[test]
    fn grm_is_positive_semidefinite_quadratic() {
        // G = ZZ^T/S, so v^T G v = |Z^T v|^2 / S >= 0 for any v.
        let g = geno();
        let m = compute_grm(&g, &GrmParams::default());
        let (n, _) = m.shape();
        let v: Vec<f32> = (0..n).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
        let mut quad = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                quad += f64::from(v[i]) * f64::from(m[(i, j)]) * f64::from(v[j]);
            }
        }
        assert!(quad > -1e-3, "v'Gv = {quad}");
    }

    #[test]
    fn probe_sees_simd_dominated_mix() {
        use gb_uarch::mix::MixProbe;
        let g = geno();
        let mut probe = MixProbe::new();
        let _ = compute_grm_probed(&g, &GrmParams::default(), &mut probe);
        let mix = probe.mix();
        assert!(
            mix.simd_ops > mix.loads,
            "grm must be vector-compute heavy: {mix:?}"
        );
    }

    #[test]
    fn block_size_does_not_change_result() {
        let g = geno();
        let a = compute_grm(
            &g,
            &GrmParams {
                block: 1,
                threads: 1,
            },
        );
        let b = compute_grm(
            &g,
            &GrmParams {
                block: 1000,
                threads: 1,
            },
        );
        assert!(a.max_abs_diff(&b) < 1e-6);
    }
}
