//! Kinship analysis on the GRM.
//!
//! The paper motivates the grm kernel by population studies needing "to
//! account for potential ancestral relationship between individuals";
//! this module implements that downstream step: classifying pairs by
//! their GRM coefficient (the standard KING/PLINK thresholds) and
//! extracting related pairs.

use gb_core::matrix::Matrix;

/// Degree of relatedness inferred from a GRM coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relatedness {
    /// Same sample or identical twins (`g >= 0.9`).
    Duplicate,
    /// Parent-offspring or full siblings (`0.4 <= g < 0.9`).
    FirstDegree,
    /// Half-siblings, grandparents, avuncular (`0.2 <= g < 0.4`).
    SecondDegree,
    /// First cousins and closer-than-random (`0.1 <= g < 0.2`).
    ThirdDegree,
    /// Effectively unrelated (`g < 0.1`).
    Unrelated,
}

impl Relatedness {
    /// Classifies a GRM off-diagonal coefficient.
    pub fn from_coefficient(g: f32) -> Relatedness {
        match g {
            g if g >= 0.9 => Relatedness::Duplicate,
            g if g >= 0.4 => Relatedness::FirstDegree,
            g if g >= 0.2 => Relatedness::SecondDegree,
            g if g >= 0.1 => Relatedness::ThirdDegree,
            _ => Relatedness::Unrelated,
        }
    }
}

/// A related pair extracted from the GRM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelatedPair {
    /// First individual (row index).
    pub a: usize,
    /// Second individual (`a < b`).
    pub b: usize,
    /// Their GRM coefficient.
    pub coefficient: f32,
    /// The inferred degree.
    pub degree: Relatedness,
}

/// Scans the GRM for pairs at least as related as `min_degree` implies
/// (coefficient >= 0.1 for third degree, etc.), sorted by decreasing
/// coefficient.
///
/// # Panics
///
/// Panics if `grm` is not square.
///
/// # Examples
///
/// ```
/// use gb_core::matrix::Matrix;
/// use gb_popgen::kinship::{related_pairs, Relatedness};
/// let mut g = Matrix::zeros(3, 3);
/// for i in 0..3 { g[(i, i)] = 1.0; }
/// g[(0, 2)] = 0.5; g[(2, 0)] = 0.5;
/// let pairs = related_pairs(&g, Relatedness::ThirdDegree);
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].degree, Relatedness::FirstDegree);
/// ```
pub fn related_pairs(grm: &Matrix, min_degree: Relatedness) -> Vec<RelatedPair> {
    let (n, m) = grm.shape();
    assert_eq!(n, m, "GRM must be square");
    let threshold = match min_degree {
        Relatedness::Duplicate => 0.9,
        Relatedness::FirstDegree => 0.4,
        Relatedness::SecondDegree => 0.2,
        Relatedness::ThirdDegree => 0.1,
        Relatedness::Unrelated => f32::MIN,
    };
    let mut out = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            let g = grm[(a, b)];
            if g >= threshold {
                out.push(RelatedPair {
                    a,
                    b,
                    coefficient: g,
                    degree: Relatedness::from_coefficient(g),
                });
            }
        }
    }
    out.sort_by(|x, y| {
        y.coefficient
            .partial_cmp(&x.coefficient)
            .expect("finite GRM")
    });
    out
}

/// Mean inbreeding-style diagonal excess: `mean(G_ii) - 1`, a population
/// QC statistic (≈0 under Hardy-Weinberg equilibrium).
pub fn mean_diagonal_excess(grm: &Matrix) -> f64 {
    let (n, _) = grm.shape();
    if n == 0 {
        return 0.0;
    }
    let mean: f64 = (0..n).map(|i| f64::from(grm[(i, i)])).sum::<f64>() / n as f64;
    mean - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grm::{compute_grm, GrmParams};
    use gb_datagen::genotypes::GenotypeMatrix;

    #[test]
    fn classification_thresholds() {
        assert_eq!(Relatedness::from_coefficient(1.0), Relatedness::Duplicate);
        assert_eq!(Relatedness::from_coefficient(0.5), Relatedness::FirstDegree);
        assert_eq!(
            Relatedness::from_coefficient(0.25),
            Relatedness::SecondDegree
        );
        assert_eq!(
            Relatedness::from_coefficient(0.12),
            Relatedness::ThirdDegree
        );
        assert_eq!(Relatedness::from_coefficient(0.01), Relatedness::Unrelated);
        assert_eq!(Relatedness::from_coefficient(-0.2), Relatedness::Unrelated);
    }

    #[test]
    fn random_population_is_unrelated() {
        let geno = GenotypeMatrix::generate(60, 2500, 21);
        let grm = compute_grm(&geno, &GrmParams::default());
        let pairs = related_pairs(&grm, Relatedness::SecondDegree);
        assert!(
            pairs.is_empty(),
            "random individuals misclassified as related: {pairs:?}"
        );
        // Diagonal behaves under HWE.
        assert!(mean_diagonal_excess(&grm).abs() < 0.1);
    }

    #[test]
    fn planted_duplicate_is_detected() {
        // Plant a twin by duplicating one standardized genotype row, then
        // check the GRM scan flags exactly that pair.
        use crate::grm::{grm_from_z_probed, standardize};
        use gb_uarch::probe::NullProbe;
        let geno = GenotypeMatrix::generate(30, 2000, 33);
        let z = standardize(&geno);
        let (n, s) = z.shape();
        let mut z2 = gb_core::matrix::Matrix::zeros(n + 1, s);
        for i in 0..n {
            z2.row_mut(i).copy_from_slice(z.row(i));
        }
        let dup_src = 4usize;
        let row: Vec<f32> = z.row(dup_src).to_vec();
        z2.row_mut(n).copy_from_slice(&row);
        let grm = grm_from_z_probed(&z2, 32, &mut NullProbe);
        let pairs = related_pairs(&grm, Relatedness::Duplicate);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a, pairs[0].b), (dup_src, n));
        assert!(pairs[0].coefficient > 0.9);
    }

    #[test]
    fn pairs_sorted_by_coefficient() {
        let mut g = Matrix::zeros(4, 4);
        g[(0, 1)] = 0.15;
        g[(1, 0)] = 0.15;
        g[(0, 2)] = 0.55;
        g[(2, 0)] = 0.55;
        g[(1, 3)] = 0.25;
        g[(3, 1)] = 0.25;
        let pairs = related_pairs(&g, Relatedness::ThirdDegree);
        let coeffs: Vec<f32> = pairs.iter().map(|p| p.coefficient).collect();
        assert_eq!(coeffs, vec![0.55, 0.25, 0.15]);
    }
}
