//! # gb-popgen
//!
//! Population-genomics kernel of GenomicsBench-rs: the Genomic
//! Relationship Matrix (**grm**) from PLINK2 — dense standardized
//! matrix multiplication, the suite's regular-compute baseline.
//!
//! # Examples
//!
//! ```
//! use gb_datagen::genotypes::GenotypeMatrix;
//! use gb_popgen::grm::{compute_grm, GrmParams};
//! let geno = GenotypeMatrix::generate(10, 50, 3);
//! let g = compute_grm(&geno, &GrmParams::default());
//! assert_eq!(g.shape(), (10, 10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grm;
pub mod kinship;

pub use grm::{compute_grm, naive_grm, standardize, GrmParams};
