//! GPU resource model and occupancy calculation.
//!
//! The paper characterizes its GPU kernels on an Nvidia Titan Xp with
//! nvprof. This module models the relevant SM resource limits (threads,
//! warps, registers, shared memory) so kernel launch configurations yield
//! the same occupancy numbers nvprof would report.

use serde::{Deserialize, Serialize};

/// Per-SM resource limits of the modelled GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Shared memory per SM in bytes.
    pub shared_per_sm: usize,
    /// Global-memory transaction (sector) size in bytes.
    pub sector_bytes: usize,
}

impl GpuConfig {
    /// A Titan Xp-like (Pascal GP102) configuration.
    pub fn titan_xp_like() -> GpuConfig {
        GpuConfig {
            sms: 30,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            registers_per_sm: 65_536,
            shared_per_sm: 96 << 10,
            sector_bytes: 32,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig::titan_xp_like()
    }
}

/// A kernel launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid: usize,
    /// Threads per block.
    pub block: usize,
    /// Registers per thread.
    pub regs_per_thread: usize,
    /// Shared memory per block in bytes.
    pub shared_per_block: usize,
}

impl LaunchConfig {
    /// Warps per block (rounded up).
    pub fn warps_per_block(&self, gpu: &GpuConfig) -> usize {
        self.block.div_ceil(gpu.warp_size)
    }

    /// Resident blocks per SM under every resource limit.
    pub fn blocks_per_sm(&self, gpu: &GpuConfig) -> usize {
        let by_threads = gpu.max_threads_per_sm / self.block.max(1);
        let by_warps = gpu.max_warps_per_sm / self.warps_per_block(gpu).max(1);
        let by_regs = gpu
            .registers_per_sm
            .checked_div(self.regs_per_thread * self.block)
            .unwrap_or(gpu.max_blocks_per_sm);
        let by_shared = gpu
            .shared_per_sm
            .checked_div(self.shared_per_block)
            .unwrap_or(gpu.max_blocks_per_sm);
        by_threads
            .min(by_warps)
            .min(by_regs)
            .min(by_shared)
            .min(gpu.max_blocks_per_sm)
    }

    /// Theoretical occupancy: resident warps over the SM maximum — the
    /// number nvprof reports as `achieved_occupancy`'s ceiling.
    pub fn occupancy(&self, gpu: &GpuConfig) -> f64 {
        let warps = self.blocks_per_sm(gpu) * self.warps_per_block(gpu);
        (warps.min(gpu.max_warps_per_sm)) as f64 / gpu.max_warps_per_sm as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_launch_reaches_full_occupancy() {
        let gpu = GpuConfig::titan_xp_like();
        let l = LaunchConfig {
            grid: 1000,
            block: 256,
            regs_per_thread: 32,
            shared_per_block: 0,
        };
        // regs: 65536/(256*32) = 8 blocks = 2048 threads -> 100%.
        assert_eq!(l.blocks_per_sm(&gpu), 8);
        assert_eq!(l.occupancy(&gpu), 1.0);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let gpu = GpuConfig::titan_xp_like();
        let l = LaunchConfig {
            grid: 100,
            block: 320,
            regs_per_thread: 32,
            shared_per_block: 45 << 10,
        };
        // shared: 96KB/45KB = 2 blocks -> 20 warps / 64 = 31.25%.
        assert_eq!(l.blocks_per_sm(&gpu), 2);
        assert!((l.occupancy(&gpu) - 0.3125).abs() < 1e-9);
    }

    #[test]
    fn registers_limit_occupancy() {
        let gpu = GpuConfig::titan_xp_like();
        let l = LaunchConfig {
            grid: 100,
            block: 128,
            regs_per_thread: 36,
            shared_per_block: 0,
        };
        // regs: 65536/(128*36) = 14 blocks -> 56 warps / 64 = 87.5%.
        assert_eq!(l.blocks_per_sm(&gpu), 14);
        assert!((l.occupancy(&gpu) - 0.875).abs() < 1e-9);
    }

    #[test]
    fn occupancy_capped_at_one() {
        let gpu = GpuConfig::titan_xp_like();
        let l = LaunchConfig {
            grid: 1,
            block: 32,
            regs_per_thread: 0,
            shared_per_block: 0,
        };
        assert!(l.occupancy(&gpu) <= 1.0);
    }
}
