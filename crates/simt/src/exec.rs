//! The SIMT execution recorder.
//!
//! GPU kernel models drive a [`KernelSim`] the way a real kernel drives an
//! SM: issuing instructions under an active mask, performing global
//! memory accesses (which the coalescer splits into 32-byte sectors), and
//! synchronizing at barriers. The recorder accumulates exactly the
//! counters nvprof derives its Table IV / Table V metrics from.

use crate::config::{GpuConfig, LaunchConfig};
use serde::{Deserialize, Serialize};

/// An active-lane mask for one warp (bit `i` = lane `i` active).
pub type WarpMask = u32;

/// Full-warp mask.
pub const FULL_MASK: WarpMask = u32::MAX;

/// Records one kernel's execution behaviour.
#[derive(Debug, Clone)]
pub struct KernelSim {
    gpu: GpuConfig,
    launch: LaunchConfig,
    /// Issued (instruction, warp) pairs.
    instructions: u64,
    /// Sum of active lanes over issued instructions.
    active_lanes: u64,
    /// Sum of active-and-not-predicated lanes.
    nonpred_lanes: u64,
    /// Conditional branches and how many diverged.
    branches: u64,
    divergent_branches: u64,
    /// Global loads: requested useful bytes and fetched sector bytes.
    load_requested: u64,
    load_fetched: u64,
    /// Global stores: same.
    store_requested: u64,
    store_fetched: u64,
    /// Cycle accounting for SM utilization.
    busy_cycles: f64,
    exposed_stall_cycles: f64,
}

impl KernelSim {
    /// Starts recording a kernel with the given launch configuration.
    pub fn new(gpu: GpuConfig, launch: LaunchConfig) -> KernelSim {
        KernelSim {
            gpu,
            launch,
            instructions: 0,
            active_lanes: 0,
            nonpred_lanes: 0,
            branches: 0,
            divergent_branches: 0,
            load_requested: 0,
            load_fetched: 0,
            store_requested: 0,
            store_fetched: 0,
            busy_cycles: 0.0,
            exposed_stall_cycles: 0.0,
        }
    }

    /// The modelled GPU.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Issues `count` instructions on one warp with `mask` active lanes;
    /// `predicated_off` of those lanes are executing under a false
    /// predicate (they count for warp efficiency, not for non-predicated
    /// efficiency).
    pub fn issue(&mut self, mask: WarpMask, predicated_off: u32, count: u64) {
        let active = u64::from(mask.count_ones());
        debug_assert!(u64::from(predicated_off) <= active);
        self.instructions += count;
        self.active_lanes += active * count;
        self.nonpred_lanes += (active - u64::from(predicated_off)) * count;
        self.busy_cycles += count as f64;
    }

    /// Records a conditional branch on one warp. Divergence occurs when
    /// both outcomes are taken by some active lane.
    pub fn branch(&mut self, mask: WarpMask, taken: WarpMask) {
        self.branches += 1;
        let taken = taken & mask;
        if taken != 0 && taken != mask {
            self.divergent_branches += 1;
        }
        self.issue(mask, 0, 1);
    }

    /// A global memory access: `addrs[i]` is lane `i`'s byte address
    /// (`None` = inactive), each active lane touching `bytes` bytes. The
    /// coalescer fetches whole sectors.
    pub fn global_access(&mut self, addrs: &[Option<u64>], bytes: u32, write: bool) {
        assert!(addrs.len() <= self.gpu.warp_size);
        let sector = self.gpu.sector_bytes as u64;
        let mut sectors: Vec<u64> = Vec::with_capacity(addrs.len());
        let mut requested = 0u64;
        let mut mask: WarpMask = 0;
        for (lane, addr) in addrs.iter().enumerate() {
            if let Some(a) = addr {
                mask |= 1 << lane;
                requested += u64::from(bytes);
                let first = a / sector;
                let last = (a + u64::from(bytes) - 1) / sector;
                for s in first..=last {
                    sectors.push(s);
                }
            }
        }
        sectors.sort_unstable();
        sectors.dedup();
        let fetched = sectors.len() as u64 * sector;
        if write {
            self.store_requested += requested;
            self.store_fetched += fetched;
        } else {
            self.load_requested += requested;
            self.load_fetched += fetched;
        }
        if mask != 0 {
            self.issue(mask, 0, 1);
        }
    }

    /// A block-wide barrier: the dependency latency is exposed in
    /// proportion to how few other resident warps can hide it.
    pub fn sync(&mut self, latency: f64) {
        let resident_warps =
            (self.launch.blocks_per_sm(&self.gpu) * self.launch.warps_per_block(&self.gpu)).max(1);
        self.exposed_stall_cycles += latency / resident_warps as f64;
    }

    /// Finalizes into the nvprof-style report.
    pub fn report(&self) -> GpuKernelReport {
        let warp = self.gpu.warp_size as f64;
        let instr = self.instructions.max(1) as f64;
        GpuKernelReport {
            branch_efficiency: if self.branches == 0 {
                1.0
            } else {
                1.0 - self.divergent_branches as f64 / self.branches as f64
            },
            warp_efficiency: self.active_lanes as f64 / (instr * warp),
            nonpred_warp_efficiency: self.nonpred_lanes as f64 / (instr * warp),
            occupancy: self.launch.occupancy(&self.gpu),
            sm_utilization: if self.busy_cycles == 0.0 {
                0.0
            } else {
                self.busy_cycles / (self.busy_cycles + self.exposed_stall_cycles)
            },
            gld_efficiency: ratio(self.load_requested, self.load_fetched),
            gst_efficiency: ratio(self.store_requested, self.store_fetched),
            instructions: self.instructions,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// The per-kernel GPU metrics of the paper's Tables IV and V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuKernelReport {
    /// Fraction of non-divergent branches (Table IV).
    pub branch_efficiency: f64,
    /// Average active-lane fraction (Table IV).
    pub warp_efficiency: f64,
    /// Active and non-predicated lane fraction (Table IV).
    pub nonpred_warp_efficiency: f64,
    /// Theoretical occupancy (Table IV).
    pub occupancy: f64,
    /// Fraction of cycles the SM had work (Table IV).
    pub sm_utilization: f64,
    /// Useful fraction of global load traffic (Table V).
    pub gld_efficiency: f64,
    /// Useful fraction of global store traffic (Table V).
    pub gst_efficiency: f64,
    /// Total warp instructions issued.
    pub instructions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> KernelSim {
        let gpu = GpuConfig::titan_xp_like();
        let launch = LaunchConfig {
            grid: 10,
            block: 256,
            regs_per_thread: 32,
            shared_per_block: 0,
        };
        KernelSim::new(gpu, launch)
    }

    #[test]
    fn full_warps_are_fully_efficient() {
        let mut s = sim();
        s.issue(FULL_MASK, 0, 100);
        let r = s.report();
        assert_eq!(r.warp_efficiency, 1.0);
        assert_eq!(r.nonpred_warp_efficiency, 1.0);
        assert_eq!(r.branch_efficiency, 1.0);
    }

    #[test]
    fn half_warps_half_efficiency() {
        let mut s = sim();
        s.issue(0x0000_FFFF, 0, 10);
        let r = s.report();
        assert!((r.warp_efficiency - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predication_splits_the_two_efficiencies() {
        let mut s = sim();
        s.issue(FULL_MASK, 8, 10);
        let r = s.report();
        assert_eq!(r.warp_efficiency, 1.0);
        assert!((r.nonpred_warp_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn divergence_counts_once_per_branch() {
        let mut s = sim();
        s.branch(FULL_MASK, 0x1); // diverges
        s.branch(FULL_MASK, FULL_MASK); // uniform
        s.branch(FULL_MASK, 0); // uniform (all fall through)
        let r = s.report();
        assert!((r.branch_efficiency - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coalesced_loads_are_efficient() {
        let mut s = sim();
        // 32 lanes, consecutive 4-byte words: 128 bytes = 4 sectors.
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(0x1000 + i * 4)).collect();
        s.global_access(&addrs, 4, false);
        let r = s.report();
        assert_eq!(r.gld_efficiency, 1.0);
    }

    #[test]
    fn scattered_loads_waste_sectors() {
        let mut s = sim();
        // Each lane in its own sector: 4 useful of 32 fetched.
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(i * 4096)).collect();
        s.global_access(&addrs, 4, false);
        let r = s.report();
        assert!((r.gld_efficiency - 0.125).abs() < 1e-12);
    }

    #[test]
    fn stores_tracked_separately() {
        let mut s = sim();
        let scattered: Vec<Option<u64>> = (0..32).map(|i| Some(i * 4096)).collect();
        let packed: Vec<Option<u64>> = (0..32).map(|i| Some(i * 4)).collect();
        s.global_access(&scattered, 4, false);
        s.global_access(&packed, 4, true);
        let r = s.report();
        assert!(r.gst_efficiency > r.gld_efficiency);
    }

    #[test]
    fn sync_stalls_lower_utilization() {
        let mut a = sim();
        a.issue(FULL_MASK, 0, 1000);
        let no_sync = a.report().sm_utilization;
        let mut b = sim();
        b.issue(FULL_MASK, 0, 1000);
        for _ in 0..100 {
            b.sync(400.0);
        }
        let with_sync = b.report().sm_utilization;
        assert_eq!(no_sync, 1.0);
        assert!(with_sync < 0.95, "utilization {with_sync}");
    }

    #[test]
    fn inactive_lanes_request_nothing() {
        let mut s = sim();
        let addrs: Vec<Option<u64>> = (0..32)
            .map(|i| if i < 8 { Some(i * 4) } else { None })
            .collect();
        s.global_access(&addrs, 4, false);
        let r = s.report();
        // 32 useful bytes of one fetched sector.
        assert_eq!(r.gld_efficiency, 1.0);
    }
}
