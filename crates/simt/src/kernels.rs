//! GPU-style models of the suite's two GPU kernels.
//!
//! These drive the SIMT recorder with the *actual* per-lane work and
//! addresses of the abea and nn-base computations, reproducing how the
//! f5c and Bonito CUDA kernels behave on an SM:
//!
//! - **abea**: one block per read, the fixed-width band strip-mined over
//!   warps, band scores double-buffered in shared memory, per-band
//!   barriers, and per-cell gathers from the 4096-entry k-mer model table
//!   (whose *values* are random in k-mer space — the source of the
//!   paper's 25.5% global-load efficiency).
//! - **nn-base**: tiled GEMMs for each convolution layer; control flow is
//!   uniform, loads are coalesced, and the only inefficiency is partial
//!   tiles when channel counts are not multiples of the warp size (the
//!   paper's "filters not integer multiples of 32" observation).

use crate::config::{GpuConfig, LaunchConfig};
use crate::exec::{GpuKernelReport, KernelSim};
use gb_core::seq::DnaSeq;
use gb_datagen::signal::{Event, PORE_K};

/// Parameters of the abea GPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbeaGpuParams {
    /// Band width in cells (f5c default 100).
    pub bandwidth: usize,
    /// Modelled latency of a band-to-band barrier in cycles.
    pub sync_latency: f64,
    /// Instructions per computed cell (emission + 3-way max + trace).
    pub instr_per_cell: u64,
}

impl Default for AbeaGpuParams {
    fn default() -> AbeaGpuParams {
        AbeaGpuParams {
            bandwidth: 100,
            sync_latency: 550.0,
            instr_per_cell: 12,
        }
    }
}

/// The f5c-like launch configuration: band double-buffers and staging in
/// shared memory limit residency to ~31% occupancy, as on the Titan Xp.
pub fn abea_launch(reads: usize) -> LaunchConfig {
    LaunchConfig {
        grid: reads,
        block: 128,
        regs_per_thread: 32,
        shared_per_block: 18 << 10,
    }
}

/// Runs the abea SIMT model over `reads` (event stream + reference) and
/// returns the nvprof-style report.
pub fn model_abea_gpu(
    reads: &[(Vec<Event>, DnaSeq)],
    params: &AbeaGpuParams,
    gpu: GpuConfig,
) -> GpuKernelReport {
    let mut sim = KernelSim::new(gpu, abea_launch(reads.len()));
    let w = params.bandwidth;
    let warp = gpu.warp_size;
    let warps_per_band = w.div_ceil(warp);
    // Synthetic device addresses for the coalescer.
    let model_base = 0x1000_0000u64;
    let event_base = 0x2000_0000u64;
    let band_base = 0x3000_0000u64;

    for (events, reference) in reads {
        let kmers: Vec<u64> = reference.kmers(PORE_K).map(|(_, k)| k).collect();
        let ne = events.len() as i64;
        let nk = kmers.len() as i64;
        if ne == 0 || nk == 0 {
            continue;
        }
        // Band trajectory: the adaptive band tracks the alignment
        // diagonal; its placement follows the event/k-mer aspect ratio
        // (a Bresenham walk is what the placement converges to on real
        // signals).
        let n_bands = (ne + nk) as usize;
        let half = (w / 2) as i64;
        let (mut ll_e, mut ll_k) = (-1 + half, -1 - half);
        let mut acc = 0i64;
        for band in 0..n_bands {
            // Move placement.
            acc += nk;
            if acc >= ne + nk {
                acc -= ne + nk;
                ll_k += 1; // move right
            } else {
                ll_e += 1; // move down
            }
            let _ = band;
            // Strip-mine the band over warps.
            for wi in 0..warps_per_band {
                let mut mask = 0u32;
                let mut predicated_off = 0u32;
                let mut model_addrs: Vec<Option<u64>> = vec![None; warp];
                let mut event_addrs: Vec<Option<u64>> = vec![None; warp];
                let mut store_addrs: Vec<Option<u64>> = vec![None; warp];
                for lane in 0..warp {
                    let o = (wi * warp + lane) as i64;
                    if o >= w as i64 {
                        continue; // threads beyond the band exited at launch
                    }
                    mask |= 1 << lane;
                    let e = ll_e - o;
                    let k = ll_k + o;
                    if e < 0 || k < 0 || e >= ne || k >= nk {
                        predicated_off += 1; // guarded cell: predicated out
                        continue;
                    }
                    // Gather from the pore-model table: indexed by the
                    // k-mer *value*, which is uncorrelated with k.
                    model_addrs[lane] = Some(model_base + kmers[k as usize] * 8);
                    event_addrs[lane] = Some(event_base + e as u64 * 12);
                    store_addrs[lane] = Some(band_base + (o as u64) * 4);
                }
                if mask == 0 {
                    continue;
                }
                sim.issue(mask, predicated_off, params.instr_per_cell);
                sim.global_access(&model_addrs, 8, false);
                sim.global_access(&event_addrs, 4, false);
                sim.global_access(&store_addrs, 4, true);
            }
            sim.sync(params.sync_latency);
        }
    }
    sim.report()
}

/// Parameters of the nn-base GEMM model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmGpuParams {
    /// Square tile edge (one warp row per tile row).
    pub tile: usize,
    /// Barrier latency per k-step (double-buffered, largely hidden).
    pub sync_latency: f64,
}

impl Default for GemmGpuParams {
    fn default() -> GemmGpuParams {
        GemmGpuParams {
            tile: 32,
            sync_latency: 40.0,
        }
    }
}

/// One convolution expressed as a GEMM: `(M, K, N)` = (output channels,
/// input channels x kernel, output timesteps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Output rows (channels).
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns (timesteps).
    pub n: usize,
    /// Elements between consecutive lanes' activation addresses: 1 for
    /// pointwise layers, the temporal stride for a strided stem conv
    /// (whose gathers are what hurt load efficiency).
    pub lane_stride: usize,
}

/// One layer of the modelled network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnLayer {
    /// A (pointwise or im2col) convolution as a tiled GEMM.
    Gemm(GemmShape),
    /// A depthwise convolution: per-channel stencil with overlapping,
    /// mostly-unaligned window loads.
    Depthwise {
        /// Channel count.
        channels: usize,
        /// Stencil width.
        kernel: usize,
        /// Timesteps.
        n: usize,
    },
}

/// The Bonito-like launch: register-limited to ~87.5% occupancy.
pub fn gemm_launch(tiles: usize) -> LaunchConfig {
    LaunchConfig {
        grid: tiles,
        block: 128,
        regs_per_thread: 36,
        shared_per_block: 4 << 10,
    }
}

/// Runs the nn-base SIMT model over the network's layers.
pub fn model_nn_base_gpu(
    layers: &[NnLayer],
    params: &GemmGpuParams,
    gpu: GpuConfig,
) -> GpuKernelReport {
    let tile = params.tile;
    let total_tiles: usize = layers
        .iter()
        .map(|l| match l {
            NnLayer::Gemm(s) => s.m.div_ceil(tile) * s.n.div_ceil(tile),
            NnLayer::Depthwise { channels, n, .. } => channels * n.div_ceil(tile) / tile.max(1),
        })
        .sum();
    let mut sim = KernelSim::new(gpu, gemm_launch(total_tiles.max(1)));
    for layer in layers {
        match layer {
            NnLayer::Gemm(shape) => model_gemm_layer(shape, params, gpu, &mut sim),
            NnLayer::Depthwise {
                channels,
                kernel,
                n,
            } => model_depthwise_layer(*channels, *kernel, *n, gpu, &mut sim),
        }
    }
    sim.report()
}

fn model_gemm_layer(
    shape: &GemmShape,
    params: &GemmGpuParams,
    gpu: GpuConfig,
    sim: &mut KernelSim,
) {
    let tile = params.tile;
    let warp = gpu.warp_size;
    let a_base = 0x1000_0000u64;
    let b_base = 0x2000_0000u64;
    let c_base = 0x3000_0000u64;
    let mtiles = shape.m.div_ceil(tile);
    let ntiles = shape.n.div_ceil(tile);
    let ksteps = shape.k.div_ceil(tile);
    for mt in 0..mtiles {
        for nt in 0..ntiles {
            // Valid rows/cols in this (possibly partial) tile.
            let rows = (shape.m - mt * tile).min(tile);
            let cols = (shape.n - nt * tile).min(tile);
            for ks in 0..ksteps {
                let kdepth = (shape.k - ks * tile).min(tile);
                // Stage A (weights): one warp row per valid tile row.
                for r in 0..rows {
                    let addrs: Vec<Option<u64>> = (0..warp)
                        .map(|lane| {
                            (lane < kdepth).then(|| {
                                a_base + (((mt * tile + r) * shape.k + ks * tile + lane) * 4) as u64
                            })
                        })
                        .collect();
                    sim.global_access(&addrs, 4, false);
                }
                // Stage B (activations): lanes walk timesteps with the
                // layer's gather stride.
                for r in 0..kdepth {
                    let addrs: Vec<Option<u64>> = (0..warp)
                        .map(|lane| {
                            (lane < cols).then(|| {
                                b_base
                                    + (((ks * tile + r) * shape.n
                                        + (nt * tile + lane) * shape.lane_stride)
                                        * 4) as u64
                            })
                        })
                        .collect();
                    sim.global_access(&addrs, 4, false);
                }
                // FMA work on valid rows (predicated on row validity)
                // plus uniform addressing/shared-load overhead.
                let full_mask = u32::MAX;
                let pred_off = ((tile - rows) * warp / tile) as u32;
                sim.issue(
                    full_mask,
                    pred_off.min(warp as u32 - 1),
                    (rows * kdepth) as u64 / 2,
                );
                sim.issue(full_mask, 0, (tile * kdepth) as u64 / 2);
                sim.sync(params.sync_latency);
            }
            // Write C tile: coalesced stores over valid columns.
            for r in 0..rows {
                let addrs: Vec<Option<u64>> = (0..warp)
                    .map(|lane| {
                        (lane < cols).then(|| {
                            c_base + (((mt * tile + r) * shape.n + nt * tile + lane) * 4) as u64
                        })
                    })
                    .collect();
                sim.global_access(&addrs, 4, true);
            }
        }
    }
}

/// Depthwise stencil: lanes walk timesteps; each of the `kernel` window
/// taps is a separate (usually sector-misaligned) coalesced load.
fn model_depthwise_layer(
    channels: usize,
    kernel: usize,
    n: usize,
    gpu: GpuConfig,
    sim: &mut KernelSim,
) {
    let warp = gpu.warp_size;
    let d_base = 0x4000_0000u64;
    let o_base = 0x5000_0000u64;
    let pad = kernel / 2;
    for c in 0..channels {
        for tw in 0..n.div_ceil(warp) {
            let cols = (n - tw * warp).min(warp);
            for kk in 0..kernel {
                let addrs: Vec<Option<u64>> = (0..warp)
                    .map(|lane| {
                        if lane >= cols {
                            return None;
                        }
                        let t = tw * warp + lane + kk;
                        if t < pad || t - pad >= n {
                            return None; // zero-padding: no load
                        }
                        Some(d_base + ((c * n + t - pad) * 4) as u64)
                    })
                    .collect();
                sim.global_access(&addrs, 4, false);
                // One FMA per tap plus addressing overhead.
                sim.issue(u32::MAX, (warp - cols) as u32, 2);
            }
            let addrs: Vec<Option<u64>> = (0..warp)
                .map(|lane| (lane < cols).then(|| o_base + ((c * n + tw * warp + lane) * 4) as u64))
                .collect();
            sim.global_access(&addrs, 4, true);
        }
    }
}

/// Builds the Bonito-like layer stack matching
/// `gb_nn::basecaller::BasecallerConfig` dimensions: a strided stem conv,
/// `blocks` x (depthwise + pointwise), and the 5-way CTC head.
pub fn bonito_like_layers(
    chunk: usize,
    stride: usize,
    channels: usize,
    blocks: usize,
    kernel: usize,
) -> Vec<NnLayer> {
    let t = chunk.div_ceil(stride);
    let mut v = vec![NnLayer::Gemm(GemmShape {
        m: channels,
        k: kernel,
        n: t,
        lane_stride: stride,
    })];
    for _ in 0..blocks {
        v.push(NnLayer::Depthwise {
            channels,
            kernel,
            n: t,
        });
        v.push(NnLayer::Gemm(GemmShape {
            m: channels,
            k: channels,
            n: t,
            lane_stride: 1,
        }));
    }
    v.push(NnLayer::Gemm(GemmShape {
        m: 5,
        k: channels,
        n: t,
        lane_stride: 1,
    }));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};

    fn abea_reads(n: usize) -> Vec<(Vec<Event>, DnaSeq)> {
        let model = PoreModel::r9_like();
        let mut x = 41u64;
        (0..n)
            .map(|i| {
                let seq = DnaSeq::from_codes_unchecked(
                    (0..300)
                        .map(|_| {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            ((x >> 33) % 4) as u8
                        })
                        .collect(),
                );
                let sig = simulate_signal(&seq, &model, &SignalSimConfig::default(), i as u64);
                (sig.events, seq)
            })
            .collect()
    }

    #[test]
    fn abea_report_matches_paper_shape() {
        let r = model_abea_gpu(
            &abea_reads(4),
            &AbeaGpuParams::default(),
            GpuConfig::default(),
        );
        // Table IV shape: no branch divergence, warp efficiency well below
        // 100%, low occupancy, mediocre SM utilization.
        assert_eq!(r.branch_efficiency, 1.0);
        assert!(
            r.warp_efficiency > 0.55 && r.warp_efficiency < 0.9,
            "warp {}",
            r.warp_efficiency
        );
        assert!(r.nonpred_warp_efficiency < r.warp_efficiency);
        assert!((r.occupancy - 0.3125).abs() < 0.01, "occ {}", r.occupancy);
        assert!(
            r.sm_utilization > 0.5 && r.sm_utilization < 0.9,
            "util {}",
            r.sm_utilization
        );
        // Table V shape: poor load efficiency (model-table gathers), much
        // better store efficiency.
        assert!(r.gld_efficiency < 0.5, "gld {}", r.gld_efficiency);
        assert!(
            r.gst_efficiency > r.gld_efficiency + 0.2,
            "gst {}",
            r.gst_efficiency
        );
    }

    #[test]
    fn nn_base_report_matches_paper_shape() {
        // Bonito-ish stack with 48 channels (not a multiple of 32).
        let layers = bonito_like_layers(4000, 5, 48, 5, 9);
        let r = model_nn_base_gpu(&layers, &GemmGpuParams::default(), GpuConfig::default());
        assert_eq!(r.branch_efficiency, 1.0);
        assert!(r.warp_efficiency > 0.95, "warp {}", r.warp_efficiency);
        assert!(
            r.nonpred_warp_efficiency > 0.85 && r.nonpred_warp_efficiency < 1.0,
            "nonpred {}",
            r.nonpred_warp_efficiency
        );
        assert!((r.occupancy - 0.875).abs() < 0.01);
        assert!(r.sm_utilization > 0.95, "util {}", r.sm_utilization);
        assert!(
            r.gld_efficiency > 0.55 && r.gld_efficiency < 0.95,
            "gld {}",
            r.gld_efficiency
        );
        assert!(r.gst_efficiency > 0.9, "gst {}", r.gst_efficiency);
    }

    #[test]
    fn nn_base_beats_abea_on_every_table4_metric() {
        let abea = model_abea_gpu(
            &abea_reads(3),
            &AbeaGpuParams::default(),
            GpuConfig::default(),
        );
        let nn = model_nn_base_gpu(
            &bonito_like_layers(4000, 5, 48, 5, 9),
            &GemmGpuParams::default(),
            GpuConfig::default(),
        );
        assert!(nn.warp_efficiency > abea.warp_efficiency);
        assert!(nn.occupancy > abea.occupancy);
        assert!(nn.sm_utilization > abea.sm_utilization);
        assert!(nn.gld_efficiency > abea.gld_efficiency);
        assert!(nn.gst_efficiency > abea.gst_efficiency);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let r = model_abea_gpu(&[], &AbeaGpuParams::default(), GpuConfig::default());
        assert_eq!(r.instructions, 0);
        let r = model_nn_base_gpu(&[], &GemmGpuParams::default(), GpuConfig::default());
        assert_eq!(r.instructions, 0);
    }
}
