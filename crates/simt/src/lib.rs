//! # gb-simt
//!
//! A SIMT GPU execution model standing in for nvprof + Titan Xp in the
//! paper's GPU characterization (Tables IV and V):
//!
//! - [`config`] — SM resource limits and the occupancy calculator,
//! - [`exec`] — the warp-level recorder (active masks, predication,
//!   divergence, 32-byte-sector coalescing, barrier stalls),
//! - [`kernels`] — faithful execution models of the abea band kernel and
//!   the nn-base tiled GEMMs, driven by real event/reference data and
//!   real layer shapes.
//!
//! # Examples
//!
//! ```
//! use gb_simt::config::{GpuConfig, LaunchConfig};
//! let gpu = GpuConfig::titan_xp_like();
//! let launch = LaunchConfig { grid: 64, block: 256, regs_per_thread: 32, shared_per_block: 0 };
//! assert_eq!(launch.occupancy(&gpu), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod exec;
pub mod kernels;

pub use config::{GpuConfig, LaunchConfig};
pub use exec::{GpuKernelReport, KernelSim};
pub use kernels::{
    bonito_like_layers, model_abea_gpu, model_nn_base_gpu, AbeaGpuParams, GemmGpuParams, GemmShape,
    NnLayer,
};
