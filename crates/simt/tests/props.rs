//! Property-based tests for the SIMT model.

use gb_simt::config::{GpuConfig, LaunchConfig};
use gb_simt::exec::KernelSim;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn occupancy_always_in_unit_interval(
        block in 32usize..1024,
        regs in 0usize..256,
        shared in 0usize..(96 << 10),
    ) {
        let gpu = GpuConfig::titan_xp_like();
        let l = LaunchConfig { grid: 10, block, regs_per_thread: regs, shared_per_block: shared };
        let occ = l.occupancy(&gpu);
        prop_assert!((0.0..=1.0).contains(&occ), "occupancy {occ}");
        // More registers can never raise occupancy.
        let l2 = LaunchConfig { regs_per_thread: regs + 32, ..l };
        prop_assert!(l2.occupancy(&gpu) <= occ + 1e-12);
        // More shared memory can never raise occupancy.
        let l3 = LaunchConfig { shared_per_block: shared + 4096, ..l };
        prop_assert!(l3.occupancy(&gpu) <= occ + 1e-12);
    }

    #[test]
    fn coalescer_efficiency_bounded(addrs in proptest::collection::vec(0u64..1_000_000, 1..32), bytes in 1u32..16) {
        let gpu = GpuConfig::titan_xp_like();
        let launch = LaunchConfig { grid: 1, block: 128, regs_per_thread: 32, shared_per_block: 0 };
        let mut sim = KernelSim::new(gpu, launch);
        let lanes: Vec<Option<u64>> = addrs.iter().map(|&a| Some(a)).collect();
        sim.global_access(&lanes, bytes, false);
        let r = sim.report();
        // Efficiency can never exceed 1, and a warp of N lanes touching
        // `bytes` each requests N*bytes against at least one sector.
        prop_assert!(r.gld_efficiency <= 1.0 + 1e-12);
        prop_assert!(r.gld_efficiency > 0.0);
    }

    #[test]
    fn fully_coalesced_is_perfect(start in 0u64..1000, lanes in 1usize..=32) {
        let gpu = GpuConfig::titan_xp_like();
        let launch = LaunchConfig { grid: 1, block: 128, regs_per_thread: 32, shared_per_block: 0 };
        let mut sim = KernelSim::new(gpu, launch);
        // Consecutive sector-aligned 32-byte accesses: always 100%.
        let addrs: Vec<Option<u64>> =
            (0..lanes).map(|i| Some((start + i as u64) * 32)).collect();
        sim.global_access(&addrs, 32, false);
        prop_assert!((sim.report().gld_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warp_efficiency_matches_mask_popcount(mask in 1u32.., n in 1u64..100) {
        let gpu = GpuConfig::titan_xp_like();
        let launch = LaunchConfig { grid: 1, block: 128, regs_per_thread: 32, shared_per_block: 0 };
        let mut sim = KernelSim::new(gpu, launch);
        sim.issue(mask, 0, n);
        let r = sim.report();
        let expect = f64::from(mask.count_ones()) / 32.0;
        prop_assert!((r.warp_efficiency - expect).abs() < 1e-12);
        prop_assert_eq!(r.instructions, n);
    }
}
