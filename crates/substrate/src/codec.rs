//! A dependency-free binary codec for substrate payloads.
//!
//! Substrates must round-trip *bit-identically* — a decoded FM-index or
//! weight matrix has to produce the same run checksum as the built one —
//! so floats are encoded through their IEEE-754 bit patterns rather than
//! any textual form, and every decode is bounds-checked: a truncated or
//! bit-flipped payload yields `None`, never a panic or a silently wrong
//! value (the store's checksum catches corruption first; the decoder's
//! checks make the pair defense-in-depth).
//!
//! All integers are little-endian fixed-width; collections are
//! length-prefixed with `u64`. There is no self-description: the type
//! decoded must match the type encoded, which the store guarantees by
//! addressing entries with `(kernel, tier, seed, schema)`.

/// Byte-buffer writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Consumes the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` via its bit pattern (exact round-trip, NaNs
    /// included).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` via its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked byte-buffer reader.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a `usize`, rejecting values that overflow the platform word.
    pub fn get_usize(&mut self) -> Option<usize> {
        usize::try_from(self.get_u64()?).ok()
    }

    /// Reads an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> Option<f32> {
        Some(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64`-length-prefixed byte slice. The length is checked
    /// against the remaining buffer *before* allocating, so a corrupt
    /// prefix cannot trigger a huge allocation.
    pub fn get_bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.get_usize()?;
        if len > self.remaining() {
            return None;
        }
        self.take(len)
    }

    /// Reads a collection length, bounding it by `min_elem_bytes` per
    /// element against the remaining buffer (allocation guard).
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Option<usize> {
        let len = self.get_usize()?;
        if len.checked_mul(min_elem_bytes.max(1))? > self.remaining() {
            return None;
        }
        Some(len)
    }
}

/// A type that can be written to an [`Encoder`] and read back from a
/// [`Decoder`]. Implementations live next to each type's definition (the
/// fields are usually private); every implementation must round-trip
/// exactly: `T::from_bytes(&t.to_bytes()) == Some(t)`.
pub trait Codec: Sized {
    /// Appends `self` to the encoder.
    fn encode(&self, e: &mut Encoder);

    /// Reads one value, or `None` on any malformed input.
    fn decode(d: &mut Decoder) -> Option<Self>;

    /// Encodes `self` into a standalone byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.into_bytes()
    }

    /// Decodes a standalone byte vector, requiring that every byte is
    /// consumed (trailing garbage is malformed input, not padding).
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut d = Decoder::new(bytes);
        let v = Self::decode(&mut d)?;
        d.is_at_end().then_some(v)
    }
}

impl Codec for u8 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(*self);
    }
    fn decode(d: &mut Decoder) -> Option<u8> {
        d.get_u8()
    }
}

impl Codec for u32 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(*self);
    }
    fn decode(d: &mut Decoder) -> Option<u32> {
        d.get_u32()
    }
}

impl Codec for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(*self);
    }
    fn decode(d: &mut Decoder) -> Option<u64> {
        d.get_u64()
    }
}

impl Codec for usize {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(*self);
    }
    fn decode(d: &mut Decoder) -> Option<usize> {
        d.get_usize()
    }
}

impl Codec for f32 {
    fn encode(&self, e: &mut Encoder) {
        e.put_f32(*self);
    }
    fn decode(d: &mut Decoder) -> Option<f32> {
        d.get_f32()
    }
}

impl Codec for f64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_f64(*self);
    }
    fn decode(d: &mut Decoder) -> Option<f64> {
        d.get_f64()
    }
}

impl Codec for bool {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(u8::from(*self));
    }
    fn decode(d: &mut Decoder) -> Option<bool> {
        match d.get_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Codec for String {
    fn encode(&self, e: &mut Encoder) {
        e.put_bytes(self.as_bytes());
    }
    fn decode(d: &mut Decoder) -> Option<String> {
        String::from_utf8(d.get_bytes()?.to_vec()).ok()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        for item in self {
            item.encode(e);
        }
    }
    fn decode(d: &mut Decoder) -> Option<Vec<T>> {
        // Elements occupy at least one byte each in this format, which
        // bounds the pre-allocation by the buffer size.
        let len = d.get_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Some(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Decoder) -> Option<(A, B)> {
        Some((A::decode(d)?, B::decode(d)?))
    }
}

impl<T: Codec + Copy + Default, const N: usize> Codec for [T; N] {
    fn encode(&self, e: &mut Encoder) {
        for item in self {
            item.encode(e);
        }
    }
    fn decode(d: &mut Decoder) -> Option<[T; N]> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::decode(d)?;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bytes(&v.to_bytes()), Some(v));
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(-0.0f32);
        round_trip(f64::MIN_POSITIVE);
        round_trip("reads-δ".to_string());
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f32::from_bits(0x7fc0_dead);
        let bytes = weird.to_bytes();
        assert_eq!(f32::from_bytes(&bytes).unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn collections_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip(vec![(1u32, 2.5f32), (3, -0.0)]);
        round_trip([1u32, 2, 3, 4]);
        round_trip(vec![vec![1u8, 2], vec![], vec![3]]);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = vec![7u64; 9].to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                Vec::<u64>::from_bytes(&bytes[..cut]),
                None,
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert_eq!(u32::from_bytes(&bytes), None);
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_without_allocating() {
        // A length prefix claiming u64::MAX elements must fail the
        // remaining-bytes bound, not attempt the allocation.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        assert_eq!(Vec::<u64>::from_bytes(&e.into_bytes()), None);
    }

    #[test]
    fn bool_rejects_other_bytes() {
        assert_eq!(bool::from_bytes(&[2]), None);
    }
}
